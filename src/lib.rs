//! # atgpu — facade crate
//!
//! Re-exports the whole ATGPU workspace behind one dependency, so a
//! downstream user can `cargo add atgpu` and reach every subsystem:
//!
//! * [`model`] — the ATGPU analytical model (machines, metrics, cost
//!   functions, baselines, Table I);
//! * [`ir`] — the kernel IR / pseudocode DSL with the paper's transfer
//!   operators;
//! * [`analyze`] — the static analyser deriving model metrics from IR;
//! * [`sim`] — the discrete-event GPU simulator (the "hardware"), built
//!   around a compile-then-execute pipeline: kernel IR is lowered once
//!   per launch into a flat micro-op program with precomputed access
//!   shapes (`atgpu::sim::uop`), executed allocation-free per block
//!   (`atgpu::sim::engine`) with a block-invariant timing-replay cache —
//!   the tree-walking reference interpreter remains available via
//!   `SimConfig::use_reference` for differential testing;
//! * [`algos`] — the evaluated workloads (vector addition, reduction,
//!   matrix multiplication, and the extension workloads);
//! * [`calibrate`] — cost-parameter fitting from microbenchmarks;
//! * [`exp`] — the experiment harness regenerating the paper's tables and
//!   figures;
//! * [`serve`] — the multi-tenant cost-query service: a shared-cluster
//!   front-end with fair admission and memoized analytic what-if
//!   pricing, gated by the static verifier;
//! * [`verify`] — the static soundness verifier: affine bounds
//!   checking, cross-block write-race detection with concrete
//!   `kernel@instr#N` witnesses, shared-memory hazard checks and
//!   host-dataflow lints — all without running the program.
//!
//! For a guided tour of how these crates fit together — the full
//! pipeline walk (IR → analyze → model → sim → planner → fault/trace →
//! serve) and the crate dependency diagram — see `docs/ARCHITECTURE.md`
//! at the repository root.
//!
//! ## Quickstart
//!
//! ```
//! use atgpu::model::{AtgpuMachine, CostParams, GpuSpec};
//! use atgpu::algos::{vecadd::VecAdd, verify_on_sim, Workload};
//! use atgpu::analyze::analyze_program;
//! use atgpu::sim::SimConfig;
//!
//! // The abstract machine and a GTX 650-like device.
//! let machine = AtgpuMachine::gtx650_like();
//! let spec = GpuSpec::gtx650_like();
//! let params = spec.derived_cost_params();
//!
//! // Analyse vector addition at n = 10_000 on the model …
//! let wl = VecAdd::new(10_000, /* seed */ 42);
//! let built = wl.build(&machine).unwrap();
//! let metrics = analyze_program(&built.program, &machine).unwrap().metrics();
//! let cost = atgpu::model::cost::atgpu_cost(&params, &machine, &spec, &metrics).unwrap();
//! assert!(cost > 0.0);
//!
//! // … and observe it on the simulated device (verified against the
//! // host reference).
//! let report = verify_on_sim(&wl, &machine, &spec, &SimConfig::default()).unwrap();
//! assert!(report.total_ms() > report.kernel_ms());
//! ```

#![forbid(unsafe_code)]

pub use atgpu_algos as algos;
pub use atgpu_analyze as analyze;
pub use atgpu_calibrate as calibrate;
pub use atgpu_exp as exp;
pub use atgpu_ir as ir;
pub use atgpu_model as model;
pub use atgpu_serve as serve;
pub use atgpu_sim as sim;
pub use atgpu_verify as verify;
