//! A kernel: the instruction body every thread block executes.
//!
//! Following the model, a kernel launch names `k` thread blocks; each runs
//! on one (virtual) multiprocessor with `b` lockstep cores and a private
//! shared memory of `shared_words ≤ M` words.  Blocks are distinguished
//! only by the `Block` index visible in expressions — the body is SPMD.

use crate::instr::Instr;
use crate::Reg;
use std::hash::{Hash, Hasher};

/// A kernel definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Name for diagnostics and pseudocode rendering.
    pub name: String,
    /// The SPMD instruction body.
    pub body: Vec<Instr>,
    /// Launch grid `(gx, gy)`: `gx·gy` thread blocks.  A block's linear
    /// index `id` decomposes as `x = id mod gx`, `y = id / gx` — the
    /// values of the `Block`/`BlockY` operands.
    pub grid: (u64, u64),
    /// Shared-memory words `m` each block uses (drives occupancy
    /// `ℓ = min(⌊M/m⌋, H)` and is checked against `M`).
    pub shared_words: u64,
}

impl Kernel {
    /// Total thread blocks `k = gx·gy`.
    #[inline]
    pub fn blocks(&self) -> u64 {
        self.grid.0 * self.grid.1
    }

    /// A stable **structural** hash of the kernel — the compile-relevant
    /// shape only: the instruction body, the launch grid and the
    /// shared-memory footprint.  The kernel *name* is deliberately
    /// excluded (it is a diagnostic label; two kernels differing only in
    /// name lower to identical programs), so renamed kernels share one
    /// cross-launch cache entry while any instruction, grid or
    /// shared-size mutation changes the key.
    ///
    /// The hash is FNV-1a over the `Hash` encoding of the body: unkeyed
    /// (unlike `DefaultHasher`, which may be randomly seeded), so the
    /// same kernel hashes identically in every process of the same
    /// build.  The `Hash` encoding writes lengths and discriminants in
    /// native width/endianness, so keys are **per-platform** — fine for
    /// the in-process cache they address; do not persist them across
    /// heterogeneous machines.
    pub fn cache_key(&self) -> u64 {
        let mut h = Fnv1a::default();
        self.body.hash(&mut h);
        self.grid.hash(&mut h);
        self.shared_words.hash(&mut h);
        h.finish()
    }

    /// Highest register index referenced anywhere in the body, if any.
    pub fn max_reg(&self) -> Option<Reg> {
        fn walk(body: &[Instr]) -> Option<Reg> {
            let mut max: Option<Reg> = None;
            let mut bump = |r: Option<Reg>| {
                max = match (max, r) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                }
            };
            for i in body {
                match i {
                    Instr::Alu { dst, a, b, .. } => {
                        bump(Some(*dst));
                        bump(operand_reg(*a));
                        bump(operand_reg(*b));
                    }
                    Instr::Mov { dst, src } => {
                        bump(Some(*dst));
                        bump(operand_reg(*src));
                    }
                    Instr::GlbToShr { shared, global } => {
                        bump(shared.max_reg());
                        bump(global.offset.max_reg());
                    }
                    Instr::ShrToGlb { global, shared } => {
                        bump(shared.max_reg());
                        bump(global.offset.max_reg());
                    }
                    Instr::LdShr { dst, shared } => {
                        bump(Some(*dst));
                        bump(shared.max_reg());
                    }
                    Instr::StShr { shared, src } => {
                        bump(shared.max_reg());
                        bump(operand_reg(*src));
                    }
                    Instr::Pred { pred, then_body, else_body } => {
                        let (a, b) = pred.operands();
                        bump(operand_reg(a));
                        bump(operand_reg(b));
                        bump(walk(then_body));
                        bump(walk(else_body));
                    }
                    Instr::Repeat { body, .. } => bump(walk(body)),
                    Instr::Sync => {}
                }
            }
            max
        }
        walk(&self.body)
    }

    /// Maximum loop nesting depth in the body.
    pub fn loop_depth(&self) -> usize {
        fn walk(body: &[Instr]) -> usize {
            body.iter()
                .map(|i| match i {
                    Instr::Repeat { body, .. } => 1 + walk(body),
                    Instr::Pred { then_body, else_body, .. } => {
                        walk(then_body).max(walk(else_body))
                    }
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        }
        walk(&self.body)
    }

    /// Number of instruction nodes (structural size, not trip-count
    /// weighted — the analyser computes the model's `tᵢ`).
    pub fn size(&self) -> usize {
        fn walk(body: &[Instr]) -> usize {
            body.iter()
                .map(|i| match i {
                    Instr::Repeat { body, .. } => 1 + walk(body),
                    Instr::Pred { then_body, else_body, .. } => {
                        1 + walk(then_body) + walk(else_body)
                    }
                    _ => 1,
                })
                .sum()
        }
        walk(&self.body)
    }
}

/// FNV-1a over the byte stream the `Hash` impls feed it — a fixed,
/// unkeyed function so [`Kernel::cache_key`] is reproducible run to run.
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

fn operand_reg(op: crate::expr::Operand) -> Option<Reg> {
    match op {
        crate::expr::Operand::Reg(r) => Some(r),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AddrExpr, Operand, PredExpr};
    use crate::instr::AluOp;
    use crate::program::DBuf;

    fn sample() -> Kernel {
        Kernel {
            name: "t".into(),
            body: vec![
                Instr::glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::lane()),
                Instr::Repeat {
                    count: 4,
                    body: vec![
                        Instr::ld_shr(5, AddrExpr::lane()),
                        Instr::Pred {
                            pred: PredExpr::Lt(Operand::Lane, Operand::Imm(2)),
                            then_body: vec![Instr::Alu {
                                op: AluOp::Add,
                                dst: 7,
                                a: Operand::Reg(5),
                                b: Operand::Imm(1),
                            }],
                            else_body: vec![],
                        },
                    ],
                },
                Instr::st_shr(AddrExpr::lane(), Operand::Reg(7)),
            ],
            grid: (2, 1),
            shared_words: 32,
        }
    }

    #[test]
    fn max_reg_traverses_structures() {
        assert_eq!(sample().max_reg(), Some(7));
    }

    #[test]
    fn max_reg_empty_kernel() {
        let k = Kernel { name: "e".into(), body: vec![], grid: (1, 1), shared_words: 0 };
        assert_eq!(k.max_reg(), None);
    }

    #[test]
    fn loop_depth_counts_nesting() {
        assert_eq!(sample().loop_depth(), 1);
        let k = Kernel {
            name: "n".into(),
            body: vec![Instr::Repeat {
                count: 2,
                body: vec![Instr::Repeat { count: 2, body: vec![Instr::Sync] }],
            }],
            grid: (1, 1),
            shared_words: 0,
        };
        assert_eq!(k.loop_depth(), 2);
    }

    #[test]
    fn size_counts_all_nodes() {
        // glb_to_shr + repeat + ld_shr + pred + alu + st_shr = 6
        assert_eq!(sample().size(), 6);
    }

    #[test]
    fn cache_key_ignores_name_but_sees_structure() {
        let k = sample();
        let mut renamed = k.clone();
        renamed.name = "totally-different".into();
        assert_eq!(k.cache_key(), renamed.cache_key(), "name must not affect the key");

        // Mutating one instruction changes the key.
        let mut mutated = k.clone();
        mutated.body[2] = Instr::st_shr(AddrExpr::lane(), Operand::Reg(6));
        assert_ne!(k.cache_key(), mutated.cache_key(), "instr mutation must change the key");

        // A mutation deep inside a nested body changes the key too.
        let mut deep = k.clone();
        if let Instr::Repeat { body, .. } = &mut deep.body[1] {
            if let Instr::Pred { then_body, .. } = &mut body[1] {
                then_body[0] =
                    Instr::Alu { op: AluOp::Sub, dst: 7, a: Operand::Reg(5), b: Operand::Imm(1) };
            }
        }
        assert_ne!(k.cache_key(), deep.cache_key(), "nested mutation must change the key");

        // Grid and shared footprint are part of the key.
        let mut regrid = k.clone();
        regrid.grid = (4, 1);
        assert_ne!(k.cache_key(), regrid.cache_key());
        let mut reshared = k.clone();
        reshared.shared_words = 64;
        assert_ne!(k.cache_key(), reshared.cache_key());
    }

    #[test]
    fn cache_key_is_deterministic() {
        // FNV-1a is unkeyed: the same kernel hashes identically in every
        // process of the same build (no per-process hasher seeding).
        let a = sample().cache_key();
        let b = sample().cache_key();
        assert_eq!(a, b);
    }

    #[test]
    fn max_reg_sees_address_registers() {
        let k = Kernel {
            name: "a".into(),
            body: vec![Instr::ld_shr(0, AddrExpr::reg(9))],
            grid: (1, 1),
            shared_words: 1,
        };
        assert_eq!(k.max_reg(), Some(9));
    }
}
