//! A kernel: the instruction body every thread block executes.
//!
//! Following the model, a kernel launch names `k` thread blocks; each runs
//! on one (virtual) multiprocessor with `b` lockstep cores and a private
//! shared memory of `shared_words ≤ M` words.  Blocks are distinguished
//! only by the `Block` index visible in expressions — the body is SPMD.

use crate::instr::Instr;
use crate::Reg;

/// A kernel definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Name for diagnostics and pseudocode rendering.
    pub name: String,
    /// The SPMD instruction body.
    pub body: Vec<Instr>,
    /// Launch grid `(gx, gy)`: `gx·gy` thread blocks.  A block's linear
    /// index `id` decomposes as `x = id mod gx`, `y = id / gx` — the
    /// values of the `Block`/`BlockY` operands.
    pub grid: (u64, u64),
    /// Shared-memory words `m` each block uses (drives occupancy
    /// `ℓ = min(⌊M/m⌋, H)` and is checked against `M`).
    pub shared_words: u64,
}

impl Kernel {
    /// Total thread blocks `k = gx·gy`.
    #[inline]
    pub fn blocks(&self) -> u64 {
        self.grid.0 * self.grid.1
    }

    /// Highest register index referenced anywhere in the body, if any.
    pub fn max_reg(&self) -> Option<Reg> {
        fn walk(body: &[Instr]) -> Option<Reg> {
            let mut max: Option<Reg> = None;
            let mut bump = |r: Option<Reg>| {
                max = match (max, r) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                }
            };
            for i in body {
                match i {
                    Instr::Alu { dst, a, b, .. } => {
                        bump(Some(*dst));
                        bump(operand_reg(*a));
                        bump(operand_reg(*b));
                    }
                    Instr::Mov { dst, src } => {
                        bump(Some(*dst));
                        bump(operand_reg(*src));
                    }
                    Instr::GlbToShr { shared, global } => {
                        bump(shared.max_reg());
                        bump(global.offset.max_reg());
                    }
                    Instr::ShrToGlb { global, shared } => {
                        bump(shared.max_reg());
                        bump(global.offset.max_reg());
                    }
                    Instr::LdShr { dst, shared } => {
                        bump(Some(*dst));
                        bump(shared.max_reg());
                    }
                    Instr::StShr { shared, src } => {
                        bump(shared.max_reg());
                        bump(operand_reg(*src));
                    }
                    Instr::Pred { pred, then_body, else_body } => {
                        let (a, b) = pred.operands();
                        bump(operand_reg(a));
                        bump(operand_reg(b));
                        bump(walk(then_body));
                        bump(walk(else_body));
                    }
                    Instr::Repeat { body, .. } => bump(walk(body)),
                    Instr::Sync => {}
                }
            }
            max
        }
        walk(&self.body)
    }

    /// Maximum loop nesting depth in the body.
    pub fn loop_depth(&self) -> usize {
        fn walk(body: &[Instr]) -> usize {
            body.iter()
                .map(|i| match i {
                    Instr::Repeat { body, .. } => 1 + walk(body),
                    Instr::Pred { then_body, else_body, .. } => {
                        walk(then_body).max(walk(else_body))
                    }
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        }
        walk(&self.body)
    }

    /// Number of instruction nodes (structural size, not trip-count
    /// weighted — the analyser computes the model's `tᵢ`).
    pub fn size(&self) -> usize {
        fn walk(body: &[Instr]) -> usize {
            body.iter()
                .map(|i| match i {
                    Instr::Repeat { body, .. } => 1 + walk(body),
                    Instr::Pred { then_body, else_body, .. } => {
                        1 + walk(then_body) + walk(else_body)
                    }
                    _ => 1,
                })
                .sum()
        }
        walk(&self.body)
    }
}

fn operand_reg(op: crate::expr::Operand) -> Option<Reg> {
    match op {
        crate::expr::Operand::Reg(r) => Some(r),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AddrExpr, Operand, PredExpr};
    use crate::instr::AluOp;
    use crate::program::DBuf;

    fn sample() -> Kernel {
        Kernel {
            name: "t".into(),
            body: vec![
                Instr::glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::lane()),
                Instr::Repeat {
                    count: 4,
                    body: vec![
                        Instr::ld_shr(5, AddrExpr::lane()),
                        Instr::Pred {
                            pred: PredExpr::Lt(Operand::Lane, Operand::Imm(2)),
                            then_body: vec![Instr::Alu {
                                op: AluOp::Add,
                                dst: 7,
                                a: Operand::Reg(5),
                                b: Operand::Imm(1),
                            }],
                            else_body: vec![],
                        },
                    ],
                },
                Instr::st_shr(AddrExpr::lane(), Operand::Reg(7)),
            ],
            grid: (2, 1),
            shared_words: 32,
        }
    }

    #[test]
    fn max_reg_traverses_structures() {
        assert_eq!(sample().max_reg(), Some(7));
    }

    #[test]
    fn max_reg_empty_kernel() {
        let k = Kernel { name: "e".into(), body: vec![], grid: (1, 1), shared_words: 0 };
        assert_eq!(k.max_reg(), None);
    }

    #[test]
    fn loop_depth_counts_nesting() {
        assert_eq!(sample().loop_depth(), 1);
        let k = Kernel {
            name: "n".into(),
            body: vec![Instr::Repeat {
                count: 2,
                body: vec![Instr::Repeat { count: 2, body: vec![Instr::Sync] }],
            }],
            grid: (1, 1),
            shared_words: 0,
        };
        assert_eq!(k.loop_depth(), 2);
    }

    #[test]
    fn size_counts_all_nodes() {
        // glb_to_shr + repeat + ld_shr + pred + alu + st_shr = 6
        assert_eq!(sample().size(), 6);
    }

    #[test]
    fn max_reg_sees_address_registers() {
        let k = Kernel {
            name: "a".into(),
            body: vec![Instr::ld_shr(0, AddrExpr::reg(9))],
            grid: (1, 1),
            shared_words: 1,
        };
        assert_eq!(k.max_reg(), Some(9));
    }
}
