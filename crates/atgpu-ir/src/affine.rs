//! Lowered affine address form and the lowering pass.
//!
//! Almost every GPU kernel addresses memory affinely in the lane index,
//! block index and loop counters — `A[i·b + j]`, `tile[t₀·n + j]`, etc.
//! [`lower`] compiles an [`AddrExpr`] tree into an [`AffineAddr`] record
//! `base + cL·lane + cB·block + Σ c_d·loop_d + cR·reg`, which the simulator
//! evaluates with a handful of multiplies per warp (the block/loop parts
//! are folded **once per warp instruction**, leaving a single
//! multiply-add per lane), and which the analyser can reason about in
//! closed form (coalescing by residue classes instead of enumerating every
//! thread block).
//!
//! Non-affine shapes (products of two variables, two distinct registers)
//! stay as trees and are interpreted — correct, just slower and outside
//! the analyser's closed forms.

use crate::expr::AddrExpr;
use crate::{Reg, MAX_LOOP_DEPTH};

/// An affine address `base + lane·cL + block·cB + Σ_d loop_d·c_d
/// [+ reg·cR]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AffineAddr {
    /// Constant term.
    pub base: i64,
    /// Coefficient of the lane index.
    pub lane: i64,
    /// Coefficient of the block X index.
    pub block: i64,
    /// Coefficient of the block Y index.
    pub block_y: i64,
    /// Coefficients of the enclosing-loop counters, outermost first.
    pub loops: [i64; MAX_LOOP_DEPTH],
    /// Optional data-dependent term: `(register, coefficient)`.
    pub reg: Option<(Reg, i64)>,
}

impl AffineAddr {
    /// The zero address.
    pub const ZERO: AffineAddr = AffineAddr {
        base: 0,
        lane: 0,
        block: 0,
        block_y: 0,
        loops: [0; MAX_LOOP_DEPTH],
        reg: None,
    };

    /// A constant address.
    pub fn constant(v: i64) -> Self {
        AffineAddr { base: v, ..Self::ZERO }
    }

    /// Folds the block and loop terms into a single scalar, leaving only
    /// the per-lane parts.  Call once per warp instruction, then evaluate
    /// each lane as `folded + lane·cL (+ reg·cR)`.
    #[inline]
    pub fn fold_warp(&self, block: (i64, i64), loops: &[u32]) -> i64 {
        let mut v = self.base + self.block * block.0 + self.block_y * block.1;
        for (d, &c) in self.loops.iter().enumerate() {
            if c != 0 {
                v += c * loops.get(d).copied().unwrap_or(0) as i64;
            }
        }
        v
    }

    /// Evaluates the address for one lane given the warp-folded scalar
    /// from [`AffineAddr::fold_warp`].
    #[inline]
    pub fn lane_addr(&self, folded: i64, lane: i64, read_reg: impl FnOnce(Reg) -> i64) -> i64 {
        let mut v = folded + self.lane * lane;
        if let Some((r, c)) = self.reg {
            v += c * read_reg(r);
        }
        v
    }

    /// Full evaluation (convenience for tests and cold paths).
    pub fn eval(
        &self,
        lane: i64,
        block: (i64, i64),
        loops: &[u32],
        read_reg: impl FnOnce(Reg) -> i64,
    ) -> i64 {
        self.lane_addr(self.fold_warp(block, loops), lane, read_reg)
    }

    /// True when the address does not depend on register values, so it can
    /// be analysed statically.
    #[inline]
    pub fn is_static(&self) -> bool {
        self.reg.is_none()
    }

    /// True when shifting the block index leaves every lane's address in
    /// the same position **modulo `b`**: the block (and block-Y)
    /// coefficients are multiples of `b` and the address is static.
    ///
    /// For such addresses the per-warp access *shape* — coalesced
    /// transaction count, bank-conflict pattern — is identical for every
    /// thread block (loop counters may still vary it per iteration, but
    /// identically in each block).  This is the invariance the simulator's
    /// timing-replay cache keys on.
    #[inline]
    pub fn is_block_invariant_mod(&self, b: u64) -> bool {
        let bi = b as i64;
        self.is_static()
            && bi > 0
            && self.block.rem_euclid(bi) == 0
            && self.block_y.rem_euclid(bi) == 0
    }

    /// True when the warp-folded base residue mod `b` is a compile-time
    /// constant: [`AffineAddr::is_block_invariant_mod`] *and* every loop
    /// coefficient is a multiple of `b`.  Such sites have one conflict
    /// degree / transaction count for the whole launch.
    #[inline]
    pub fn is_residue_invariant_mod(&self, b: u64) -> bool {
        let bi = b as i64;
        self.is_block_invariant_mod(b) && self.loops.iter().all(|&c| c.rem_euclid(bi) == 0)
    }

    /// Bank-conflict serialisation degree of a full warp (`b` active
    /// lanes on `b` banks), or `None` when the address reads a register
    /// (data-dependent).
    ///
    /// With lane stride `cL`: stride 0 broadcasts (degree 1); otherwise
    /// the `b` lane addresses are distinct and lanes `l₁, l₂` collide iff
    /// `cL·(l₁−l₂) ≡ 0 (mod b)`, putting `gcd(|cL| mod b, b)` distinct
    /// addresses in the worst bank.
    #[inline]
    pub fn full_warp_conflict_degree(&self, b: u64) -> Option<u64> {
        if !self.is_static() {
            return None;
        }
        if self.lane == 0 {
            return Some(1);
        }
        Some(gcd(self.lane.unsigned_abs() % b, b).clamp(1, b))
    }

    fn checked_add(self, other: AffineAddr) -> Option<AffineAddr> {
        let reg = match (self.reg, other.reg) {
            (None, r) | (r, None) => r,
            (Some((r1, c1)), Some((r2, c2))) if r1 == r2 => Some((r1, c1.checked_add(c2)?)),
            _ => return None, // two distinct registers: not our affine form
        };
        let mut loops = [0i64; MAX_LOOP_DEPTH];
        for (slot, (a, b)) in loops.iter_mut().zip(self.loops.iter().zip(&other.loops)) {
            *slot = a.checked_add(*b)?;
        }
        Some(AffineAddr {
            base: self.base.checked_add(other.base)?,
            lane: self.lane.checked_add(other.lane)?,
            block: self.block.checked_add(other.block)?,
            block_y: self.block_y.checked_add(other.block_y)?,
            loops,
            reg,
        })
    }

    fn negate(mut self) -> AffineAddr {
        self.base = -self.base;
        self.lane = -self.lane;
        self.block = -self.block;
        self.block_y = -self.block_y;
        for c in &mut self.loops {
            *c = -*c;
        }
        if let Some((_, c)) = &mut self.reg {
            *c = -*c;
        }
        self
    }

    fn scale(mut self, k: i64) -> Option<AffineAddr> {
        self.base = self.base.checked_mul(k)?;
        self.lane = self.lane.checked_mul(k)?;
        self.block = self.block.checked_mul(k)?;
        self.block_y = self.block_y.checked_mul(k)?;
        for c in &mut self.loops {
            *c = c.checked_mul(k)?;
        }
        if let Some((_, c)) = &mut self.reg {
            *c = c.checked_mul(k)?;
        }
        Some(self)
    }

    /// True when every coefficient is zero (a pure constant).
    fn is_const(&self) -> bool {
        self.lane == 0
            && self.block == 0
            && self.block_y == 0
            && self.loops.iter().all(|&c| c == 0)
            && self.reg.is_none_or(|(_, c)| c == 0)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Number of distinct memory blocks (size-`b` aligned word groups)
/// touched by the monotone address sequence `{base + stride·lane : lane ∈
/// [0, lanes)}`.  Depends on `base` only through `base mod b`, which the
/// analyser and the simulator's compile-time transaction tables both
/// exploit.
pub fn lane_span_blocks(base: i64, stride: i64, lanes: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    if lanes == 0 {
        return 0;
    }
    if stride == 0 {
        return 1;
    }
    // Addresses are monotone in lane, so distinct floor-quotients can be
    // counted by scanning for transitions.
    let mut distinct = 1u64;
    let mut prev = (base as i128).div_euclid(b as i128);
    for lane in 1..lanes {
        let addr = base as i128 + stride as i128 * lane as i128;
        let q = addr.div_euclid(b as i128);
        if q != prev {
            distinct += 1;
            prev = q;
        }
    }
    distinct
}

/// Number of distinct memory blocks touched by the address set
/// `{base + stride·lane : lane active in mask}` — the **masked-affine**
/// generalisation of [`lane_span_blocks`] (which is the `mask = all
/// lanes` case).  Addresses are monotone in lane order, so distinct
/// floor-quotients are counted by scanning active lanes for transitions;
/// an empty mask touches no blocks.
pub fn masked_span_blocks(base: i64, stride: i64, mask: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    if mask == 0 {
        return 0;
    }
    if stride == 0 {
        return 1;
    }
    let mut distinct = 0u64;
    let mut prev = 0i128;
    let mut first = true;
    let mut m = mask;
    while m != 0 {
        let lane = m.trailing_zeros();
        m &= m - 1;
        let q = (base as i128 + stride as i128 * lane as i128).div_euclid(b as i128);
        if first || q != prev {
            distinct += 1;
            prev = q;
            first = false;
        }
    }
    distinct
}

/// Bank-conflict serialisation degree of the shared access
/// `{stride·lane : lane active in mask}` on `b` banks — the
/// masked-affine counterpart of
/// [`AffineAddr::full_warp_conflict_degree`].  Base-independent: adding
/// a constant rotates every lane's bank uniformly, so only `stride` and
/// the mask matter.  Stride 0 broadcasts one address (degree 1); with a
/// non-zero stride the active lanes' addresses are pairwise distinct, so
/// the degree is the largest number of active lanes sharing a bank.
pub fn masked_conflict_degree(stride: i64, mask: u64, b: u64) -> u64 {
    debug_assert!((1..=64).contains(&b));
    if mask == 0 || stride == 0 {
        return 1;
    }
    let bi = b as i64;
    let mut counts = [0u8; 64];
    let mut degree = 1u64;
    let mut m = mask;
    while m != 0 {
        let lane = m.trailing_zeros();
        m &= m - 1;
        let bank = (stride * i64::from(lane)).rem_euclid(bi) as usize;
        counts[bank] += 1;
        degree = degree.max(u64::from(counts[bank]));
    }
    degree
}

/// Lowers an address tree to affine form.  Returns `None` for non-affine
/// shapes: products of two non-constant subexpressions, or sums touching
/// two distinct registers.
pub fn lower(expr: &AddrExpr) -> Option<AffineAddr> {
    match expr {
        AddrExpr::Const(v) => Some(AffineAddr::constant(*v)),
        AddrExpr::Lane => Some(AffineAddr { lane: 1, ..AffineAddr::ZERO }),
        AddrExpr::Block => Some(AffineAddr { block: 1, ..AffineAddr::ZERO }),
        AddrExpr::BlockY => Some(AffineAddr { block_y: 1, ..AffineAddr::ZERO }),
        AddrExpr::LoopVar(d) => {
            let d = *d as usize;
            if d >= MAX_LOOP_DEPTH {
                return None;
            }
            let mut loops = [0i64; MAX_LOOP_DEPTH];
            loops[d] = 1;
            Some(AffineAddr { loops, ..AffineAddr::ZERO })
        }
        AddrExpr::Reg(r) => Some(AffineAddr { reg: Some((*r, 1)), ..AffineAddr::ZERO }),
        AddrExpr::Add(a, b) => lower(a)?.checked_add(lower(b)?),
        AddrExpr::Sub(a, b) => lower(a)?.checked_add(lower(b)?.negate()),
        AddrExpr::Mul(a, b) => {
            let la = lower(a)?;
            let lb = lower(b)?;
            if la.is_const() {
                lb.scale(la.base)
            } else if lb.is_const() {
                la.scale(lb.base)
            } else {
                None // product of two variables: non-affine
            }
        }
    }
}

/// An address in either compiled form: affine fast path or interpreted
/// tree fall-back.  This is what instructions store after compilation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CompiledAddr {
    /// Affine fast path.
    Affine(AffineAddr),
    /// Interpreted general tree.
    Tree(AddrExpr),
}

impl CompiledAddr {
    /// Compiles a tree, preferring the affine form.
    pub fn compile(expr: AddrExpr) -> Self {
        match lower(&expr) {
            Some(a) => CompiledAddr::Affine(a),
            None => CompiledAddr::Tree(expr),
        }
    }

    /// Evaluates for one lane.
    pub fn eval(
        &self,
        lane: i64,
        block: (i64, i64),
        loops: &[u32],
        read_reg: &mut dyn FnMut(Reg) -> i64,
    ) -> i64 {
        match self {
            CompiledAddr::Affine(a) => a.eval(lane, block, loops, &mut *read_reg),
            CompiledAddr::Tree(t) => t.eval(lane, block, loops, read_reg),
        }
    }

    /// The affine form, if this address has one.
    pub fn as_affine(&self) -> Option<&AffineAddr> {
        match self {
            CompiledAddr::Affine(a) => Some(a),
            CompiledAddr::Tree(_) => None,
        }
    }

    /// True when the address never reads a register.
    pub fn is_static(&self) -> bool {
        match self {
            CompiledAddr::Affine(a) => a.is_static(),
            CompiledAddr::Tree(t) => t.max_reg().is_none(),
        }
    }

    /// Greatest `LoopVar` depth referenced, if any.
    pub fn max_loop_var(&self) -> Option<u8> {
        match self {
            CompiledAddr::Affine(a) => {
                let mut max = None;
                for (d, &c) in a.loops.iter().enumerate() {
                    if c != 0 {
                        max = Some(d as u8);
                    }
                }
                max
            }
            CompiledAddr::Tree(t) => t.max_loop_var(),
        }
    }

    /// Greatest register index referenced, if any.
    pub fn max_reg(&self) -> Option<Reg> {
        match self {
            CompiledAddr::Affine(a) => a.reg.map(|(r, _)| r),
            CompiledAddr::Tree(t) => t.max_reg(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_regs(_: Reg) -> i64 {
        panic!("no register reads expected")
    }

    #[test]
    fn lower_linear_in_lane_and_block() {
        let e = AddrExpr::block() * 32 + AddrExpr::lane();
        let a = lower(&e).unwrap();
        assert_eq!(a.block, 32);
        assert_eq!(a.lane, 1);
        assert_eq!(a.base, 0);
    }

    #[test]
    fn lower_folds_constants() {
        let e = (AddrExpr::c(3) + 4) * 2 + AddrExpr::lane();
        let a = lower(&e).unwrap();
        assert_eq!(a.base, 14);
        assert_eq!(a.lane, 1);
    }

    #[test]
    fn lower_loop_vars() {
        let e = AddrExpr::loop_var(0) * 100 + AddrExpr::loop_var(1) * 10 + AddrExpr::lane();
        let a = lower(&e).unwrap();
        assert_eq!(a.loops[0], 100);
        assert_eq!(a.loops[1], 10);
    }

    #[test]
    fn lower_register_linear() {
        let e = AddrExpr::reg(2) * 4 + 7;
        let a = lower(&e).unwrap();
        assert_eq!(a.reg, Some((2, 4)));
        assert_eq!(a.base, 7);
    }

    #[test]
    fn lower_same_register_twice_merges() {
        let e = AddrExpr::reg(2) + AddrExpr::reg(2);
        let a = lower(&e).unwrap();
        assert_eq!(a.reg, Some((2, 2)));
    }

    #[test]
    fn lower_rejects_two_registers() {
        let e = AddrExpr::reg(1) + AddrExpr::reg(2);
        assert!(lower(&e).is_none());
    }

    #[test]
    fn lower_rejects_variable_product() {
        let e = AddrExpr::lane() * AddrExpr::block();
        assert!(lower(&e).is_none());
    }

    #[test]
    fn lower_subtraction() {
        let e = AddrExpr::lane() - AddrExpr::c(1);
        let a = lower(&e).unwrap();
        assert_eq!(a.base, -1);
        assert_eq!(a.lane, 1);
    }

    #[test]
    fn lower_deep_loop_var_rejected() {
        let e = AddrExpr::loop_var(MAX_LOOP_DEPTH as u8);
        assert!(lower(&e).is_none());
    }

    #[test]
    fn affine_eval_matches_tree_eval() {
        let e = AddrExpr::block() * 64 + AddrExpr::loop_var(0) * 8 + AddrExpr::lane() * 2 + 5;
        let a = lower(&e).unwrap();
        for lane in 0..4 {
            for block in 0..4 {
                for it in 0..3u32 {
                    assert_eq!(
                        a.eval(lane, (block, 0), &[it], |_| 0),
                        e.eval(lane, (block, 0), &[it], &mut no_regs)
                    );
                }
            }
        }
    }

    #[test]
    fn fold_warp_then_lane() {
        let e = AddrExpr::block() * 64 + AddrExpr::lane() * 2;
        let a = lower(&e).unwrap();
        let folded = a.fold_warp((3, 0), &[]);
        assert_eq!(folded, 192);
        assert_eq!(a.lane_addr(folded, 5, |_| 0), 202);
    }

    #[test]
    fn compiled_addr_prefers_affine() {
        let c = CompiledAddr::compile(AddrExpr::lane() + 1);
        assert!(matches!(c, CompiledAddr::Affine(_)));
        let c = CompiledAddr::compile(AddrExpr::lane() * AddrExpr::lane());
        assert!(matches!(c, CompiledAddr::Tree(_)));
    }

    #[test]
    fn compiled_tree_eval_matches() {
        let e = AddrExpr::lane() * AddrExpr::lane();
        let c = CompiledAddr::compile(e.clone());
        let mut rr = |_: Reg| 0;
        assert_eq!(c.eval(7, (0, 0), &[], &mut rr), 49);
    }

    #[test]
    fn compiled_static_detection() {
        assert!(CompiledAddr::compile(AddrExpr::lane()).is_static());
        assert!(!CompiledAddr::compile(AddrExpr::reg(0)).is_static());
        assert!(!CompiledAddr::compile(AddrExpr::reg(0) * AddrExpr::reg(0)).is_static());
    }

    #[test]
    fn compiled_max_loop_var() {
        let c = CompiledAddr::compile(AddrExpr::loop_var(1) + AddrExpr::lane());
        assert_eq!(c.max_loop_var(), Some(1));
        let c = CompiledAddr::compile(AddrExpr::lane());
        assert_eq!(c.max_loop_var(), None);
    }

    #[test]
    fn scale_overflow_is_rejected_not_wrapped() {
        let e = AddrExpr::lane() * i64::MAX + AddrExpr::lane() * i64::MAX;
        assert!(lower(&e).is_none()); // coefficient addition would overflow
    }

    #[test]
    fn block_invariance_classification() {
        let b = 32u64;
        // i·32 + j: block stride is a whole number of memory blocks.
        let a = lower(&(AddrExpr::block() * 32 + AddrExpr::lane())).unwrap();
        assert!(a.is_block_invariant_mod(b));
        assert!(a.is_residue_invariant_mod(b));
        // i·33 + j: the warp's base residue shifts with the block index.
        let a = lower(&(AddrExpr::block() * 33 + AddrExpr::lane())).unwrap();
        assert!(!a.is_block_invariant_mod(b));
        // Negative multiples of b still qualify.
        let a = lower(&(AddrExpr::c(0) - AddrExpr::block() * 64 + AddrExpr::lane())).unwrap();
        assert!(a.is_block_invariant_mod(b));
        // Loop stride 8 varies the residue per iteration (but identically
        // per block): block-invariant, not residue-invariant.
        let a = lower(&(AddrExpr::block() * 32 + AddrExpr::loop_var(0) * 8 + AddrExpr::lane()))
            .unwrap();
        assert!(a.is_block_invariant_mod(b));
        assert!(!a.is_residue_invariant_mod(b));
        // Register term: never invariant.
        let a = lower(&(AddrExpr::reg(0) + AddrExpr::lane())).unwrap();
        assert!(!a.is_block_invariant_mod(b));
    }

    #[test]
    fn full_warp_conflict_degree_matches_enumeration() {
        let b = 32u64;
        for stride in -40i64..=40 {
            let a = lower(&(AddrExpr::lane() * stride + 7)).unwrap();
            let fast = a.full_warp_conflict_degree(b).unwrap();
            // Enumerate distinct addresses per bank, max over banks.
            let mut per_bank: Vec<Vec<i64>> = vec![Vec::new(); b as usize];
            for l in 0..b as i64 {
                let addr = 7 + stride * l;
                per_bank[addr.rem_euclid(b as i64) as usize].push(addr);
            }
            let slow = per_bank
                .iter_mut()
                .map(|v| {
                    v.sort_unstable();
                    v.dedup();
                    v.len() as u64
                })
                .max()
                .unwrap()
                .max(1);
            assert_eq!(fast, slow, "stride={stride}");
        }
        let a = lower(&AddrExpr::reg(3)).unwrap();
        assert_eq!(a.full_warp_conflict_degree(b), None);
    }

    #[test]
    fn masked_span_blocks_agrees_with_full_and_enumeration() {
        // Full mask reduces to lane_span_blocks.
        for (base, stride, b) in [(0i64, 1i64, 32u64), (7, 3, 32), (5, -2, 16), (0, 0, 8)] {
            let full = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
            assert_eq!(
                masked_span_blocks(base, stride, full, b),
                lane_span_blocks(base, stride, b, b),
                "base={base} stride={stride}"
            );
        }
        // Arbitrary masks against brute-force distinct quotients.
        for (base, stride, mask, b) in
            [(3i64, 2i64, 0b1010_1010u64, 8u64), (0, 5, 0b1001, 8), (-4, -3, 0b110110, 8)]
        {
            let mut qs: Vec<i64> = (0..64)
                .filter(|l| mask >> l & 1 == 1)
                .map(|l| (base + stride * l).div_euclid(b as i64))
                .collect();
            qs.sort_unstable();
            qs.dedup();
            assert_eq!(masked_span_blocks(base, stride, mask, b), qs.len() as u64);
        }
        assert_eq!(masked_span_blocks(0, 1, 0, 32), 0);
    }

    #[test]
    fn masked_conflict_degree_matches_enumeration() {
        let b = 16u64;
        for stride in -20i64..=20 {
            for mask in [0x1u64, 0xFFFF, 0xAAAA, 0x00FF, 0x8421, 0x7] {
                let fast = masked_conflict_degree(stride, mask, b);
                // Distinct addresses per bank over active lanes, max over
                // banks (duplicates broadcast).
                let mut per_bank: Vec<Vec<i64>> = vec![Vec::new(); b as usize];
                for l in 0..b as i64 {
                    if mask >> l & 1 == 1 {
                        let addr = stride * l;
                        per_bank[addr.rem_euclid(b as i64) as usize].push(addr);
                    }
                }
                let slow = per_bank
                    .iter_mut()
                    .map(|v| {
                        v.sort_unstable();
                        v.dedup();
                        v.len() as u64
                    })
                    .max()
                    .unwrap()
                    .max(1);
                assert_eq!(fast, slow, "stride={stride} mask={mask:#x}");
            }
        }
        assert_eq!(masked_conflict_degree(3, 0, 16), 1);
    }

    #[test]
    fn lane_span_blocks_matches_enumeration() {
        for (base, stride, lanes, b) in [
            (0i64, 1i64, 32u64, 32u64),
            (1, 1, 32, 32),
            (5, -3, 16, 8),
            (0, 0, 32, 32),
            (7, 9, 64, 64),
        ] {
            let fast = lane_span_blocks(base, stride, lanes, b);
            let mut qs: Vec<i64> =
                (0..lanes as i64).map(|l| (base + stride * l).div_euclid(b as i64)).collect();
            qs.sort_unstable();
            qs.dedup();
            assert_eq!(fast, qs.len() as u64, "base={base} stride={stride}");
        }
        assert_eq!(lane_span_blocks(0, 1, 0, 32), 0);
    }
}
