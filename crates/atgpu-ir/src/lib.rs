//! # atgpu-ir — kernel IR and pseudocode DSL for the ATGPU model
//!
//! The paper extends AGPU's pseudocode with explicit data-transfer
//! operators:
//!
//! * `W` — host↔device transfer (e.g. `a W A` copies host vector `A` into
//!   device-global `a`);
//! * `⇐` — global↔shared memory movement (a warp-wide block access);
//! * `←` — shared-memory/register access.
//!
//! This crate gives those operators a machine-checkable form: a small
//! register-machine IR executed in lockstep by the `b` cores of a
//! multiprocessor.  The same IR artefact is consumed by
//!
//! * `atgpu-analyze`, which derives the model metrics (`tᵢ`, `qᵢ`, spaces,
//!   transfer words) by abstract interpretation, and
//! * `atgpu-sim`, which executes it functionally and temporally on the
//!   simulated GPU —
//!
//! mirroring how the paper hand-analyses the same CUDA kernel it measures.
//!
//! ## Structure
//!
//! * [`expr`] — operands, per-lane address expressions, predicates;
//! * [`affine`] — the lowered affine address form the analyser and
//!   simulator evaluate (an actual compiler pass lives in
//!   [`affine::lower`]);
//! * [`instr`] — the instruction set (`⇐`/`←` become typed instructions;
//!   divergence is a structural [`instr::Instr::Pred`] whose both arms
//!   execute, exactly as the model prescribes);
//! * [`kernel`] — a kernel: one instruction body run by every thread block;
//! * [`program`] — host-level rounds: `W` transfers, kernel launches,
//!   device allocations (bounded by `G` at validation);
//! * [`builder`] — fluent construction API;
//! * [`validate`] — structural validation;
//! * [`pretty`] — renders programs back into the paper's pseudocode
//!   notation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod affine;
pub mod builder;
pub mod error;
pub mod expr;
pub mod instr;
pub mod kernel;
pub mod lanemask;
pub mod pretty;
pub mod program;
pub mod validate;

pub use affine::AffineAddr;
pub use builder::{KernelBuilder, ProgramBuilder};
pub use error::{IrError, ShardPlanError};
pub use expr::{AddrExpr, Operand, PredExpr};
pub use instr::{AluOp, GlobalRef, Instr};
pub use kernel::Kernel;
pub use lanemask::LaneValues;
pub use program::{
    DBuf, DeviceAlloc, HBuf, HostBufDecl, HostBufRole, HostStep, Program, Round, Shard,
};

/// Register index within a lane's register file.
pub type Reg = u8;

/// Number of registers per lane.  GPUs typically give each thread tens of
/// registers out of the MP's register file; 48 is enough for every kernel
/// in the workload library (matrix multiplication keeps a `b`-row
/// accumulator strip in shared memory, not registers).
pub const MAX_REGS: u8 = 48;

/// Maximum loop nesting depth.  Four levels cover every kernel in the
/// library with room to spare, and a fixed bound keeps affine address
/// vectors inline and allocation-free on the hot path.
pub const MAX_LOOP_DEPTH: usize = 4;

/// Number of streams a program may address per device (stream ids
/// `0..MAX_STREAMS`).  Stream 0 is the default/compute stream; double
/// buffering needs two, and a fixed small bound keeps the per-round
/// stream timelines inline.
pub const MAX_STREAMS: u32 = 8;
