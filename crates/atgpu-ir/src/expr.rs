//! Operands, address expressions and predicates.
//!
//! Every expression is evaluated **per lane**: the `b` cores of an MP run
//! in lockstep, and an expression like `Lane + Block·b` produces `b`
//! different values, one per core.  Expressions may reference:
//!
//! * `Lane` — the core index `j ∈ [0, b)` within the MP (the paper's
//!   `c_{i,j}` subscript);
//! * `Block` — the thread-block index `i` (the paper's `mpᵢ` subscript on
//!   the perfect machine);
//! * `LoopVar(d)` — the zero-based iteration counter of the `d`-th
//!   enclosing [`crate::instr::Instr::Repeat`];
//! * `Reg(r)` — the lane's register `r`, enabling data-dependent
//!   addressing (histogram bins, gather/scatter).

use crate::Reg;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A scalar operand of an ALU instruction or predicate, evaluated per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Lane register `r`.
    Reg(Reg),
    /// Immediate constant.
    Imm(i64),
    /// The lane index `j ∈ [0, b)`.
    Lane,
    /// The thread-block X index (for 1-D launches, *the* block index).
    Block,
    /// The thread-block Y index (0 for 1-D launches).
    BlockY,
    /// Iteration counter of the `d`-th enclosing loop (0 = outermost
    /// enclosing the reference).
    LoopVar(u8),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "r{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::Lane => write!(f, "j"),
            Operand::Block => write!(f, "i"),
            Operand::BlockY => write!(f, "iy"),
            Operand::LoopVar(d) => write!(f, "t{d}"),
        }
    }
}

/// A per-lane integer address expression.
///
/// Build expressions with the arithmetic operators — `AddrExpr::lane() +
/// AddrExpr::block() * 32` — or the constructors.  The analyser and the
/// simulator never evaluate these trees directly on the hot path: the
/// [`crate::affine::lower`] pass compiles them into [`crate::AffineAddr`]
/// records first, falling back to tree interpretation only for genuinely
/// non-affine shapes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AddrExpr {
    /// Constant.
    Const(i64),
    /// Lane index `j`.
    Lane,
    /// Thread-block X index `i`.
    Block,
    /// Thread-block Y index (0 for 1-D launches).
    BlockY,
    /// Enclosing-loop iteration counter.
    LoopVar(u8),
    /// Lane register value (data-dependent addressing).
    Reg(Reg),
    /// Sum.
    Add(Box<AddrExpr>, Box<AddrExpr>),
    /// Difference.
    Sub(Box<AddrExpr>, Box<AddrExpr>),
    /// Product.
    Mul(Box<AddrExpr>, Box<AddrExpr>),
}

impl AddrExpr {
    /// The lane index `j`.
    pub fn lane() -> Self {
        AddrExpr::Lane
    }
    /// The block X index `i`.
    pub fn block() -> Self {
        AddrExpr::Block
    }
    /// The block Y index.
    pub fn block_y() -> Self {
        AddrExpr::BlockY
    }
    /// A constant.
    pub fn c(v: i64) -> Self {
        AddrExpr::Const(v)
    }
    /// The `d`-th enclosing loop counter.
    pub fn loop_var(d: u8) -> Self {
        AddrExpr::LoopVar(d)
    }
    /// A register value.
    pub fn reg(r: Reg) -> Self {
        AddrExpr::Reg(r)
    }

    /// Interprets the tree for one lane.  `block` is the `(x, y)` block
    /// index pair; `loops` holds the current iteration of each enclosing
    /// loop, outermost first; `read_reg` supplies register values (the
    /// analyser passes a closure that reports "unknown").
    pub fn eval(
        &self,
        lane: i64,
        block: (i64, i64),
        loops: &[u32],
        read_reg: &mut dyn FnMut(Reg) -> i64,
    ) -> i64 {
        match self {
            AddrExpr::Const(v) => *v,
            AddrExpr::Lane => lane,
            AddrExpr::Block => block.0,
            AddrExpr::BlockY => block.1,
            AddrExpr::LoopVar(d) => loops.get(*d as usize).copied().unwrap_or(0) as i64,
            AddrExpr::Reg(r) => read_reg(*r),
            AddrExpr::Add(a, b) => {
                a.eval(lane, block, loops, read_reg) + b.eval(lane, block, loops, read_reg)
            }
            AddrExpr::Sub(a, b) => {
                a.eval(lane, block, loops, read_reg) - b.eval(lane, block, loops, read_reg)
            }
            AddrExpr::Mul(a, b) => {
                a.eval(lane, block, loops, read_reg) * b.eval(lane, block, loops, read_reg)
            }
        }
    }

    /// Greatest `LoopVar` depth referenced, if any.
    pub fn max_loop_var(&self) -> Option<u8> {
        match self {
            AddrExpr::LoopVar(d) => Some(*d),
            AddrExpr::Add(a, b) | AddrExpr::Sub(a, b) | AddrExpr::Mul(a, b) => {
                match (a.max_loop_var(), b.max_loop_var()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            _ => None,
        }
    }

    /// Greatest register index referenced, if any.
    pub fn max_reg(&self) -> Option<Reg> {
        match self {
            AddrExpr::Reg(r) => Some(*r),
            AddrExpr::Add(a, b) | AddrExpr::Sub(a, b) | AddrExpr::Mul(a, b) => {
                match (a.max_reg(), b.max_reg()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            _ => None,
        }
    }
}

impl From<i64> for AddrExpr {
    fn from(v: i64) -> Self {
        AddrExpr::Const(v)
    }
}

macro_rules! impl_addr_op {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl $trait for AddrExpr {
            type Output = AddrExpr;
            fn $method(self, rhs: AddrExpr) -> AddrExpr {
                AddrExpr::$variant(Box::new(self), Box::new(rhs))
            }
        }
        impl $trait<i64> for AddrExpr {
            type Output = AddrExpr;
            fn $method(self, rhs: i64) -> AddrExpr {
                AddrExpr::$variant(Box::new(self), Box::new(AddrExpr::Const(rhs)))
            }
        }
        impl $trait<AddrExpr> for i64 {
            type Output = AddrExpr;
            fn $method(self, rhs: AddrExpr) -> AddrExpr {
                AddrExpr::$variant(Box::new(AddrExpr::Const(self)), Box::new(rhs))
            }
        }
    };
}

impl_addr_op!(Add, add, Add);
impl_addr_op!(Sub, sub, Sub);
impl_addr_op!(Mul, mul, Mul);

impl fmt::Display for AddrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrExpr::Const(v) => write!(f, "{v}"),
            AddrExpr::Lane => write!(f, "j"),
            AddrExpr::Block => write!(f, "i"),
            AddrExpr::BlockY => write!(f, "iy"),
            AddrExpr::LoopVar(d) => write!(f, "t{d}"),
            AddrExpr::Reg(r) => write!(f, "r{r}"),
            AddrExpr::Add(a, b) => write!(f, "({a} + {b})"),
            AddrExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            AddrExpr::Mul(a, b) => write!(f, "{a}·{b}"),
        }
    }
}

/// A per-lane boolean predicate guarding a divergent region.
///
/// Predicates over `Lane`, `Block`, `LoopVar` and immediates are *static*:
/// the analyser can evaluate them without running the program.  Predicates
/// reading registers are data-dependent; the analyser then assumes the
/// model's worst case (all lanes take both paths — which the timing rule
/// charges anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredExpr {
    /// `a < b`.
    Lt(Operand, Operand),
    /// `a ≤ b`.
    Le(Operand, Operand),
    /// `a = b`.
    Eq(Operand, Operand),
    /// `a ≠ b`.
    Ne(Operand, Operand),
}

impl PredExpr {
    /// The two operands.
    pub fn operands(&self) -> (Operand, Operand) {
        match *self {
            PredExpr::Lt(a, b) | PredExpr::Le(a, b) | PredExpr::Eq(a, b) | PredExpr::Ne(a, b) => {
                (a, b)
            }
        }
    }

    /// True when no operand reads a register, so the predicate value is
    /// known from `(lane, block, loops)` alone.
    pub fn is_static(&self) -> bool {
        let (a, b) = self.operands();
        !matches!(a, Operand::Reg(_)) && !matches!(b, Operand::Reg(_))
    }

    /// Evaluates the predicate for one lane.
    pub fn eval(
        &self,
        lane: i64,
        block: (i64, i64),
        loops: &[u32],
        read_reg: &mut dyn FnMut(Reg) -> i64,
    ) -> bool {
        let ev = |op: Operand, read_reg: &mut dyn FnMut(Reg) -> i64| -> i64 {
            match op {
                Operand::Reg(r) => read_reg(r),
                Operand::Imm(v) => v,
                Operand::Lane => lane,
                Operand::Block => block.0,
                Operand::BlockY => block.1,
                Operand::LoopVar(d) => loops.get(d as usize).copied().unwrap_or(0) as i64,
            }
        };
        match self {
            PredExpr::Lt(a, b) => ev(*a, read_reg) < ev(*b, read_reg),
            PredExpr::Le(a, b) => ev(*a, read_reg) <= ev(*b, read_reg),
            PredExpr::Eq(a, b) => ev(*a, read_reg) == ev(*b, read_reg),
            PredExpr::Ne(a, b) => ev(*a, read_reg) != ev(*b, read_reg),
        }
    }
}

impl fmt::Display for PredExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredExpr::Lt(a, b) => write!(f, "{a} < {b}"),
            PredExpr::Le(a, b) => write!(f, "{a} ≤ {b}"),
            PredExpr::Eq(a, b) => write!(f, "{a} = {b}"),
            PredExpr::Ne(a, b) => write!(f, "{a} ≠ {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_regs(_: Reg) -> i64 {
        panic!("no register reads expected")
    }

    #[test]
    fn eval_affine_combination() {
        // i*32 + j
        let e = AddrExpr::block() * 32 + AddrExpr::lane();
        assert_eq!(e.eval(5, (3, 0), &[], &mut no_regs), 101);
    }

    #[test]
    fn eval_loop_var() {
        let e = AddrExpr::loop_var(0) * 10 + AddrExpr::loop_var(1);
        assert_eq!(e.eval(0, (0, 0), &[4, 7], &mut no_regs), 47);
    }

    #[test]
    fn missing_loop_var_reads_zero() {
        let e = AddrExpr::loop_var(2);
        assert_eq!(e.eval(0, (0, 0), &[1], &mut no_regs), 0);
    }

    #[test]
    fn eval_register_indirect() {
        let e = AddrExpr::reg(3) + 100;
        let mut f = |r: Reg| {
            assert_eq!(r, 3);
            42
        };
        assert_eq!(e.eval(0, (0, 0), &[], &mut f), 142);
    }

    #[test]
    fn eval_subtraction() {
        let e = AddrExpr::lane() - 1;
        assert_eq!(e.eval(0, (0, 0), &[], &mut no_regs), -1);
    }

    #[test]
    fn scalar_on_left() {
        let e = 2 * AddrExpr::lane() + 1;
        assert_eq!(e.eval(10, (0, 0), &[], &mut no_regs), 21);
    }

    #[test]
    fn max_loop_var_finds_deepest() {
        let e = AddrExpr::loop_var(0) + AddrExpr::loop_var(2) * AddrExpr::lane();
        assert_eq!(e.max_loop_var(), Some(2));
        assert_eq!(AddrExpr::lane().max_loop_var(), None);
    }

    #[test]
    fn max_reg_finds_largest() {
        let e = AddrExpr::reg(3) + AddrExpr::reg(7);
        assert_eq!(e.max_reg(), Some(7));
        assert_eq!(AddrExpr::c(1).max_reg(), None);
    }

    #[test]
    fn pred_static_detection() {
        assert!(PredExpr::Lt(Operand::Lane, Operand::Imm(16)).is_static());
        assert!(!PredExpr::Lt(Operand::Reg(0), Operand::Imm(16)).is_static());
        assert!(!PredExpr::Eq(Operand::Lane, Operand::Reg(1)).is_static());
    }

    #[test]
    fn pred_eval_lane_guard() {
        let p = PredExpr::Lt(Operand::Lane, Operand::Imm(16));
        assert!(p.eval(15, (0, 0), &[], &mut no_regs));
        assert!(!p.eval(16, (0, 0), &[], &mut no_regs));
    }

    #[test]
    fn pred_eval_variants() {
        let mut f = |_: Reg| 5;
        assert!(PredExpr::Le(Operand::Imm(5), Operand::Reg(0)).eval(0, (0, 0), &[], &mut f));
        assert!(PredExpr::Eq(Operand::Reg(0), Operand::Imm(5)).eval(0, (0, 0), &[], &mut f));
        assert!(PredExpr::Ne(Operand::Reg(0), Operand::Imm(4)).eval(0, (0, 0), &[], &mut f));
    }

    #[test]
    fn pred_eval_loop_var_operand() {
        let p = PredExpr::Eq(Operand::LoopVar(0), Operand::Imm(2));
        assert!(p.eval(0, (0, 0), &[2], &mut no_regs));
        assert!(!p.eval(0, (0, 0), &[3], &mut no_regs));
    }

    #[test]
    fn display_expressions() {
        let e = AddrExpr::block() * 32 + AddrExpr::lane();
        assert_eq!(e.to_string(), "(i·32 + j)");
        let p = PredExpr::Lt(Operand::Lane, Operand::Imm(4));
        assert_eq!(p.to_string(), "j < 4");
    }
}
