//! Structural validation of kernels and programs.
//!
//! Validation happens in two stages:
//!
//! * [`validate_kernel`] / [`validate_program`] — machine-independent
//!   structure: register ranges, loop depth and scoping, buffer
//!   references, transfer bounds, the model's round discipline (inward
//!   transfers → one launch → outward transfers), and host-buffer
//!   read/write roles;
//! * [`check_against_machine`] — resource limits of a concrete
//!   `atgpu_model::AtgpuMachine`-shaped machine: total device
//!   allocations vs `G` and per-kernel shared usage vs `M`.  (Expressed
//!   over plain `u64`s here to keep this crate dependency-free.)

use crate::error::IrError;
use crate::expr::Operand;
use crate::instr::Instr;
use crate::kernel::Kernel;
use crate::program::{HostBufRole, HostStep, Program};
use crate::{MAX_LOOP_DEPTH, MAX_REGS};

/// Validates one kernel: register range, loop depth, loop-variable
/// scoping, and a non-empty launch.
pub fn validate_kernel(k: &Kernel) -> Result<(), IrError> {
    if k.blocks() == 0 {
        return Err(IrError::ZeroBlocks { kernel: k.name.clone() });
    }
    if let Some(r) = k.max_reg() {
        if r >= MAX_REGS {
            return Err(IrError::RegisterOutOfRange { reg: r, kernel: k.name.clone() });
        }
    }
    let depth = k.loop_depth();
    if depth > MAX_LOOP_DEPTH {
        return Err(IrError::LoopTooDeep { depth, kernel: k.name.clone() });
    }
    check_loop_scope(&k.body, 0, &k.name)
}

fn operand_loop_var(op: Operand) -> Option<u8> {
    match op {
        Operand::LoopVar(d) => Some(d),
        _ => None,
    }
}

fn check_loop_scope(body: &[Instr], depth: usize, kernel: &str) -> Result<(), IrError> {
    let check_var = |v: Option<u8>| -> Result<(), IrError> {
        match v {
            Some(d) if (d as usize) >= depth => Err(IrError::LoopVarOutOfScope {
                var: d,
                enclosing: depth,
                kernel: kernel.to_string(),
            }),
            Some(_) | None => Ok(()),
        }
    };
    for i in body {
        match i {
            Instr::Alu { a, b, .. } => {
                check_var(operand_loop_var(*a))?;
                check_var(operand_loop_var(*b))?;
            }
            Instr::Mov { src, .. } => check_var(operand_loop_var(*src))?,
            Instr::GlbToShr { shared, global } => {
                check_var(shared.max_loop_var())?;
                check_var(global.offset.max_loop_var())?;
            }
            Instr::ShrToGlb { global, shared } => {
                check_var(shared.max_loop_var())?;
                check_var(global.offset.max_loop_var())?;
            }
            Instr::LdShr { shared, .. } => check_var(shared.max_loop_var())?,
            Instr::StShr { shared, src } => {
                check_var(shared.max_loop_var())?;
                check_var(operand_loop_var(*src))?;
            }
            Instr::Pred { pred, then_body, else_body } => {
                let (a, b) = pred.operands();
                check_var(operand_loop_var(a))?;
                check_var(operand_loop_var(b))?;
                check_loop_scope(then_body, depth, kernel)?;
                check_loop_scope(else_body, depth, kernel)?;
            }
            Instr::Repeat { body, .. } => check_loop_scope(body, depth + 1, kernel)?,
            Instr::Sync => {}
        }
    }
    Ok(())
}

/// Validates a whole program: every kernel, buffer references, transfer
/// bounds, round step discipline, and host buffer roles (inputs are
/// read-only; outputs must be written before being read).
pub fn validate_program(p: &Program) -> Result<(), IrError> {
    if p.rounds.is_empty() {
        return Err(IrError::EmptyProgram);
    }

    // Output buffers become readable once written.
    let mut host_written = vec![false; p.host_bufs.len()];

    for (ri, round) in p.rounds.iter().enumerate() {
        // Round discipline: in-transfers (phase 0) -> launch (1) -> out (2).
        let mut phase = 0u8;
        let mut launches = 0usize;
        for step in &round.steps {
            match step {
                HostStep::TransferIn { host, host_off, dev, dev_off, words, device: _, stream } => {
                    check_stream(*stream, ri)?;
                    if phase > 0 {
                        return Err(IrError::StepOrder {
                            round: ri,
                            reason: "host→device transfer after the kernel launch; the model \
                                     transfers inward only at the start of a round"
                                .into(),
                        });
                    }
                    let hb =
                        p.host_buf_words(*host).ok_or(IrError::UnknownHostBuf { buf: host.0 })?;
                    let db =
                        p.device_buf_words(*dev).ok_or(IrError::UnknownDeviceBuf { buf: dev.0 })?;
                    check_range("host", &p.host_bufs[host.0 as usize].name, *host_off, *words, hb)?;
                    check_range(
                        "device",
                        &p.device_allocs[dev.0 as usize].name,
                        *dev_off,
                        *words,
                        db,
                    )?;
                    let decl = &p.host_bufs[host.0 as usize];
                    if decl.role == HostBufRole::Output && !host_written[host.0 as usize] {
                        return Err(IrError::HostBufRole {
                            reason: format!(
                                "round {ri} reads host output buffer `{}` before any \
                                 device→host transfer wrote it",
                                decl.name
                            ),
                        });
                    }
                }
                HostStep::TransferPeer { src, dst, buf, src_off, dst_off, words } => {
                    // Peer copies may appear anywhere in the round (they
                    // distribute inputs before the launch or gather
                    // results after it) and do not advance the phase.
                    if src == dst {
                        return Err(IrError::StepOrder {
                            round: ri,
                            reason: format!("peer transfer from device {src} to itself"),
                        });
                    }
                    let db =
                        p.device_buf_words(*buf).ok_or(IrError::UnknownDeviceBuf { buf: buf.0 })?;
                    let name = &p.device_allocs[buf.0 as usize].name;
                    check_range("device", name, *src_off, *words, db)?;
                    check_range("device", name, *dst_off, *words, db)?;
                }
                HostStep::Launch(k) => {
                    check_launch(k, p, ri, &mut launches, &mut phase)?;
                }
                HostStep::LaunchSharded { kernel, shards } => {
                    check_shard_plan(kernel, shards, ri)?;
                    check_launch(kernel, p, ri, &mut launches, &mut phase)?;
                }
                HostStep::SyncStream { device: _, stream } => {
                    // Syncs are pure ordering points: they may appear
                    // anywhere in the round and do not advance the phase.
                    check_stream(*stream, ri)?;
                }
                HostStep::SyncDevice { .. } => {}
                HostStep::TransferOut {
                    dev,
                    dev_off,
                    host,
                    host_off,
                    words,
                    device: _,
                    stream,
                } => {
                    check_stream(*stream, ri)?;
                    phase = 2;
                    let hb =
                        p.host_buf_words(*host).ok_or(IrError::UnknownHostBuf { buf: host.0 })?;
                    let db =
                        p.device_buf_words(*dev).ok_or(IrError::UnknownDeviceBuf { buf: dev.0 })?;
                    check_range("host", &p.host_bufs[host.0 as usize].name, *host_off, *words, hb)?;
                    check_range(
                        "device",
                        &p.device_allocs[dev.0 as usize].name,
                        *dev_off,
                        *words,
                        db,
                    )?;
                    let decl = &p.host_bufs[host.0 as usize];
                    if decl.role == HostBufRole::Input {
                        return Err(IrError::HostBufRole {
                            reason: format!("round {ri} writes host input buffer `{}`", decl.name),
                        });
                    }
                    host_written[host.0 as usize] = true;
                }
            }
        }
    }
    Ok(())
}

/// Round-discipline and kernel checks shared by plain and sharded
/// launches: one launch per round, never after an outward transfer.
fn check_launch(
    k: &Kernel,
    p: &Program,
    round: usize,
    launches: &mut usize,
    phase: &mut u8,
) -> Result<(), IrError> {
    *launches += 1;
    if *launches > 1 {
        return Err(IrError::MultipleLaunches { round });
    }
    if *phase > 1 {
        return Err(IrError::StepOrder {
            round,
            reason: "kernel launch after a device→host transfer; the model \
                     transfers outward only at the end of a round"
                .into(),
        });
    }
    *phase = 1;
    validate_kernel(k)?;
    check_kernel_buffers(k, p)
}

/// A shard plan must partition the grid `0..kernel.blocks()` into
/// non-empty disjoint ranges.  On failure the error carries the full
/// structured diagnosis from [`shard_plan_error`].
fn check_shard_plan(
    kernel: &Kernel,
    shards: &[crate::program::Shard],
    round: usize,
) -> Result<(), IrError> {
    match shard_plan_error(kernel.blocks(), shards) {
        None => Ok(()),
        Some(detail) => Err(IrError::BadShardPlan { kernel: kernel.name.clone(), round, detail }),
    }
}

/// Diagnoses a shard plan against a grid of `blocks` blocks.  Returns
/// `None` for an exact partition, otherwise the structured reason.
///
/// A boundary sweep over every shard edge computes the coverage depth
/// of each elementary segment, then classifies and coalesces them:
/// in-grid segments of depth 0 are *missing*, depth ≥ 2 *overlapping*,
/// and any claimed segment at or past `blocks` is *out of grid* — all
/// of them reported, not just the first.
pub fn shard_plan_error(
    blocks: u64,
    shards: &[crate::program::Shard],
) -> Option<crate::error::ShardPlanError> {
    use crate::error::ShardPlanError;
    if shards.is_empty() {
        return Some(ShardPlanError::NoShards);
    }
    let empty: Vec<(u32, u64, u64)> =
        shards.iter().filter(|s| s.end <= s.start).map(|s| (s.device, s.start, s.end)).collect();
    if !empty.is_empty() {
        return Some(ShardPlanError::EmptyShards { shards: empty });
    }
    // Coverage-depth sweep: +1 at each start, −1 at each end, evaluated
    // over the elementary segments between consecutive boundaries.
    let mut bounds: Vec<u64> = vec![0, blocks];
    for s in shards {
        bounds.push(s.start);
        bounds.push(s.end);
    }
    bounds.sort_unstable();
    bounds.dedup();
    let mut missing: Vec<(u64, u64)> = Vec::new();
    let mut overlapping: Vec<(u64, u64)> = Vec::new();
    let mut out_of_grid: Vec<(u64, u64)> = Vec::new();
    let extend = |list: &mut Vec<(u64, u64)>, lo: u64, hi: u64| match list.last_mut() {
        Some(last) if last.1 == lo => last.1 = hi,
        _ => list.push((lo, hi)),
    };
    for w in bounds.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let depth = shards.iter().filter(|s| s.start <= lo && lo < s.end).count();
        if lo >= blocks {
            if depth >= 1 {
                extend(&mut out_of_grid, lo, hi);
            }
        } else if depth == 0 {
            extend(&mut missing, lo, hi);
        } else if depth >= 2 {
            extend(&mut overlapping, lo, hi);
        }
    }
    if missing.is_empty() && overlapping.is_empty() && out_of_grid.is_empty() {
        None
    } else {
        Some(ShardPlanError::BadCoverage { blocks, missing, overlapping, out_of_grid })
    }
}

fn check_stream(stream: u32, round: usize) -> Result<(), IrError> {
    if stream >= crate::MAX_STREAMS {
        return Err(IrError::StreamOutOfRange { stream, round });
    }
    Ok(())
}

fn check_range(kind: &str, name: &str, off: u64, words: u64, size: u64) -> Result<(), IrError> {
    let end = off.checked_add(words).ok_or_else(|| IrError::TransferOutOfBounds {
        what: format!("{kind} {name}"),
        end: u64::MAX,
        size,
    })?;
    if end > size {
        return Err(IrError::TransferOutOfBounds { what: format!("{kind} {name}"), end, size });
    }
    Ok(())
}

fn check_kernel_buffers(k: &Kernel, p: &Program) -> Result<(), IrError> {
    fn walk(body: &[Instr], p: &Program) -> Result<(), IrError> {
        for i in body {
            match i {
                Instr::GlbToShr { global, .. } | Instr::ShrToGlb { global, .. }
                    if p.device_buf_words(global.buf).is_none() =>
                {
                    return Err(IrError::UnknownDeviceBuf { buf: global.buf.0 });
                }
                Instr::GlbToShr { .. } | Instr::ShrToGlb { .. } => {}
                Instr::Pred { then_body, else_body, .. } => {
                    walk(then_body, p)?;
                    walk(else_body, p)?;
                }
                Instr::Repeat { body, .. } => walk(body, p)?,
                _ => {}
            }
        }
        Ok(())
    }
    walk(&k.body, p)
}

/// Checks resource limits against a machine's `G` (global words) and `M`
/// (shared words per MP): total device allocation must fit `G`, every
/// kernel's declared shared usage must fit `M`.
pub fn check_against_machine(p: &Program, g_words: u64, m_words: u64) -> Result<(), IrError> {
    let dev = p.device_words();
    if dev > g_words {
        return Err(IrError::DeviceOutOfMemory { requested: dev, available: g_words });
    }
    for round in &p.rounds {
        if let Some(k) = round.kernel() {
            if k.shared_words > m_words {
                return Err(IrError::DeviceOutOfMemory {
                    requested: k.shared_words,
                    available: m_words,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{KernelBuilder, ProgramBuilder};
    use crate::expr::{AddrExpr, PredExpr};
    use crate::instr::AluOp;

    fn trivial_kernel(blocks: u64) -> Kernel {
        KernelBuilder::new("k", blocks, 0).build()
    }

    #[test]
    fn zero_block_launch_rejected() {
        assert!(matches!(validate_kernel(&trivial_kernel(0)), Err(IrError::ZeroBlocks { .. })));
    }

    #[test]
    fn exact_partition_has_no_shard_plan_error() {
        use crate::program::Shard;
        let shards = vec![
            Shard { device: 1, start: 4, end: 8 },
            Shard { device: 0, start: 0, end: 4 }, // order does not matter
        ];
        assert_eq!(shard_plan_error(8, &shards), None);
    }

    #[test]
    fn no_shards_diagnosed() {
        assert_eq!(shard_plan_error(8, &[]), Some(crate::error::ShardPlanError::NoShards));
    }

    #[test]
    fn empty_shards_listed_with_devices() {
        use crate::error::ShardPlanError;
        use crate::program::Shard;
        let shards = vec![
            Shard { device: 0, start: 0, end: 4 },
            Shard { device: 1, start: 4, end: 4 },
            Shard { device: 2, start: 6, end: 5 },
        ];
        assert_eq!(
            shard_plan_error(8, &shards),
            Some(ShardPlanError::EmptyShards { shards: vec![(1, 4, 4), (2, 6, 5)] })
        );
    }

    #[test]
    fn coverage_errors_report_every_bad_range() {
        use crate::error::ShardPlanError;
        use crate::program::Shard;
        // Grid of 12: [0,3) covered once, [3,5) missing, [5,7) covered
        // once, [7,9) twice, [9,12) missing, and [12,14) past the grid.
        let shards = vec![
            Shard { device: 0, start: 0, end: 3 },
            Shard { device: 1, start: 5, end: 9 },
            Shard { device: 2, start: 7, end: 9 },
            Shard { device: 3, start: 12, end: 14 },
        ];
        match shard_plan_error(12, &shards) {
            Some(ShardPlanError::BadCoverage { blocks, missing, overlapping, out_of_grid }) => {
                assert_eq!(blocks, 12);
                assert_eq!(missing, vec![(3, 5), (9, 12)]);
                assert_eq!(overlapping, vec![(7, 9)]);
                assert_eq!(out_of_grid, vec![(12, 14)]);
            }
            other => panic!("expected BadCoverage, got {other:?}"),
        }
    }

    #[test]
    fn shard_straddling_the_grid_end_splits_into_out_of_grid() {
        use crate::error::ShardPlanError;
        use crate::program::Shard;
        // One shard covers the whole grid and three blocks past it.
        let shards = vec![Shard { device: 0, start: 0, end: 11 }];
        match shard_plan_error(8, &shards) {
            Some(ShardPlanError::BadCoverage { missing, overlapping, out_of_grid, .. }) => {
                assert!(missing.is_empty());
                assert!(overlapping.is_empty());
                assert_eq!(out_of_grid, vec![(8, 11)]);
            }
            other => panic!("expected BadCoverage, got {other:?}"),
        }
    }

    #[test]
    fn bad_shard_plan_error_names_kernel_and_round() {
        use crate::program::Shard;
        let mut pb = ProgramBuilder::new("p");
        let _ = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.launch_sharded(
            KernelBuilder::new("k", 8, 0).build(),
            vec![Shard { device: 0, start: 0, end: 6 }],
        );
        let err = pb.build().unwrap_err();
        match &err {
            IrError::BadShardPlan { kernel, round: 0, detail } => {
                assert_eq!(kernel, "k");
                assert!(matches!(
                    detail,
                    crate::error::ShardPlanError::BadCoverage { missing, .. }
                        if missing == &vec![(6, 8)]
                ));
            }
            other => panic!("expected BadShardPlan, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("uncovered: [6, 8)"), "{msg}");
    }

    #[test]
    fn register_out_of_range_rejected() {
        let mut kb = KernelBuilder::new("k", 1, 0);
        kb.mov(MAX_REGS, Operand::Imm(0));
        assert!(matches!(
            validate_kernel(&kb.build()),
            Err(IrError::RegisterOutOfRange { reg, .. }) if reg == MAX_REGS
        ));
    }

    #[test]
    fn loop_var_out_of_scope_rejected() {
        let mut kb = KernelBuilder::new("k", 1, 0);
        kb.mov(0, Operand::LoopVar(0)); // not inside any loop
        assert!(matches!(
            validate_kernel(&kb.build()),
            Err(IrError::LoopVarOutOfScope { var: 0, enclosing: 0, .. })
        ));
    }

    #[test]
    fn loop_var_in_scope_accepted() {
        let mut kb = KernelBuilder::new("k", 1, 0);
        kb.repeat(4, |kb| {
            kb.mov(0, Operand::LoopVar(0));
        });
        validate_kernel(&kb.build()).unwrap();
    }

    #[test]
    fn inner_loop_var_needs_inner_loop() {
        let mut kb = KernelBuilder::new("k", 1, 0);
        kb.repeat(4, |kb| {
            kb.mov(0, Operand::LoopVar(1)); // depth 1 not open
        });
        assert!(validate_kernel(&kb.build()).is_err());
    }

    #[test]
    fn loop_var_in_address_checked() {
        let mut kb = KernelBuilder::new("k", 1, 8);
        kb.ld_shr(0, AddrExpr::loop_var(0)); // outside loop
        assert!(validate_kernel(&kb.build()).is_err());
    }

    #[test]
    fn loop_var_in_pred_checked() {
        let mut kb = KernelBuilder::new("k", 1, 0);
        kb.when(PredExpr::Lt(Operand::LoopVar(0), Operand::Imm(1)), |_| {});
        assert!(validate_kernel(&kb.build()).is_err());
    }

    #[test]
    fn too_deep_nesting_rejected() {
        let mut kb = KernelBuilder::new("k", 1, 0);
        kb.repeat(1, |kb| {
            kb.repeat(1, |kb| {
                kb.repeat(1, |kb| {
                    kb.repeat(1, |kb| {
                        kb.repeat(1, |kb| {
                            kb.sync();
                        });
                    });
                });
            });
        });
        assert!(matches!(validate_kernel(&kb.build()), Err(IrError::LoopTooDeep { depth: 5, .. })));
    }

    fn valid_program() -> ProgramBuilder {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 64);
        let o = pb.host_output("C", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in(h, d, 64);
        pb.launch(trivial_kernel(1));
        pb.transfer_out(d, o, 64);
        pb.end_round();
        pb
    }

    #[test]
    fn valid_program_passes() {
        valid_program().build().unwrap();
    }

    #[test]
    fn empty_program_rejected() {
        assert!(matches!(ProgramBuilder::new("p").build(), Err(IrError::EmptyProgram)));
    }

    #[test]
    fn transfer_in_after_launch_rejected() {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.launch(trivial_kernel(1));
        pb.transfer_in(h, d, 64);
        assert!(matches!(pb.build(), Err(IrError::StepOrder { .. })));
    }

    #[test]
    fn launch_after_transfer_out_rejected() {
        let mut pb = ProgramBuilder::new("p");
        let o = pb.host_output("C", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_out(d, o, 64);
        pb.launch(trivial_kernel(1));
        assert!(matches!(pb.build(), Err(IrError::StepOrder { .. })));
    }

    #[test]
    fn two_launches_rejected() {
        let mut pb = ProgramBuilder::new("p");
        let _ = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.launch(trivial_kernel(1));
        pb.launch(trivial_kernel(1));
        assert!(matches!(pb.build(), Err(IrError::MultipleLaunches { round: 0 })));
    }

    #[test]
    fn transfer_overruns_device_buffer() {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 128);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in(h, d, 128);
        assert!(matches!(pb.build(), Err(IrError::TransferOutOfBounds { .. })));
    }

    #[test]
    fn transfer_overruns_host_buffer() {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 32);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in_at(h, 16, d, 0, 32); // 16+32 > 32
        assert!(matches!(pb.build(), Err(IrError::TransferOutOfBounds { .. })));
    }

    #[test]
    fn writing_input_buffer_rejected() {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_out(d, h, 64);
        assert!(matches!(pb.build(), Err(IrError::HostBufRole { .. })));
    }

    #[test]
    fn reading_unwritten_output_rejected() {
        let mut pb = ProgramBuilder::new("p");
        let o = pb.host_output("C", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in(o, d, 64);
        assert!(matches!(pb.build(), Err(IrError::HostBufRole { .. })));
    }

    #[test]
    fn output_readable_after_write() {
        // Round 1 writes C; round 2 may stage it back in (out-of-core
        // algorithms round-trip through the host like this).
        let mut pb = ProgramBuilder::new("p");
        let o = pb.host_output("C", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.launch(trivial_kernel(1));
        pb.transfer_out(d, o, 64);
        pb.begin_round();
        pb.transfer_in(o, d, 64);
        pb.launch(trivial_kernel(1));
        pb.build().unwrap();
    }

    #[test]
    fn stream_out_of_range_rejected() {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in_streamed(0, crate::MAX_STREAMS, h, 0, d, 0, 64);
        pb.launch(trivial_kernel(1));
        assert!(matches!(pb.build(), Err(IrError::StreamOutOfRange { .. })));

        let mut pb = ProgramBuilder::new("p");
        let _ = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.sync_stream(0, crate::MAX_STREAMS + 3);
        pb.launch(trivial_kernel(1));
        assert!(matches!(pb.build(), Err(IrError::StreamOutOfRange { .. })));
    }

    #[test]
    fn streamed_round_with_syncs_validates() {
        // The double-buffering shape: next chunk's H2D on stream 1 before
        // this chunk's launch, syncs sprinkled anywhere.
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 64);
        let o = pb.host_output("C", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in_streamed(0, 1, h, 0, d, 0, 32);
        pb.sync_stream(0, 1);
        pb.launch(trivial_kernel(1));
        pb.sync_device(0);
        pb.transfer_out_streamed(0, 0, d, 0, o, 0, 32);
        let p = pb.build().unwrap();
        assert!(p.uses_streams());
        // Its de-streamed form validates too.
        validate_program(&p.destreamed()).unwrap();
    }

    #[test]
    fn kernel_referencing_unknown_buffer_rejected() {
        let mut pb = ProgramBuilder::new("p");
        let _ = pb.device_alloc("a", 64);
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.glb_to_shr(AddrExpr::lane(), crate::program::DBuf(7), AddrExpr::lane());
        pb.begin_round();
        pb.launch(kb.build());
        assert!(matches!(pb.build(), Err(IrError::UnknownDeviceBuf { buf: 7 })));
    }

    #[test]
    fn machine_limits_checked() {
        let p = valid_program().build().unwrap();
        check_against_machine(&p, 64, 0).unwrap();
        assert!(matches!(
            check_against_machine(&p, 63, 0),
            Err(IrError::DeviceOutOfMemory { requested: 64, available: 63 })
        ));
    }

    #[test]
    fn machine_shared_limit_checked() {
        let mut pb = ProgramBuilder::new("p");
        let _ = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.launch(KernelBuilder::new("k", 1, 100).build());
        let p = pb.build().unwrap();
        assert!(check_against_machine(&p, 64, 99).is_err());
        check_against_machine(&p, 64, 100).unwrap();
    }

    #[test]
    fn alu_loop_var_checked_in_pred_arms() {
        let mut kb = KernelBuilder::new("k", 1, 0);
        kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(1)), |kb| {
            kb.alu(AluOp::Add, 0, Operand::LoopVar(0), Operand::Imm(1));
        });
        assert!(validate_kernel(&kb.build()).is_err());
    }
}
