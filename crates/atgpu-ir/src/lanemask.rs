//! Compile-time lane-mask dataflow, shared by the analyser and the
//! simulator's micro-op compiler.
//!
//! Many kernels guard work with predicates whose truth value is a pure
//! function of the **lane index**: directly (`j < 16`), or through a
//! register that was itself computed from immediates and the lane index
//! only (`r ← j mod 2s; if r = 0 …` — the interleaved tree-reduction
//! test).  Such predicates fold to a constant active-lane mask at
//! compile time, identical for every thread block and loop iteration.
//!
//! [`LaneValues`] tracks which registers currently hold **lane-pure**
//! values — written under a full mask from `Imm`/`Lane` operands and
//! other lane-pure registers — and folds predicates over them into
//! masks.  Consumers walk the kernel body in program order and call the
//! `record_*`/`kill_*` hooks; the soundness rules are:
//!
//! * a write under a partial or unknown mask forgets the register (its
//!   lanes now hold mixed values);
//! * a data-dependent write (shared-memory load, non-pure operand)
//!   forgets the register;
//! * before a loop body is entered, every register the body can write is
//!   forgotten — a write later in program order feeds reads at the top
//!   of iterations `2..n`, which a single in-order walk does not see.
//!   Values computed *within* the body from pure sources are the same in
//!   every iteration, so tracking inside the body stays valid.

use crate::expr::{Operand, PredExpr};
use crate::instr::Instr;
use crate::Reg;

/// Per-register compile-time lane values (see module docs).
#[derive(Debug, Clone)]
pub struct LaneValues {
    b: u32,
    full: u64,
    /// Indexed by the full `Reg` (u8) range.
    vals: Vec<Option<Box<[i64; 64]>>>,
}

impl LaneValues {
    /// A tracker for `b ≤ 64` lanes; all registers start unknown.
    pub fn new(b: u32) -> Self {
        debug_assert!((1..=64).contains(&b));
        let full = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
        Self { b, full, vals: vec![None; 256] }
    }

    /// The all-lanes mask for this width.
    #[inline]
    pub fn full_mask(&self) -> u64 {
        self.full
    }

    /// Per-lane values of an operand, when they are a compile-time
    /// function of the lane index alone.
    pub fn operand_values(&self, op: Operand) -> Option<Box<[i64; 64]>> {
        match op {
            Operand::Imm(v) => Some(Box::new([v; 64])),
            Operand::Lane => {
                let mut vals = [0i64; 64];
                for (l, slot) in vals.iter_mut().enumerate() {
                    *slot = l as i64;
                }
                Some(Box::new(vals))
            }
            Operand::Reg(r) => self.vals[r as usize].clone(),
            _ => None,
        }
    }

    /// Records `dst ← a op b`; `under_full_mask` says the write covers
    /// every lane (anything else forgets the register).
    pub fn record_alu(
        &mut self,
        op: crate::instr::AluOp,
        dst: Reg,
        a: Operand,
        b: Operand,
        under_full_mask: bool,
    ) {
        let vals = if under_full_mask {
            self.operand_values(a).zip(self.operand_values(b)).map(|(va, vb)| {
                let mut out = Box::new([0i64; 64]);
                for (slot, (x, y)) in out.iter_mut().zip(va.iter().zip(vb.iter())) {
                    *slot = op.apply(*x, *y);
                }
                out
            })
        } else {
            None
        };
        self.vals[dst as usize] = vals;
    }

    /// Records `dst ← src` under the same rule as [`Self::record_alu`].
    pub fn record_mov(&mut self, dst: Reg, src: Operand, under_full_mask: bool) {
        self.vals[dst as usize] = if under_full_mask { self.operand_values(src) } else { None };
    }

    /// Forgets one register (a data-dependent or partial-mask write).
    pub fn kill(&mut self, dst: Reg) {
        self.vals[dst as usize] = None;
    }

    /// Forgets every register `body` can write — call before walking a
    /// loop body (see module docs).
    pub fn kill_written(&mut self, body: &[Instr]) {
        fn walk(body: &[Instr], vals: &mut [Option<Box<[i64; 64]>>]) {
            for i in body {
                match i {
                    Instr::Alu { dst, .. } | Instr::Mov { dst, .. } | Instr::LdShr { dst, .. } => {
                        vals[*dst as usize] = None;
                    }
                    Instr::Pred { then_body, else_body, .. } => {
                        walk(then_body, vals);
                        walk(else_body, vals);
                    }
                    Instr::Repeat { body, .. } => walk(body, vals),
                    _ => {}
                }
            }
        }
        walk(body, &mut self.vals);
    }

    /// Combines a parent mask context with a folded predicate mask into
    /// the `(then, else)` arm contexts — the divergence rule every
    /// consumer (the analyser's site walker and the simulator's micro-op
    /// compiler) must apply identically: a known parent and a constant
    /// predicate give exact arm masks; anything else makes both arms
    /// unknown.
    pub fn arm_masks(
        &self,
        parent: Option<u64>,
        folded: Option<u64>,
    ) -> (Option<u64>, Option<u64>) {
        match (parent, folded) {
            (Some(p), Some(m)) => (Some(p & m), Some(p & !m & self.full)),
            _ => (None, None),
        }
    }

    /// Folds a predicate whose operands are lane-pure (immediates, the
    /// lane index, or tracked registers) into a constant lane mask.
    pub fn pred_mask(&self, pred: &PredExpr) -> Option<u64> {
        let (a, b) = pred.operands();
        let pure = |op: Operand| match op {
            Operand::Imm(_) | Operand::Lane => true,
            Operand::Reg(r) => self.vals[r as usize].is_some(),
            _ => false,
        };
        if !pure(a) || !pure(b) {
            return None;
        }
        let mut mask = 0u64;
        for lane in 0..self.b {
            let mut read =
                |r: Reg| self.vals[r as usize].as_ref().expect("lane-pure operand")[lane as usize];
            if pred.eval(i64::from(lane), (0, 0), &[], &mut read) {
                mask |= 1 << lane;
            }
        }
        Some(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AddrExpr;
    use crate::instr::AluOp;

    #[test]
    fn lane_imm_predicates_fold_without_registers() {
        let t = LaneValues::new(8);
        assert_eq!(t.pred_mask(&PredExpr::Lt(Operand::Lane, Operand::Imm(3))), Some(0b111));
        assert_eq!(t.pred_mask(&PredExpr::Ne(Operand::Lane, Operand::Imm(0))), Some(0b1111_1110));
        assert_eq!(t.pred_mask(&PredExpr::Lt(Operand::Block, Operand::Imm(3))), None);
    }

    #[test]
    fn register_chains_stay_pure() {
        let mut t = LaneValues::new(8);
        t.record_alu(AluOp::Rem, 2, Operand::Lane, Operand::Imm(4), true);
        assert_eq!(t.pred_mask(&PredExpr::Eq(Operand::Reg(2), Operand::Imm(0))), Some(0b0001_0001));
        // A chained op through the tracked register remains pure.
        t.record_alu(AluOp::Mul, 3, Operand::Reg(2), Operand::Imm(2), true);
        assert_eq!(t.pred_mask(&PredExpr::Eq(Operand::Reg(3), Operand::Imm(2))), Some(0b0010_0010));
    }

    #[test]
    fn partial_mask_and_loads_forget() {
        let mut t = LaneValues::new(8);
        t.record_mov(0, Operand::Imm(1), true);
        assert!(t.pred_mask(&PredExpr::Eq(Operand::Reg(0), Operand::Imm(1))).is_some());
        t.record_mov(0, Operand::Imm(2), false); // divergent write
        assert!(t.pred_mask(&PredExpr::Eq(Operand::Reg(0), Operand::Imm(1))).is_none());
        t.record_mov(1, Operand::Lane, true);
        t.kill(1);
        assert!(t.pred_mask(&PredExpr::Eq(Operand::Reg(1), Operand::Imm(0))).is_none());
    }

    #[test]
    fn kill_written_walks_nested_bodies() {
        let mut t = LaneValues::new(8);
        t.record_mov(0, Operand::Imm(1), true);
        t.record_mov(1, Operand::Imm(1), true);
        let body = vec![Instr::Repeat {
            count: 2,
            body: vec![Instr::Pred {
                pred: PredExpr::Lt(Operand::Lane, Operand::Imm(4)),
                then_body: vec![Instr::ld_shr(0, AddrExpr::lane())],
                else_body: vec![],
            }],
        }];
        t.kill_written(&body);
        assert!(t.pred_mask(&PredExpr::Eq(Operand::Reg(0), Operand::Imm(1))).is_none());
        assert!(t.pred_mask(&PredExpr::Eq(Operand::Reg(1), Operand::Imm(1))).is_some());
    }
}
