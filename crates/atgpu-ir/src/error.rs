//! IR construction and validation errors.

use std::fmt;

/// Errors raised while building or validating IR programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A register index is out of range (`≥ MAX_REGS`).
    RegisterOutOfRange {
        /// Offending register index.
        reg: u8,
        /// Kernel name.
        kernel: String,
    },
    /// Loop nesting exceeds [`crate::MAX_LOOP_DEPTH`].
    LoopTooDeep {
        /// Observed depth.
        depth: usize,
        /// Kernel name.
        kernel: String,
    },
    /// A `LoopVar(d)` is referenced outside a loop of that depth.
    LoopVarOutOfScope {
        /// Referenced loop variable depth.
        var: u8,
        /// Depth of loops actually enclosing the reference.
        enclosing: usize,
        /// Kernel name.
        kernel: String,
    },
    /// A device buffer id is referenced but never declared.
    UnknownDeviceBuf {
        /// Offending buffer id.
        buf: u32,
    },
    /// A host buffer id is referenced but never declared.
    UnknownHostBuf {
        /// Offending buffer id.
        buf: u32,
    },
    /// A transfer's range exceeds the referenced buffer's extent.
    TransferOutOfBounds {
        /// Which buffer ("host X" / "device y").
        what: String,
        /// First word past the referenced range.
        end: u64,
        /// Buffer size in words.
        size: u64,
    },
    /// A round contains more than one kernel launch.
    MultipleLaunches {
        /// Round index.
        round: usize,
    },
    /// A round interleaves steps out of the model's order
    /// (inward transfers → launch → outward transfers).
    StepOrder {
        /// Round index.
        round: usize,
        /// Human-readable description.
        reason: String,
    },
    /// The program has no rounds.
    EmptyProgram,
    /// A kernel declares zero thread blocks.
    ZeroBlocks {
        /// Kernel name.
        kernel: String,
    },
    /// Writing to a host input buffer, or reading a host output buffer
    /// before it is written.
    HostBufRole {
        /// Human-readable description.
        reason: String,
    },
    /// Total device allocations exceed the machine's global memory `G`.
    DeviceOutOfMemory {
        /// Words requested across all allocations.
        requested: u64,
        /// Words available (`G`).
        available: u64,
    },
    /// A sharded launch's block ranges do not partition the grid.
    BadShardPlan {
        /// Kernel name.
        kernel: String,
        /// Round index of the offending launch.
        round: usize,
        /// Exactly what is wrong with the plan.
        detail: ShardPlanError,
    },
    /// A transfer or sync references a stream id `≥ MAX_STREAMS`.
    StreamOutOfRange {
        /// Offending stream id.
        stream: u32,
        /// Round index.
        round: usize,
    },
}

/// Structured diagnosis of a shard plan that fails to partition the
/// grid `0..blocks`.  Rather than stopping at the first bad boundary,
/// the validator sweeps the whole plan and reports *every* missing,
/// doubly-covered and out-of-grid block range, so a planner bug can be
/// read off the payload directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardPlanError {
    /// The sharded launch lists no shards at all.
    NoShards,
    /// Shards whose range is empty (`end ≤ start`), as
    /// `(device, start, end)` triples in plan order.
    EmptyShards {
        /// The offending shards.
        shards: Vec<(u32, u64, u64)>,
    },
    /// The (individually non-empty) shards do not cover the grid
    /// exactly once.  Every listed range is half-open and maximal.
    BadCoverage {
        /// Blocks the kernel launches (`kernel.blocks()`).
        blocks: u64,
        /// Grid ranges no shard covers.
        missing: Vec<(u64, u64)>,
        /// Grid ranges covered by two or more shards.
        overlapping: Vec<(u64, u64)>,
        /// Shard-claimed ranges past the end of the grid.
        out_of_grid: Vec<(u64, u64)>,
    },
}

fn fmt_ranges(ranges: &[(u64, u64)]) -> String {
    let parts: Vec<String> = ranges.iter().map(|&(lo, hi)| format!("[{lo}, {hi})")).collect();
    parts.join(", ")
}

impl fmt::Display for ShardPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardPlanError::NoShards => write!(f, "sharded launch lists no shards"),
            ShardPlanError::EmptyShards { shards } => {
                let parts: Vec<String> =
                    shards.iter().map(|&(d, lo, hi)| format!("gpu{d}: [{lo}, {hi})")).collect();
                write!(f, "empty shard range(s): {}", parts.join(", "))
            }
            ShardPlanError::BadCoverage { blocks, missing, overlapping, out_of_grid } => {
                write!(f, "shards must cover blocks [0, {blocks}) exactly once")?;
                if !missing.is_empty() {
                    write!(f, "; uncovered: {}", fmt_ranges(missing))?;
                }
                if !overlapping.is_empty() {
                    write!(f, "; covered more than once: {}", fmt_ranges(overlapping))?;
                }
                if !out_of_grid.is_empty() {
                    write!(f, "; past the grid: {}", fmt_ranges(out_of_grid))?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::RegisterOutOfRange { reg, kernel } => {
                write!(f, "kernel `{kernel}`: register r{reg} out of range")
            }
            IrError::LoopTooDeep { depth, kernel } => {
                write!(f, "kernel `{kernel}`: loop nesting depth {depth} exceeds maximum")
            }
            IrError::LoopVarOutOfScope { var, enclosing, kernel } => write!(
                f,
                "kernel `{kernel}`: LoopVar({var}) referenced with only {enclosing} enclosing loop(s)"
            ),
            IrError::UnknownDeviceBuf { buf } => write!(f, "unknown device buffer d{buf}"),
            IrError::UnknownHostBuf { buf } => write!(f, "unknown host buffer h{buf}"),
            IrError::TransferOutOfBounds { what, end, size } => {
                write!(f, "transfer touches {what}[..{end}] but the buffer has {size} words")
            }
            IrError::MultipleLaunches { round } => {
                write!(f, "round {round}: more than one kernel launch (the model runs one kernel per round)")
            }
            IrError::StepOrder { round, reason } => write!(f, "round {round}: {reason}"),
            IrError::EmptyProgram => write!(f, "program has no rounds"),
            IrError::ZeroBlocks { kernel } => {
                write!(f, "kernel `{kernel}` launches zero thread blocks")
            }
            IrError::HostBufRole { reason } => write!(f, "host buffer role violation: {reason}"),
            IrError::DeviceOutOfMemory { requested, available } => write!(
                f,
                "device allocations need {requested} words but global memory has G = {available}"
            ),
            IrError::BadShardPlan { kernel, round, detail } => {
                write!(f, "round {round}: kernel `{kernel}`: bad shard plan: {detail}")
            }
            IrError::StreamOutOfRange { stream, round } => {
                write!(
                    f,
                    "round {round}: stream {stream} out of range (max {})",
                    crate::MAX_STREAMS - 1
                )
            }
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_register() {
        let e = IrError::RegisterOutOfRange { reg: 99, kernel: "k".into() };
        assert!(e.to_string().contains("r99"));
    }

    #[test]
    fn display_oom() {
        let e = IrError::DeviceOutOfMemory { requested: 100, available: 64 };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("64"));
    }
}
