//! IR construction and validation errors.

use std::fmt;

/// Errors raised while building or validating IR programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A register index is out of range (`≥ MAX_REGS`).
    RegisterOutOfRange {
        /// Offending register index.
        reg: u8,
        /// Kernel name.
        kernel: String,
    },
    /// Loop nesting exceeds [`crate::MAX_LOOP_DEPTH`].
    LoopTooDeep {
        /// Observed depth.
        depth: usize,
        /// Kernel name.
        kernel: String,
    },
    /// A `LoopVar(d)` is referenced outside a loop of that depth.
    LoopVarOutOfScope {
        /// Referenced loop variable depth.
        var: u8,
        /// Depth of loops actually enclosing the reference.
        enclosing: usize,
        /// Kernel name.
        kernel: String,
    },
    /// A device buffer id is referenced but never declared.
    UnknownDeviceBuf {
        /// Offending buffer id.
        buf: u32,
    },
    /// A host buffer id is referenced but never declared.
    UnknownHostBuf {
        /// Offending buffer id.
        buf: u32,
    },
    /// A transfer's range exceeds the referenced buffer's extent.
    TransferOutOfBounds {
        /// Which buffer ("host X" / "device y").
        what: String,
        /// First word past the referenced range.
        end: u64,
        /// Buffer size in words.
        size: u64,
    },
    /// A round contains more than one kernel launch.
    MultipleLaunches {
        /// Round index.
        round: usize,
    },
    /// A round interleaves steps out of the model's order
    /// (inward transfers → launch → outward transfers).
    StepOrder {
        /// Round index.
        round: usize,
        /// Human-readable description.
        reason: String,
    },
    /// The program has no rounds.
    EmptyProgram,
    /// A kernel declares zero thread blocks.
    ZeroBlocks {
        /// Kernel name.
        kernel: String,
    },
    /// Writing to a host input buffer, or reading a host output buffer
    /// before it is written.
    HostBufRole {
        /// Human-readable description.
        reason: String,
    },
    /// Total device allocations exceed the machine's global memory `G`.
    DeviceOutOfMemory {
        /// Words requested across all allocations.
        requested: u64,
        /// Words available (`G`).
        available: u64,
    },
    /// A sharded launch's block ranges do not partition the grid.
    BadShardPlan {
        /// Kernel name.
        kernel: String,
        /// What is wrong with the plan.
        reason: String,
    },
    /// A transfer or sync references a stream id `≥ MAX_STREAMS`.
    StreamOutOfRange {
        /// Offending stream id.
        stream: u32,
        /// Round index.
        round: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::RegisterOutOfRange { reg, kernel } => {
                write!(f, "kernel `{kernel}`: register r{reg} out of range")
            }
            IrError::LoopTooDeep { depth, kernel } => {
                write!(f, "kernel `{kernel}`: loop nesting depth {depth} exceeds maximum")
            }
            IrError::LoopVarOutOfScope { var, enclosing, kernel } => write!(
                f,
                "kernel `{kernel}`: LoopVar({var}) referenced with only {enclosing} enclosing loop(s)"
            ),
            IrError::UnknownDeviceBuf { buf } => write!(f, "unknown device buffer d{buf}"),
            IrError::UnknownHostBuf { buf } => write!(f, "unknown host buffer h{buf}"),
            IrError::TransferOutOfBounds { what, end, size } => {
                write!(f, "transfer touches {what}[..{end}] but the buffer has {size} words")
            }
            IrError::MultipleLaunches { round } => {
                write!(f, "round {round}: more than one kernel launch (the model runs one kernel per round)")
            }
            IrError::StepOrder { round, reason } => write!(f, "round {round}: {reason}"),
            IrError::EmptyProgram => write!(f, "program has no rounds"),
            IrError::ZeroBlocks { kernel } => {
                write!(f, "kernel `{kernel}` launches zero thread blocks")
            }
            IrError::HostBufRole { reason } => write!(f, "host buffer role violation: {reason}"),
            IrError::DeviceOutOfMemory { requested, available } => write!(
                f,
                "device allocations need {requested} words but global memory has G = {available}"
            ),
            IrError::BadShardPlan { kernel, reason } => {
                write!(f, "kernel `{kernel}`: bad shard plan: {reason}")
            }
            IrError::StreamOutOfRange { stream, round } => {
                write!(
                    f,
                    "round {round}: stream {stream} out of range (max {})",
                    crate::MAX_STREAMS - 1
                )
            }
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_register() {
        let e = IrError::RegisterOutOfRange { reg: 99, kernel: "k".into() };
        assert!(e.to_string().contains("r99"));
    }

    #[test]
    fn display_oom() {
        let e = IrError::DeviceOutOfMemory { requested: 100, available: 64 };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("64"));
    }
}
