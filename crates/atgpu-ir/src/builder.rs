//! Fluent construction of kernels and programs.
//!
//! ```
//! use atgpu_ir::{AluOp, AddrExpr, KernelBuilder, Operand, ProgramBuilder};
//!
//! let b = 32i64;
//! let n = 1024u64;
//! let mut pb = ProgramBuilder::new("vecadd");
//! let ha = pb.host_input("A", n);
//! let hc = pb.host_output("C", n);
//! let da = pb.device_alloc("a", n);
//! let dc = pb.device_alloc("c", n);
//!
//! let mut kb = KernelBuilder::new("vecadd_kernel", n / 32, 2 * 32);
//! // _a[j] ⇐ a[i·b + j]
//! kb.glb_to_shr(AddrExpr::lane(), da, AddrExpr::block() * b + AddrExpr::lane());
//! // r0 ← _a[j]; r0 ← r0 + 1; _c[j] ← r0   (toy: c = a + 1)
//! kb.ld_shr(0, AddrExpr::lane());
//! kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Imm(1));
//! kb.st_shr(AddrExpr::lane() + 32, Operand::Reg(0));
//! // c[i·b + j] ⇐ _c[j]
//! kb.shr_to_glb(dc, AddrExpr::block() * b + AddrExpr::lane(), AddrExpr::lane() + 32);
//!
//! pb.begin_round();
//! pb.transfer_in(ha, da, n);
//! pb.launch(kb.build());
//! pb.transfer_out(dc, hc, n);
//! pb.end_round();
//!
//! let program = pb.build().expect("valid program");
//! assert_eq!(program.num_rounds(), 1);
//! ```

use crate::error::IrError;
use crate::expr::{AddrExpr, Operand, PredExpr};
use crate::instr::{AluOp, Instr};
use crate::kernel::Kernel;
use crate::program::{
    DBuf, DeviceAlloc, HBuf, HostBufDecl, HostBufRole, HostStep, Program, Round, Shard,
};
use crate::validate;
use crate::Reg;

/// Builds a [`Kernel`] instruction by instruction.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    grid: (u64, u64),
    shared_words: u64,
    /// Stack of instruction bodies: index 0 is the kernel body, deeper
    /// entries are open `Repeat`/`Pred` arms.
    bodies: Vec<Vec<Instr>>,
}

impl KernelBuilder {
    /// Starts a kernel named `name` launching `blocks` thread blocks in a
    /// 1-D grid, each using `shared_words` words of shared memory.
    pub fn new(name: impl Into<String>, blocks: u64, shared_words: u64) -> Self {
        Self::new_2d(name, (blocks, 1), shared_words)
    }

    /// Starts a kernel with a 2-D launch grid `(gx, gy)` — the natural
    /// geometry for tiled matrix kernels, where `Block` is the tile
    /// column and `BlockY` the tile row.
    pub fn new_2d(name: impl Into<String>, grid: (u64, u64), shared_words: u64) -> Self {
        Self { name: name.into(), grid, shared_words, bodies: vec![Vec::new()] }
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        self.bodies.last_mut().expect("builder always has an open body").push(i);
        self
    }

    /// `dst ← a op b`.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::Alu { op, dst, a, b })
    }

    /// `dst ← src`.
    pub fn mov(&mut self, dst: Reg, src: Operand) -> &mut Self {
        self.push(Instr::Mov { dst, src })
    }

    /// `_s[shared] ⇐ buf[global]` — global→shared, one word per lane.
    pub fn glb_to_shr(&mut self, shared: AddrExpr, buf: DBuf, global: AddrExpr) -> &mut Self {
        self.push(Instr::glb_to_shr(shared, buf, global))
    }

    /// `buf[global] ⇐ _s[shared]` — shared→global, one word per lane.
    pub fn shr_to_glb(&mut self, buf: DBuf, global: AddrExpr, shared: AddrExpr) -> &mut Self {
        self.push(Instr::shr_to_glb(buf, global, shared))
    }

    /// `dst ← _s[shared]`.
    pub fn ld_shr(&mut self, dst: Reg, shared: AddrExpr) -> &mut Self {
        self.push(Instr::ld_shr(dst, shared))
    }

    /// `_s[shared] ← src`.
    pub fn st_shr(&mut self, shared: AddrExpr, src: Operand) -> &mut Self {
        self.push(Instr::st_shr(shared, src))
    }

    /// Intra-block barrier.
    pub fn sync(&mut self) -> &mut Self {
        self.push(Instr::Sync)
    }

    /// A counted loop: `for t(depth) = 0 → count do body`.
    /// The body closure sees the same builder; the loop counter is
    /// available as `AddrExpr::loop_var(d)`/`Operand::LoopVar(d)` where
    /// `d` is the loop's nesting depth (0 for a top-level loop).
    pub fn repeat(&mut self, count: u32, body: impl FnOnce(&mut Self)) -> &mut Self {
        self.bodies.push(Vec::new());
        body(self);
        let b = self.bodies.pop().expect("repeat body present");
        self.push(Instr::Repeat { count, body: b })
    }

    /// A single-conditional divergent region; the model executes both
    /// arms, masking inactive lanes.
    pub fn pred(
        &mut self,
        pred: PredExpr,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.bodies.push(Vec::new());
        then_body(self);
        let t = self.bodies.pop().expect("then body present");
        self.bodies.push(Vec::new());
        else_body(self);
        let e = self.bodies.pop().expect("else body present");
        self.push(Instr::Pred { pred, then_body: t, else_body: e })
    }

    /// Shorthand for a then-only conditional.
    pub fn when(&mut self, pred: PredExpr, then_body: impl FnOnce(&mut Self)) -> &mut Self {
        self.pred(pred, then_body, |_| {})
    }

    /// Finishes the kernel.
    ///
    /// # Panics
    /// Panics if a `repeat`/`pred` body closure leaked an unbalanced body
    /// (impossible through this API).
    pub fn build(mut self) -> Kernel {
        assert_eq!(self.bodies.len(), 1, "unbalanced builder bodies");
        Kernel {
            name: self.name,
            body: self.bodies.pop().unwrap(),
            grid: self.grid,
            shared_words: self.shared_words,
        }
    }
}

/// Builds a [`Program`]: buffers, rounds, transfers and launches.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    device_allocs: Vec<DeviceAlloc>,
    host_bufs: Vec<HostBufDecl>,
    rounds: Vec<Round>,
    open_round: Option<Round>,
}

impl ProgramBuilder {
    /// Starts a program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            device_allocs: Vec::new(),
            host_bufs: Vec::new(),
            rounds: Vec::new(),
            open_round: None,
        }
    }

    /// Declares a host input buffer (capitalised in pseudocode).
    pub fn host_input(&mut self, name: impl Into<String>, words: u64) -> HBuf {
        let id = HBuf(self.host_bufs.len() as u32);
        self.host_bufs.push(HostBufDecl { name: name.into(), words, role: HostBufRole::Input });
        id
    }

    /// Declares a host output buffer.
    pub fn host_output(&mut self, name: impl Into<String>, words: u64) -> HBuf {
        let id = HBuf(self.host_bufs.len() as u32);
        self.host_bufs.push(HostBufDecl { name: name.into(), words, role: HostBufRole::Output });
        id
    }

    /// Allocates a device-global buffer (lower-case in pseudocode).
    pub fn device_alloc(&mut self, name: impl Into<String>, words: u64) -> DBuf {
        let id = DBuf(self.device_allocs.len() as u32);
        self.device_allocs.push(DeviceAlloc { name: name.into(), words });
        id
    }

    /// Opens a new round.  Any previously open round is closed first.
    pub fn begin_round(&mut self) -> &mut Self {
        self.end_round();
        self.open_round = Some(Round::default());
        self
    }

    /// Closes the open round, if any.
    pub fn end_round(&mut self) -> &mut Self {
        if let Some(r) = self.open_round.take() {
            self.rounds.push(r);
        }
        self
    }

    fn round_mut(&mut self) -> &mut Round {
        if self.open_round.is_none() {
            self.open_round = Some(Round::default());
        }
        self.open_round.as_mut().unwrap()
    }

    /// `dev W host` — full-buffer host→device transfer (one transaction).
    pub fn transfer_in(&mut self, host: HBuf, dev: DBuf, words: u64) -> &mut Self {
        self.transfer_in_at(host, 0, dev, 0, words)
    }

    /// Host→device transfer with offsets (one transaction).
    pub fn transfer_in_at(
        &mut self,
        host: HBuf,
        host_off: u64,
        dev: DBuf,
        dev_off: u64,
        words: u64,
    ) -> &mut Self {
        self.transfer_in_to(0, host, host_off, dev, dev_off, words)
    }

    /// Host→device transfer with offsets over a specific device's host
    /// link (one transaction).
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_in_to(
        &mut self,
        device: u32,
        host: HBuf,
        host_off: u64,
        dev: DBuf,
        dev_off: u64,
        words: u64,
    ) -> &mut Self {
        self.transfer_in_streamed(device, 0, host, host_off, dev, dev_off, words)
    }

    /// Host→device transfer enqueued on `stream` of `device` (one
    /// transaction).  Work on different streams of one device may overlap
    /// in time; see [`HostStep`]'s stream semantics.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_in_streamed(
        &mut self,
        device: u32,
        stream: u32,
        host: HBuf,
        host_off: u64,
        dev: DBuf,
        dev_off: u64,
        words: u64,
    ) -> &mut Self {
        self.round_mut().steps.push(HostStep::TransferIn {
            host,
            host_off,
            dev,
            dev_off,
            words,
            device,
            stream,
        });
        self
    }

    /// `host W dev` — full-buffer device→host transfer (one transaction).
    pub fn transfer_out(&mut self, dev: DBuf, host: HBuf, words: u64) -> &mut Self {
        self.transfer_out_at(dev, 0, host, 0, words)
    }

    /// Device→host transfer with offsets (one transaction).
    pub fn transfer_out_at(
        &mut self,
        dev: DBuf,
        dev_off: u64,
        host: HBuf,
        host_off: u64,
        words: u64,
    ) -> &mut Self {
        self.transfer_out_from(0, dev, dev_off, host, host_off, words)
    }

    /// Device→host transfer with offsets over a specific device's host
    /// link (one transaction).
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_out_from(
        &mut self,
        device: u32,
        dev: DBuf,
        dev_off: u64,
        host: HBuf,
        host_off: u64,
        words: u64,
    ) -> &mut Self {
        self.transfer_out_streamed(device, 0, dev, dev_off, host, host_off, words)
    }

    /// Device→host transfer enqueued on `stream` of `device` (one
    /// transaction).
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_out_streamed(
        &mut self,
        device: u32,
        stream: u32,
        dev: DBuf,
        dev_off: u64,
        host: HBuf,
        host_off: u64,
        words: u64,
    ) -> &mut Self {
        self.round_mut().steps.push(HostStep::TransferOut {
            dev,
            dev_off,
            host,
            host_off,
            words,
            device,
            stream,
        });
        self
    }

    /// Waits for everything enqueued on `stream` of `device` so far this
    /// round; later steps start no earlier.
    pub fn sync_stream(&mut self, device: u32, stream: u32) -> &mut Self {
        self.round_mut().steps.push(HostStep::SyncStream { device, stream });
        self
    }

    /// Waits for all streams of `device` (an explicit mid-round device
    /// barrier; every round boundary is one implicitly).
    pub fn sync_device(&mut self, device: u32) -> &mut Self {
        self.round_mut().steps.push(HostStep::SyncDevice { device });
        self
    }

    /// Device→device transfer over the directed peer link `src → dst`
    /// (one transaction against `buf`'s replicas).
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_peer(
        &mut self,
        src: u32,
        dst: u32,
        buf: DBuf,
        src_off: u64,
        dst_off: u64,
        words: u64,
    ) -> &mut Self {
        self.round_mut().steps.push(HostStep::TransferPeer {
            src,
            dst,
            buf,
            src_off,
            dst_off,
            words,
        });
        self
    }

    /// Launches the round's kernel.
    pub fn launch(&mut self, kernel: Kernel) -> &mut Self {
        self.round_mut().steps.push(HostStep::Launch(kernel));
        self
    }

    /// Launches the round's kernel sharded over devices by block range.
    pub fn launch_sharded(&mut self, kernel: Kernel, shards: Vec<Shard>) -> &mut Self {
        self.round_mut().steps.push(HostStep::LaunchSharded { kernel, shards });
        self
    }

    /// Closes any open round and validates the program structurally.
    pub fn build(mut self) -> Result<Program, IrError> {
        self.end_round();
        let p = Program {
            name: self.name,
            device_allocs: self.device_allocs,
            host_bufs: self.host_bufs,
            rounds: self.rounds,
        };
        validate::validate_program(&p)?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_builder_nests_structures() {
        let mut kb = KernelBuilder::new("k", 4, 16);
        kb.mov(0, Operand::Imm(1));
        kb.repeat(3, |kb| {
            kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::LoopVar(0));
            kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(2)), |kb| {
                kb.st_shr(AddrExpr::lane(), Operand::Reg(0));
            });
        });
        let k = kb.build();
        assert_eq!(k.body.len(), 2);
        assert_eq!(k.loop_depth(), 1);
        assert_eq!(k.size(), 5);
    }

    #[test]
    fn program_builder_rounds() {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 64);
        let o = pb.host_output("C", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in(h, d, 64);
        pb.launch(KernelBuilder::new("k", 2, 32).build());
        pb.transfer_out(d, o, 64);
        pb.end_round();
        let p = pb.build().unwrap();
        assert_eq!(p.num_rounds(), 1);
        assert_eq!(p.rounds[0].inward(), (64, 1));
        assert_eq!(p.rounds[0].outward(), (64, 1));
    }

    #[test]
    fn build_closes_open_round() {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 8);
        let d = pb.device_alloc("a", 8);
        pb.begin_round();
        pb.transfer_in(h, d, 8);
        pb.launch(KernelBuilder::new("k", 1, 0).build());
        // no end_round()
        let p = pb.build().unwrap();
        assert_eq!(p.num_rounds(), 1);
    }

    #[test]
    fn steps_without_begin_round_open_one() {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 8);
        let d = pb.device_alloc("a", 8);
        pb.transfer_in(h, d, 8);
        pb.launch(KernelBuilder::new("k", 1, 0).build());
        let p = pb.build().unwrap();
        assert_eq!(p.num_rounds(), 1);
    }

    #[test]
    fn buffer_ids_are_sequential() {
        let mut pb = ProgramBuilder::new("p");
        assert_eq!(pb.host_input("A", 1), HBuf(0));
        assert_eq!(pb.host_output("B", 1), HBuf(1));
        assert_eq!(pb.device_alloc("a", 1), DBuf(0));
        assert_eq!(pb.device_alloc("b", 1), DBuf(1));
    }
}
