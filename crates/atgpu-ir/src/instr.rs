//! The instruction set executed in lockstep by a multiprocessor's cores.
//!
//! Mapping to the paper's pseudocode:
//!
//! | Pseudocode | Instruction |
//! |---|---|
//! | `_x[e] ⇐ g[e′]` (global→shared) | [`Instr::GlbToShr`] |
//! | `g[e′] ⇐ _x[e]` (shared→global) | [`Instr::ShrToGlb`] |
//! | `r ← _x[e]` / `_x[e] ← r` | [`Instr::LdShr`] / [`Instr::StShr`] |
//! | arithmetic | [`Instr::Alu`] / [`Instr::Mov`] |
//! | single-conditional `if` | [`Instr::Pred`] |
//! | counted `for` | [`Instr::Repeat`] |
//!
//! Semantics the model prescribes and the simulator honours:
//!
//! * all `b` cores execute each instruction **in lockstep**;
//! * on divergence ([`Instr::Pred`]) **all paths are executed**, inactive
//!   lanes masked off — the time charge is the sum of both arms;
//! * cores may touch global memory only through shared memory
//!   (`⇐` stages data; there is deliberately no global↔register
//!   instruction);
//! * a global access instruction coalesces into as many transactions as
//!   there are distinct memory blocks among the lanes' addresses;
//! * a shared access instruction serialises by its worst bank conflict
//!   (the *model* assumes conflict-free; the *simulator* measures).

use crate::affine::CompiledAddr;
use crate::expr::{AddrExpr, Operand, PredExpr};
use crate::program::DBuf;
use crate::Reg;
use std::fmt;

/// Arithmetic/logic operations, applied per lane to two operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `a + b` (wrapping).
    Add,
    /// `a - b` (wrapping).
    Sub,
    /// `a * b` (wrapping).
    Mul,
    /// `a / b`; division by zero yields 0 (defined for determinism —
    /// real CUDA leaves it undefined).
    Div,
    /// `a mod b`; modulo zero yields 0.
    Rem,
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// `a << b` (shift amount masked to 0..63).
    Shl,
    /// Arithmetic `a >> b` (shift amount masked to 0..63).
    Shr,
    /// `(a < b) as i64`.
    SetLt,
    /// `(a == b) as i64`.
    SetEq,
}

impl AluOp {
    /// Applies the operation to two lane values.
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32 & 63),
            AluOp::Shr => a.wrapping_shr(b as u32 & 63),
            AluOp::SetLt => i64::from(a < b),
            AluOp::SetEq => i64::from(a == b),
        }
    }

    /// Issue cycles the operation occupies on a multiprocessor.  Integer
    /// division and modulo have no dedicated hardware on GPUs and expand
    /// to long instruction sequences (tens of cycles); everything else
    /// single-issues.  Both the simulator's timing and the analyser's
    /// operation count (`tᵢ`) use this weight, so the model and the
    /// machine agree on what an "operation" costs.
    pub fn issue_cycles(self) -> u32 {
        match self {
            AluOp::Div | AluOp::Rem => 16,
            _ => 1,
        }
    }

    /// The operator glyph used by the pretty-printer.
    pub fn glyph(self) -> &'static str {
        match self {
            AluOp::Add => "+",
            AluOp::Sub => "-",
            AluOp::Mul => "·",
            AluOp::Div => "/",
            AluOp::Rem => "mod",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "<<",
            AluOp::Shr => ">>",
            AluOp::SetLt => "<?",
            AluOp::SetEq => "=?",
        }
    }
}

/// A reference into a named device-global buffer: `buf[offset]`, the
/// offset evaluated per lane.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GlobalRef {
    /// The device buffer.
    pub buf: DBuf,
    /// Per-lane word offset into the buffer.
    pub offset: CompiledAddr,
}

impl GlobalRef {
    /// Creates a reference, compiling the offset expression.
    pub fn new(buf: DBuf, offset: AddrExpr) -> Self {
        Self { buf, offset: CompiledAddr::compile(offset) }
    }
}

/// One lockstep instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `dst ← a op b` on registers/immediates.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst ← src` (move/broadcast of an operand into a register).
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `shared[saddr] ⇐ global[gref]` — each active lane copies one word
    /// from global to shared memory.  Coalesces by distinct memory block.
    GlbToShr {
        /// Per-lane shared-memory destination.
        shared: CompiledAddr,
        /// Per-lane global-memory source.
        global: GlobalRef,
    },
    /// `global[gref] ⇐ shared[saddr]` — each active lane copies one word
    /// from shared to global memory.
    ShrToGlb {
        /// Per-lane global-memory destination.
        global: GlobalRef,
        /// Per-lane shared-memory source.
        shared: CompiledAddr,
    },
    /// `dst ← shared[saddr]` — register load from shared memory.
    LdShr {
        /// Destination register.
        dst: Reg,
        /// Per-lane shared-memory source.
        shared: CompiledAddr,
    },
    /// `shared[saddr] ← src` — store an operand to shared memory.
    StShr {
        /// Per-lane shared-memory destination.
        shared: CompiledAddr,
        /// Value to store.
        src: Operand,
    },
    /// Single-conditional divergence: active lanes satisfying `pred` run
    /// `then_body`, the rest run `else_body`; the MP executes **both**
    /// arms back to back (the model's "if execution paths diverge, all
    /// paths are executed").
    Pred {
        /// The per-lane condition.
        pred: PredExpr,
        /// Taken arm.
        then_body: Vec<Instr>,
        /// Untaken arm (may be empty).
        else_body: Vec<Instr>,
    },
    /// A counted loop with a launch-time-constant trip count.  The body
    /// sees the iteration counter as `LoopVar(depth)`.
    Repeat {
        /// Trip count.
        count: u32,
        /// Loop body.
        body: Vec<Instr>,
    },
    /// Intra-block barrier.  With one warp per block it is a single
    /// lockstep operation; it is kept in the ISA because the model's
    /// pseudocode includes synchronisation and multi-warp extensions
    /// need it.
    Sync,
}

impl Instr {
    /// Convenience constructor: `GlbToShr` from expression trees.
    pub fn glb_to_shr(shared: AddrExpr, buf: DBuf, global_off: AddrExpr) -> Instr {
        Instr::GlbToShr {
            shared: CompiledAddr::compile(shared),
            global: GlobalRef::new(buf, global_off),
        }
    }

    /// Convenience constructor: `ShrToGlb` from expression trees.
    pub fn shr_to_glb(buf: DBuf, global_off: AddrExpr, shared: AddrExpr) -> Instr {
        Instr::ShrToGlb {
            global: GlobalRef::new(buf, global_off),
            shared: CompiledAddr::compile(shared),
        }
    }

    /// Convenience constructor: `LdShr` from an expression tree.
    pub fn ld_shr(dst: Reg, shared: AddrExpr) -> Instr {
        Instr::LdShr { dst, shared: CompiledAddr::compile(shared) }
    }

    /// Convenience constructor: `StShr` from an expression tree.
    pub fn st_shr(shared: AddrExpr, src: Operand) -> Instr {
        Instr::StShr { shared: CompiledAddr::compile(shared), src }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, dst, a, b } => write!(f, "r{dst} ← {a} {} {b}", op.glyph()),
            Instr::Mov { dst, src } => write!(f, "r{dst} ← {src}"),
            Instr::GlbToShr { shared, global } => write!(
                f,
                "_s[{}] ⇐ d{}[{}]",
                DisplayAddr(shared),
                global.buf.0,
                DisplayAddr(&global.offset)
            ),
            Instr::ShrToGlb { global, shared } => write!(
                f,
                "d{}[{}] ⇐ _s[{}]",
                global.buf.0,
                DisplayAddr(&global.offset),
                DisplayAddr(shared)
            ),
            Instr::LdShr { dst, shared } => write!(f, "r{dst} ← _s[{}]", DisplayAddr(shared)),
            Instr::StShr { shared, src } => write!(f, "_s[{}] ← {src}", DisplayAddr(shared)),
            Instr::Pred { pred, .. } => write!(f, "if {pred} then …"),
            Instr::Repeat { count, .. } => write!(f, "for t = 0 → {count} do …"),
            Instr::Sync => write!(f, "sync"),
        }
    }
}

/// Displays a compiled address in source-like notation.
struct DisplayAddr<'a>(&'a CompiledAddr);

impl fmt::Display for DisplayAddr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            CompiledAddr::Tree(t) => write!(f, "{t}"),
            CompiledAddr::Affine(a) => {
                fn term(parts: &mut Vec<String>, coef: i64, name: &str) {
                    if coef == 0 {
                        return;
                    }
                    if coef == 1 && !name.is_empty() {
                        parts.push(name.to_string());
                    } else if name.is_empty() {
                        parts.push(coef.to_string());
                    } else {
                        parts.push(format!("{coef}{name}"));
                    }
                }
                let mut parts = Vec::new();
                term(&mut parts, a.block, "i");
                term(&mut parts, a.block_y, "iy");
                let names = ["t0", "t1", "t2", "t3"];
                for (d, &c) in a.loops.iter().enumerate() {
                    term(&mut parts, c, names[d]);
                }
                term(&mut parts, a.lane, "j");
                if let Some((r, c)) = a.reg {
                    term(&mut parts, c, &format!("r{r}"));
                }
                term(&mut parts, a.base, "");
                if parts.is_empty() {
                    parts.push("0".to_string());
                }
                write!(f, "{}", parts.join(" + "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_add_wraps() {
        assert_eq!(AluOp::Add.apply(i64::MAX, 1), i64::MIN);
    }

    #[test]
    fn alu_div_by_zero_defined() {
        assert_eq!(AluOp::Div.apply(5, 0), 0);
        assert_eq!(AluOp::Rem.apply(5, 0), 0);
    }

    #[test]
    fn alu_div_rem() {
        assert_eq!(AluOp::Div.apply(17, 5), 3);
        assert_eq!(AluOp::Rem.apply(17, 5), 2);
    }

    #[test]
    fn alu_comparisons() {
        assert_eq!(AluOp::SetLt.apply(1, 2), 1);
        assert_eq!(AluOp::SetLt.apply(2, 2), 0);
        assert_eq!(AluOp::SetEq.apply(2, 2), 1);
    }

    #[test]
    fn alu_min_max() {
        assert_eq!(AluOp::Min.apply(-1, 3), -1);
        assert_eq!(AluOp::Max.apply(-1, 3), 3);
    }

    #[test]
    fn alu_shifts_mask_amount() {
        assert_eq!(AluOp::Shl.apply(1, 64), 1); // 64 & 63 == 0
        assert_eq!(AluOp::Shl.apply(1, 3), 8);
        assert_eq!(AluOp::Shr.apply(-8, 1), -4); // arithmetic shift
    }

    #[test]
    fn alu_bitwise() {
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn instr_display_glb_to_shr() {
        let i =
            Instr::glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::block() * 32 + AddrExpr::lane());
        let s = i.to_string();
        assert!(s.contains('⇐'), "{s}");
        assert!(s.contains("d0"), "{s}");
    }

    #[test]
    fn instr_display_alu() {
        let i = Instr::Alu { op: AluOp::Add, dst: 2, a: Operand::Reg(0), b: Operand::Reg(1) };
        assert_eq!(i.to_string(), "r2 ← r0 + r1");
    }

    #[test]
    fn instr_display_affine_addr() {
        let i = Instr::ld_shr(0, AddrExpr::lane() * 2 + 5);
        let s = i.to_string();
        assert!(s.contains("2j"), "{s}");
        assert!(s.contains('5'), "{s}");
    }

    #[test]
    fn instr_display_zero_addr() {
        let i = Instr::ld_shr(0, AddrExpr::c(0));
        assert!(i.to_string().contains("_s[0]"));
    }
}
