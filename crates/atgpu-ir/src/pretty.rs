//! Renders programs back into the paper's pseudocode notation.
//!
//! The paper's conventions (§II, *Notation for Pseudocode*):
//!
//! * host variables are capitalised, global variables lower-case, shared
//!   variables prefixed with an underscore;
//! * `W` is host↔device transfer, `⇐` global↔shared access, `←` shared/
//!   register access;
//! * every kernel is wrapped in the parallel wrapper loop over
//!   `mpρ ∈ MP` and `cρ,ε ∈ Cρ`.

use crate::affine::CompiledAddr;
use crate::instr::Instr;
use crate::kernel::Kernel;
use crate::program::{HostBufRole, HostStep, Program};
use std::fmt::Write as _;

/// Line-numbered pseudocode emitter.
struct Renderer {
    out: String,
    line: usize,
}

impl Renderer {
    fn new() -> Self {
        Self { out: String::new(), line: 1 }
    }

    fn raw(&mut self, text: &str) {
        let _ = writeln!(self.out, "{text}");
    }

    fn emit(&mut self, indent: usize, text: &str) {
        let _ = writeln!(self.out, "{:3}: {:indent$}{text}", self.line, "", indent = indent * 2);
        self.line += 1;
    }

    /// Renders a kernel body.  `idx` is the stable pre-order
    /// instruction counter: every [`Instr`] node — including `if`/`for`
    /// headers and `sync` — consumes one index, children numbered after
    /// their parent.  The `▷ #N` annotations match the `kernel@instr#N`
    /// indices in verifier and simulator diagnostics, so a reported site
    /// can be located in the printout by eye.
    fn instrs(
        &mut self,
        body: &[Instr],
        p: &Program,
        indent: usize,
        loop_depth: usize,
        idx: &mut usize,
    ) {
        for i in body {
            let n = *idx;
            *idx += 1;
            match i {
                Instr::Pred { pred, then_body, else_body } => {
                    self.emit(indent, &format!("if {pred} then  ▷ #{n}"));
                    self.instrs(then_body, p, indent + 1, loop_depth, idx);
                    if !else_body.is_empty() {
                        self.emit(indent, "else");
                        self.instrs(else_body, p, indent + 1, loop_depth, idx);
                    }
                    self.emit(indent, "end if");
                }
                Instr::Repeat { count, body } => {
                    self.emit(indent, &format!("for t{loop_depth} = 0 → {count} do  ▷ #{n}"));
                    self.instrs(body, p, indent + 1, loop_depth + 1, idx);
                    self.emit(indent, "end for");
                }
                Instr::GlbToShr { shared, global } => {
                    let name = buf_name(p, global.buf.0);
                    self.emit(
                        indent,
                        &format!(
                            "_s[{}] ⇐ {name}[{}]  ▷ #{n}",
                            AddrText(shared),
                            AddrText(&global.offset)
                        ),
                    );
                }
                Instr::ShrToGlb { global, shared } => {
                    let name = buf_name(p, global.buf.0);
                    self.emit(
                        indent,
                        &format!(
                            "{name}[{}] ⇐ _s[{}]  ▷ #{n}",
                            AddrText(&global.offset),
                            AddrText(shared)
                        ),
                    );
                }
                other => self.emit(indent, &format!("{other}  ▷ #{n}")),
            }
        }
    }

    fn kernel(&mut self, k: &Kernel, p: &Program, indent: usize) {
        self.emit(
            indent,
            &format!(
                "for all mpρ ∈ MP[mp0, …, mp{}] in parallel do  ▷ {}",
                k.blocks().saturating_sub(1),
                k.name
            ),
        );
        self.emit(indent + 1, "for all cρ,ε ∈ Cρ in parallel do");
        let mut idx = 0;
        self.instrs(&k.body, p, indent + 2, 0, &mut idx);
        self.emit(indent + 1, "end for");
        self.emit(indent, "end for");
    }
}

/// Renders a whole program — header, transfers (`W`), wrapper loops and
/// kernel bodies — as paper-style pseudocode.
pub fn render_program(p: &Program) -> String {
    let mut r = Renderer::new();
    r.raw(&format!("Pseudocode {}", p.name));
    let inputs: Vec<String> = p
        .host_bufs
        .iter()
        .filter(|b| b.role == HostBufRole::Input)
        .map(|b| format!("{} ({} words)", b.name, b.words))
        .collect();
    let outputs: Vec<String> = p
        .host_bufs
        .iter()
        .filter(|b| b.role == HostBufRole::Output)
        .map(|b| format!("{} ({} words)", b.name, b.words))
        .collect();
    if !inputs.is_empty() {
        r.raw(&format!("Input: {}", inputs.join(", ")));
    }
    if !outputs.is_empty() {
        r.raw(&format!("Output: {}", outputs.join(", ")));
    }

    for (ri, round) in p.rounds.iter().enumerate() {
        if p.rounds.len() > 1 {
            r.raw(&format!("▷ Round {}", ri + 1));
        }
        for step in &round.steps {
            match step {
                HostStep::TransferIn { host, host_off, dev, dev_off, words, device, stream } => {
                    let h = &p.host_bufs[host.0 as usize].name;
                    let d = &p.device_allocs[dev.0 as usize].name;
                    let at = site_tag(*device, *stream);
                    let text = if *host_off == 0 && *dev_off == 0 {
                        format!("{d}{at} W {h}  ▷ transfer {words} words to device")
                    } else {
                        format!(
                            "{d}{at}[{dev_off}..] W {h}[{host_off}..]  ▷ transfer {words} words to device"
                        )
                    };
                    r.emit(0, &text);
                }
                HostStep::TransferOut { dev, dev_off, host, host_off, words, device, stream } => {
                    let h = &p.host_bufs[host.0 as usize].name;
                    let d = &p.device_allocs[dev.0 as usize].name;
                    let at = site_tag(*device, *stream);
                    let text = if *host_off == 0 && *dev_off == 0 {
                        format!("{h} W {d}{at}  ▷ transfer {words} words to host")
                    } else {
                        format!(
                            "{h}[{host_off}..] W {d}{at}[{dev_off}..]  ▷ transfer {words} words to host"
                        )
                    };
                    r.emit(0, &text);
                }
                HostStep::SyncStream { device, stream } => {
                    r.emit(0, &format!("sync stream s{stream}{}", site_tag(*device, 0)));
                }
                HostStep::SyncDevice { device } => {
                    r.emit(0, &format!("sync device{}", site_tag(*device, 0)));
                }
                HostStep::TransferPeer { src, dst, buf, src_off, dst_off, words } => {
                    let d = &p.device_allocs[buf.0 as usize].name;
                    r.emit(
                        0,
                        &format!(
                            "{d}@gpu{dst}[{dst_off}..] W {d}@gpu{src}[{src_off}..]  \
                             ▷ peer-transfer {words} words"
                        ),
                    );
                }
                HostStep::Launch(k) => r.kernel(k, p, 0),
                HostStep::LaunchSharded { kernel: k, shards } => {
                    let plan: Vec<String> = shards
                        .iter()
                        .map(|s| format!("gpu{}: i ∈ [{}, {})", s.device, s.start, s.end))
                        .collect();
                    r.emit(0, &format!("▷ sharded launch: {}", plan.join(", ")));
                    r.kernel(k, p, 0);
                }
            }
        }
    }
    r.out
}

/// Renders one kernel (with the wrapper loop) as pseudocode.
pub fn render_kernel(k: &Kernel, p: &Program) -> String {
    let mut r = Renderer::new();
    r.kernel(k, p, 0);
    r.out
}

/// Device/stream suffix for a transfer site: nothing for the default
/// device 0 / stream 0, `@gpu2`, `@s1`, or `@gpu2.s1`.
fn site_tag(device: u32, stream: u32) -> String {
    match (device, stream) {
        (0, 0) => String::new(),
        (d, 0) => format!("@gpu{d}"),
        (0, s) => format!("@s{s}"),
        (d, s) => format!("@gpu{d}.s{s}"),
    }
}

fn buf_name(p: &Program, id: u32) -> String {
    p.device_allocs.get(id as usize).map(|a| a.name.clone()).unwrap_or_else(|| format!("d{id}"))
}

struct AddrText<'a>(&'a CompiledAddr);

impl std::fmt::Display for AddrText<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            CompiledAddr::Tree(t) => write!(f, "{t}"),
            CompiledAddr::Affine(a) => {
                let mut parts: Vec<String> = Vec::new();
                let names = ["t0", "t1", "t2", "t3"];
                let push = |parts: &mut Vec<String>, c: i64, n: &str| {
                    if c == 0 {
                        return;
                    }
                    if c == 1 && !n.is_empty() {
                        parts.push(n.to_string());
                    } else if n.is_empty() {
                        parts.push(c.to_string());
                    } else {
                        parts.push(format!("{c}{n}"));
                    }
                };
                push(&mut parts, a.block, "i");
                push(&mut parts, a.block_y, "iy");
                for (d, &c) in a.loops.iter().enumerate() {
                    push(&mut parts, c, names[d]);
                }
                push(&mut parts, a.lane, "j");
                if let Some((r, c)) = a.reg {
                    push(&mut parts, c, &format!("r{r}"));
                }
                push(&mut parts, a.base, "");
                if parts.is_empty() {
                    parts.push("0".into());
                }
                write!(f, "{}", parts.join(" + "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{KernelBuilder, ProgramBuilder};
    use crate::expr::{AddrExpr, Operand, PredExpr};
    use crate::instr::AluOp;

    fn vecadd_like() -> (Program, Kernel) {
        let mut pb = ProgramBuilder::new("vecadd");
        let ha = pb.host_input("A", 64);
        let hc = pb.host_output("C", 64);
        let da = pb.device_alloc("a", 64);
        let dc = pb.device_alloc("c", 64);
        let mut kb = KernelBuilder::new("vecadd_kernel", 2, 64);
        kb.glb_to_shr(AddrExpr::lane(), da, AddrExpr::block() * 32 + AddrExpr::lane());
        kb.ld_shr(0, AddrExpr::lane());
        kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Imm(1));
        kb.st_shr(AddrExpr::lane() + 32, Operand::Reg(0));
        kb.shr_to_glb(dc, AddrExpr::block() * 32 + AddrExpr::lane(), AddrExpr::lane() + 32);
        let k = kb.build();
        pb.begin_round();
        pb.transfer_in(ha, da, 64);
        pb.launch(k.clone());
        pb.transfer_out(dc, hc, 64);
        let p = pb.build().unwrap();
        (p, k)
    }

    #[test]
    fn kernel_renders_wrapper_loop() {
        let (p, k) = vecadd_like();
        let s = render_kernel(&k, &p);
        assert!(s.contains("for all mpρ ∈ MP"), "{s}");
        assert!(s.contains("for all cρ,ε ∈ Cρ"), "{s}");
        assert!(s.contains("end for"), "{s}");
    }

    #[test]
    fn kernel_renders_transfer_operators() {
        let (p, k) = vecadd_like();
        let s = render_kernel(&k, &p);
        assert!(s.contains('⇐'), "{s}");
        assert!(s.contains('←'), "{s}");
        assert!(s.contains("a[32i + j]"), "{s}");
        assert!(s.contains("c[32i + j]"), "{s}");
    }

    #[test]
    fn program_renders_w_operator() {
        let (p, _) = vecadd_like();
        let s = render_program(&p);
        assert!(s.contains("a W A"), "{s}");
        assert!(s.contains("C W c"), "{s}");
    }

    #[test]
    fn program_lines_are_numbered() {
        let (p, _) = vecadd_like();
        let s = render_program(&p);
        assert!(s.contains("  1: "), "{s}");
        assert!(s.contains("  2: "), "{s}");
    }

    #[test]
    fn pred_renders_if_block() {
        let p = {
            let mut pb = ProgramBuilder::new("t");
            let _ = pb.device_alloc("a", 64);
            pb.begin_round();
            pb.launch(KernelBuilder::new("k", 1, 0).build());
            pb.build().unwrap()
        };
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.pred(
            PredExpr::Lt(Operand::Lane, Operand::Imm(16)),
            |kb| {
                kb.st_shr(AddrExpr::lane(), Operand::Imm(1));
            },
            |kb| {
                kb.st_shr(AddrExpr::lane(), Operand::Imm(0));
            },
        );
        let s = render_kernel(&kb.build(), &p);
        assert!(s.contains("if j < 16 then"), "{s}");
        assert!(s.contains("else"), "{s}");
        assert!(s.contains("end if"), "{s}");
    }

    #[test]
    fn repeat_renders_for_loop_with_depth_label() {
        let p = {
            let mut pb = ProgramBuilder::new("t");
            pb.begin_round();
            pb.launch(KernelBuilder::new("k", 1, 0).build());
            pb.build().unwrap()
        };
        let mut kb = KernelBuilder::new("k", 1, 0);
        kb.repeat(8, |kb| {
            kb.repeat(4, |kb| {
                kb.sync();
            });
        });
        let s = render_kernel(&kb.build(), &p);
        assert!(s.contains("for t0 = 0 → 8 do"), "{s}");
        assert!(s.contains("for t1 = 0 → 4 do"), "{s}");
    }

    #[test]
    fn instruction_indices_are_preorder() {
        let (p, _) = vecadd_like();
        let mut kb = KernelBuilder::new("k", 1, 64);
        kb.repeat(2, |kb| {
            // #1 inside the #0 for-header.
            kb.ld_shr(0, AddrExpr::lane());
        });
        kb.pred(
            PredExpr::Lt(Operand::Lane, Operand::Imm(16)),
            |kb| {
                kb.st_shr(AddrExpr::lane(), Operand::Imm(1)); // #3
            },
            |kb| {
                kb.sync(); // #4
            },
        );
        let s = render_kernel(&kb.build(), &p);
        assert!(s.contains("for t0 = 0 → 2 do  ▷ #0"), "{s}");
        assert!(s.contains("▷ #1"), "{s}");
        assert!(s.contains("if j < 16 then  ▷ #2"), "{s}");
        assert!(s.contains("▷ #3"), "{s}");
        assert!(s.contains("▷ #4"), "{s}");
    }

    #[test]
    fn multi_round_program_labels_rounds() {
        let mut pb = ProgramBuilder::new("r");
        let h = pb.host_input("A", 8);
        let d = pb.device_alloc("a", 8);
        pb.begin_round();
        pb.transfer_in(h, d, 8);
        pb.launch(KernelBuilder::new("k1", 1, 0).build());
        pb.begin_round();
        pb.launch(KernelBuilder::new("k2", 1, 0).build());
        let p = pb.build().unwrap();
        let s = render_program(&p);
        assert!(s.contains("Round 1"), "{s}");
        assert!(s.contains("Round 2"), "{s}");
    }

    #[test]
    fn streamed_steps_render_tags() {
        let mut pb = ProgramBuilder::new("dbuf");
        let h = pb.host_input("A", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in_streamed(0, 1, h, 0, d, 0, 64);
        pb.sync_stream(0, 1);
        pb.sync_device(2);
        pb.launch(KernelBuilder::new("k", 1, 0).build());
        let p = pb.build().unwrap();
        let s = render_program(&p);
        assert!(s.contains("a@s1 W A"), "{s}");
        assert!(s.contains("sync stream s1"), "{s}");
        assert!(s.contains("sync device@gpu2"), "{s}");
    }

    #[test]
    fn offset_transfers_render_ranges() {
        let mut pb = ProgramBuilder::new("chunked");
        let h = pb.host_input("A", 64);
        let d = pb.device_alloc("a", 32);
        pb.begin_round();
        pb.transfer_in_at(h, 32, d, 0, 32);
        pb.launch(KernelBuilder::new("k", 1, 0).build());
        let p = pb.build().unwrap();
        let s = render_program(&p);
        assert!(s.contains("a[0..] W A[32..]"), "{s}");
    }
}
