//! Host-level programs: device allocations, rounds, `W` transfers and
//! kernel launches.
//!
//! Execution of an ATGPU algorithm proceeds in rounds (§II): "A round
//! begins by the host transferring data to the device global memory.  The
//! kernel is then ran […].  The round ends with output data being
//! transferred from global memory to the host.  Synchronisation operations
//! occur, and the subsequent round commences."
//!
//! Each [`HostStep::TransferIn`]/[`HostStep::TransferOut`] is **one
//! transfer transaction** — it contributes 1 to `Îᵢ`/`Ôᵢ` and its word
//! count to `Iᵢ`/`Oᵢ`.  Splitting a logical copy across several steps is
//! how algorithms express chunked communication schemes (and pay `α` per
//! chunk, exactly the trade-off Boyer et al.'s function models).

use crate::kernel::Kernel;
use std::fmt;

/// Identifier of a device-global buffer (index into
/// [`Program::device_allocs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DBuf(pub u32);

/// Identifier of a host buffer (index into [`Program::host_bufs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HBuf(pub u32);

impl fmt::Display for DBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for HBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A device-global allocation, named for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceAlloc {
    /// Buffer name (pseudocode uses lower-case names for global
    /// variables).
    pub name: String,
    /// Size in words.
    pub words: u64,
}

/// Role of a host buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostBufRole {
    /// Input: supplied by the caller, read by `TransferIn`.
    Input,
    /// Output: written by `TransferOut`, returned to the caller.
    Output,
}

/// A host buffer declaration (pseudocode uses capitalised names for host
/// variables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostBufDecl {
    /// Buffer name.
    pub name: String,
    /// Size in words.
    pub words: u64,
    /// Input or output.
    pub role: HostBufRole,
}

/// One contiguous block range of a sharded launch, assigned to one
/// device: blocks `start..end` of the kernel's linear grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Executing device index.
    pub device: u32,
    /// First block (inclusive).
    pub start: u64,
    /// One past the last block (exclusive).
    pub end: u64,
}

impl Shard {
    /// Number of blocks in the shard.
    #[inline]
    pub fn blocks(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// One step of a round, executed by the host in order.
///
/// Transfers carry a `device` index so a program can address a
/// multi-device system (every device holds a replica of the declared
/// buffer layout); single-device programs use device 0 throughout and
/// never notice.
///
/// ## Streams
///
/// Transfers additionally carry a **stream** id (< [`crate::MAX_STREAMS`]).
/// Streams are per-device timing queues: within one round, work on the
/// same stream of a device is serial, while work on different streams may
/// overlap in time (copy/compute overlap).  Kernel launches always run on
/// **stream 0**, the compute stream.  Streams never change *functional*
/// semantics — execution is defined by host-step order; only the round's
/// modelled duration is affected.  [`HostStep::SyncStream`] and
/// [`HostStep::SyncDevice`] insert ordering points, and every round
/// boundary is an implicit device-wide synchronisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostStep {
    /// `dev[dev_off..] W host[host_off..][..words]` — one host→device
    /// transfer transaction over `device`'s host link.
    TransferIn {
        /// Source host buffer.
        host: HBuf,
        /// Word offset into the host buffer.
        host_off: u64,
        /// Destination device buffer.
        dev: DBuf,
        /// Word offset into the device buffer.
        dev_off: u64,
        /// Words to copy.
        words: u64,
        /// Destination device index (0 on a single-device system).
        device: u32,
        /// Stream the transfer is enqueued on (0 = the default stream,
        /// serial with the kernel).
        stream: u32,
    },
    /// `host[host_off..] W dev[dev_off..][..words]` — one device→host
    /// transfer transaction over `device`'s host link.
    TransferOut {
        /// Source device buffer.
        dev: DBuf,
        /// Word offset into the device buffer.
        dev_off: u64,
        /// Destination host buffer.
        host: HBuf,
        /// Word offset into the host buffer.
        host_off: u64,
        /// Words to copy.
        words: u64,
        /// Source device index (0 on a single-device system).
        device: u32,
        /// Stream the transfer is enqueued on (0 = the default stream,
        /// serial with the kernel).
        stream: u32,
    },
    /// Block until everything previously enqueued on `stream` of `device`
    /// has completed: later steps of the round (on any stream of that
    /// device) start no earlier.  A sync on an idle stream is a no-op.
    SyncStream {
        /// Device whose stream is synchronised.
        device: u32,
        /// The stream to wait for.
        stream: u32,
    },
    /// Block until everything previously enqueued on **all** streams of
    /// `device` has completed (the per-round barrier every round ends
    /// with, made explicit mid-round).
    SyncDevice {
        /// Device to synchronise.
        device: u32,
    },
    /// One device→device transfer transaction over the directed peer
    /// link `src → dst`, copying a region of `buf`'s replica.
    TransferPeer {
        /// Source device index.
        src: u32,
        /// Destination device index.
        dst: u32,
        /// Device buffer whose replicas are involved.
        buf: DBuf,
        /// Word offset into the source replica.
        src_off: u64,
        /// Word offset into the destination replica.
        dst_off: u64,
        /// Words to copy.
        words: u64,
    },
    /// Launch the round's kernel.
    Launch(Kernel),
    /// Launch the round's kernel sharded across devices: the shards must
    /// partition the grid `0..kernel.blocks()` into disjoint ranges.
    LaunchSharded {
        /// The kernel, shared by every shard.
        kernel: Kernel,
        /// The shard plan.
        shards: Vec<Shard>,
    },
}

/// A round: inward transfers, at most one launch, outward transfers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Round {
    /// The steps, in host order.
    pub steps: Vec<HostStep>,
}

impl Round {
    /// The round's kernel, if it launches one (plain or sharded).
    pub fn kernel(&self) -> Option<&Kernel> {
        self.steps.iter().find_map(|s| match s {
            HostStep::Launch(k) | HostStep::LaunchSharded { kernel: k, .. } => Some(k),
            _ => None,
        })
    }

    /// The round's shard plan, if its launch is sharded.
    pub fn shards(&self) -> Option<&[Shard]> {
        self.steps.iter().find_map(|s| match s {
            HostStep::LaunchSharded { shards, .. } => Some(shards.as_slice()),
            _ => None,
        })
    }

    /// Peer-transfer `(words, transactions)` over all device↔device
    /// steps of the round.
    pub fn peer(&self) -> (u64, u64) {
        let mut words = 0;
        let mut txns = 0;
        for s in &self.steps {
            if let HostStep::TransferPeer { words: w, .. } = s {
                words += w;
                txns += 1;
            }
        }
        (words, txns)
    }

    /// Inward `(words, transactions)` = `(Iᵢ, Îᵢ)`.
    pub fn inward(&self) -> (u64, u64) {
        let mut words = 0;
        let mut txns = 0;
        for s in &self.steps {
            if let HostStep::TransferIn { words: w, .. } = s {
                words += w;
                txns += 1;
            }
        }
        (words, txns)
    }

    /// Outward `(words, transactions)` = `(Oᵢ, Ôᵢ)`.
    pub fn outward(&self) -> (u64, u64) {
        let mut words = 0;
        let mut txns = 0;
        for s in &self.steps {
            if let HostStep::TransferOut { words: w, .. } = s {
                words += w;
                txns += 1;
            }
        }
        (words, txns)
    }
}

/// A complete multi-round ATGPU program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Device-global allocations (made once, before round 1 — matching
    /// how the paper's kernels `cudaMalloc` up front).
    pub device_allocs: Vec<DeviceAlloc>,
    /// Host buffers the program exchanges data with.
    pub host_bufs: Vec<HostBufDecl>,
    /// The rounds, in order.
    pub rounds: Vec<Round>,
}

impl Program {
    /// Total device-global words allocated — the model's global-memory
    /// space metric, checked against `G`.
    pub fn device_words(&self) -> u64 {
        self.device_allocs.iter().map(|a| a.words).sum()
    }

    /// Size lookup for a device buffer.
    pub fn device_buf_words(&self, buf: DBuf) -> Option<u64> {
        self.device_allocs.get(buf.0 as usize).map(|a| a.words)
    }

    /// Size lookup for a host buffer.
    pub fn host_buf_words(&self, buf: HBuf) -> Option<u64> {
        self.host_bufs.get(buf.0 as usize).map(|b| b.words)
    }

    /// Total words transferred in both directions, `Σᵢ (Iᵢ + Oᵢ)`.
    pub fn total_transfer_words(&self) -> u64 {
        self.rounds.iter().map(|r| r.inward().0 + r.outward().0).sum()
    }

    /// `R`, the number of rounds.
    pub fn num_rounds(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// The highest device index any step addresses — the program needs a
    /// system of at least `max_device() + 1` devices.  Single-device
    /// programs return 0.
    pub fn max_device(&self) -> u32 {
        let mut max = 0u32;
        for round in &self.rounds {
            for step in &round.steps {
                match step {
                    HostStep::TransferIn { device, .. }
                    | HostStep::TransferOut { device, .. }
                    | HostStep::SyncStream { device, .. }
                    | HostStep::SyncDevice { device } => {
                        max = max.max(*device);
                    }
                    HostStep::TransferPeer { src, dst, .. } => max = max.max(*src).max(*dst),
                    HostStep::LaunchSharded { shards, .. } => {
                        for s in shards {
                            max = max.max(s.device);
                        }
                    }
                    HostStep::Launch(_) => {}
                }
            }
        }
        max
    }

    /// Whether any step uses a non-default stream or an explicit sync —
    /// i.e. whether the program can overlap at all.
    pub fn uses_streams(&self) -> bool {
        self.rounds.iter().flat_map(|r| r.steps.iter()).any(|s| match s {
            HostStep::TransferIn { stream, .. } | HostStep::TransferOut { stream, .. } => {
                *stream != 0
            }
            HostStep::SyncStream { .. } | HostStep::SyncDevice { .. } => true,
            _ => false,
        })
    }

    /// The program's serial **de-streamed form**: every transfer moved to
    /// stream 0 and every explicit sync dropped.  Functional semantics
    /// are defined by host-step order, so the de-streamed program is
    /// bit-identical in outputs — only its modelled time differs (no
    /// overlap).  The differential suite pins this down.
    pub fn destreamed(&self) -> Program {
        let mut p = self.clone();
        for round in &mut p.rounds {
            round.steps.retain(|s| {
                !matches!(s, HostStep::SyncStream { .. } | HostStep::SyncDevice { .. })
            });
            for step in &mut round.steps {
                match step {
                    HostStep::TransferIn { stream, .. } | HostStep::TransferOut { stream, .. } => {
                        *stream = 0;
                    }
                    _ => {}
                }
            }
        }
        p
    }

    /// Canonical device-memory layout: buffers packed in declaration
    /// order, each aligned up to a `block_words` boundary (so a buffer's
    /// coalescing behaviour never depends on its neighbours).  Both the
    /// analyser and the simulator use this layout, which is what makes the
    /// analyser's transaction counts comparable with the simulator's.
    ///
    /// Returns `(base_addresses, total_words)`.
    pub fn buffer_layout(&self, block_words: u64) -> (Vec<u64>, u64) {
        assert!(block_words > 0, "block size must be positive");
        let mut bases = Vec::with_capacity(self.device_allocs.len());
        let mut cursor = 0u64;
        for a in &self.device_allocs {
            bases.push(cursor);
            let padded = a.words.div_ceil(block_words) * block_words;
            cursor += padded;
        }
        (bases, cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xfer_in(words: u64) -> HostStep {
        HostStep::TransferIn {
            host: HBuf(0),
            host_off: 0,
            dev: DBuf(0),
            dev_off: 0,
            words,
            device: 0,
            stream: 0,
        }
    }

    fn xfer_out(words: u64) -> HostStep {
        HostStep::TransferOut {
            dev: DBuf(0),
            dev_off: 0,
            host: HBuf(0),
            host_off: 0,
            words,
            device: 0,
            stream: 0,
        }
    }

    #[test]
    fn peer_and_shard_helpers() {
        let peer = HostStep::TransferPeer {
            src: 0,
            dst: 2,
            buf: DBuf(0),
            src_off: 0,
            dst_off: 8,
            words: 16,
        };
        let r = Round { steps: vec![xfer_in(4), peer] };
        assert_eq!(r.peer(), (16, 1));
        assert_eq!(r.inward(), (4, 1));
        assert_eq!(Shard { device: 1, start: 4, end: 10 }.blocks(), 6);
        let p = Program {
            name: "p".into(),
            device_allocs: vec![DeviceAlloc { name: "a".into(), words: 64 }],
            host_bufs: vec![HostBufDecl { name: "A".into(), words: 64, role: HostBufRole::Input }],
            rounds: vec![r],
        };
        assert_eq!(p.max_device(), 2);
    }

    #[test]
    fn round_counts_transfers() {
        let r = Round { steps: vec![xfer_in(10), xfer_in(20), xfer_out(5)] };
        assert_eq!(r.inward(), (30, 2));
        assert_eq!(r.outward(), (5, 1));
    }

    #[test]
    fn round_without_kernel() {
        let r = Round { steps: vec![xfer_in(1)] };
        assert!(r.kernel().is_none());
    }

    #[test]
    fn program_totals() {
        let p = Program {
            name: "p".into(),
            device_allocs: vec![
                DeviceAlloc { name: "a".into(), words: 100 },
                DeviceAlloc { name: "b".into(), words: 50 },
            ],
            host_bufs: vec![HostBufDecl { name: "A".into(), words: 100, role: HostBufRole::Input }],
            rounds: vec![Round { steps: vec![xfer_in(100)] }, Round { steps: vec![xfer_out(50)] }],
        };
        assert_eq!(p.device_words(), 150);
        assert_eq!(p.total_transfer_words(), 150);
        assert_eq!(p.num_rounds(), 2);
        assert_eq!(p.device_buf_words(DBuf(1)), Some(50));
        assert_eq!(p.device_buf_words(DBuf(2)), None);
        assert_eq!(p.host_buf_words(HBuf(0)), Some(100));
        assert_eq!(p.host_buf_words(HBuf(1)), None);
    }

    #[test]
    fn ids_display() {
        assert_eq!(DBuf(3).to_string(), "d3");
        assert_eq!(HBuf(1).to_string(), "h1");
    }

    #[test]
    fn buffer_layout_aligns_to_blocks() {
        let p = Program {
            name: "p".into(),
            device_allocs: vec![
                DeviceAlloc { name: "a".into(), words: 33 }, // pads to 64
                DeviceAlloc { name: "b".into(), words: 32 }, // exact
                DeviceAlloc { name: "c".into(), words: 1 },  // pads to 32
            ],
            host_bufs: vec![],
            rounds: vec![Round::default()],
        };
        let (bases, total) = p.buffer_layout(32);
        assert_eq!(bases, vec![0, 64, 96]);
        assert_eq!(total, 128);
    }

    #[test]
    fn destreaming_strips_streams_and_syncs() {
        let mut streamed = xfer_in(4);
        if let HostStep::TransferIn { stream, .. } = &mut streamed {
            *stream = 2;
        }
        let r = Round {
            steps: vec![
                streamed,
                HostStep::SyncStream { device: 1, stream: 2 },
                HostStep::SyncDevice { device: 3 },
                xfer_out(4),
            ],
        };
        let p = Program {
            name: "p".into(),
            device_allocs: vec![DeviceAlloc { name: "a".into(), words: 64 }],
            host_bufs: vec![HostBufDecl { name: "A".into(), words: 64, role: HostBufRole::Input }],
            rounds: vec![r],
        };
        assert!(p.uses_streams());
        // Sync steps count toward the device requirement.
        assert_eq!(p.max_device(), 3);
        let d = p.destreamed();
        assert!(!d.uses_streams());
        assert_eq!(d.rounds[0].steps.len(), 2);
        assert_eq!(d.rounds[0].inward(), (4, 1));
        assert_eq!(d.rounds[0].outward(), (4, 1));
        // De-streaming is idempotent.
        assert_eq!(d.destreamed(), d);
    }

    #[test]
    fn buffer_layout_empty() {
        let p = Program {
            name: "p".into(),
            device_allocs: vec![],
            host_bufs: vec![],
            rounds: vec![Round::default()],
        };
        let (bases, total) = p.buffer_layout(32);
        assert!(bases.is_empty());
        assert_eq!(total, 0);
    }
}
