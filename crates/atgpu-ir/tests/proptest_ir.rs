//! Property tests for the IR: affine lowering equivalence, ALU semantics,
//! builder/validator round trips.

use atgpu_ir::affine::{lower, CompiledAddr};
use atgpu_ir::{validate, AddrExpr, AluOp, KernelBuilder, Operand, PredExpr};
use proptest::prelude::*;

/// Random address expressions, biased towards affine shapes but including
/// register terms and non-affine products.
fn addr_expr() -> impl Strategy<Value = AddrExpr> {
    let leaf = prop_oneof![
        4 => (-128i64..128).prop_map(AddrExpr::Const),
        3 => Just(AddrExpr::Lane),
        2 => Just(AddrExpr::Block),
        1 => Just(AddrExpr::BlockY),
        2 => (0u8..3).prop_map(AddrExpr::LoopVar),
        1 => (0u8..4).prop_map(AddrExpr::Reg),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| AddrExpr::Add(Box::new(a), Box::new(b))),
            2 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| AddrExpr::Sub(Box::new(a), Box::new(b))),
            2 => (inner, inner_const()).prop_map(|(a, c)| AddrExpr::Mul(Box::new(a), Box::new(c))),
        ]
    })
}

fn inner_const() -> impl Strategy<Value = AddrExpr> {
    (-16i64..16).prop_map(AddrExpr::Const)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whenever lowering succeeds, affine evaluation equals tree
    /// evaluation at arbitrary coordinates and register values.
    #[test]
    fn lowering_is_semantics_preserving(
        e in addr_expr(),
        lane in 0i64..64,
        bx in 0i64..128,
        by in 0i64..128,
        loops in prop::collection::vec(0u32..16, 0..3),
        regv in -100i64..100,
    ) {
        if let Some(a) = lower(&e) {
            let mut rr = |_| regv;
            let tree = e.eval(lane, (bx, by), &loops, &mut rr);
            let aff = a.eval(lane, (bx, by), &loops, |_| regv);
            prop_assert_eq!(tree, aff);
        }
    }

    /// CompiledAddr::compile never changes semantics, affine or not.
    #[test]
    fn compile_preserves_semantics(
        e in addr_expr(),
        lane in 0i64..32,
        bx in 0i64..32,
        regv in -50i64..50,
    ) {
        let c = CompiledAddr::compile(e.clone());
        let mut r1 = |_| regv;
        let mut r2 = |_| regv;
        prop_assert_eq!(
            e.eval(lane, (bx, 0), &[1, 2], &mut r1),
            c.eval(lane, (bx, 0), &[1, 2], &mut r2)
        );
    }

    /// max_reg/max_loop_var are sound: compile never reports a register
    /// the tree does not contain.  (Lowering may legitimately *discover*
    /// staticness the tree hides — e.g. a register scaled by zero — so the
    /// checks are implications, not equalities.)
    #[test]
    fn static_summaries_sound(e in addr_expr()) {
        let c = CompiledAddr::compile(e.clone());
        if e.max_reg().is_none() {
            prop_assert!(c.is_static());
        }
        if !c.is_static() {
            prop_assert!(e.max_reg().is_some());
        }
        if let Some(d) = c.max_loop_var() {
            prop_assert!(e.max_loop_var().is_some_and(|t| t >= d));
        }
    }

    /// ALU semantics agree with the i64 reference operations.
    #[test]
    fn alu_matches_reference(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(AluOp::Add.apply(a, b), a.wrapping_add(b));
        prop_assert_eq!(AluOp::Sub.apply(a, b), a.wrapping_sub(b));
        prop_assert_eq!(AluOp::Mul.apply(a, b), a.wrapping_mul(b));
        prop_assert_eq!(AluOp::Min.apply(a, b), a.min(b));
        prop_assert_eq!(AluOp::Max.apply(a, b), a.max(b));
        prop_assert_eq!(AluOp::And.apply(a, b), a & b);
        prop_assert_eq!(AluOp::Or.apply(a, b), a | b);
        prop_assert_eq!(AluOp::Xor.apply(a, b), a ^ b);
        prop_assert_eq!(AluOp::SetLt.apply(a, b), i64::from(a < b));
        prop_assert_eq!(AluOp::SetEq.apply(a, b), i64::from(a == b));
        if b != 0 {
            prop_assert_eq!(AluOp::Div.apply(a, b), a.wrapping_div(b));
            prop_assert_eq!(AluOp::Rem.apply(a, b), a.wrapping_rem(b));
        } else {
            prop_assert_eq!(AluOp::Div.apply(a, b), 0);
            prop_assert_eq!(AluOp::Rem.apply(a, b), 0);
        }
    }

    /// Division and modulo are consistent: a = (a/b)*b + a%b for b ≠ 0.
    #[test]
    fn div_rem_identity(a in -1_000_000i64..1_000_000, b in 1i64..1000) {
        let q = AluOp::Div.apply(a, b);
        let r = AluOp::Rem.apply(a, b);
        prop_assert_eq!(a, q * b + r);
    }

    /// Builder-produced kernels with in-range registers and loop vars
    /// always validate.
    #[test]
    fn builder_kernels_validate(
        regs in prop::collection::vec(0u8..atgpu_ir::MAX_REGS, 1..8),
        trip in 1u32..10,
    ) {
        let mut kb = KernelBuilder::new("p", 4, 64);
        for (i, &r) in regs.iter().enumerate() {
            kb.mov(r, Operand::Imm(i as i64));
        }
        kb.repeat(trip, |kb| {
            kb.alu(AluOp::Add, regs[0], Operand::LoopVar(0), Operand::Imm(1));
            kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(2)), |kb| {
                kb.st_shr(AddrExpr::lane(), Operand::Reg(regs[0]));
            });
        });
        prop_assert!(validate::validate_kernel(&kb.build()).is_ok());
    }

    /// Pretty-printing any valid kernel terminates and mentions every
    /// structural keyword it should.
    #[test]
    fn pretty_never_panics(trip in 1u32..5, guard in 0i64..32) {
        let mut pb = atgpu_ir::ProgramBuilder::new("t");
        let d = pb.device_alloc("a", 64);
        let mut kb = KernelBuilder::new("k", 2, 64);
        kb.repeat(trip, |kb| {
            kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::block() * 32 + AddrExpr::lane());
            kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(guard)), |kb| {
                kb.sync();
            });
        });
        pb.begin_round();
        pb.launch(kb.build());
        let p = pb.build().unwrap();
        let text = atgpu_ir::pretty::render_program(&p);
        prop_assert!(text.contains("for t0 = 0 →"));
        prop_assert!(text.contains('⇐'));
    }
}
