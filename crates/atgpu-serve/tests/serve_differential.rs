//! Concurrent-correctness differential for the serving layer.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Bit-identity under concurrency** — N clients submitting a mix
//!    of programs through one shared [`CostServer`] get reports
//!    bit-identical (outputs *and* observed per-round timings) to
//!    sequential solo [`run_cluster_program`] runs of the same
//!    programs.  The only shared mutable state is the per-device
//!    kernel cache, which must never change results.
//! 2. **Pricing accuracy** — the analytic fast path's quotes match the
//!    simulator's observed totals within the E-sweep tolerance (10%).

use atgpu_algos::stencil::Stencil;
use atgpu_algos::vecadd::VecAdd;
use atgpu_algos::workload::{test_machine, test_spec, BuiltProgram};
use atgpu_model::{AtgpuMachine, ClusterSpec};
use atgpu_serve::{CostServer, PriceSource, ServerConfig};
use atgpu_sim::{run_cluster_program, ClusterSimReport, SimConfig};
use proptest::prelude::*;

const TOLERANCE: f64 = 0.10;

fn machine() -> AtgpuMachine {
    test_machine()
}

fn spec(devices: usize) -> ClusterSpec {
    ClusterSpec::homogeneous(devices, test_spec())
}

/// The program mix clients submit: sharded vector additions of several
/// sizes plus a single-device (plain-launch) program, exercising both
/// launch paths through the shared cluster.
fn program_mix(machine: &AtgpuMachine, devices: u32) -> Vec<BuiltProgram> {
    let mut mix = Vec::new();
    for (n, seed) in [(32 * 24, 1u64), (32 * 40, 2), (32 * 12, 3)] {
        mix.push(VecAdd::new(n, seed).build_sharded(machine, devices).expect("builds"));
    }
    // A plain single-device program runs on device 0 of the cluster.
    mix.push(VecAdd::new(32 * 8, 4).build_sharded(machine, 1).expect("builds"));
    mix
}

/// Bit-identity: outputs word for word, and the observed per-round,
/// per-device millisecond timings exactly.  (Device *cache* counters
/// legitimately differ — the shared cache is warm — so they are not
/// compared.)
fn assert_identical(built: &BuiltProgram, got: &ClusterSimReport, solo: &ClusterSimReport) {
    assert_eq!(got.rounds, solo.rounds, "observed round timings diverged");
    for hbuf in &built.outputs {
        assert_eq!(got.output(*hbuf), solo.output(*hbuf), "output buffer diverged");
    }
}

#[test]
fn concurrent_clients_bit_identical_to_solo() {
    let machine = machine();
    let devices = 2;
    let spec = spec(devices);
    let config = SimConfig::default();
    let mix = program_mix(&machine, devices as u32);

    // Sequential solo baselines.
    let solo: Vec<ClusterSimReport> = mix
        .iter()
        .map(|b| {
            run_cluster_program(&b.program, b.inputs.clone(), &machine, &spec, &config)
                .expect("solo run")
        })
        .collect();

    let server = CostServer::new(machine, spec, ServerConfig::default()).expect("server");
    // 8 concurrent clients (2 tenants × 4), each submitting every
    // program in the mix twice — exercising admission, the shared
    // caches warm and cold, and cross-request interleaving.
    std::thread::scope(|scope| {
        for client in 0..8 {
            let (server, mix, solo) = (&server, &mix, &solo);
            scope.spawn(move || {
                let tenant = if client % 2 == 0 { "alpha" } else { "beta" };
                for _ in 0..2 {
                    for (built, solo_report) in mix.iter().zip(solo) {
                        let report = server
                            .submit(tenant, &built.program, built.inputs.clone())
                            .expect("submission");
                        assert_identical(built, &report, solo_report);
                    }
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.admission.admitted_total, 8 * 2 * 4);
    assert_eq!(stats.admission.running, 0);
    assert_eq!(stats.admission.resident_blocks, 0);
}

#[test]
fn pricing_matches_observed_totals_within_tolerance() {
    let machine = machine();
    let devices = 2;
    let spec = spec(devices);
    let config = SimConfig::default();
    let server = CostServer::new(machine, spec.clone(), ServerConfig::default()).expect("server");

    for built in program_mix(&machine, devices as u32) {
        let quote = server.price(&built.program).expect("quote");
        assert_eq!(
            quote.source,
            PriceSource::Analytic,
            "vecadd analyses exactly; it must not fall back to simulation"
        );
        let observed =
            run_cluster_program(&built.program, built.inputs.clone(), &machine, &spec, &config)
                .expect("observation")
                .total_ms();
        let err = (quote.total_ms - observed).abs() / observed;
        assert!(
            err <= TOLERANCE,
            "analytic quote {:.4}ms vs observed {observed:.4}ms: {:.1}% > {:.0}%",
            quote.total_ms,
            100.0 * err,
            100.0 * TOLERANCE
        );
    }
}

/// A peer-heavy program through the pricing service: the sharded halo
/// stencil carries real `TransferPeer` rounds, so the quote exercises
/// the peer-traffic pricing (analyze's `PeerTraffic` rows priced
/// through the streamed cluster objective) end to end.  The quote must
/// land within tolerance of observation whichever tier answers it, and
/// the repeat must replay bit-identically from the memo.
#[test]
fn peer_heavy_stencil_quote_matches_observation() {
    let machine = machine();
    let devices = 4;
    let spec = spec(devices);
    let config = SimConfig::default();
    let server = CostServer::new(machine, spec.clone(), ServerConfig::default()).expect("server");

    let built = Stencil::new(64 * machine.b, 11)
        .build_sharded(&machine, devices as u32, 6)
        .expect("sharded stencil");
    let quote = server.price(&built.program).expect("quote");
    let observed =
        run_cluster_program(&built.program, built.inputs.clone(), &machine, &spec, &config)
            .expect("observation")
            .total_ms();
    let err = (quote.total_ms - observed).abs() / observed;
    assert!(
        err <= TOLERANCE,
        "{:?} quote {:.4}ms vs observed {observed:.4}ms: {:.1}% > {:.0}%",
        quote.source,
        quote.total_ms,
        100.0 * err,
        100.0 * TOLERANCE
    );

    let again = server.price(&built.program).expect("repeat quote");
    assert_eq!(again.source, PriceSource::Memo, "repeat must be memoized");
    assert_eq!(again.total_ms.to_bits(), quote.total_ms.to_bits(), "memo must replay the quote");
}

/// A program whose kernel's cross-block write stride makes distinct
/// blocks collide on the same global words: the static verifier proves
/// it racy, and the server must refuse to execute *or* price it.
fn racy_program(name: &str) -> (atgpu_ir::Program, Vec<Vec<i64>>) {
    use atgpu_ir::{AddrExpr, KernelBuilder, ProgramBuilder};
    let mut pb = ProgramBuilder::new(name);
    let h = pb.host_input("A", 128);
    let o = pb.host_output("C", 128);
    let da = pb.device_alloc("a", 128);
    let dc = pb.device_alloc("c", 128);
    let mut kb = KernelBuilder::new("collide", 4, 32);
    kb.glb_to_shr(AddrExpr::lane(), da, AddrExpr::block() * 32 + AddrExpr::lane());
    // Stride 16 < warp width: blocks k and k+1 overlap on 16 words.
    kb.shr_to_glb(dc, AddrExpr::block() * 16 + AddrExpr::lane(), AddrExpr::lane());
    pb.begin_round();
    pb.transfer_in(h, da, 128);
    pb.launch(kb.build());
    pb.transfer_out(dc, o, 128);
    (pb.build().expect("builds — validation does not check races"), vec![vec![0; 128]])
}

#[test]
fn unsound_program_refused_with_witness_and_memoized() {
    use atgpu_serve::ServeError;
    let machine = machine();
    let server = CostServer::new(machine, spec(2), ServerConfig::default()).expect("server");

    let (program, inputs) = racy_program("racy");
    let err = server.submit("mallory", &program, inputs.clone()).expect_err("must be refused");
    match &err {
        ServeError::Unsound { program: name, why } => {
            assert_eq!(name, "racy");
            let msg = why.to_string();
            assert!(msg.contains("collide@instr#1"), "witness names the write site: {msg}");
        }
        other => panic!("expected Unsound, got {other:?}"),
    }
    // Pricing is gated by the same verdict — and answered from the
    // verify memo (same structural key), not re-verified.
    assert!(matches!(server.price(&program), Err(ServeError::Unsound { .. })));
    let stats = server.stats();
    assert_eq!(stats.verify.checked, 2);
    assert_eq!(stats.verify.memo_hits, 1);
    assert_eq!(stats.verify.rejected, 2);
    assert_eq!(stats.admission.admitted_total, 0, "never reached the admission queue");

    // A renamed copy has the same structural key: still a memo hit.
    let (renamed, _) = racy_program("racy_again");
    assert!(matches!(server.submit("mallory", &renamed, inputs), Err(ServeError::Unsound { .. })));
    assert_eq!(server.stats().verify.memo_hits, 2);
}

#[test]
fn sound_submissions_count_verify_checks() {
    let machine = machine();
    let devices = 2;
    let server = CostServer::new(machine, spec(devices), ServerConfig::default()).expect("server");
    let built = VecAdd::new(32 * 8, 5).build_sharded(&machine, devices as u32).expect("builds");
    for _ in 0..3 {
        server.submit("alice", &built.program, built.inputs.clone()).expect("sound");
    }
    let stats = server.stats();
    assert_eq!(stats.verify.checked, 3);
    assert_eq!(stats.verify.memo_hits, 2, "verified once, memoized twice");
    assert_eq!(stats.verify.rejected, 0);
    assert_eq!(stats.admission.admitted_total, 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any grid size, device count and client count N ≥ 4, N
    /// concurrent clients submitting the same program through the
    /// server observe exactly the solo report.
    #[test]
    fn any_concurrency_is_bit_identical(
        blocks in 1u64..48,
        devices in 1u32..5,
        clients in 4usize..8,
    ) {
        let machine = machine();
        let spec = spec(devices as usize);
        let config = SimConfig::default();
        let built = VecAdd::new(32 * blocks, blocks | 1)
            .build_sharded(&machine, devices)
            .expect("builds");
        let solo = run_cluster_program(&built.program, built.inputs.clone(), &machine, &spec, &config)
            .expect("solo run");

        let server = CostServer::new(machine, spec, ServerConfig::default()).expect("server");
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let (server, built, solo) = (&server, &built, &solo);
                    scope.spawn(move || {
                        let tenant = format!("tenant-{}", c % 3);
                        let report = server
                            .submit(&tenant, &built.program, built.inputs.clone())
                            .expect("submission");
                        assert_identical(built, &report, solo);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread");
            }
        });

        // And the analytic quote for this program stays within the
        // E-sweep tolerance of the solo observation.
        let quote = server.price(&built.program).expect("quote");
        let observed = solo.total_ms();
        prop_assert!(
            (quote.total_ms - observed).abs() / observed <= TOLERANCE,
            "quote {}ms vs observed {}ms", quote.total_ms, observed
        );
    }
}
