//! Typed errors of the serving layer.

use std::fmt;

/// Everything that can go wrong serving a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue is full: typed backpressure.  The client
    /// should retry later (or against another server); nothing was
    /// enqueued.
    QueueFull {
        /// Tenant whose submission was bounced.
        tenant: String,
        /// Requests currently waiting across all tenants.
        waiting: usize,
        /// The configured waiting-slot bound.
        capacity: usize,
    },
    /// The static verifier proved the program unsound (a cross-block
    /// write race or an out-of-bounds access): the server refuses to
    /// execute or price it.  The payload carries the validated witness.
    Unsound {
        /// Name of the rejected program.
        program: String,
        /// The proven defect, with its concrete witness (boxed: the
        /// witness payload would otherwise dominate the error's size).
        why: Box<atgpu_verify::Unsoundness>,
    },
    /// The underlying simulation failed.
    Sim(atgpu_sim::SimError),
    /// A model-layer computation (cost function, validation) failed.
    Model(atgpu_model::ModelError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull { tenant, waiting, capacity } => write!(
                f,
                "admission queue full ({waiting}/{capacity} waiting): tenant `{tenant}` must back \
                 off"
            ),
            Self::Unsound { program, why } => {
                write!(f, "program `{program}` rejected as unsound: {why}")
            }
            Self::Sim(e) => write!(f, "simulation failed: {e}"),
            Self::Model(e) => write!(f, "model evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<atgpu_sim::SimError> for ServeError {
    fn from(e: atgpu_sim::SimError) -> Self {
        Self::Sim(e)
    }
}

impl From<atgpu_model::ModelError> for ServeError {
    fn from(e: atgpu_model::ModelError) -> Self {
        Self::Model(e)
    }
}
