//! The admission-time soundness gate: memoized static-verifier
//! verdicts.
//!
//! Every [`submit`](crate::CostServer::submit) and every pricing query
//! first passes the static verifier ([`atgpu_verify::verify_program`]):
//! a program with a *proven* cross-block write race or out-of-bounds
//! access is rejected with [`ServeError::Unsound`](crate::ServeError)
//! before it can touch the shared cluster.  Verdicts are memoized by
//! the program's structural [`program_key`](crate::price::program_key)
//! — names excluded, same rule as the price memo — so a tenant
//! re-submitting the same shape pays for verification once.
//!
//! The cache mirrors [`PriceMemo`](crate::price::PriceMemo): shared
//! read lock on the hot path, FIFO eviction under a separate mutex,
//! relaxed atomic counters.

use atgpu_verify::Unsoundness;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// Soundness-gate counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyStats {
    /// Gate checks performed (memo hits included).
    pub checked: u64,
    /// Checks answered from the memo.
    pub memo_hits: u64,
    /// Checks that rejected the program as unsound.
    pub rejected: u64,
    /// Verdicts currently memoized.
    pub entries: usize,
}

/// A bounded, thread-safe memo of verify verdicts keyed by structural
/// program shape.  `None` means the program verified sound; `Some`
/// carries the proven defect.
#[derive(Debug)]
pub struct VerifyMemo {
    map: RwLock<HashMap<u64, Option<Unsoundness>>>,
    order: Mutex<VecDeque<u64>>,
    capacity: usize,
    checked: AtomicU64,
    memo_hits: AtomicU64,
    rejected: AtomicU64,
}

impl VerifyMemo {
    /// A memo bounded at `capacity` verdicts (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
            order: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            checked: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Gates one program: answers from the memo when its structural key
    /// has been verified before, otherwise runs `compute` and records
    /// the verdict.  Returns the defect for unsound programs.
    pub fn verdict(
        &self,
        key: u64,
        compute: impl FnOnce() -> Option<Unsoundness>,
    ) -> Option<Unsoundness> {
        self.checked.fetch_add(1, Ordering::Relaxed);
        let hit = self.map.read().expect("verify memo lock").get(&key).cloned();
        let verdict = match hit {
            Some(v) => {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                let v = compute();
                let mut map = self.map.write().expect("verify memo lock");
                let mut order = self.order.lock().expect("verify memo order lock");
                if map.insert(key, v.clone()).is_none() {
                    order.push_back(key);
                    while order.len() > self.capacity {
                        if let Some(old) = order.pop_front() {
                            map.remove(&old);
                        }
                    }
                }
                v
            }
        };
        if verdict.is_some() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> VerifyStats {
        VerifyStats {
            checked: self.checked.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            entries: self.map.read().expect("verify memo lock").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_verify::bounds::OobWitness;

    fn defect() -> Unsoundness {
        Unsoundness::OutOfBounds {
            round: 0,
            kernel: "k".into(),
            instr: 1,
            witness: OobWitness { block: (0, 0), lane: 0, loops: vec![], addr: 64, limit: 64 },
        }
    }

    #[test]
    fn memoizes_and_counts() {
        let memo = VerifyMemo::new(8);
        let mut computed = 0;
        for _ in 0..3 {
            assert!(memo
                .verdict(7, || {
                    computed += 1;
                    None
                })
                .is_none());
        }
        assert_eq!(computed, 1, "sound verdict computed once, then memoized");
        assert!(memo.verdict(9, || Some(defect())).is_some());
        assert!(memo.verdict(9, || unreachable!("memoized")).is_some());
        let st = memo.stats();
        assert_eq!((st.checked, st.memo_hits, st.rejected, st.entries), (5, 3, 2, 2));
    }

    #[test]
    fn fifo_eviction_bounds_entries() {
        let memo = VerifyMemo::new(2);
        for key in 0..5u64 {
            memo.verdict(key, || None);
        }
        assert_eq!(memo.stats().entries, 2);
    }
}
