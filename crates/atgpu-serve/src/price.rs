//! What-if pricing: structural query keys and the bounded memo cache.
//!
//! A pricing query is identified **structurally**: the program's
//! compile-relevant shape (kernel [`cache_key`]s, shard plans, transfer
//! tuples, stream tags) combined with the cluster's
//! [`spec_key`](atgpu_model::ClusterSpec::spec_key) and the abstract
//! machine shape.  Names are excluded everywhere — a renamed kernel or
//! buffer prices identically — mirroring the name-exclusion rule of the
//! kernel cache.  Two queries with equal keys are the same question, so
//! the second is answered from the memo in nanoseconds.
//!
//! [`cache_key`]: atgpu_ir::Kernel::cache_key

use atgpu_ir::{HostStep, Program};
use atgpu_model::{AtgpuMachine, ClusterSpec};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// How a price was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriceSource {
    /// Answered from the memo cache (a previous quote with this key).
    Memo,
    /// Computed by the analytic streamed cost model.
    Analytic,
    /// Computed by full simulation (the slow fallback).
    Simulated,
}

/// A priced query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quote {
    /// Predicted wall-clock of the program on the cluster (ms).
    pub total_ms: f64,
    /// How this answer was produced.
    pub source: PriceSource,
    /// The structural query key (program × cluster × machine).
    pub key: u64,
}

/// Pricing-path counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PriceStats {
    /// Queries answered from the memo.
    pub memo_hits: u64,
    /// Queries answered by the analytic cost model.
    pub analytic: u64,
    /// Queries that fell back to full simulation.
    pub simulated: u64,
    /// Quotes currently memoized.
    pub entries: usize,
}

impl PriceStats {
    /// Fraction of queries answered without running a simulation
    /// (memo hits + analytic answers over all queries).
    pub fn fast_fraction(&self) -> f64 {
        let total = self.memo_hits + self.analytic + self.simulated;
        if total == 0 {
            return 1.0;
        }
        (self.memo_hits + self.analytic) as f64 / total as f64
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// A stable structural hash of a program's cost-relevant shape: buffer
/// sizes and roles, and per round each step's discriminant, operands,
/// device targets and stream tags; kernels contribute their
/// [`cache_key`](atgpu_ir::Kernel::cache_key) plus the shard plan.
/// Program, kernel and buffer *names* are excluded.
pub fn program_key(p: &Program) -> u64 {
    let mut h = FNV_OFFSET;
    fnv(&mut h, p.device_allocs.len() as u64);
    for a in &p.device_allocs {
        fnv(&mut h, a.words);
    }
    fnv(&mut h, p.host_bufs.len() as u64);
    for b in &p.host_bufs {
        fnv(&mut h, b.words);
        fnv(&mut h, matches!(b.role, atgpu_ir::HostBufRole::Input) as u64);
    }
    fnv(&mut h, p.rounds.len() as u64);
    for round in &p.rounds {
        fnv(&mut h, round.steps.len() as u64);
        for step in &round.steps {
            match step {
                HostStep::TransferIn { host, host_off, dev, dev_off, words, device, stream } => {
                    for v in [0, host.0 as u64, *host_off, dev.0 as u64, *dev_off, *words] {
                        fnv(&mut h, v);
                    }
                    fnv(&mut h, u64::from(*device));
                    fnv(&mut h, u64::from(*stream));
                }
                HostStep::TransferOut { dev, dev_off, host, host_off, words, device, stream } => {
                    for v in [1, dev.0 as u64, *dev_off, host.0 as u64, *host_off, *words] {
                        fnv(&mut h, v);
                    }
                    fnv(&mut h, u64::from(*device));
                    fnv(&mut h, u64::from(*stream));
                }
                HostStep::TransferPeer { src, dst, buf, src_off, dst_off, words } => {
                    for v in [2, u64::from(*src), u64::from(*dst), buf.0 as u64, *src_off, *dst_off]
                    {
                        fnv(&mut h, v);
                    }
                    fnv(&mut h, *words);
                }
                HostStep::Launch(k) => {
                    fnv(&mut h, 3);
                    fnv(&mut h, k.cache_key());
                }
                HostStep::LaunchSharded { kernel, shards } => {
                    fnv(&mut h, 4);
                    fnv(&mut h, kernel.cache_key());
                    fnv(&mut h, shards.len() as u64);
                    for s in shards {
                        fnv(&mut h, u64::from(s.device));
                        fnv(&mut h, s.start);
                        fnv(&mut h, s.end);
                    }
                }
                HostStep::SyncStream { device, stream } => {
                    fnv(&mut h, 5);
                    fnv(&mut h, u64::from(*device));
                    fnv(&mut h, u64::from(*stream));
                }
                HostStep::SyncDevice { device } => {
                    fnv(&mut h, 6);
                    fnv(&mut h, u64::from(*device));
                }
            }
        }
    }
    h
}

/// The full memo key: program shape × cluster spec × machine shape.
pub fn query_key(p: &Program, spec: &ClusterSpec, machine: &AtgpuMachine) -> u64 {
    query_key_from(program_key(p), spec, machine)
}

/// [`query_key`] from an already-computed [`program_key`] — the pricing
/// hot path hashes the program once and reuses the key for both the
/// soundness memo and the quote memo.
pub fn query_key_from(pkey: u64, spec: &ClusterSpec, machine: &AtgpuMachine) -> u64 {
    let mut h = FNV_OFFSET;
    fnv(&mut h, pkey);
    fnv(&mut h, spec.spec_key());
    for v in [machine.p, machine.b, machine.m, machine.g] {
        fnv(&mut h, v);
    }
    h
}

/// A bounded, thread-safe memo of priced queries.
///
/// Same design as the simulator's `KernelCache`: reads take a shared
/// lock only; insertion appends to a FIFO eviction order under a
/// separate mutex, so the memo never outgrows its capacity.  Counters
/// are atomics — [`stats`](Self::stats) is a consistent-enough snapshot
/// for monitoring, not a transaction.
#[derive(Debug)]
pub struct PriceMemo {
    map: RwLock<HashMap<u64, Quote>>,
    order: Mutex<VecDeque<u64>>,
    capacity: usize,
    memo_hits: AtomicU64,
    analytic: AtomicU64,
    simulated: AtomicU64,
}

impl PriceMemo {
    /// A memo bounded at `capacity` quotes (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
            order: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            memo_hits: AtomicU64::new(0),
            analytic: AtomicU64::new(0),
            simulated: AtomicU64::new(0),
        }
    }

    /// Looks up a quote; a hit is re-labelled [`PriceSource::Memo`].
    pub fn get(&self, key: u64) -> Option<Quote> {
        let hit = self.map.read().expect("memo lock").get(&key).copied();
        hit.map(|q| {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            Quote { source: PriceSource::Memo, ..q }
        })
    }

    /// Records a freshly computed quote, evicting the oldest entry when
    /// the memo is full, and bumps the source counter.
    pub fn insert(&self, quote: Quote) {
        match quote.source {
            PriceSource::Analytic => self.analytic.fetch_add(1, Ordering::Relaxed),
            PriceSource::Simulated => self.simulated.fetch_add(1, Ordering::Relaxed),
            PriceSource::Memo => 0, // memo hits are never re-inserted
        };
        let mut map = self.map.write().expect("memo lock");
        let mut order = self.order.lock().expect("memo order lock");
        if map.insert(quote.key, quote).is_none() {
            order.push_back(quote.key);
            while order.len() > self.capacity {
                if let Some(old) = order.pop_front() {
                    map.remove(&old);
                }
            }
        }
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> PriceStats {
        PriceStats {
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            analytic: self.analytic.load(Ordering::Relaxed),
            simulated: self.simulated.load(Ordering::Relaxed),
            entries: self.map.read().expect("memo lock").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, KernelBuilder, ProgramBuilder};

    fn program(n: u64, kernel_name: &str) -> Program {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", n);
        let d = pb.device_alloc("a", n);
        let mut kb = KernelBuilder::new(kernel_name, n / 32, 32);
        kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::block() * 32 + AddrExpr::lane());
        pb.begin_round();
        pb.transfer_in(h, d, n);
        pb.launch(kb.build());
        pb.build().unwrap()
    }

    #[test]
    fn program_key_ignores_names_but_sees_structure() {
        let a = program(64, "k");
        let renamed = program(64, "other_name");
        assert_eq!(program_key(&a), program_key(&renamed));
        let bigger = program(128, "k");
        assert_ne!(program_key(&a), program_key(&bigger));
    }

    #[test]
    fn query_key_sees_spec_and_machine() {
        let p = program(64, "k");
        let m = AtgpuMachine::new(1 << 16, 32, 12_288, 1 << 22).unwrap();
        let s2 = ClusterSpec::homogeneous(2, atgpu_model::GpuSpec::gtx650_like());
        let s4 = ClusterSpec::homogeneous(4, atgpu_model::GpuSpec::gtx650_like());
        assert_ne!(query_key(&p, &s2, &m), query_key(&p, &s4, &m));
        let m2 = AtgpuMachine::new(1 << 16, 32, 12_288, 1 << 23).unwrap();
        assert_ne!(query_key(&p, &s2, &m), query_key(&p, &s2, &m2));
    }

    #[test]
    fn memo_bounds_and_relabels() {
        let memo = PriceMemo::new(2);
        for key in [1u64, 2, 3] {
            assert!(memo.get(key).is_none());
            memo.insert(Quote { total_ms: key as f64, source: PriceSource::Analytic, key });
        }
        // FIFO eviction dropped key 1.
        assert!(memo.get(1).is_none());
        let q = memo.get(3).unwrap();
        assert_eq!(q.source, PriceSource::Memo);
        assert_eq!(q.total_ms, 3.0);
        let st = memo.stats();
        assert_eq!((st.analytic, st.memo_hits, st.entries), (3, 1, 2));
    }
}
