//! The admission queue: bounded, tenant-fair, occupancy-packed.
//!
//! Concurrent submissions do not all belong on the devices at once — a
//! cluster holds `Σ_d k′_d·ℓ_d` resident thread blocks (the occupancy
//! bound of Expression (2), via [`atgpu_model::occupancy()`]), and packing
//! more concurrent launches than that buys no wall-clock time while
//! inflating every tenant's latency.  The queue therefore:
//!
//! * **packs by occupancy** — each job declares its resident-block
//!   demand (its widest launch, clamped to cluster capacity) and jobs
//!   are admitted while the summed demand of running jobs fits; a job
//!   too wide to ever fit runs alone rather than deadlocking;
//! * **is tenant-fair** — per-tenant FIFO queues are granted in
//!   round-robin rotation, so a tenant submitting a thousand programs
//!   cannot starve one submitting a single program.  Rotation is strict:
//!   a later tenant never jumps an earlier tenant's turn just because
//!   its job is smaller (fairness over packing efficiency);
//! * **is bounded** — at most `queue_capacity` requests may be waiting;
//!   the next submission gets the typed backpressure error
//!   [`ServeError::QueueFull`] instead of unbounded memory growth.

use crate::error::ServeError;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A point-in-time view of the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Requests waiting for a grant.
    pub waiting: usize,
    /// Requests currently admitted (running).
    pub running: usize,
    /// Summed resident-block demand of the running requests.
    pub resident_blocks: u64,
    /// The cluster's resident-block capacity `Σ_d k′_d·ℓ_d`.
    pub capacity_blocks: u64,
    /// Requests admitted since the queue was built.
    pub admitted_total: u64,
    /// Submissions bounced with [`ServeError::QueueFull`].
    pub rejected_total: u64,
}

#[derive(Debug)]
struct TenantQueue {
    name: String,
    fifo: VecDeque<u64>,
}

#[derive(Debug, Default)]
struct AdmitState {
    tenants: Vec<TenantQueue>,
    /// Index of the tenant whose turn the rotation reaches next.
    cursor: usize,
    next_ticket: u64,
    waiting: usize,
    running: usize,
    resident_blocks: u64,
    admitted_total: u64,
    rejected_total: u64,
}

impl AdmitState {
    fn tenant_idx(&mut self, name: &str) -> usize {
        if let Some(i) = self.tenants.iter().position(|t| t.name == name) {
            return i;
        }
        self.tenants.push(TenantQueue { name: name.to_string(), fifo: VecDeque::new() });
        self.tenants.len() - 1
    }

    /// The ticket the rotation would grant next: the head of the first
    /// non-empty tenant queue at or after `cursor` (cyclic).
    fn next_in_rotation(&self) -> Option<(usize, u64)> {
        let n = self.tenants.len();
        (0..n)
            .map(|off| (self.cursor + off) % n)
            .find_map(|i| self.tenants[i].fifo.front().map(|&t| (i, t)))
    }
}

/// The bounded, tenant-fair admission queue (see the module docs for
/// the policy).  All methods take `&self`; the queue is shared across
/// client threads.
#[derive(Debug)]
pub struct AdmissionQueue {
    state: Mutex<AdmitState>,
    cv: Condvar,
    queue_capacity: usize,
    capacity_blocks: u64,
}

impl AdmissionQueue {
    /// Builds a queue bounded at `queue_capacity` waiting requests over
    /// a cluster holding `capacity_blocks` resident thread blocks.
    pub fn new(queue_capacity: usize, capacity_blocks: u64) -> Self {
        Self {
            state: Mutex::new(AdmitState::default()),
            cv: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
            capacity_blocks: capacity_blocks.max(1),
        }
    }

    /// The cluster's resident-block capacity this queue packs against.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Admits a request of `demand` resident blocks for `tenant`,
    /// blocking until the scheduler grants it.  Returns a [`Permit`]
    /// whose `Drop` releases the capacity — hold it for the duration of
    /// the run.
    ///
    /// Returns [`ServeError::QueueFull`] immediately (nothing enqueued)
    /// when the waiting bound is already met.
    pub fn admit(&self, tenant: &str, demand: u64) -> Result<Permit<'_>, ServeError> {
        // A job wider than the whole cluster still terminates (waves),
        // so clamp: it packs alone instead of never fitting.
        let demand = demand.clamp(1, self.capacity_blocks);
        let mut st = self.state.lock().expect("admission lock");
        if st.waiting >= self.queue_capacity {
            st.rejected_total += 1;
            return Err(ServeError::QueueFull {
                tenant: tenant.to_string(),
                waiting: st.waiting,
                capacity: self.queue_capacity,
            });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        let idx = st.tenant_idx(tenant);
        st.tenants[idx].fifo.push_back(ticket);
        st.waiting += 1;

        loop {
            if let Some((ti, head)) = st.next_in_rotation() {
                let fits = st.resident_blocks + demand <= self.capacity_blocks;
                if head == ticket && (fits || st.running == 0) {
                    st.tenants[ti].fifo.pop_front();
                    st.cursor = (ti + 1) % st.tenants.len();
                    st.waiting -= 1;
                    st.running += 1;
                    st.resident_blocks += demand;
                    st.admitted_total += 1;
                    // Consecutive rotation grants may also fit now.
                    self.cv.notify_all();
                    return Ok(Permit { queue: self, demand });
                }
            }
            st = self.cv.wait(st).expect("admission lock");
        }
    }

    /// A point-in-time snapshot of queue state.
    pub fn stats(&self) -> AdmissionStats {
        let st = self.state.lock().expect("admission lock");
        AdmissionStats {
            waiting: st.waiting,
            running: st.running,
            resident_blocks: st.resident_blocks,
            capacity_blocks: self.capacity_blocks,
            admitted_total: st.admitted_total,
            rejected_total: st.rejected_total,
        }
    }

    fn release(&self, demand: u64) {
        let mut st = self.state.lock().expect("admission lock");
        st.resident_blocks -= demand;
        st.running -= 1;
        self.cv.notify_all();
    }
}

/// An admission grant: `demand` resident blocks are reserved until this
/// is dropped.
#[derive(Debug)]
pub struct Permit<'a> {
    queue: &'a AdmissionQueue,
    demand: u64,
}

impl Permit<'_> {
    /// The resident-block demand this permit reserves.
    pub fn demand(&self) -> u64 {
        self.demand
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.queue.release(self.demand);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn grants_up_to_capacity_then_queues() {
        let q2 = Arc::new(AdmissionQueue::new(8, 10));
        let a = q2.admit("t", 4).unwrap();
        let b = q2.admit("t", 4).unwrap();
        assert_eq!(q2.stats().resident_blocks, 8);
        // A third job of demand 4 would exceed 10; it must wait until a
        // permit drops.
        let (q3, started) = (q2.clone(), Arc::new(AtomicUsize::new(0)));
        let s2 = started.clone();
        let h = std::thread::spawn(move || {
            let p = q3.admit("t", 4).unwrap();
            s2.store(1, Ordering::SeqCst);
            drop(p);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(started.load(Ordering::SeqCst), 0, "third job admitted over capacity");
        drop(a);
        h.join().unwrap();
        assert_eq!(started.load(Ordering::SeqCst), 1);
        drop(b);
        let st = q2.stats();
        assert_eq!((st.running, st.resident_blocks, st.admitted_total), (0, 0, 3));
    }

    #[test]
    fn oversized_job_runs_alone() {
        let q = AdmissionQueue::new(4, 10);
        // Demand beyond the whole cluster clamps and runs when idle.
        let p = q.admit("t", 1_000_000).unwrap();
        assert_eq!(p.demand(), 10);
        drop(p);
    }

    #[test]
    fn queue_bound_returns_typed_backpressure() {
        let q = Arc::new(AdmissionQueue::new(1, 1));
        let p = q.admit("a", 1).unwrap();
        // One waiter fills the single waiting slot…
        let qw = q.clone();
        let h = std::thread::spawn(move || drop(qw.admit("a", 1).unwrap()));
        while q.stats().waiting == 0 {
            std::thread::yield_now();
        }
        // …so the next submission bounces, typed.
        match q.admit("b", 1) {
            Err(ServeError::QueueFull { tenant, waiting, capacity }) => {
                assert_eq!((tenant.as_str(), waiting, capacity), ("b", 1, 1));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(q.stats().rejected_total, 1);
        drop(p);
        h.join().unwrap();
    }

    #[test]
    fn rotation_is_tenant_fair() {
        // Tenant A floods the queue; tenant B submits one job.  With
        // capacity for one job at a time, B's job must run second, not
        // behind all of A's.
        let q = Arc::new(AdmissionQueue::new(64, 1));
        let first = q.admit("a", 1).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..4 {
            let (qa, order) = (q.clone(), order.clone());
            handles.push(std::thread::spawn(move || {
                let p = qa.admit("a", 1).unwrap();
                order.lock().unwrap().push(format!("a{i}"));
                drop(p);
            }));
            // Deterministic enqueue order within tenant A.
            while q.stats().waiting != i + 1 {
                std::thread::yield_now();
            }
        }
        let (qb, ob) = (q.clone(), order.clone());
        let hb = std::thread::spawn(move || {
            let p = qb.admit("b", 1).unwrap();
            ob.lock().unwrap().push("b0".to_string());
            drop(p);
        });
        while q.stats().waiting != 5 {
            std::thread::yield_now();
        }
        drop(first);
        for h in handles {
            h.join().unwrap();
        }
        hb.join().unwrap();
        let order = order.lock().unwrap();
        let b_pos = order.iter().position(|s| s == "b0").unwrap();
        assert!(
            b_pos <= 1,
            "tenant B's single job must be granted on the next rotation, got order {order:?}"
        );
    }
}
