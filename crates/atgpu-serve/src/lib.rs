//! # atgpu-serve — the multi-tenant cost-query service
//!
//! A long-lived library front-end where many concurrent clients submit
//! ATGPU programs against one shared simulated [`Cluster`], and ask
//! "what would this cost?" without paying for a simulation each time.
//! This is the serving layer the paper's premise invites: the abstract
//! model prices a program **analytically in microseconds**, so a
//! service can answer almost every cost query without touching the
//! (comparatively slow) cycle-accounting simulator.
//!
//! The crate has three moving parts:
//!
//! | part | type | contract |
//! |------|------|----------|
//! | soundness gate | [`VerifyMemo`] | static verifier rejects proven-unsound programs, memoized by [`program_key`] |
//! | admission | [`AdmissionQueue`] | bounded queue, per-tenant round-robin fairness, occupancy packing |
//! | execution | [`CostServer::submit`] | runs on the shared cluster, bit-identical to a solo run |
//! | pricing | [`CostServer::price`] | memo → analytic model → simulation fallback |
//!
//! Before anything else, every submission and every pricing query is
//! statically verified ([`atgpu_verify::verify_program`]): a program
//! with a *proven* cross-block write race or out-of-bounds access is
//! refused with [`ServeError::Unsound`], carrying the concrete
//! `kernel@instr#N` witness.  Undecidable programs (data-dependent
//! addressing) pass — the gate only rejects on proof.  Verdicts are
//! memoized by the structural [`program_key`], so re-submissions of the
//! same shape skip re-verification ([`VerifyStats`] counts the paths).
//!
//! ## The admission contract
//!
//! Every [`submit`](CostServer::submit) first passes the admission
//! queue:
//!
//! * **Occupancy packing** — a job's *resident-block demand* is its
//!   widest launch, priced per device with the model's occupancy bound
//!   `ℓ = min(⌊M/m⌋, H)` ([`atgpu_model::occupancy()`]): a device can
//!   hold at most `k′·ℓ` blocks, so admitting more concurrent demand
//!   than `Σ_d k′_d·ℓ_d` cannot increase throughput.  Jobs are admitted
//!   while the summed demand of running jobs fits; an over-wide job is
//!   clamped and runs alone rather than deadlocking.
//! * **Per-tenant fairness** — requests queue FIFO *within* a tenant,
//!   and tenants are granted in round-robin rotation, so one tenant
//!   flooding the queue cannot starve another's single request.
//!   Rotation is strict: a small job never jumps an earlier tenant's
//!   turn (fairness beats packing efficiency).
//! * **Typed backpressure** — at most `queue_capacity` requests wait;
//!   the next submission returns [`ServeError::QueueFull`] *immediately*
//!   with the observed queue state, so clients implement backoff
//!   against data, not timeouts.
//!
//! ## The pricing contract
//!
//! [`price`](CostServer::price) (and the what-if variant
//! [`price_what_if`](CostServer::price_what_if), which takes an
//! arbitrary [`ClusterSpec`]) answers in one of three ways, cheapest
//! first:
//!
//! 1. **Memo** — queries are keyed by [`query_key`]: the program's
//!    structural shape (kernel `cache_key`s, shard plans, transfer
//!    tuples — names excluded) × the cluster's
//!    [`spec_key`](atgpu_model::ClusterSpec::spec_key) × the machine
//!    shape.  A repeated question is answered from the bounded
//!    [`PriceMemo`] without recomputation.
//! 2. **Analytic** — the program is analysed per device
//!    ([`atgpu_analyze::analyze_cluster_program`]) and priced through
//!    the streamed cluster cost model
//!    ([`atgpu_model::cost::cluster_cost_streamed`]) — microseconds,
//!    no simulation.  The analytic path is only trusted when the
//!    analysis is **exact** (every transaction count statically known,
//!    no shared-memory bank conflicts); otherwise the query falls
//!    through.
//! 3. **Simulated** — full [`run_cluster_program_on`] of the program
//!    with zero-filled inputs.  On the server's own cluster the
//!    fallback takes an admission permit like any tenant (pricing
//!    cannot starve execution); a what-if spec simulates on a private
//!    throwaway cluster.
//!
//! Every non-memo answer is memoized, so a workload that repeats
//! queries converges to memo-hit latency.  [`Quote::source`] reports
//! which path answered; [`PriceStats`] counts all three.  Prices
//! predict the **noise-free** cost: configure the server with
//! `noise: None` (the default) when comparing quotes to observations.
//!
//! ## Bit-identity
//!
//! The shared cluster preserves the repo's differential guarantees:
//! all per-run state (memory replicas, host buffers, transfer engines,
//! fault state, tracers) is allocated per call inside
//! [`run_cluster_program_on`]; the only shared mutable state is each
//! device's kernel cache, which the cache differential suite proves
//! result-neutral.  N clients hammering one server concurrently get
//! reports bit-identical to each running alone — pinned by this
//! crate's `serve_differential` test.
//!
//! ## Worked example
//!
//! Two tenants share a 2-device server: one executes, one asks what-if
//! questions.  (See `examples/multi_client.rs` for the full
//! multi-threaded version.)
//!
//! ```rust
//! use atgpu_ir::{AddrExpr, KernelBuilder, ProgramBuilder, Shard};
//! use atgpu_model::{AtgpuMachine, ClusterSpec, GpuSpec};
//! use atgpu_serve::{CostServer, PriceSource, ServerConfig};
//!
//! // A toy sharded program: upload, run one kernel over 4 blocks split
//! // across 2 devices, download.
//! let n = 32 * 4;
//! let mut pb = ProgramBuilder::new("demo");
//! let ha = pb.host_input("A", n);
//! let hc = pb.host_output("C", n);
//! let da = pb.device_alloc("a", n);
//! let mut kb = KernelBuilder::new("copy", 4, 32);
//! let g = AddrExpr::block() * 32 + AddrExpr::lane();
//! kb.glb_to_shr(AddrExpr::lane(), da, g.clone());
//! kb.shr_to_glb(da, g, AddrExpr::lane());
//! pb.begin_round();
//! pb.transfer_in_to(0, ha, 0, da, 0, n);
//! pb.transfer_in_to(1, ha, 0, da, 0, n);
//! pb.launch_sharded(
//!     kb.build(),
//!     vec![
//!         Shard { device: 0, start: 0, end: 2 },
//!         Shard { device: 1, start: 2, end: 4 },
//!     ],
//! );
//! pb.transfer_out_from(0, da, 0, hc, 0, n);
//! let program = pb.build().unwrap();
//!
//! let machine = AtgpuMachine::new(1 << 16, 32, 12_288, 1 << 22).unwrap();
//! let spec = ClusterSpec::homogeneous(2, GpuSpec::gtx650_like());
//! let server = CostServer::new(machine, spec, ServerConfig::default()).unwrap();
//!
//! // Tenant "alice" runs the program for real…
//! let inputs = vec![(0..n as i64).collect::<Vec<i64>>()];
//! let report = server.submit("alice", &program, inputs).unwrap();
//! assert_eq!(report.output(hc)[7], 7);
//!
//! // …while tenant "bob" only wants the price.  First ask: analytic.
//! let first = server.price(&program).unwrap();
//! assert_eq!(first.source, PriceSource::Analytic);
//! // Second ask: memoized, same answer.
//! let again = server.price(&program).unwrap();
//! assert_eq!(again.source, PriceSource::Memo);
//! assert_eq!(again.total_ms, first.total_ms);
//!
//! // What-if: the same program on a 2-device cluster with a 10x slower
//! // second host link costs more.
//! let mut slow = server.cluster().spec().clone();
//! slow.host_links[1] = slow.host_links[1].scaled(10.0);
//! let what_if = server.price_what_if(&program, &slow).unwrap();
//! assert!(what_if.total_ms > first.total_ms);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admit;
pub mod error;
pub mod price;
pub mod verify;

pub use admit::{AdmissionQueue, AdmissionStats, Permit};
pub use error::ServeError;
pub use price::{
    program_key, query_key, query_key_from, PriceMemo, PriceSource, PriceStats, Quote,
};
pub use verify::{VerifyMemo, VerifyStats};

use atgpu_analyze::{analyze_cluster_program, stream_schedules};
use atgpu_ir::{HostBufRole, HostStep, Program};
use atgpu_model::cost::cluster_cost_streamed;
use atgpu_model::occupancy::occupancy;
use atgpu_model::{AtgpuMachine, ClusterSpec, ModelError};
use atgpu_sim::{
    run_cluster_program, run_cluster_program_on, Cluster, ClusterSimReport, SimConfig,
};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The simulation configuration every run uses.  Device-global
    /// settings (kernel cache, watchdog) are applied once at
    /// construction; per-run settings apply to each submission.
    pub sim: SimConfig,
    /// Maximum requests waiting in the admission queue before
    /// submissions bounce with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum memoized price quotes (FIFO eviction).
    pub memo_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { sim: SimConfig::default(), queue_capacity: 64, memo_capacity: 1024 }
    }
}

/// Combined server counters: soundness gate + admission queue +
/// pricing paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeStats {
    /// Admission-queue state.
    pub admission: AdmissionStats,
    /// Pricing-path counters.
    pub price: PriceStats,
    /// Soundness-gate counters.
    pub verify: VerifyStats,
}

/// The multi-tenant cost-query server: one shared [`Cluster`], an
/// admission queue in front of it, and a memoized pricing front-end.
/// All methods take `&self`; share a server across client threads with
/// `Arc` (or scoped threads).
#[derive(Debug)]
pub struct CostServer {
    cluster: Cluster,
    sim: SimConfig,
    admission: AdmissionQueue,
    memo: PriceMemo,
    verify: VerifyMemo,
}

/// The tenant label the pricing fallback simulates under, so pricing
/// traffic is visible in admission stats but distinct from any real
/// tenant (client tenant names have no format restriction — this one
/// is only distinguishable by convention).
pub const PRICING_TENANT: &str = "#pricing";

impl CostServer {
    /// Builds a server over a fresh cluster of `spec` devices sharing
    /// `machine`, applying `config.sim`'s device-global settings once.
    pub fn new(
        machine: AtgpuMachine,
        spec: ClusterSpec,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        let cluster = Cluster::new(machine, spec)?;
        cluster.configure_devices(&config.sim);
        let capacity = cluster
            .spec()
            .devices
            .iter()
            .map(|d| d.k_prime * occupancy(cluster.machine(), 0, d.h_limit))
            .sum::<u64>()
            .max(1);
        Ok(Self {
            admission: AdmissionQueue::new(config.queue_capacity, capacity),
            memo: PriceMemo::new(config.memo_capacity),
            verify: VerifyMemo::new(config.memo_capacity),
            sim: config.sim,
            cluster,
        })
    }

    /// The shared cluster (for spec/machine introspection).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs `program` for `tenant` on the shared cluster, blocking in
    /// the admission queue until granted.  The report is bit-identical
    /// to a solo [`run_cluster_program`] of the same program and
    /// config.
    pub fn submit(
        &self,
        tenant: &str,
        program: &Program,
        inputs: Vec<Vec<i64>>,
    ) -> Result<ClusterSimReport, ServeError> {
        self.check_sound(program_key(program), program)?;
        let demand = self.resident_demand(program);
        let _permit = self.admission.admit(tenant, demand)?;
        Ok(run_cluster_program_on(&self.cluster, program, inputs, &self.sim)?)
    }

    /// The soundness gate: statically verifies `program` (memoized by
    /// its structural [`program_key`], which callers compute once and
    /// also reuse for the quote memo) and refuses proven-unsound
    /// programs with the concrete witness.
    fn check_sound(&self, pkey: u64, program: &Program) -> Result<(), ServeError> {
        let b = self.cluster.machine().b;
        let why = self
            .verify
            .verdict(pkey, || atgpu_verify::verify_program(program, b).first_unsoundness());
        match why {
            None => Ok(()),
            Some(why) => {
                Err(ServeError::Unsound { program: program.name.clone(), why: Box::new(why) })
            }
        }
    }

    /// Prices `program` on the server's own cluster — memo, then
    /// analytic model, then simulation fallback (see the crate docs for
    /// the contract).
    pub fn price(&self, program: &Program) -> Result<Quote, ServeError> {
        self.price_on(program, None)
    }

    /// What-if pricing: prices `program` on an arbitrary cluster
    /// `spec` (same machine shape).  Quotes are memoized under the
    /// spec's structural hash, so repeated what-ifs over a fixed
    /// candidate set all converge to memo hits.
    pub fn price_what_if(
        &self,
        program: &Program,
        spec: &ClusterSpec,
    ) -> Result<Quote, ServeError> {
        self.price_on(program, Some(spec))
    }

    fn price_on(
        &self,
        program: &Program,
        what_if: Option<&ClusterSpec>,
    ) -> Result<Quote, ServeError> {
        let pkey = program_key(program);
        self.check_sound(pkey, program)?;
        let machine = *self.cluster.machine();
        let spec = what_if.unwrap_or_else(|| self.cluster.spec());
        spec.validate()?;
        let n = spec.n_devices();
        if program.max_device() as usize >= n {
            return Err(ServeError::Model(ModelError::InvalidParams {
                reason: format!(
                    "program addresses device {} but the cluster has {n}",
                    program.max_device()
                ),
            }));
        }
        let key = query_key_from(pkey, spec, &machine);
        if let Some(q) = self.memo.get(key) {
            return Ok(q);
        }

        // Analytic fast path: only trusted when the analysis is exact.
        if let Ok(a) = analyze_cluster_program(program, &machine, n as u32) {
            if a.io_exact && a.conflict_free {
                let scheds = stream_schedules(program, n as u32);
                if let Ok(cost) =
                    cluster_cost_streamed(spec, &machine, &a.per_device, &scheds, &a.peer)
                {
                    let q = Quote { total_ms: cost.total_ms, source: PriceSource::Analytic, key };
                    self.memo.insert(q);
                    return Ok(q);
                }
            }
        }

        // Simulation fallback with zero-filled inputs.  The program's
        // timing metrics are data-independent (lockstep SPMD), so zeros
        // price the same as real data.
        let inputs: Vec<Vec<i64>> = program
            .host_bufs
            .iter()
            .filter(|b| matches!(b.role, HostBufRole::Input))
            .map(|b| vec![0i64; b.words as usize])
            .collect();
        let report = match what_if {
            // A foreign spec gets a private throwaway cluster.
            Some(spec) => run_cluster_program(program, inputs, &machine, spec, &self.sim)?,
            // The server's own cluster is shared: take a permit like
            // any tenant so pricing cannot starve execution.
            None => {
                let demand = self.resident_demand(program);
                let _permit = self.admission.admit(PRICING_TENANT, demand)?;
                run_cluster_program_on(&self.cluster, program, inputs, &self.sim)?
            }
        };
        let q = Quote { total_ms: report.total_ms(), source: PriceSource::Simulated, key };
        self.memo.insert(q);
        Ok(q)
    }

    /// Combined soundness-gate + admission + pricing counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            admission: self.admission.stats(),
            price: self.memo.stats(),
            verify: self.verify.stats(),
        }
    }

    /// A program's resident-block demand: its widest launch, with each
    /// device's contribution clamped by the occupancy bound `k′·ℓ`.
    fn resident_demand(&self, program: &Program) -> u64 {
        let machine = self.cluster.machine();
        let spec = self.cluster.spec();
        let device_cap = |d: usize, shared_words: u64| -> u64 {
            spec.devices
                .get(d)
                .map(|s| s.k_prime * occupancy(machine, shared_words, s.h_limit))
                .unwrap_or(0)
        };
        let mut demand = 0u64;
        for round in &program.rounds {
            for step in &round.steps {
                match step {
                    HostStep::Launch(k) => {
                        demand = demand.max(k.blocks().min(device_cap(0, k.shared_words)));
                    }
                    HostStep::LaunchSharded { kernel, shards } => {
                        let mut per = vec![0u64; spec.n_devices()];
                        for s in shards {
                            if let Some(p) = per.get_mut(s.device as usize) {
                                *p += s.end.saturating_sub(s.start);
                            }
                        }
                        let total: u64 = per
                            .iter()
                            .enumerate()
                            .map(|(d, &b)| b.min(device_cap(d, kernel.shared_words)))
                            .sum();
                        demand = demand.max(total);
                    }
                    _ => {}
                }
            }
        }
        demand.max(1)
    }
}
