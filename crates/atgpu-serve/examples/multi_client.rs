//! Multi-client serving demo: three tenants share one simulated
//! 4-device cluster through a [`CostServer`].
//!
//! * `trader` floods the queue with executions of one program;
//! * `analyst` prices a sweep of what-if cluster variants (answered
//!   analytically, then from the memo);
//! * `batch` submits a few large jobs and relies on tenant fairness to
//!   not starve behind `trader`'s flood.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p atgpu-serve --example multi_client
//! ```

use atgpu_algos::vecadd::VecAdd;
use atgpu_algos::workload::{test_machine, test_spec};
use atgpu_model::ClusterSpec;
use atgpu_serve::{CostServer, ServeError, ServerConfig};
use std::time::Instant;

fn main() {
    let machine = test_machine();
    let spec = ClusterSpec::homogeneous(4, test_spec());
    let server = CostServer::new(
        machine,
        spec,
        ServerConfig { queue_capacity: 32, ..ServerConfig::default() },
    )
    .expect("server");

    let small = VecAdd::new(32 * 16, 7).build_sharded(&machine, 4).expect("builds");
    let large = VecAdd::new(32 * 96, 8).build_sharded(&machine, 4).expect("builds");

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        // Tenant 1: a flood of small executions.
        let trader = &server;
        let small_ref = &small;
        scope.spawn(move || {
            let mut bounced = 0u32;
            for i in 0..40 {
                match trader.submit("trader", &small_ref.program, small_ref.inputs.clone()) {
                    Ok(r) => {
                        if i == 0 {
                            println!("[trader] first run: {:.3} simulated ms", r.total_ms());
                        }
                    }
                    Err(ServeError::QueueFull { .. }) => bounced += 1,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            println!("[trader] 40 submissions, {bounced} bounced by backpressure");
        });

        // Tenant 2: what-if pricing over candidate clusters.
        let analyst = &server;
        let large_ref = &large;
        scope.spawn(move || {
            let base = analyst.price(&large_ref.program).expect("quote");
            println!("[analyst] base quote {:.3} ms via {:?}", base.total_ms, base.source);
            for slow_factor in [2.0, 4.0, 8.0] {
                let mut what_if = analyst.cluster().spec().clone();
                what_if.host_links[0] = what_if.host_links[0].scaled(slow_factor);
                let q = analyst.price_what_if(&large_ref.program, &what_if).expect("quote");
                println!(
                    "[analyst] host link 0 slowed {slow_factor}x -> {:.3} ms via {:?}",
                    q.total_ms, q.source
                );
            }
            // Asking the base question again is a memo hit.
            let again = analyst.price(&large_ref.program).expect("quote");
            println!("[analyst] repeat quote via {:?}", again.source);
        });

        // Tenant 3: a few wide jobs; fairness keeps them moving.
        let batch = &server;
        let large_ref = &large;
        scope.spawn(move || {
            for _ in 0..3 {
                let r = batch
                    .submit("batch", &large_ref.program, large_ref.inputs.clone())
                    .expect("batch job");
                println!("[batch] wide job done: {:.3} simulated ms", r.total_ms());
            }
        });
    });

    let stats = server.stats();
    println!(
        "\nserved in {:.1} host ms — admitted {} (rejected {}), pricing: {} memo / {} analytic / \
         {} simulated ({:.0}% fast path)",
        t0.elapsed().as_secs_f64() * 1e3,
        stats.admission.admitted_total,
        stats.admission.rejected_total,
        stats.price.memo_hits,
        stats.price.analytic,
        stats.price.simulated,
        100.0 * stats.price.fast_fraction(),
    );
}
