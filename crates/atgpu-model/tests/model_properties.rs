//! Model-crate property tests: cost-function algebra, occupancy laws and
//! Table I integrity.

use atgpu_model::comparison::{comparison_table, render_markdown, TABLE1_ITEMS};
use atgpu_model::cost::{evaluate, CostModel};
use atgpu_model::{occupancy, AlgoMetrics, AtgpuMachine, GpuSpec, RoundMetrics};
use proptest::prelude::*;

fn machine() -> AtgpuMachine {
    AtgpuMachine::new(1 << 16, 32, 12_288, 1 << 24).unwrap()
}

fn round(time: u64, io: u64, blocks: u64, inw: u64, outw: u64) -> RoundMetrics {
    RoundMetrics {
        time,
        io_blocks: io,
        global_words: 4096,
        shared_words: 96,
        inward_words: inw,
        inward_txns: u64::from(inw > 0),
        outward_words: outw,
        outward_txns: u64::from(outw > 0),
        blocks_launched: blocks,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cost is additive over rounds: evaluating a two-round program equals
    /// the sum of evaluating each round separately (every cost model).
    #[test]
    fn cost_additive_over_rounds(
        t1 in 0u64..5000, q1 in 0u64..5000, k1 in 1u64..10_000,
        t2 in 0u64..5000, q2 in 0u64..5000, k2 in 1u64..10_000,
        inw in 0u64..100_000, outw in 0u64..100_000,
    ) {
        let m = machine();
        let s = GpuSpec::gtx650_like();
        let p = s.derived_cost_params();
        let r1 = round(t1, q1, k1, inw, 0);
        let r2 = round(t2, q2, k2, 0, outw);
        for model in [CostModel::PerfectGpu, CostModel::GpuCost, CostModel::Swgpu] {
            let both = evaluate(model, &p, &m, &s,
                &AlgoMetrics::new(vec![r1, r2])).unwrap().total();
            let one = evaluate(model, &p, &m, &s,
                &AlgoMetrics::new(vec![r1])).unwrap().total();
            let two = evaluate(model, &p, &m, &s,
                &AlgoMetrics::new(vec![r2])).unwrap().total();
            prop_assert!((both - one - two).abs() < 1e-9 * both.max(1.0));
        }
    }

    /// The four model views are totally ordered on any metrics:
    /// kernel-only ≤ SWGPU ≤ GPU-cost, and perfect ≤ GPU-cost.
    #[test]
    fn cost_model_ordering(
        t in 0u64..10_000, q in 0u64..10_000, k in 1u64..100_000,
        inw in 0u64..1_000_000, outw in 0u64..1_000_000,
    ) {
        let m = machine();
        let s = GpuSpec::gtx650_like();
        let p = s.derived_cost_params();
        let metrics = AlgoMetrics::new(vec![round(t, q, k, inw, outw)]);
        let kernel = evaluate(CostModel::KernelOnly, &p, &m, &s, &metrics).unwrap().total();
        let swgpu = evaluate(CostModel::Swgpu, &p, &m, &s, &metrics).unwrap().total();
        let gpu = evaluate(CostModel::GpuCost, &p, &m, &s, &metrics).unwrap().total();
        let perfect = evaluate(CostModel::PerfectGpu, &p, &m, &s, &metrics).unwrap().total();
        prop_assert!(kernel <= swgpu + 1e-12);
        prop_assert!(swgpu <= gpu + 1e-12);
        prop_assert!(perfect <= gpu + 1e-12);
    }

    /// Occupancy is antitone in shared usage and monotone in H; the wave
    /// factor is monotone in k.
    #[test]
    fn occupancy_laws(m1 in 1u64..8000, m2 in 1u64..8000, h in 1u64..64) {
        let m = machine();
        let (lo, hi) = (m1.min(m2), m1.max(m2));
        prop_assert!(occupancy(&m, lo, h) >= occupancy(&m, hi, h));
        prop_assert!(occupancy(&m, m1, h) <= occupancy(&m, m1, h + 1));
        prop_assert!(occupancy(&m, m1, h) <= h);
    }

    /// Scaling every metric count by c scales the cost's variable parts by
    /// c when wave factors stay proportional (homogeneity sanity check on
    /// the perfect-GPU cost with zero sigma/alpha).
    #[test]
    fn perfect_cost_homogeneous(t in 1u64..1000, q in 1u64..1000, c in 2u64..5) {
        let m = machine();
        let s = GpuSpec::gtx650_like();
        let mut p = s.derived_cost_params();
        p.sigma = 0.0;
        p.alpha = 0.0;
        let base = evaluate(CostModel::PerfectGpu, &p, &m, &s,
            &AlgoMetrics::new(vec![round(t, q, 1, 100, 0)])).unwrap();
        let scaled = evaluate(CostModel::PerfectGpu, &p, &m, &s,
            &AlgoMetrics::new(vec![round(c * t, c * q, 1, c * 100, 0)])).unwrap();
        prop_assert!((scaled.total() - c as f64 * base.total()).abs()
            < 1e-9 * scaled.total().max(1.0));
    }
}

#[test]
fn table1_row_count_matches_items() {
    let md = render_markdown(&comparison_table());
    // Header + separator + one row per item.
    assert_eq!(md.lines().count(), 2 + TABLE1_ITEMS.len());
}

#[test]
fn exactly_three_gpu_models() {
    let t = comparison_table();
    assert_eq!(t.len(), 3);
    assert!(t.iter().any(|m| m.citation.contains("this paper")));
}
