//! A tiny symbolic big-O term language.
//!
//! The paper states closed-form complexities such as the reduction I/O
//! bound `O((n/b)·(1−1/b)⁻¹·…)` or the matrix-multiplication time `O(n·b)`.
//! `atgpu-algos` uses this module to *state* those complexities in code and
//! the test-suites evaluate them numerically against the analyser's exact
//! counts, checking the constant-factor ratio stays bounded as `n` grows —
//! i.e. that our implementation really has the paper's asymptotics.

use std::fmt;

/// A symbolic expression over the problem size `n` and machine width `b`.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A positive constant.
    Const(f64),
    /// The problem size `n`.
    N,
    /// The machine width `b` (cores per MP / words per block).
    B,
    /// Sum of terms.
    Add(Vec<Term>),
    /// Product of terms.
    Mul(Vec<Term>),
    /// Quotient `a / b`.
    Div(Box<Term>, Box<Term>),
    /// `log₂(a)`, clamped to ≥ 1 so O(log n) terms stay positive for
    /// small `n` (complexity algebra convention).
    Log2(Box<Term>),
    /// `logᵦ(a)` where the base is the machine width `b`, clamped to ≥ 1.
    LogB(Box<Term>),
    /// `⌈a⌉`.
    Ceil(Box<Term>),
    /// `a^k` for integer `k ≥ 0`.
    Pow(Box<Term>, u32),
}

impl Term {
    /// Numerically evaluates the term at a given `n` and `b`.
    pub fn eval(&self, n: f64, b: f64) -> f64 {
        match self {
            Term::Const(c) => *c,
            Term::N => n,
            Term::B => b,
            Term::Add(ts) => ts.iter().map(|t| t.eval(n, b)).sum(),
            Term::Mul(ts) => ts.iter().map(|t| t.eval(n, b)).product(),
            Term::Div(a, d) => a.eval(n, b) / d.eval(n, b),
            Term::Log2(a) => a.eval(n, b).log2().max(1.0),
            Term::LogB(a) => (a.eval(n, b).ln() / b.ln()).max(1.0),
            Term::Ceil(a) => a.eval(n, b).ceil(),
            Term::Pow(a, k) => a.eval(n, b).powi(*k as i32),
        }
    }

    /// `n`
    pub fn n() -> Term {
        Term::N
    }
    /// `b`
    pub fn b() -> Term {
        Term::B
    }
    /// constant
    pub fn c(v: f64) -> Term {
        Term::Const(v)
    }
    /// `self + other`
    pub fn plus(self, other: Term) -> Term {
        match self {
            Term::Add(mut v) => {
                v.push(other);
                Term::Add(v)
            }
            s => Term::Add(vec![s, other]),
        }
    }
    /// `self * other`
    pub fn times(self, other: Term) -> Term {
        match self {
            Term::Mul(mut v) => {
                v.push(other);
                Term::Mul(v)
            }
            s => Term::Mul(vec![s, other]),
        }
    }
    /// `self / other`
    pub fn over(self, other: Term) -> Term {
        Term::Div(Box::new(self), Box::new(other))
    }
    /// `log₂ self`
    pub fn log2(self) -> Term {
        Term::Log2(Box::new(self))
    }
    /// `logᵦ self`
    pub fn log_b(self) -> Term {
        Term::LogB(Box::new(self))
    }
    /// `⌈self⌉`
    pub fn ceil(self) -> Term {
        Term::Ceil(Box::new(self))
    }
    /// `self^k`
    pub fn pow(self, k: u32) -> Term {
        Term::Pow(Box::new(self), k)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::N => write!(f, "n"),
            Term::B => write!(f, "b"),
            Term::Add(ts) => {
                let parts: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
                write!(f, "({})", parts.join(" + "))
            }
            Term::Mul(ts) => {
                let parts: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
                write!(f, "{}", parts.join("·"))
            }
            Term::Div(a, d) => write!(f, "({a})/({d})"),
            Term::Log2(a) => write!(f, "log({a})"),
            Term::LogB(a) => write!(f, "log_b({a})"),
            Term::Ceil(a) => write!(f, "⌈{a}⌉"),
            Term::Pow(a, k) => write!(f, "({a})^{k}"),
        }
    }
}

/// A stated complexity bound `O(term)`, with a name for reports.
#[derive(Debug, Clone, PartialEq)]
pub struct BigO {
    /// Which quantity this bounds (e.g. "time", "I/O", "transfer").
    pub quantity: &'static str,
    /// The symbolic bound.
    pub term: Term,
}

impl BigO {
    /// Creates a bound.
    pub fn new(quantity: &'static str, term: Term) -> Self {
        Self { quantity, term }
    }

    /// Checks that `observed(n)` is bounded by `c·term(n, b)` for the given
    /// constant over all sample points.  Returns the smallest admissible
    /// constant, or `None` if the bound's value is non-positive somewhere
    /// (which would make the check meaningless).
    pub fn fitted_constant(&self, samples: &[(f64, f64)], b: f64) -> Option<f64> {
        let mut worst: f64 = 0.0;
        for &(n, observed) in samples {
            let bound = self.term.eval(n, b);
            // NaN or non-positive bounds make the check meaningless.
            if bound.is_nan() || bound <= 0.0 {
                return None;
            }
            worst = worst.max(observed / bound);
        }
        Some(worst)
    }
}

impl fmt::Display for BigO {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = O({})", self.quantity, self.term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_linear() {
        let t = Term::n().times(Term::c(3.0)); // 3n
        assert_eq!(t.eval(10.0, 32.0), 30.0);
    }

    #[test]
    fn eval_nb_quotient() {
        let t = Term::n().over(Term::b()); // n/b
        assert_eq!(t.eval(64.0, 32.0), 2.0);
    }

    #[test]
    fn eval_log_clamps() {
        let t = Term::n().log2();
        assert_eq!(t.eval(1.0, 32.0), 1.0); // log2(1)=0 clamped to 1
        assert_eq!(t.eval(8.0, 32.0), 3.0);
    }

    #[test]
    fn eval_logb() {
        let t = Term::n().log_b();
        assert!((t.eval(1024.0, 32.0) - 2.0).abs() < 1e-12); // log_32(1024) = 2
    }

    #[test]
    fn eval_matmul_io_shape() {
        // (n/b)^2 (n + b)
        let t = Term::n().over(Term::b()).pow(2).times(Term::n().plus(Term::b()));
        assert_eq!(t.eval(64.0, 32.0), 4.0 * 96.0);
    }

    #[test]
    fn ceil_works() {
        let t = Term::n().over(Term::b()).ceil();
        assert_eq!(t.eval(33.0, 32.0), 2.0);
    }

    #[test]
    fn display_readable() {
        let t = Term::n().over(Term::b()).pow(2);
        assert_eq!(t.to_string(), "((n)/(b))^2");
    }

    #[test]
    fn fitted_constant_bounds_samples() {
        let bound = BigO::new("time", Term::n()); // O(n)
        let samples = vec![(10.0, 25.0), (100.0, 220.0), (1000.0, 2100.0)];
        let c = bound.fitted_constant(&samples, 32.0).unwrap();
        assert!((c - 2.5).abs() < 1e-12); // worst ratio at n=10
    }

    #[test]
    fn fitted_constant_rejects_zero_bound() {
        let bound = BigO::new("time", Term::c(0.0));
        assert!(bound.fitted_constant(&[(1.0, 1.0)], 32.0).is_none());
    }
}
