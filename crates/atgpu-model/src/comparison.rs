//! Table I of the paper: the feature matrix comparing GPU abstract models.
//!
//! The table is data, not prose: [`comparison_table`] returns the three GPU
//! models with their capability flags, and [`render_markdown`] /
//! [`render_ascii`] reproduce the table.  [`classical_models`] adds the
//! pre-GPU models (PRAM, BSP, BSPRAM, PEM) from the paper's related-work
//! discussion for context.

/// The capability axes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelCapabilities {
    /// Provides pseudocode for algorithm design.
    pub pseudocode: bool,
    /// Analyses time complexity.
    pub time_complexity: bool,
    /// Analyses I/O complexity.
    pub io_complexity: bool,
    /// Analyses space complexity.
    pub space_complexity: bool,
    /// Enforces a shared-memory capacity limit.
    pub shared_memory_limit: bool,
    /// Models synchronisation.
    pub synchronisation: bool,
    /// Provides a cost function.
    pub cost_function: bool,
    /// Enforces a global-memory capacity limit.
    pub global_memory_limit: bool,
    /// Captures host/device data transfer.
    pub host_device_transfer: bool,
}

impl ModelCapabilities {
    /// Number of capabilities present.
    pub fn count(&self) -> usize {
        [
            self.pseudocode,
            self.time_complexity,
            self.io_complexity,
            self.space_complexity,
            self.shared_memory_limit,
            self.synchronisation,
            self.cost_function,
            self.global_memory_limit,
            self.host_device_transfer,
        ]
        .iter()
        .filter(|&&x| x)
        .count()
    }
}

/// A named model with its capabilities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Model name as used in the paper.
    pub name: &'static str,
    /// Citation tag from the paper's bibliography.
    pub citation: &'static str,
    /// Capability flags.
    pub caps: ModelCapabilities,
}

/// Row labels of Table I, in the paper's order.
pub const TABLE1_ITEMS: [&str; 9] = [
    "Pseudocode",
    "Time Complexity",
    "I/O Complexity",
    "Space Complexity",
    "Shared Memory Limit",
    "Synchronisation",
    "Cost Function",
    "Global Memory Limit",
    "Host/Device Data Transfer",
];

fn cap_values(c: &ModelCapabilities) -> [bool; 9] {
    [
        c.pseudocode,
        c.time_complexity,
        c.io_complexity,
        c.space_complexity,
        c.shared_memory_limit,
        c.synchronisation,
        c.cost_function,
        c.global_memory_limit,
        c.host_device_transfer,
    ]
}

/// The three GPU abstract models of Table I, exactly as the paper marks
/// them.
pub fn comparison_table() -> Vec<ModelInfo> {
    vec![
        ModelInfo {
            name: "AGPU",
            citation: "[9] Koike & Sadakane",
            caps: ModelCapabilities {
                pseudocode: true,
                time_complexity: true,
                io_complexity: true,
                space_complexity: true,
                shared_memory_limit: true,
                synchronisation: false,
                cost_function: false,
                global_memory_limit: false,
                host_device_transfer: false,
            },
        },
        ModelInfo {
            name: "SWGPU",
            citation: "[8] Sitchinava & Weichert",
            caps: ModelCapabilities {
                pseudocode: false,
                time_complexity: true,
                io_complexity: true,
                space_complexity: false,
                shared_memory_limit: false,
                synchronisation: true,
                cost_function: true,
                global_memory_limit: false,
                host_device_transfer: false,
            },
        },
        ModelInfo {
            name: "ATGPU",
            citation: "this paper",
            caps: ModelCapabilities {
                pseudocode: true,
                time_complexity: true,
                io_complexity: true,
                space_complexity: true,
                shared_memory_limit: true,
                synchronisation: true,
                cost_function: true,
                global_memory_limit: true,
                host_device_transfer: true,
            },
        },
    ]
}

/// The classical parallel models from the paper's §I-B, for context.
/// (They predate GPUs; none capture warps or the GPU memory hierarchy.)
pub fn classical_models() -> Vec<ModelInfo> {
    let base = ModelCapabilities { time_complexity: true, ..ModelCapabilities::default() };
    vec![
        ModelInfo { name: "PRAM", citation: "[10] Fortune & Wyllie", caps: base },
        ModelInfo {
            name: "BSP",
            citation: "[11] Valiant",
            caps: ModelCapabilities { synchronisation: true, cost_function: true, ..base },
        },
        ModelInfo {
            name: "BSPRAM",
            citation: "[12] Tiskin",
            caps: ModelCapabilities { synchronisation: true, cost_function: true, ..base },
        },
        ModelInfo {
            name: "PEM",
            citation: "[13] Arge et al.",
            caps: ModelCapabilities { io_complexity: true, ..base },
        },
    ]
}

/// Renders a model list as a GitHub-flavoured markdown table in the shape
/// of Table I (items as rows, models as columns, ✓ marks).
pub fn render_markdown(models: &[ModelInfo]) -> String {
    let mut out = String::new();
    out.push_str("| Item |");
    for m in models {
        out.push_str(&format!(" {} |", m.name));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in models {
        out.push_str(":---:|");
    }
    out.push('\n');
    for (i, item) in TABLE1_ITEMS.iter().enumerate() {
        out.push_str(&format!("| {item} |"));
        for m in models {
            out.push_str(if cap_values(&m.caps)[i] { " ✓ |" } else { "   |" });
        }
        out.push('\n');
    }
    out
}

/// Renders a model list as a fixed-width ASCII table.
pub fn render_ascii(models: &[ModelInfo]) -> String {
    let item_w = TABLE1_ITEMS.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!("{:item_w$}", "Item"));
    for m in models {
        out.push_str(&format!("  {:>6}", m.name));
    }
    out.push('\n');
    out.push_str(&"-".repeat(item_w + models.len() * 8));
    out.push('\n');
    for (i, item) in TABLE1_ITEMS.iter().enumerate() {
        out.push_str(&format!("{item:item_w$}"));
        for m in models {
            out.push_str(&format!("  {:>6}", if cap_values(&m.caps)[i] { "yes" } else { "-" }));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atgpu_has_all_capabilities() {
        let t = comparison_table();
        let atgpu = t.iter().find(|m| m.name == "ATGPU").unwrap();
        assert_eq!(atgpu.caps.count(), 9);
    }

    #[test]
    fn agpu_matches_paper_row() {
        let t = comparison_table();
        let agpu = t.iter().find(|m| m.name == "AGPU").unwrap();
        assert!(agpu.caps.pseudocode);
        assert!(!agpu.caps.synchronisation);
        assert!(!agpu.caps.cost_function);
        assert!(!agpu.caps.global_memory_limit);
        assert!(!agpu.caps.host_device_transfer);
        assert_eq!(agpu.caps.count(), 5);
    }

    #[test]
    fn swgpu_matches_paper_row() {
        let t = comparison_table();
        let sw = t.iter().find(|m| m.name == "SWGPU").unwrap();
        assert!(!sw.caps.pseudocode);
        assert!(sw.caps.synchronisation);
        assert!(sw.caps.cost_function);
        assert!(!sw.caps.host_device_transfer);
        assert_eq!(sw.caps.count(), 4);
    }

    #[test]
    fn only_atgpu_captures_transfer() {
        let with_transfer: Vec<_> =
            comparison_table().into_iter().filter(|m| m.caps.host_device_transfer).collect();
        assert_eq!(with_transfer.len(), 1);
        assert_eq!(with_transfer[0].name, "ATGPU");
    }

    #[test]
    fn only_atgpu_bounds_global_memory() {
        let bounded: Vec<_> =
            comparison_table().into_iter().filter(|m| m.caps.global_memory_limit).collect();
        assert_eq!(bounded.len(), 1);
        assert_eq!(bounded[0].name, "ATGPU");
    }

    #[test]
    fn markdown_has_all_rows() {
        let md = render_markdown(&comparison_table());
        for item in TABLE1_ITEMS {
            assert!(md.contains(item), "missing row {item}");
        }
        // 9 item rows + header + separator
        assert_eq!(md.lines().count(), 11);
    }

    #[test]
    fn ascii_has_all_models() {
        let a = render_ascii(&comparison_table());
        for name in ["AGPU", "SWGPU", "ATGPU"] {
            assert!(a.contains(name));
        }
    }

    #[test]
    fn classical_models_lack_gpu_features() {
        for m in classical_models() {
            assert!(!m.caps.host_device_transfer);
            assert!(!m.caps.shared_memory_limit);
            assert!(!m.caps.global_memory_limit);
        }
    }

    #[test]
    fn capability_count_ordering_matches_paper_narrative() {
        // ATGPU strictly dominates both prior GPU models.
        let t = comparison_table();
        let count = |n: &str| t.iter().find(|m| m.name == n).unwrap().caps.count();
        assert!(count("ATGPU") > count("AGPU"));
        assert!(count("ATGPU") > count("SWGPU"));
    }
}
