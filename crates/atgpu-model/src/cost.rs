//! The ATGPU cost functions — Expressions (1) and (2) of the paper — and
//! the SWGPU baseline cost used in the paper's evaluation.
//!
//! * **Perfect-GPU cost** (Expression 1): every thread block gets its own
//!   MP, so a round costs
//!   `T_I(i) + (tᵢ + λ·qᵢ)/γ + T_O(i) + σ`.
//! * **GPU-cost** (Expression 2): a real GPU has only `k′` MPs, each
//!   holding `ℓ = min(⌊M/m⌋, H)` blocks, so the compute term is stretched
//!   by the wave factor `⌈k/(k′ℓ)⌉`:
//!   `T_I(i) + (⌈k/(k′ℓ)⌉·tᵢ + λ·qᵢ)/γ + T_O(i) + σ`.
//! * **Transfer cost** (Boyer et al.): `T_I(i) = Îᵢ·α + Iᵢ·β`, and
//!   symmetrically for `T_O`.
//! * **SWGPU baseline**: the paper's evaluation "use\[s\] the GPU cost
//!   function of our model minus the data transfer as the SWGPU cost" —
//!   i.e. the same expression without the `T_I`/`T_O` terms.

use crate::error::ModelError;
use crate::machine::AtgpuMachine;
use crate::metrics::{AlgoMetrics, RoundMetrics};
use crate::occupancy::{occupancy, wave_factor};
use crate::params::{ClusterSpec, CostParams, GpuSpec};
use crate::streams::{RoundSchedule, StreamItem, StreamResource, StreamTimeline};

/// Which cost function to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostModel {
    /// Expression (1): unlimited multiprocessors.
    PerfectGpu,
    /// Expression (2): `k′` MPs with occupancy-limited residency.
    GpuCost,
    /// The SWGPU baseline: [`CostModel::GpuCost`] minus the transfer terms.
    Swgpu,
    /// Kernel-only cost: the compute term alone (no transfer, no `σ`) —
    /// the analytical analogue of the paper's observed "Kernel" series.
    KernelOnly,
}

/// A cost broken into the paper's four per-round components, summed over
/// rounds.  `total()` reproduces the cost function; keeping the parts
/// separate is what lets the experiments compute the predicted transfer
/// proportion `ΔT` of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// `Σᵢ T_I(i)` — inward transfer cost.
    pub transfer_in: f64,
    /// `Σᵢ (waveᵢ·tᵢ + λ·qᵢ)/γ` — kernel compute + I/O cost.
    pub kernel: f64,
    /// `Σᵢ T_O(i)` — outward transfer cost.
    pub transfer_out: f64,
    /// `R·σ` — synchronisation cost.
    pub sync: f64,
}

impl CostBreakdown {
    /// The full cost `Σᵢ (T_I(i) + kernelᵢ + T_O(i) + σ)`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.transfer_in + self.kernel + self.transfer_out + self.sync
    }

    /// Total transfer cost `Σᵢ (T_I(i) + T_O(i))`.
    #[inline]
    pub fn transfer(&self) -> f64 {
        self.transfer_in + self.transfer_out
    }

    /// Predicted proportion of cost spent on data transfer — the `ΔT`
    /// series of the paper's Figure 6.  Zero-cost algorithms yield 0.
    pub fn transfer_proportion(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            self.transfer() / t
        }
    }

    /// The cost with transfer terms removed — what the SWGPU model sees.
    #[inline]
    pub fn without_transfer(&self) -> f64 {
        self.kernel + self.sync
    }
}

/// Inward transfer cost for one round, `T_I(i) = Îᵢ·α + Iᵢ·β`.
#[inline]
pub fn transfer_in_cost(params: &CostParams, round: &RoundMetrics) -> f64 {
    round.inward_txns as f64 * params.alpha + round.inward_words as f64 * params.beta
}

/// Outward transfer cost for one round, `T_O(i) = Ôᵢ·α + Oᵢ·β`.
#[inline]
pub fn transfer_out_cost(params: &CostParams, round: &RoundMetrics) -> f64 {
    round.outward_txns as f64 * params.alpha + round.outward_words as f64 * params.beta
}

/// The GPU-cost kernel term of one round, `(waveᵢ·tᵢ + λ·qᵢ)/γ` —
/// Expression (2)'s compute component, shared by the serial, streamed and
/// cluster cost functions (and, via [`schedule_round_spans`], by trace
/// consumers predicting per-span durations).
pub fn gpu_kernel_term(
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    params: &CostParams,
    round: &RoundMetrics,
) -> Result<f64, ModelError> {
    let wave = wave_factor(machine, spec, round.blocks_launched, round.shared_words)
        .ok_or(ModelError::SharedMemoryExceeded {
            required: round.shared_words,
            available: machine.m,
        })?
        // An empty launch still runs its (empty) kernel once.
        .max(u64::from(round.time > 0));
    Ok((wave as f64 * round.time as f64 + params.lambda * round.io_blocks as f64) / params.gamma)
}

/// One operation of a round's *predicted* timeline, as scheduled by the
/// same [`StreamTimeline`] the simulator times with — the analytic
/// counterpart of an observed trace span.  Times are round-relative
/// milliseconds; `words` is the link traffic (0 for the kernel and for
/// the aggregate peer term).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedSpan {
    /// The hardware lane the operation occupies.
    pub resource: StreamResource,
    /// The stream it was enqueued on.
    pub stream: u32,
    /// Words moved (transfers) or 0 (kernel / peer aggregate).
    pub words: u64,
    /// Predicted start, relative to the round start.
    pub start_ms: f64,
    /// Predicted end, relative to the round start.
    pub end_ms: f64,
}

/// Schedules one round through a [`StreamTimeline`]: transfers priced on
/// `params`'s link, the kernel term on the compute resource, syncs raising
/// the floor.  Component sums are folded into `breakdown`; every scheduled
/// operation is reported to `sink`; the return value is the round's
/// stream-aware duration (without `σ`).  An empty schedule falls back to
/// the round's aggregate metrics, all on stream 0 — exactly the serial
/// `T_I + kernel + T_O`.
fn schedule_round_with(
    params: &CostParams,
    round: &RoundMetrics,
    kernel_ms: f64,
    schedule: Option<&RoundSchedule>,
    peer_ms: f64,
    breakdown: &mut CostBreakdown,
    sink: &mut impl FnMut(PredictedSpan),
) -> f64 {
    let mut tl = StreamTimeline::new();
    let mut emit = |tl: &mut StreamTimeline, stream: u32, res: StreamResource, dur: f64, words| {
        let (start_ms, end_ms) = tl.advance_spanned(stream, res, dur);
        sink(PredictedSpan { resource: res, stream, words, start_ms, end_ms });
    };
    match schedule {
        Some(s) if !s.items.is_empty() => {
            let mut kernel_seen = false;
            for item in &s.items {
                match item {
                    StreamItem::TransferIn { stream, txns, words } => {
                        let d = *txns as f64 * params.alpha + *words as f64 * params.beta;
                        emit(&mut tl, *stream, StreamResource::HostToDevice, d, *words);
                        breakdown.transfer_in += d;
                    }
                    StreamItem::TransferOut { stream, txns, words } => {
                        let d = *txns as f64 * params.alpha + *words as f64 * params.beta;
                        emit(&mut tl, *stream, StreamResource::DeviceToHost, d, *words);
                        breakdown.transfer_out += d;
                    }
                    StreamItem::Kernel => {
                        kernel_seen = true;
                        emit(&mut tl, 0, StreamResource::Compute, kernel_ms, 0);
                    }
                    StreamItem::SyncStream { stream } => tl.sync_stream(*stream),
                    StreamItem::SyncDevice => tl.sync_device(),
                }
            }
            if !kernel_seen && kernel_ms > 0.0 {
                emit(&mut tl, 0, StreamResource::Compute, kernel_ms, 0);
            }
        }
        _ => {
            let t_in = transfer_in_cost(params, round);
            let t_out = transfer_out_cost(params, round);
            emit(&mut tl, 0, StreamResource::HostToDevice, t_in, round.inward_words);
            emit(&mut tl, 0, StreamResource::Compute, kernel_ms, 0);
            emit(&mut tl, 0, StreamResource::DeviceToHost, t_out, round.outward_words);
            breakdown.transfer_in += t_in;
            breakdown.transfer_out += t_out;
        }
    }
    if peer_ms > 0.0 {
        emit(&mut tl, 0, StreamResource::Peer, peer_ms, 0);
    }
    breakdown.kernel += kernel_ms;
    tl.finish()
}

/// [`schedule_round_with`] discarding the spans — the hot path the cost
/// functions use.
fn schedule_round(
    params: &CostParams,
    round: &RoundMetrics,
    kernel_ms: f64,
    schedule: Option<&RoundSchedule>,
    peer_ms: f64,
    breakdown: &mut CostBreakdown,
) -> f64 {
    schedule_round_with(params, round, kernel_ms, schedule, peer_ms, breakdown, &mut |_| {})
}

/// Predicts one round's per-operation spans: the same walk
/// [`streamed_evaluate`] prices a round with, but returning every
/// operation's `(start, end)` on its lane instead of only the round
/// total.  Trace consumers (`atgpu-exp --trace`) pair these with the
/// simulator's observed spans to report worst-*span* prediction error.
/// Returns `(spans, round_ms)` where `round_ms` excludes `σ`.
pub fn schedule_round_spans(
    params: &CostParams,
    round: &RoundMetrics,
    kernel_ms: f64,
    schedule: Option<&RoundSchedule>,
    peer_ms: f64,
) -> (Vec<PredictedSpan>, f64) {
    let mut spans = Vec::new();
    let mut breakdown = CostBreakdown::default();
    let total = schedule_round_with(
        params,
        round,
        kernel_ms,
        schedule,
        peer_ms,
        &mut breakdown,
        &mut |s| spans.push(s),
    );
    (spans, total)
}

/// Rejects schedules addressing streams beyond the model's bound (the
/// IR validator enforces the same limit on programs; hand-built
/// schedules get a proper error instead of the timeline's defensive
/// clamp).
fn check_schedule_streams(s: &RoundSchedule) -> Result<(), ModelError> {
    for item in &s.items {
        let stream = match item {
            StreamItem::TransferIn { stream, .. }
            | StreamItem::TransferOut { stream, .. }
            | StreamItem::SyncStream { stream } => *stream,
            StreamItem::Kernel | StreamItem::SyncDevice => continue,
        };
        if stream >= crate::streams::MAX_STREAMS {
            return Err(ModelError::InvalidParams {
                reason: format!(
                    "schedule addresses stream {stream}, limit {}",
                    crate::streams::MAX_STREAMS
                ),
            });
        }
    }
    Ok(())
}

/// The result of the stream-aware GPU-cost: component sums (the serial
/// accounting) plus the overlapped total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamedCost {
    /// Per-component sums over rounds — what the cost *would* be with no
    /// overlap; `breakdown.total()` is the serial Expression-(2) cost.
    pub breakdown: CostBreakdown,
    /// The stream-aware total, `Σᵢ (σ + max-over-chains(i))` — always
    /// `≤ breakdown.total()`.
    pub total_ms: f64,
}

impl StreamedCost {
    /// The serial (no-overlap) cost of the same program.
    #[inline]
    pub fn serial_ms(&self) -> f64 {
        self.breakdown.total()
    }

    /// Predicted overlap efficiency: serial cost over streamed cost
    /// (≥ 1; 1 when nothing overlaps).
    pub fn overlap_speedup(&self) -> f64 {
        if self.total_ms <= 0.0 {
            1.0
        } else {
            self.serial_ms() / self.total_ms
        }
    }
}

/// Evaluates the **stream-aware GPU-cost** (Expression 2 with
/// copy/compute overlap): each round costs
/// `σ + max-over-stream-chains(T_I items, kernel, T_O items)` computed by
/// the shared [`StreamTimeline`] scheduler, so the analytic prediction
/// tracks the simulator's overlapped round times.  `schedules` supplies
/// one [`RoundSchedule`] per round (see `atgpu_analyze::stream_schedule`,
/// which derives them from a program); an empty schedule makes that round
/// serial, so passing all-empty schedules reproduces
/// [`evaluate`]`(CostModel::GpuCost, …)` exactly.
pub fn streamed_evaluate(
    params: &CostParams,
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    metrics: &AlgoMetrics,
    schedules: &[RoundSchedule],
) -> Result<StreamedCost, ModelError> {
    params.validate()?;
    spec.validate()?;
    metrics.check_fits(machine)?;
    if schedules.len() != metrics.rounds.len() {
        return Err(ModelError::InvalidParams {
            reason: format!(
                "{} round schedules for {} rounds",
                schedules.len(),
                metrics.rounds.len()
            ),
        });
    }

    let mut breakdown = CostBreakdown::default();
    let mut total = 0.0;
    for (round, schedule) in metrics.rounds.iter().zip(schedules) {
        check_schedule_streams(schedule)?;
        let kernel = gpu_kernel_term(machine, spec, params, round)?;
        total += params.sigma
            + schedule_round(params, round, kernel, Some(schedule), 0.0, &mut breakdown);
        breakdown.sync += params.sigma;
    }
    Ok(StreamedCost { breakdown, total_ms: total })
}

/// Evaluates `model` for `metrics` on `machine` with GPU `spec`.
///
/// Fails if the parameters are invalid, the metrics do not fit the machine
/// (global/shared limits — the paper's "cannot be run" rule), or a round's
/// blocks exceed what the GPU can ever hold (`ℓ = 0`).
pub fn evaluate(
    model: CostModel,
    params: &CostParams,
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    metrics: &AlgoMetrics,
) -> Result<CostBreakdown, ModelError> {
    params.validate()?;
    spec.validate()?;
    metrics.check_fits(machine)?;

    let mut out = CostBreakdown::default();
    for round in &metrics.rounds {
        let wave = match model {
            CostModel::PerfectGpu => 1,
            CostModel::GpuCost | CostModel::Swgpu | CostModel::KernelOnly => {
                wave_factor(machine, spec, round.blocks_launched, round.shared_words)
                    .ok_or(ModelError::SharedMemoryExceeded {
                        required: round.shared_words,
                        available: machine.m,
                    })?
                    // An empty launch still runs its (empty) kernel once.
                    .max(u64::from(round.time > 0))
            }
        };
        let kernel = (wave as f64 * round.time as f64 + params.lambda * round.io_blocks as f64)
            / params.gamma;
        out.kernel += kernel;
        match model {
            CostModel::PerfectGpu | CostModel::GpuCost => {
                out.transfer_in += transfer_in_cost(params, round);
                out.transfer_out += transfer_out_cost(params, round);
                out.sync += params.sigma;
            }
            CostModel::Swgpu => {
                out.sync += params.sigma;
            }
            CostModel::KernelOnly => {}
        }
    }
    Ok(out)
}

/// Convenience: the ATGPU GPU-cost total (Expression 2) — the series the
/// paper plots as "ATGPU".
pub fn atgpu_cost(
    params: &CostParams,
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    metrics: &AlgoMetrics,
) -> Result<f64, ModelError> {
    Ok(evaluate(CostModel::GpuCost, params, machine, spec, metrics)?.total())
}

/// Convenience: the SWGPU baseline total — the series the paper plots as
/// "SWGPU" (GPU-cost minus data transfer).
pub fn swgpu_cost(
    params: &CostParams,
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    metrics: &AlgoMetrics,
) -> Result<f64, ModelError> {
    Ok(evaluate(CostModel::Swgpu, params, machine, spec, metrics)?.total())
}

/// Convenience: the perfect-GPU total (Expression 1).
pub fn perfect_cost(
    params: &CostParams,
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    metrics: &AlgoMetrics,
) -> Result<f64, ModelError> {
    Ok(evaluate(CostModel::PerfectGpu, params, machine, spec, metrics)?.total())
}

/// Words and transactions one device exchanges over peer links during one
/// round.  Directed: `src → dst`; the cost is charged to **both**
/// endpoints' critical paths (source reads, destination writes — neither
/// can proceed while the copy is in flight).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerTraffic {
    /// Source device index.
    pub src: u32,
    /// Destination device index.
    pub dst: u32,
    /// Words moved.
    pub words: u64,
    /// Transfer transactions.
    pub txns: u64,
}

/// The cluster cost decomposition: per-device breakdowns (each summed
/// over rounds) plus the max-based total.
///
/// Unlike the single-device [`CostBreakdown`], the cluster total is *not*
/// the sum of the per-device totals: devices work concurrently, so a
/// round costs `σ + max_d(T_I(d) + kernel(d) + T_peer(d) + T_O(d))`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCostBreakdown {
    /// Per-device cost components, summed over rounds (`sync` left at
    /// zero — synchronisation is a cluster-wide term).
    pub per_device: Vec<CostBreakdown>,
    /// Per-device peer-transfer cost, summed over rounds.
    pub peer: Vec<f64>,
    /// The predicted total: `Σᵢ (σ + max_d pathᵢ(d))`.
    pub total_ms: f64,
    /// `Σᵢ σ` — the cluster-wide synchronisation share of the total.
    pub sync_ms: f64,
}

impl ClusterCostBreakdown {
    /// The slowest device's summed critical path (total minus sync).
    pub fn critical_path_ms(&self) -> f64 {
        self.total_ms - self.sync_ms
    }
}

/// Evaluates the multi-device GPU-cost: each device `d` runs its shard
/// (`per_device[d]`, one [`AlgoMetrics`] row per round, all devices with
/// the same round count) behind its own host link, and a round completes
/// when the slowest device finishes:
///
/// ```text
/// T = Σᵢ ( σ + max_d [ T_I(i,d) + (waveᵢ_d·tᵢ_d + λ_d·qᵢ_d)/γ_d
///                      + T_peer(i,d) + T_O(i,d) ] )
/// ```
///
/// `T_I`/`T_O` use device `d`'s host-link `α`/`β`; `γ_d`/`λ_d` come from
/// its [`GpuSpec::derived_cost_params`]; peer traffic is priced by the
/// directed `peer_links[src][dst]` entry and charged to both endpoints.
pub fn cluster_cost(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    per_device: &[AlgoMetrics],
    peer: &[Vec<PeerTraffic>],
) -> Result<ClusterCostBreakdown, ModelError> {
    cluster_cost_streamed(cluster, machine, per_device, &[], peer)
}

/// [`cluster_cost`] with per-device **stream schedules**: device `d`'s
/// round `i` is priced by the stream-chain scheduler over
/// `schedules[d][i]` instead of the serial `T_I + kernel + T_O` sum, so
/// double-buffered multi-device programs get overlap credit inside each
/// device on top of the max-over-devices concurrency.  Pass an empty
/// `schedules` slice (or an empty per-device vector) for all-serial
/// devices — that reproduces [`cluster_cost`] exactly.  Peer traffic is
/// charged to both endpoints' peer engines after the round's scheduled
/// items.
pub fn cluster_cost_streamed(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    per_device: &[AlgoMetrics],
    schedules: &[Vec<RoundSchedule>],
    peer: &[Vec<PeerTraffic>],
) -> Result<ClusterCostBreakdown, ModelError> {
    cluster.validate()?;
    let n = cluster.n_devices();
    if per_device.len() != n {
        return Err(ModelError::InvalidParams {
            reason: format!("{} device metric tables for a {n}-device cluster", per_device.len()),
        });
    }
    let rounds = per_device.first().map(|m| m.rounds.len()).unwrap_or(0);
    if per_device.iter().any(|m| m.rounds.len() != rounds) {
        return Err(ModelError::InvalidParams {
            reason: "all devices must have the same round count".into(),
        });
    }
    if !schedules.is_empty() {
        if schedules.len() != n {
            return Err(ModelError::InvalidParams {
                reason: format!("{} schedule tables for a {n}-device cluster", schedules.len()),
            });
        }
        if let Some(s) = schedules.iter().find(|s| !s.is_empty() && s.len() != rounds) {
            return Err(ModelError::InvalidParams {
                reason: format!(
                    "a device schedules {} rounds but the program has {rounds}",
                    s.len()
                ),
            });
        }
        for s in schedules.iter().flatten() {
            check_schedule_streams(s)?;
        }
    }

    // Per-device parameters: host-link α/β over the device's own γ/λ.
    let params: Vec<CostParams> = cluster
        .devices
        .iter()
        .zip(&cluster.host_links)
        .map(|(spec, link)| CostParams {
            alpha: link.alpha_ms,
            beta: link.beta_ms_per_word,
            ..spec.derived_cost_params()
        })
        .collect();
    for (metrics, p) in per_device.iter().zip(&params) {
        p.validate()?;
        metrics.check_fits(machine)?;
    }

    // Peer cost charged per device per round.
    let mut peer_cost = vec![vec![0.0f64; n]; rounds];
    if peer.len() > rounds {
        return Err(ModelError::InvalidParams {
            reason: format!("peer traffic for {} rounds but only {rounds} rounds", peer.len()),
        });
    }
    for (costs, round_traffic) in peer_cost.iter_mut().zip(peer.iter()) {
        for t in round_traffic {
            let (s, d) = (t.src as usize, t.dst as usize);
            if s >= n || d >= n {
                return Err(ModelError::InvalidParams {
                    reason: format!("peer traffic {}→{} outside {n}-device cluster", t.src, t.dst),
                });
            }
            let c = cluster.peer_links[s][d].cost_ms(t.txns, t.words);
            costs[s] += c;
            costs[d] += c;
        }
    }

    let mut out = ClusterCostBreakdown {
        per_device: vec![CostBreakdown::default(); n],
        peer: vec![0.0; n],
        total_ms: 0.0,
        sync_ms: 0.0,
    };
    for (i, costs) in peer_cost.iter().enumerate() {
        let mut slowest = 0.0f64;
        for d in 0..n {
            let round = &per_device[d].rounds[i];
            let p = &params[d];
            let kernel = gpu_kernel_term(machine, &cluster.devices[d], p, round)?;
            let schedule = schedules.get(d).and_then(|s| s.get(i));
            let t_peer = costs[d];
            let path = schedule_round(p, round, kernel, schedule, t_peer, &mut out.per_device[d]);
            out.peer[d] += t_peer;
            slowest = slowest.max(path);
        }
        out.total_ms += cluster.sync_ms + slowest;
        out.sync_ms += cluster.sync_ms;
    }
    Ok(out)
}

/// A device-loss scenario for [`cluster_cost_degraded`]: device `device`
/// dies at the start of round `at_round`, the survivors absorb its shards
/// in proportions `takeover`, and round `at_round` additionally pays a
/// checkpoint replay of `replay_words` words in `replay_txns` transactions
/// on the heir's host link (once — not per survivor).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedLoss {
    /// The index of the device that dies.
    pub device: usize,
    /// The round at whose start it dies (rounds before run at full
    /// strength; `at_round ≥ rounds` degrades nothing).
    pub at_round: usize,
    /// Words of the dead device's checkpoint journal replayed (and
    /// billed on the heir's link) at `at_round`.
    pub replay_words: u64,
    /// Transactions that replay is billed as (normally 1).
    pub replay_txns: u64,
    /// Fraction of the dead device's per-round work each survivor takes
    /// over.  Must have one entry per device, be zero at `device`, be
    /// non-negative, and sum to 1.
    pub takeover: Vec<f64>,
}

/// [`cluster_cost`] under a mid-program device loss — the analytic mirror
/// of the simulator's degraded mode.  Rounds before `loss.at_round` are
/// priced exactly like [`cluster_cost`].  From `at_round` on:
///
/// * the dead device contributes nothing to any round's max;
/// * every survivor pays the dead device's **full** inward traffic on its
///   own host link (staged inputs are broadcast so any survivor can run
///   any recovery shard);
/// * survivor `d`'s kernel term grows fractionally: `k′_d = k_d +
///   f_d·k_dead` blocks (waves computed in `f64`), and the DRAM term gets
///   `q_d + f_d·q_dead`;
/// * only the heir (lowest surviving index) pays the dead device's
///   outward traffic;
/// * peer traffic touching the dead device is re-routed the way the
///   simulator routes it: a dead source is replaced by the heir, a dead
///   destination becomes a broadcast to every survivor, and a copy whose
///   endpoints coincide is a free local move;
/// * round `at_round` alone adds the checkpoint replay
///   `replay_txns·α + replay_words·β` — billed once, on the **heir's**
///   host link (the simulator restores every survivor's memory from the
///   journal, but the one-time replay transfer lands in exactly one
///   device's time columns).
///
/// Each degraded round still costs `σ + max` over the surviving paths.
pub fn cluster_cost_degraded(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    per_device: &[AlgoMetrics],
    peer: &[Vec<PeerTraffic>],
    loss: &DegradedLoss,
) -> Result<ClusterCostBreakdown, ModelError> {
    cluster.validate()?;
    let n = cluster.n_devices();
    if per_device.len() != n {
        return Err(ModelError::InvalidParams {
            reason: format!("{} device metric tables for a {n}-device cluster", per_device.len()),
        });
    }
    if loss.device >= n {
        return Err(ModelError::InvalidParams {
            reason: format!("lost device {} outside {n}-device cluster", loss.device),
        });
    }
    if n < 2 {
        return Err(ModelError::InvalidParams {
            reason: "a 1-device cluster has no survivors to degrade onto".into(),
        });
    }
    if loss.takeover.len() != n {
        return Err(ModelError::InvalidParams {
            reason: format!("{} takeover fractions for a {n}-device cluster", loss.takeover.len()),
        });
    }
    if loss.takeover[loss.device].abs() > 1e-9 || loss.takeover.iter().any(|&f| f < 0.0) {
        return Err(ModelError::InvalidParams {
            reason: "takeover fractions must be non-negative and zero at the dead device".into(),
        });
    }
    let f_sum: f64 = loss.takeover.iter().sum();
    if (f_sum - 1.0).abs() > 1e-6 {
        return Err(ModelError::InvalidParams {
            reason: format!("takeover fractions sum to {f_sum}, expected 1"),
        });
    }
    let rounds = per_device.first().map(|m| m.rounds.len()).unwrap_or(0);
    if per_device.iter().any(|m| m.rounds.len() != rounds) {
        return Err(ModelError::InvalidParams {
            reason: "all devices must have the same round count".into(),
        });
    }
    if peer.len() > rounds {
        return Err(ModelError::InvalidParams {
            reason: format!("peer traffic for {} rounds but only {rounds} rounds", peer.len()),
        });
    }

    let params: Vec<CostParams> = cluster
        .devices
        .iter()
        .zip(&cluster.host_links)
        .map(|(spec, link)| CostParams {
            alpha: link.alpha_ms,
            beta: link.beta_ms_per_word,
            ..spec.derived_cost_params()
        })
        .collect();
    for (metrics, p) in per_device.iter().zip(&params) {
        p.validate()?;
        metrics.check_fits(machine)?;
    }
    let heir = (0..n).find(|&d| d != loss.device).expect("n ≥ 2 guarantees a survivor");

    // Peer cost per round per device, with post-death rerouting.
    let mut peer_cost = vec![vec![0.0f64; n]; rounds];
    for (i, (costs, round_traffic)) in peer_cost.iter_mut().zip(peer.iter()).enumerate() {
        for t in round_traffic {
            let (src, dst) = (t.src as usize, t.dst as usize);
            if src >= n || dst >= n {
                return Err(ModelError::InvalidParams {
                    reason: format!("peer traffic {}→{} outside {n}-device cluster", t.src, t.dst),
                });
            }
            if i < loss.at_round {
                let c = cluster.peer_links[src][dst].cost_ms(t.txns, t.words);
                costs[src] += c;
                costs[dst] += c;
                continue;
            }
            let sp = if src == loss.device { heir } else { src };
            let receivers: Vec<usize> = if dst == loss.device {
                (0..n).filter(|&d| d != loss.device).collect()
            } else {
                vec![dst]
            };
            for r in receivers {
                if r == sp {
                    continue; // local copy, free
                }
                let c = cluster.peer_links[sp][r].cost_ms(t.txns, t.words);
                costs[sp] += c;
                costs[r] += c;
            }
        }
    }

    let mut out = ClusterCostBreakdown {
        per_device: vec![CostBreakdown::default(); n],
        peer: vec![0.0; n],
        total_ms: 0.0,
        sync_ms: 0.0,
    };
    for (i, costs) in peer_cost.iter().enumerate() {
        let mut slowest = 0.0f64;
        let dead_round = &per_device[loss.device].rounds[i];
        for d in 0..n {
            if i >= loss.at_round && d == loss.device {
                continue;
            }
            let round = &per_device[d].rounds[i];
            let p = &params[d];
            let spec = &cluster.devices[d];
            let b = &mut out.per_device[d];
            let path = if i < loss.at_round {
                let kernel = gpu_kernel_term(machine, spec, p, round)?;
                schedule_round(p, round, kernel, None, costs[d], b)
            } else {
                let f = loss.takeover[d];
                let mut t_in = transfer_in_cost(p, round) + transfer_in_cost(p, dead_round);
                if i == loss.at_round && d == heir {
                    t_in += loss.replay_txns as f64 * p.alpha + loss.replay_words as f64 * p.beta;
                }
                let mut t_out = transfer_out_cost(p, round);
                if d == heir {
                    t_out += transfer_out_cost(p, dead_round);
                }
                // Fractional takeover kernel: waves over the combined
                // (possibly non-integral) block count.
                let m_used = round.shared_words.max(dead_round.shared_words);
                let ell = occupancy(machine, m_used, spec.h_limit);
                if ell == 0 {
                    return Err(ModelError::SharedMemoryExceeded {
                        required: m_used,
                        available: machine.m,
                    });
                }
                let blocks = round.blocks_launched as f64 + f * dead_round.blocks_launched as f64;
                let time = round.time.max(dead_round.time);
                let wave = (blocks / (spec.k_prime * ell) as f64).ceil().max(if time > 0 {
                    1.0
                } else {
                    0.0
                });
                let io = round.io_blocks as f64 + f * dead_round.io_blocks as f64;
                let kernel = (wave * time as f64 + p.lambda * io) / p.gamma;
                b.transfer_in += t_in;
                b.transfer_out += t_out;
                b.kernel += kernel;
                t_in + kernel + costs[d] + t_out
            };
            out.peer[d] += costs[d];
            slowest = slowest.max(path);
        }
        out.total_ms += cluster.sync_ms + slowest;
        out.sync_ms += cluster.sync_ms;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> AtgpuMachine {
        AtgpuMachine::new(1 << 20, 32, 12_288, 1 << 26).unwrap()
    }

    fn spec() -> GpuSpec {
        GpuSpec::gtx650_like()
    }

    fn simple_round() -> RoundMetrics {
        RoundMetrics {
            time: 13,
            io_blocks: 96,
            global_words: 3 * 1024,
            shared_words: 96,
            inward_words: 2048,
            inward_txns: 2,
            outward_words: 1024,
            outward_txns: 1,
            blocks_launched: 32,
        }
    }

    fn unit_params() -> CostParams {
        CostParams { gamma: 1.0, lambda: 10.0, sigma: 5.0, alpha: 2.0, beta: 0.5 }
    }

    #[test]
    fn perfect_cost_matches_hand_calculation() {
        let m = AlgoMetrics::new(vec![simple_round()]);
        let c = evaluate(CostModel::PerfectGpu, &unit_params(), &machine(), &spec(), &m).unwrap();
        // T_I = 2*2 + 2048*0.5 = 1028; kernel = (13 + 10*96)/1 = 973;
        // T_O = 1*2 + 1024*0.5 = 514; sigma = 5.
        assert_eq!(c.transfer_in, 1028.0);
        assert_eq!(c.kernel, 973.0);
        assert_eq!(c.transfer_out, 514.0);
        assert_eq!(c.sync, 5.0);
        assert_eq!(c.total(), 1028.0 + 973.0 + 514.0 + 5.0);
    }

    #[test]
    fn gpu_cost_applies_wave_factor() {
        let m = AlgoMetrics::new(vec![simple_round()]);
        // k' * l = 2 * 16 = 32 (96-word blocks are H-capped); k = 32 -> 1 wave.
        let c1 = evaluate(CostModel::GpuCost, &unit_params(), &machine(), &spec(), &m).unwrap();
        assert_eq!(c1.kernel, 973.0);
        // k = 33 -> 2 waves -> kernel = (2*13 + 960) = 986.
        let mut r = simple_round();
        r.blocks_launched = 33;
        let m2 = AlgoMetrics::new(vec![r]);
        let c2 = evaluate(CostModel::GpuCost, &unit_params(), &machine(), &spec(), &m2).unwrap();
        assert_eq!(c2.kernel, 986.0);
    }

    #[test]
    fn swgpu_is_gpu_cost_without_transfer() {
        let m = AlgoMetrics::new(vec![simple_round(), simple_round()]);
        let g = evaluate(CostModel::GpuCost, &unit_params(), &machine(), &spec(), &m).unwrap();
        let s = evaluate(CostModel::Swgpu, &unit_params(), &machine(), &spec(), &m).unwrap();
        assert_eq!(s.transfer_in, 0.0);
        assert_eq!(s.transfer_out, 0.0);
        assert_eq!(s.kernel, g.kernel);
        assert_eq!(s.sync, g.sync);
        assert!((g.total() - s.total() - g.transfer()).abs() < 1e-12);
    }

    #[test]
    fn kernel_only_drops_sync_too() {
        let m = AlgoMetrics::new(vec![simple_round()]);
        let k = evaluate(CostModel::KernelOnly, &unit_params(), &machine(), &spec(), &m).unwrap();
        assert_eq!(k.sync, 0.0);
        assert_eq!(k.transfer(), 0.0);
        assert!(k.kernel > 0.0);
    }

    #[test]
    fn gpu_cost_at_least_perfect_cost() {
        let mut r = simple_round();
        r.blocks_launched = 1000;
        let m = AlgoMetrics::new(vec![r]);
        let p = perfect_cost(&unit_params(), &machine(), &spec(), &m).unwrap();
        let g = atgpu_cost(&unit_params(), &machine(), &spec(), &m).unwrap();
        assert!(g >= p);
    }

    #[test]
    fn transfer_proportion_between_zero_and_one() {
        let m = AlgoMetrics::new(vec![simple_round()]);
        let c = evaluate(CostModel::GpuCost, &unit_params(), &machine(), &spec(), &m).unwrap();
        let d = c.transfer_proportion();
        assert!((0.0..=1.0).contains(&d), "delta = {d}");
    }

    #[test]
    fn transfer_proportion_of_zero_cost_is_zero() {
        assert_eq!(CostBreakdown::default().transfer_proportion(), 0.0);
    }

    #[test]
    fn vecadd_closed_form_shape() {
        // The paper's vector-addition cost: 3α + 3nβ + (13 + λ·3k)/γ + σ.
        let n: u64 = 1 << 20;
        let b = 32;
        let k = n / b;
        let r = RoundMetrics {
            time: 13,
            io_blocks: 3 * k,
            global_words: 3 * n,
            shared_words: 3 * b,
            inward_words: 2 * n,
            inward_txns: 2,
            outward_words: n,
            outward_txns: 1,
            blocks_launched: k,
        };
        let p = unit_params();
        let m = AlgoMetrics::new(vec![r]);
        let c = perfect_cost(&p, &machine(), &spec(), &m).unwrap();
        let expect = 3.0 * p.alpha
            + 3.0 * n as f64 * p.beta
            + (13.0 + p.lambda * 3.0 * k as f64) / p.gamma
            + p.sigma;
        assert!((c - expect).abs() < 1e-9, "c={c} expect={expect}");
    }

    #[test]
    fn oversized_global_rejected() {
        let mut r = simple_round();
        r.global_words = machine().g + 1;
        let m = AlgoMetrics::new(vec![r]);
        assert!(matches!(
            atgpu_cost(&unit_params(), &machine(), &spec(), &m),
            Err(ModelError::GlobalMemoryExceeded { .. })
        ));
    }

    #[test]
    fn oversized_shared_rejected() {
        let mut r = simple_round();
        r.shared_words = machine().m + 1;
        let m = AlgoMetrics::new(vec![r]);
        assert!(matches!(
            atgpu_cost(&unit_params(), &machine(), &spec(), &m),
            Err(ModelError::SharedMemoryExceeded { .. })
        ));
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = unit_params();
        p.gamma = 0.0;
        let m = AlgoMetrics::new(vec![simple_round()]);
        assert!(atgpu_cost(&p, &machine(), &spec(), &m).is_err());
    }

    #[test]
    fn cost_monotone_in_lambda() {
        let m = AlgoMetrics::new(vec![simple_round()]);
        let mut p = unit_params();
        let c1 = atgpu_cost(&p, &machine(), &spec(), &m).unwrap();
        p.lambda *= 2.0;
        let c2 = atgpu_cost(&p, &machine(), &spec(), &m).unwrap();
        assert!(c2 > c1);
    }

    #[test]
    fn cost_monotone_in_beta() {
        let m = AlgoMetrics::new(vec![simple_round()]);
        let mut p = unit_params();
        let c1 = atgpu_cost(&p, &machine(), &spec(), &m).unwrap();
        p.beta *= 3.0;
        let c2 = atgpu_cost(&p, &machine(), &spec(), &m).unwrap();
        assert!(c2 > c1);
    }

    fn shard_round(blocks: u64, in_words: u64, out_words: u64) -> RoundMetrics {
        RoundMetrics {
            time: 13,
            io_blocks: 3 * blocks,
            global_words: 3 * 1024,
            shared_words: 96,
            inward_words: in_words,
            inward_txns: u64::from(in_words > 0),
            outward_words: out_words,
            outward_txns: u64::from(out_words > 0),
            blocks_launched: blocks,
        }
    }

    fn unit_cluster(n: usize) -> ClusterSpec {
        let spec = GpuSpec {
            clock_cycles_per_ms: 1.0,
            dram_issue_cycles: 10,
            xfer_alpha_ms: 2.0,
            xfer_beta_ms_per_word: 0.5,
            sync_ms: 5.0,
            ..GpuSpec::gtx650_like()
        };
        ClusterSpec::homogeneous(n, spec)
    }

    #[test]
    fn cluster_cost_single_device_matches_gpu_cost() {
        // With one device and no peer traffic, the cluster total must be
        // exactly the single-device GPU-cost (max over one device = sum).
        let m = AlgoMetrics::new(vec![simple_round(), simple_round()]);
        let cluster = unit_cluster(1);
        let c = cluster_cost(&cluster, &machine(), std::slice::from_ref(&m), &[]).unwrap();
        let single =
            evaluate(CostModel::GpuCost, &unit_params(), &machine(), &cluster.devices[0], &m)
                .unwrap();
        assert!((c.total_ms - single.total()).abs() < 1e-9, "{} vs {}", c.total_ms, single.total());
        assert_eq!(c.sync_ms, 10.0);
    }

    #[test]
    fn cluster_round_cost_is_max_over_devices() {
        // Device 0 moves 1000 words, device 1 moves 100: the round costs
        // the slower device's path plus σ, not the sum.
        let cluster = unit_cluster(2);
        let heavy = AlgoMetrics::new(vec![shard_round(16, 1000, 0)]);
        let light = AlgoMetrics::new(vec![shard_round(16, 100, 0)]);
        let c = cluster_cost(&cluster, &machine(), &[heavy, light], &[]).unwrap();
        let path = |b: &CostBreakdown| b.transfer_in + b.kernel + b.transfer_out;
        let p0 = path(&c.per_device[0]);
        let p1 = path(&c.per_device[1]);
        assert!(p0 > p1);
        assert!((c.total_ms - (5.0 + p0)).abs() < 1e-9);
    }

    #[test]
    fn peer_traffic_charged_to_both_endpoints() {
        let mut cluster = unit_cluster(2);
        // An asymmetric pair of links.
        cluster.peer_links[0][1] =
            crate::params::LinkParams { alpha_ms: 1.0, beta_ms_per_word: 0.1 };
        cluster.peer_links[1][0] =
            crate::params::LinkParams { alpha_ms: 4.0, beta_ms_per_word: 0.4 };
        let m = AlgoMetrics::new(vec![shard_round(16, 0, 0)]);
        let fwd = cluster_cost(
            &cluster,
            &machine(),
            &[m.clone(), m.clone()],
            &[vec![PeerTraffic { src: 0, dst: 1, words: 10, txns: 1 }]],
        )
        .unwrap();
        // 1·1.0 + 10·0.1 = 2.0, charged to both devices.
        assert!((fwd.peer[0] - 2.0).abs() < 1e-12);
        assert!((fwd.peer[1] - 2.0).abs() < 1e-12);
        let rev = cluster_cost(
            &cluster,
            &machine(),
            &[m.clone(), m.clone()],
            &[vec![PeerTraffic { src: 1, dst: 0, words: 10, txns: 1 }]],
        )
        .unwrap();
        // 1·4.0 + 10·0.4 = 8.0 on the slow direction.
        assert!((rev.peer[0] - 8.0).abs() < 1e-12);
        assert!(rev.total_ms > fwd.total_ms, "asymmetric link must show in the total");
    }

    #[test]
    fn cluster_cost_rejects_mismatched_shapes() {
        let cluster = unit_cluster(2);
        let m = AlgoMetrics::new(vec![shard_round(4, 0, 0)]);
        assert!(cluster_cost(&cluster, &machine(), std::slice::from_ref(&m), &[]).is_err());
        let two = AlgoMetrics::new(vec![shard_round(4, 0, 0), shard_round(4, 0, 0)]);
        assert!(cluster_cost(&cluster, &machine(), &[m.clone(), two], &[]).is_err());
        let bad_peer = vec![vec![PeerTraffic { src: 0, dst: 7, words: 1, txns: 1 }]];
        assert!(cluster_cost(&cluster, &machine(), &[m.clone(), m], &bad_peer).is_err());
    }

    #[test]
    fn degraded_round_matches_hand_calculation() {
        // Two devices, two rounds; device 1 dies at the start of round 1
        // and device 0 takes over all of its work.
        let cluster = unit_cluster(2);
        let m = AlgoMetrics::new(vec![shard_round(16, 1000, 200), shard_round(16, 1000, 200)]);
        let loss = DegradedLoss {
            device: 1,
            at_round: 1,
            replay_words: 100,
            replay_txns: 1,
            takeover: vec![1.0, 0.0],
        };
        let c = cluster_cost_degraded(&cluster, &machine(), &[m.clone(), m.clone()], &[], &loss)
            .unwrap();
        // Round 0 (full strength): T_I = 2 + 500 = 502; kernel =
        // (⌈16/32⌉·13 + 10·48)/1 = 493; T_O = 2 + 100 = 102 → path 1097.
        // Round 1 (degraded): T_I = own 502 + dead 502 + replay (2 + 50)
        // = 1056; kernel over 32 combined blocks = (13 + 10·96)/1 = 973;
        // T_O = own 102 + heir-borne dead 102 = 204 → path 2233.
        let expect = (5.0 + 1097.0) + (5.0 + 2233.0);
        assert!((c.total_ms - expect).abs() < 1e-9, "{} vs {expect}", c.total_ms);
        assert_eq!(c.sync_ms, 10.0);
        // The dead device only accumulated round 0.
        assert!((c.per_device[1].transfer_in - 502.0).abs() < 1e-12);
        assert!((c.per_device[1].kernel - 493.0).abs() < 1e-12);
    }

    #[test]
    fn degraded_replay_is_billed_once_on_the_heir() {
        // Three devices, device 2 dies at round 0 with survivors splitting
        // its work 50/50.  Both survivors pay the dead device's broadcast
        // inward traffic, but the one-time journal replay (1·α + 100·β =
        // 2 + 50 = 52) lands on the heir's (device 0's) link alone.
        let cluster = unit_cluster(3);
        let m = AlgoMetrics::new(vec![shard_round(16, 1000, 200)]);
        let loss = DegradedLoss {
            device: 2,
            at_round: 0,
            replay_words: 100,
            replay_txns: 1,
            takeover: vec![0.5, 0.5, 0.0],
        };
        let c = cluster_cost_degraded(
            &cluster,
            &machine(),
            &[m.clone(), m.clone(), m.clone()],
            &[],
            &loss,
        )
        .unwrap();
        // Non-heir survivor: own 502 + dead broadcast 502.
        assert!((c.per_device[1].transfer_in - 1004.0).abs() < 1e-12);
        // Heir: the same plus the replay, exactly once.
        assert!((c.per_device[0].transfer_in - 1056.0).abs() < 1e-12);
    }

    #[test]
    fn degraded_loss_after_last_round_matches_cluster_cost() {
        let cluster = unit_cluster(2);
        let m = AlgoMetrics::new(vec![shard_round(16, 1000, 200), shard_round(16, 1000, 200)]);
        let loss = DegradedLoss {
            device: 0,
            at_round: 2,
            replay_words: 0,
            replay_txns: 0,
            takeover: vec![0.0, 1.0],
        };
        let full = cluster_cost(&cluster, &machine(), &[m.clone(), m.clone()], &[]).unwrap();
        let deg = cluster_cost_degraded(&cluster, &machine(), &[m.clone(), m.clone()], &[], &loss)
            .unwrap();
        assert!((full.total_ms - deg.total_ms).abs() < 1e-9);
    }

    #[test]
    fn fractional_takeover_splits_the_dead_devices_blocks() {
        // Three devices, one round, device 2 dies immediately; survivors
        // split its 32 blocks 50/50, so each runs 16 + 16 = 32 blocks →
        // still one wave, and half the dead DRAM traffic each.
        let cluster = unit_cluster(3);
        let live = AlgoMetrics::new(vec![shard_round(16, 0, 0)]);
        let dead = AlgoMetrics::new(vec![shard_round(32, 0, 0)]);
        let loss = DegradedLoss {
            device: 2,
            at_round: 0,
            replay_words: 0,
            replay_txns: 0,
            takeover: vec![0.5, 0.5, 0.0],
        };
        let c =
            cluster_cost_degraded(&cluster, &machine(), &[live.clone(), live, dead], &[], &loss)
                .unwrap();
        // kernel = (⌈32/32⌉·13 + 10·(48 + 0.5·96))/1 = 13 + 960 = 973.
        assert!((c.per_device[0].kernel - 973.0).abs() < 1e-9);
        assert!((c.per_device[1].kernel - 973.0).abs() < 1e-9);
        assert_eq!(c.per_device[2].kernel, 0.0);
    }

    #[test]
    fn degraded_rejects_bad_loss_shapes() {
        let cluster = unit_cluster(2);
        let m = AlgoMetrics::new(vec![shard_round(16, 0, 0)]);
        let ok = DegradedLoss {
            device: 1,
            at_round: 0,
            replay_words: 0,
            replay_txns: 0,
            takeover: vec![1.0, 0.0],
        };
        let pair = [m.clone(), m.clone()];
        // Dead device outside the cluster.
        let mut bad = ok.clone();
        bad.device = 5;
        assert!(cluster_cost_degraded(&cluster, &machine(), &pair, &[], &bad).is_err());
        // Takeover fractions that do not sum to 1.
        let mut bad = ok.clone();
        bad.takeover = vec![0.5, 0.0];
        assert!(cluster_cost_degraded(&cluster, &machine(), &pair, &[], &bad).is_err());
        // A dead device that still claims work.
        let mut bad = ok.clone();
        bad.takeover = vec![0.5, 0.5];
        assert!(cluster_cost_degraded(&cluster, &machine(), &pair, &[], &bad).is_err());
        // No survivors at all.
        let one = unit_cluster(1);
        let solo = DegradedLoss { takeover: vec![0.0], device: 0, ..ok };
        assert!(
            cluster_cost_degraded(&one, &machine(), std::slice::from_ref(&m), &[], &solo).is_err()
        );
    }

    #[test]
    fn degraded_reroutes_peer_traffic_around_the_dead_device() {
        // Device 1 dies at round 0; traffic 0→1 becomes a broadcast to
        // the survivors, i.e. only the free local copy on device 0 in a
        // 2-device cluster, while 2-device traffic 1→0 is re-sourced to
        // the heir (device 0) and also becomes local.
        let cluster = unit_cluster(2);
        let m = AlgoMetrics::new(vec![shard_round(16, 0, 0)]);
        let loss = DegradedLoss {
            device: 1,
            at_round: 0,
            replay_words: 0,
            replay_txns: 0,
            takeover: vec![1.0, 0.0],
        };
        let traffic = vec![vec![
            PeerTraffic { src: 0, dst: 1, words: 64, txns: 1 },
            PeerTraffic { src: 1, dst: 0, words: 64, txns: 1 },
        ]];
        let c =
            cluster_cost_degraded(&cluster, &machine(), &[m.clone(), m.clone()], &traffic, &loss)
                .unwrap();
        assert_eq!(c.peer[0], 0.0, "both copies collapse to free local moves");
        assert_eq!(c.peer[1], 0.0);
    }

    #[test]
    fn sharding_transfer_bound_work_cuts_cluster_cost() {
        // A transfer-dominated round split across 4 devices should cost
        // roughly a quarter of the 1-device transfer time (+σ).
        let one = unit_cluster(1);
        let four = unit_cluster(4);
        let whole = AlgoMetrics::new(vec![shard_round(64, 40_000, 0)]);
        let quarter = AlgoMetrics::new(vec![shard_round(16, 10_000, 0)]);
        let c1 = cluster_cost(&one, &machine(), &[whole], &[]).unwrap();
        let c4 = cluster_cost(&four, &machine(), &vec![quarter; 4], &[]).unwrap();
        assert!(
            c4.total_ms < 0.3 * c1.total_ms,
            "4-device sharding should cut a transfer-bound round: {} vs {}",
            c4.total_ms,
            c1.total_ms
        );
    }

    #[test]
    fn streamed_with_empty_schedules_matches_gpu_cost() {
        let m = AlgoMetrics::new(vec![simple_round(), simple_round()]);
        let serial = evaluate(CostModel::GpuCost, &unit_params(), &machine(), &spec(), &m).unwrap();
        let schedules = vec![RoundSchedule::default(); 2];
        let s = streamed_evaluate(&unit_params(), &machine(), &spec(), &m, &schedules).unwrap();
        assert_eq!(s.total_ms, serial.total());
        assert_eq!(s.breakdown, serial);
        assert_eq!(s.overlap_speedup(), 1.0);
    }

    #[test]
    fn single_stream_schedule_matches_serial() {
        // An explicit schedule that keeps everything on stream 0
        // degenerates to the serial sum.
        let r = simple_round();
        let m = AlgoMetrics::new(vec![r]);
        let schedule = RoundSchedule {
            items: vec![
                StreamItem::TransferIn { stream: 0, txns: r.inward_txns, words: r.inward_words },
                StreamItem::Kernel,
                StreamItem::TransferOut { stream: 0, txns: r.outward_txns, words: r.outward_words },
            ],
        };
        let s = streamed_evaluate(&unit_params(), &machine(), &spec(), &m, &[schedule]).unwrap();
        let serial = evaluate(CostModel::GpuCost, &unit_params(), &machine(), &spec(), &m).unwrap();
        assert!((s.total_ms - serial.total()).abs() < 1e-9, "{} vs {}", s.total_ms, serial.total());
    }

    #[test]
    fn second_stream_hides_inward_transfer() {
        // T_I = 1028 on stream 1, kernel = 973 + T_O = 514 on stream 0:
        // round = max(1028, 1487) + σ = 1492 instead of 2520.
        let r = simple_round();
        let m = AlgoMetrics::new(vec![r]);
        let schedule = RoundSchedule {
            items: vec![
                StreamItem::TransferIn { stream: 1, txns: r.inward_txns, words: r.inward_words },
                StreamItem::Kernel,
                StreamItem::TransferOut { stream: 0, txns: r.outward_txns, words: r.outward_words },
            ],
        };
        let s = streamed_evaluate(&unit_params(), &machine(), &spec(), &m, &[schedule]).unwrap();
        assert!((s.total_ms - (973.0 + 514.0 + 5.0)).abs() < 1e-9, "{}", s.total_ms);
        assert!(s.overlap_speedup() > 1.6, "{}", s.overlap_speedup());
        // The component accounting is unchanged by overlap.
        assert_eq!(s.breakdown.transfer_in, 1028.0);
        assert_eq!(s.serial_ms(), s.breakdown.total());
    }

    #[test]
    fn sync_heavy_schedule_loses_all_overlap() {
        let r = simple_round();
        let m = AlgoMetrics::new(vec![r]);
        let schedule = RoundSchedule {
            items: vec![
                StreamItem::TransferIn { stream: 1, txns: r.inward_txns, words: r.inward_words },
                StreamItem::SyncDevice,
                StreamItem::Kernel,
                StreamItem::SyncStream { stream: 0 },
                StreamItem::TransferOut { stream: 2, txns: r.outward_txns, words: r.outward_words },
            ],
        };
        let s = streamed_evaluate(&unit_params(), &machine(), &spec(), &m, &[schedule]).unwrap();
        assert!((s.total_ms - s.serial_ms()).abs() < 1e-9);
    }

    #[test]
    fn streamed_rejects_mismatched_schedule_count() {
        let m = AlgoMetrics::new(vec![simple_round(), simple_round()]);
        let schedules = vec![RoundSchedule::default()];
        assert!(streamed_evaluate(&unit_params(), &machine(), &spec(), &m, &schedules).is_err());
    }

    #[test]
    fn streamed_rejects_out_of_range_stream_ids() {
        let m = AlgoMetrics::new(vec![simple_round()]);
        let schedule = RoundSchedule {
            items: vec![StreamItem::TransferIn {
                stream: crate::streams::MAX_STREAMS,
                txns: 1,
                words: 8,
            }],
        };
        assert!(streamed_evaluate(
            &unit_params(),
            &machine(),
            &spec(),
            &m,
            std::slice::from_ref(&schedule)
        )
        .is_err());
        let cluster = unit_cluster(1);
        assert!(cluster_cost_streamed(
            &cluster,
            &machine(),
            &[m],
            std::slice::from_ref(&vec![schedule]),
            &[]
        )
        .is_err());
    }

    #[test]
    fn cluster_streamed_defaults_to_serial() {
        let cluster = unit_cluster(2);
        let heavy = AlgoMetrics::new(vec![shard_round(16, 1000, 0)]);
        let light = AlgoMetrics::new(vec![shard_round(16, 100, 0)]);
        let a = cluster_cost(&cluster, &machine(), &[heavy.clone(), light.clone()], &[]).unwrap();
        let b = cluster_cost_streamed(&cluster, &machine(), &[heavy, light], &[], &[]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cluster_streamed_overlap_cuts_round_time() {
        let cluster = unit_cluster(1);
        let r = shard_round(16, 1000, 500);
        let m = AlgoMetrics::new(vec![r]);
        let serial = cluster_cost(&cluster, &machine(), std::slice::from_ref(&m), &[]).unwrap();
        let schedule = RoundSchedule {
            items: vec![
                StreamItem::TransferIn { stream: 1, txns: r.inward_txns, words: r.inward_words },
                StreamItem::Kernel,
                StreamItem::TransferOut { stream: 0, txns: r.outward_txns, words: r.outward_words },
            ],
        };
        let streamed = cluster_cost_streamed(
            &cluster,
            &machine(),
            std::slice::from_ref(&m),
            &[vec![schedule]],
            &[],
        )
        .unwrap();
        assert!(
            streamed.total_ms < serial.total_ms,
            "{} vs {}",
            streamed.total_ms,
            serial.total_ms
        );
        // Component sums are overlap-independent.
        assert_eq!(streamed.per_device, serial.per_device);
    }

    #[test]
    fn cluster_streamed_rejects_bad_schedule_shapes() {
        let cluster = unit_cluster(2);
        let m = AlgoMetrics::new(vec![shard_round(4, 0, 0)]);
        let pair = [m.clone(), m.clone()];
        // Wrong device count.
        assert!(cluster_cost_streamed(
            &cluster,
            &machine(),
            &pair,
            &[vec![RoundSchedule::default()]],
            &[]
        )
        .is_err());
        // Wrong round count on one device.
        assert!(cluster_cost_streamed(
            &cluster,
            &machine(),
            &pair,
            &[vec![RoundSchedule::default(); 2], vec![]],
            &[]
        )
        .is_err());
    }

    #[test]
    fn multi_round_sync_scales_with_r() {
        let rounds = vec![simple_round(); 5];
        let m = AlgoMetrics::new(rounds);
        let c = evaluate(CostModel::GpuCost, &unit_params(), &machine(), &spec(), &m).unwrap();
        assert_eq!(c.sync, 5.0 * unit_params().sigma);
    }
}
