//! Error type shared by the model crate.

use std::fmt;

/// Errors raised when constructing machines or validating algorithm metrics
/// against a machine's resource limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A machine parameter is invalid (zero, or `p` not divisible by `b`).
    InvalidMachine {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An algorithm uses more global memory than the machine provides.
    ///
    /// The paper: “If this is greater than `G`, the algorithm cannot be run
    /// on our model.”
    GlobalMemoryExceeded {
        /// Words the algorithm needs in global memory.
        required: u64,
        /// Words available (`G`).
        available: u64,
    },
    /// An algorithm uses more shared memory per MP than the machine provides.
    ///
    /// The paper: “If this is greater than `M`, the algorithm cannot be run
    /// on our model.”
    SharedMemoryExceeded {
        /// Words of shared memory the algorithm needs per multiprocessor.
        required: u64,
        /// Words available per multiprocessor (`M`).
        available: u64,
    },
    /// A cost parameter is invalid (non-positive rate, negative cost, NaN).
    InvalidParams {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Metrics are structurally invalid (e.g. no rounds).
    InvalidMetrics {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidMachine { reason } => {
                write!(f, "invalid ATGPU machine: {reason}")
            }
            ModelError::GlobalMemoryExceeded { required, available } => write!(
                f,
                "algorithm needs {required} words of global memory but the \
                 machine has G = {available}; the algorithm cannot run on \
                 this ATGPU instance"
            ),
            ModelError::SharedMemoryExceeded { required, available } => write!(
                f,
                "algorithm needs {required} words of shared memory per MP \
                 but the machine has M = {available}; the algorithm cannot \
                 run on this ATGPU instance"
            ),
            ModelError::InvalidParams { reason } => {
                write!(f, "invalid cost parameters: {reason}")
            }
            ModelError::InvalidMetrics { reason } => {
                write!(f, "invalid algorithm metrics: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_limits() {
        let e = ModelError::GlobalMemoryExceeded { required: 10, available: 5 };
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.contains("G = 5"));
    }

    #[test]
    fn display_shared() {
        let e = ModelError::SharedMemoryExceeded { required: 100, available: 64 };
        assert!(e.to_string().contains("M = 64"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> =
            Box::new(ModelError::InvalidMachine { reason: "b = 0".into() });
        assert!(e.to_string().contains("b = 0"));
    }
}
