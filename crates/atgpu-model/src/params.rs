//! Cost parameters `γ, λ, σ, α, β` and concrete GPU specifications.
//!
//! The paper's cost function (§III) is parameterised by five constants:
//!
//! * **operation rate `γ`** — "the cost for a multiprocessor to execute a
//!   single instruction […] corresponds to the clock rate of the GPU";
//! * **global memory latency `λ`** — cycles to access one global-memory
//!   block ("in the region of 400–800 cycles");
//! * **fixed synchronisation cost `σ`** — per-round overhead ("resetting
//!   the device, de-allocating and reallocating of data structures,
//!   clearing queues");
//! * **transfer constants `α`, `β`** — Boyer et al.'s model of a
//!   host↔device copy: a transaction costs `α` up-front plus `β` per word.
//!
//! [`GpuSpec`] adds what Expression (2) needs to simulate a *real* GPU:
//! the physical multiprocessor count `k′` and the hardware limit `H` on
//! blocks resident per MP, plus the bandwidth-style quantities the
//! `atgpu-sim` substrate uses to play the role of the paper's GTX 650.

use crate::error::ModelError;

/// The five cost constants of the ATGPU cost function.
///
/// Units: `gamma` is in cycles per millisecond (a clock rate), `lambda` in
/// cycles per block access, and `sigma`, `alpha`, `beta` in milliseconds, so
/// that every term of the cost function comes out in milliseconds.  Any
/// consistent unit system works; the paper itself plots unitless costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Operation rate `γ` (cycles per millisecond).
    pub gamma: f64,
    /// Global-memory block access latency `λ` (cycles).
    pub lambda: f64,
    /// Fixed synchronisation cost per round `σ` (milliseconds).
    pub sigma: f64,
    /// Per-transaction transfer overhead `α` (milliseconds).
    pub alpha: f64,
    /// Per-word transfer cost `β` (milliseconds per word).
    pub beta: f64,
}

impl CostParams {
    /// Validates the parameters: `γ > 0`, everything else non-negative and
    /// finite.
    pub fn validate(&self) -> Result<(), ModelError> {
        let fields = [
            ("gamma", self.gamma),
            ("lambda", self.lambda),
            ("sigma", self.sigma),
            ("alpha", self.alpha),
            ("beta", self.beta),
        ];
        for (name, v) in fields {
            if !v.is_finite() {
                return Err(ModelError::InvalidParams {
                    reason: format!("{name} must be finite, got {v}"),
                });
            }
            if v < 0.0 {
                return Err(ModelError::InvalidParams {
                    reason: format!("{name} must be non-negative, got {v}"),
                });
            }
        }
        if self.gamma <= 0.0 {
            return Err(ModelError::InvalidParams {
                reason: format!("gamma must be positive, got {}", self.gamma),
            });
        }
        Ok(())
    }

    /// Abstract unit parameters (`γ = 1`, `λ`, `α`, `β`, `σ` order-of-
    /// magnitude constants).  Useful for plotting cost *trends* the way the
    /// paper's Figures 3a/4a/5a do, where only growth rates matter.
    pub fn unit() -> Self {
        Self { gamma: 1.0, lambda: 100.0, sigma: 10.0, alpha: 50.0, beta: 0.05 }
    }

    /// Parameters resembling the paper's testbed (GTX 650 on a PCIe link
    /// that sustains roughly 1.7 GB/s for pageable copies, as the paper's
    /// observed vector-addition transfer times imply).
    ///
    /// * `γ`: 1058 MHz → 1.058e6 cycles/ms.
    /// * `λ`: 15 cycles — the *effective* per-transaction cost under
    ///   latency hiding (the memory pipe's issue interval); the raw
    ///   "400–800 cycle" latency the paper quotes applies to a single
    ///   un-hidden access and badly over-predicts streaming kernels (see
    ///   [`GpuSpec::derived_cost_params`]).
    /// * `σ`: 0.08 ms per round (driver sync + relaunch overhead).
    /// * `α`: 0.015 ms per transfer transaction (DMA setup).
    /// * `β`: 1.7 GB/s over 4-byte words → ≈ 2.35e-6 ms/word.
    pub fn gtx650_like() -> Self {
        Self { gamma: 1.058e6, lambda: 15.0, sigma: 0.08, alpha: 0.015, beta: 2.35e-6 }
    }
}

/// A concrete GPU for the GPU-cost function (Expression 2) and for the
/// simulator substrate.
///
/// The model part is `k′` (physical MPs) and `H` (hardware cap on resident
/// blocks per MP).  The remaining fields parameterise `atgpu-sim`'s timing:
/// they are *not* part of the abstract model, but they are what the
/// simulated "hardware" uses, in the same way the paper's GTX 650 has
/// microarchitectural behaviour the model abstracts away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Physical multiprocessor count `k′`.
    pub k_prime: u64,
    /// Hardware limit `H` on thread blocks resident per MP.
    pub h_limit: u64,
    /// Core clock in cycles per millisecond (simulator time base).
    pub clock_cycles_per_ms: f64,
    /// Global-memory (DRAM) access latency in cycles — what a warp waits
    /// when latency is not hidden.
    pub dram_latency_cycles: u64,
    /// Minimum cycles between successive DRAM block transactions the memory
    /// controller can issue (models bandwidth; shared across the device).
    pub dram_issue_cycles: u64,
    /// Cycles for a bank-conflict-free shared-memory access.
    pub shared_latency_cycles: u64,
    /// Host→device / device→host per-transaction setup time (ms) — the
    /// simulator's ground truth for `α`.
    pub xfer_alpha_ms: f64,
    /// Host↔device per-word time (ms/word) — ground truth for `β`.
    pub xfer_beta_ms_per_word: f64,
    /// Per-round synchronisation overhead (ms) — ground truth for `σ`.
    pub sync_ms: f64,
}

impl GpuSpec {
    /// Validates the specification.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.k_prime == 0 {
            return Err(ModelError::InvalidParams { reason: "k_prime must be at least 1".into() });
        }
        if self.h_limit == 0 {
            return Err(ModelError::InvalidParams { reason: "h_limit must be at least 1".into() });
        }
        if self.clock_cycles_per_ms.is_nan() || self.clock_cycles_per_ms <= 0.0 {
            return Err(ModelError::InvalidParams { reason: "clock must be positive".into() });
        }
        for (name, v) in [
            ("xfer_alpha_ms", self.xfer_alpha_ms),
            ("xfer_beta_ms_per_word", self.xfer_beta_ms_per_word),
            ("sync_ms", self.sync_ms),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ModelError::InvalidParams {
                    reason: format!("{name} must be finite and non-negative"),
                });
            }
        }
        Ok(())
    }

    /// A GTX 650-like device: 2 SMX-style multiprocessors, 16 resident
    /// blocks each, 1058 MHz, ~500-cycle DRAM latency, DRAM able to start a
    /// 32-word block transaction every 15 cycles (≈ 18 GB/s effective at
    /// 4-byte words — a realistic streaming rate for the card), PCIe
    /// sustaining ≈ 1.7 GB/s as the paper's observed transfer times imply.
    pub fn gtx650_like() -> Self {
        Self {
            k_prime: 2,
            h_limit: 16,
            clock_cycles_per_ms: 1.058e6,
            dram_latency_cycles: 500,
            dram_issue_cycles: 15,
            shared_latency_cycles: 4,
            xfer_alpha_ms: 0.015,
            xfer_beta_ms_per_word: 2.35e-6,
            sync_ms: 0.08,
        }
    }

    /// A mid-range device (GTX 1060-like): 10 MPs, faster DRAM and PCIe 3.0.
    pub fn midrange_like() -> Self {
        Self {
            k_prime: 10,
            h_limit: 32,
            clock_cycles_per_ms: 1.708e6,
            dram_latency_cycles: 400,
            dram_issue_cycles: 10,
            shared_latency_cycles: 4,
            xfer_alpha_ms: 0.010,
            xfer_beta_ms_per_word: 4.0e-7,
            sync_ms: 0.05,
        }
    }

    /// A high-end device (V100-like): 80 MPs, HBM-class memory, fast link.
    pub fn highend_like() -> Self {
        Self {
            k_prime: 80,
            h_limit: 32,
            clock_cycles_per_ms: 1.53e6,
            dram_latency_cycles: 350,
            dram_issue_cycles: 2,
            shared_latency_cycles: 4,
            xfer_alpha_ms: 0.008,
            xfer_beta_ms_per_word: 2.5e-7,
            sync_ms: 0.03,
        }
    }

    /// The affine parameters of this device's host↔device link.
    pub fn host_link(&self) -> LinkParams {
        LinkParams { alpha_ms: self.xfer_alpha_ms, beta_ms_per_word: self.xfer_beta_ms_per_word }
    }

    /// Derives abstract cost parameters from this specification — the
    /// "calibrated" `CostParams` an analyst would use to predict this GPU.
    /// (`atgpu-calibrate` recovers very similar values by regression over
    /// simulated microbenchmarks, mirroring how Boyer et al. fit `α`, `β`
    /// on real hardware.)
    ///
    /// `λ` subtlety: the paper quotes the *raw* access latency ("400–800
    /// cycles"), but the cost function charges `λ` once per block
    /// transaction with no overlap, so a prediction-grade `λ` must be the
    /// **effective** cost per transaction under latency hiding — the
    /// memory pipe's issue interval.  Calibrating `λ` from a streaming
    /// (bandwidth-bound) microbenchmark yields exactly this value; a
    /// single-warp pointer chase yields the raw latency instead (see
    /// `atgpu-calibrate`, which fits both).
    pub fn derived_cost_params(&self) -> CostParams {
        CostParams {
            gamma: self.clock_cycles_per_ms,
            lambda: self.dram_issue_cycles as f64,
            sigma: self.sync_ms,
            alpha: self.xfer_alpha_ms,
            beta: self.xfer_beta_ms_per_word,
        }
    }
}

/// Affine parameters of one transfer link: a transaction over the link
/// costs `α + β·words` milliseconds (Boyer et al.'s model, applied
/// per-edge in a multi-device system).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Per-transaction setup cost `α` (milliseconds).
    pub alpha_ms: f64,
    /// Per-word cost `β` (milliseconds per word).
    pub beta_ms_per_word: f64,
}

impl LinkParams {
    /// Validates the parameters: finite and non-negative.
    pub fn validate(&self) -> Result<(), ModelError> {
        for (name, v) in [("alpha_ms", self.alpha_ms), ("beta_ms_per_word", self.beta_ms_per_word)]
        {
            if !v.is_finite() || v < 0.0 {
                return Err(ModelError::InvalidParams {
                    reason: format!("{name} must be finite and non-negative, got {v}"),
                });
            }
        }
        Ok(())
    }

    /// Cost of moving `words` words in `txns` transactions over this link,
    /// `Î·α + I·β`.
    #[inline]
    pub fn cost_ms(&self, txns: u64, words: u64) -> f64 {
        txns as f64 * self.alpha_ms + words as f64 * self.beta_ms_per_word
    }

    /// A link scaled by `f` in both parameters (e.g. a peer interconnect
    /// several times faster than the host link).
    pub fn scaled(&self, f: f64) -> Self {
        Self { alpha_ms: self.alpha_ms * f, beta_ms_per_word: self.beta_ms_per_word * f }
    }
}

/// A multi-device system: `N` GPUs, each with its own global memory and
/// host↔device link, plus a device↔device peer-link matrix.
///
/// Links are directed: `peer_links[s][d]` prices a copy from device `s`
/// to device `d`, so asymmetric topologies (e.g. a fast down-link and a
/// slow up-link, or a switch hop for distant pairs) are expressible.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Per-device GPU specifications.
    pub devices: Vec<GpuSpec>,
    /// Host↔device link parameters, one per device.
    pub host_links: Vec<LinkParams>,
    /// Directed peer-link parameters, `peer_links[src][dst]`.  The
    /// diagonal is unused (a device does not transfer to itself).
    pub peer_links: Vec<Vec<LinkParams>>,
    /// Per-round synchronisation overhead `σ` for the whole cluster
    /// (devices synchronise together at round boundaries).
    pub sync_ms: f64,
}

impl ClusterSpec {
    /// A stable **structural** hash of the cluster — every quantity that
    /// can change a cost prediction or a simulated timing: device count,
    /// each [`GpuSpec`] field, each host link, each *off-diagonal* peer
    /// link, and the round-synchronisation overhead.
    ///
    /// Mirrors `Kernel::cache_key`'s name-exclusion rule (atgpu-ir): just
    /// as a
    /// kernel's diagnostic name is excluded because it cannot affect
    /// compilation, the **unused peer-link diagonal** is excluded here —
    /// a device never transfers to itself, so two specs differing only in
    /// `peer_links[d][d]` price every program identically and share a
    /// key, while any observable mutation (one more device, a slower
    /// link, a different `H`) changes it.
    ///
    /// The hash is unkeyed FNV-1a with `f64` fields hashed by bit
    /// pattern (`to_bits`), so the same spec hashes identically in every
    /// process of the same build.  Like `cache_key`, keys are
    /// per-platform: use them for in-process memoization, not as a
    /// persistent cross-machine format.
    pub fn spec_key(&self) -> u64 {
        // FNV-1a, identical constants to `Kernel::cache_key`'s hasher.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut put = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        let n = self.devices.len();
        put(n as u64);
        for d in &self.devices {
            put(d.k_prime);
            put(d.h_limit);
            put(d.clock_cycles_per_ms.to_bits());
            put(d.dram_latency_cycles);
            put(d.dram_issue_cycles);
            put(d.shared_latency_cycles);
            put(d.xfer_alpha_ms.to_bits());
            put(d.xfer_beta_ms_per_word.to_bits());
            put(d.sync_ms.to_bits());
        }
        for l in &self.host_links {
            put(l.alpha_ms.to_bits());
            put(l.beta_ms_per_word.to_bits());
        }
        for (s, row) in self.peer_links.iter().enumerate() {
            for (d, l) in row.iter().enumerate() {
                if s == d {
                    continue; // unused diagonal: the "name" of a link table
                }
                put(l.alpha_ms.to_bits());
                put(l.beta_ms_per_word.to_bits());
            }
        }
        put(self.sync_ms.to_bits());
        h
    }

    /// A homogeneous cluster of `n` identical devices.  Host links come
    /// from the device spec; peer links default to 4× the host link speed
    /// in both `α` and `β` (an NVLink-style interconnect).
    pub fn homogeneous(n: usize, spec: GpuSpec) -> Self {
        let host = spec.host_link();
        let peer = host.scaled(0.25);
        Self {
            devices: vec![spec; n],
            host_links: vec![host; n],
            peer_links: vec![vec![peer; n]; n],
            sync_ms: spec.sync_ms,
        }
    }

    /// Number of devices `N`.
    #[inline]
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Validates the specification: at least one device, square link
    /// tables, every spec and link valid.
    pub fn validate(&self) -> Result<(), ModelError> {
        let n = self.devices.len();
        if n == 0 {
            return Err(ModelError::InvalidParams {
                reason: "cluster needs at least one device".into(),
            });
        }
        if self.host_links.len() != n || self.peer_links.len() != n {
            return Err(ModelError::InvalidParams {
                reason: format!(
                    "cluster has {n} devices but {} host links and {} peer-link rows",
                    self.host_links.len(),
                    self.peer_links.len()
                ),
            });
        }
        for spec in &self.devices {
            spec.validate()?;
        }
        for link in &self.host_links {
            link.validate()?;
        }
        for row in &self.peer_links {
            if row.len() != n {
                return Err(ModelError::InvalidParams {
                    reason: format!("peer-link row has {} entries, expected {n}", row.len()),
                });
            }
            for link in row {
                link.validate()?;
            }
        }
        if !self.sync_ms.is_finite() || self.sync_ms < 0.0 {
            return Err(ModelError::InvalidParams {
                reason: "sync_ms must be finite and non-negative".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_params_validate() {
        CostParams::unit().validate().unwrap();
    }

    #[test]
    fn gtx_params_validate() {
        CostParams::gtx650_like().validate().unwrap();
    }

    #[test]
    fn rejects_zero_gamma() {
        let mut p = CostParams::unit();
        p.gamma = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_negative_beta() {
        let mut p = CostParams::unit();
        p.beta = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_nan_lambda() {
        let mut p = CostParams::unit();
        p.lambda = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn spec_presets_validate() {
        GpuSpec::gtx650_like().validate().unwrap();
        GpuSpec::midrange_like().validate().unwrap();
        GpuSpec::highend_like().validate().unwrap();
    }

    #[test]
    fn spec_rejects_zero_mps() {
        let mut s = GpuSpec::gtx650_like();
        s.k_prime = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn spec_rejects_zero_h() {
        let mut s = GpuSpec::gtx650_like();
        s.h_limit = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn derived_params_are_valid() {
        GpuSpec::gtx650_like().derived_cost_params().validate().unwrap();
    }

    #[test]
    fn derived_params_track_spec() {
        let spec = GpuSpec::gtx650_like();
        let p = spec.derived_cost_params();
        assert_eq!(p.gamma, spec.clock_cycles_per_ms);
        assert_eq!(p.sigma, spec.sync_ms);
        assert_eq!(p.alpha, spec.xfer_alpha_ms);
    }

    #[test]
    fn link_params_cost_is_affine() {
        let l = LinkParams { alpha_ms: 0.5, beta_ms_per_word: 0.01 };
        assert_eq!(l.cost_ms(0, 0), 0.0);
        assert_eq!(l.cost_ms(1, 0), 0.5);
        assert_eq!(l.cost_ms(3, 100), 1.5 + 1.0);
        l.validate().unwrap();
        assert!(LinkParams { alpha_ms: -1.0, beta_ms_per_word: 0.0 }.validate().is_err());
        assert!(LinkParams { alpha_ms: 0.0, beta_ms_per_word: f64::NAN }.validate().is_err());
    }

    #[test]
    fn homogeneous_cluster_validates() {
        let c = ClusterSpec::homogeneous(4, GpuSpec::gtx650_like());
        c.validate().unwrap();
        assert_eq!(c.n_devices(), 4);
        assert_eq!(c.host_links[3], GpuSpec::gtx650_like().host_link());
        // Default peer links are 4x faster than the host link.
        assert!(c.peer_links[0][1].alpha_ms < c.host_links[0].alpha_ms);
    }

    #[test]
    fn cluster_rejects_shape_mismatches() {
        let mut c = ClusterSpec::homogeneous(2, GpuSpec::gtx650_like());
        c.host_links.pop();
        assert!(c.validate().is_err());
        let mut c = ClusterSpec::homogeneous(2, GpuSpec::gtx650_like());
        c.peer_links[1].pop();
        assert!(c.validate().is_err());
        assert!(ClusterSpec::homogeneous(0, GpuSpec::gtx650_like()).validate().is_err());
    }

    #[test]
    fn spec_key_is_deterministic() {
        let a = ClusterSpec::homogeneous(4, GpuSpec::gtx650_like());
        let b = ClusterSpec::homogeneous(4, GpuSpec::gtx650_like());
        assert_eq!(a.spec_key(), b.spec_key());
        assert_eq!(a.spec_key(), a.clone().spec_key());
    }

    #[test]
    fn spec_key_sees_every_observable_mutation() {
        let base = ClusterSpec::homogeneous(3, GpuSpec::gtx650_like());
        let k0 = base.spec_key();

        // Device count.
        assert_ne!(ClusterSpec::homogeneous(4, GpuSpec::gtx650_like()).spec_key(), k0);

        // Every GpuSpec field, mutated one at a time on one device.
        type SpecMutation = Box<dyn Fn(&mut GpuSpec)>;
        let muts: Vec<SpecMutation> = vec![
            Box::new(|s| s.k_prime += 1),
            Box::new(|s| s.h_limit += 1),
            Box::new(|s| s.clock_cycles_per_ms *= 2.0),
            Box::new(|s| s.dram_latency_cycles += 1),
            Box::new(|s| s.dram_issue_cycles += 1),
            Box::new(|s| s.shared_latency_cycles += 1),
            Box::new(|s| s.xfer_alpha_ms *= 2.0),
            Box::new(|s| s.xfer_beta_ms_per_word *= 2.0),
            Box::new(|s| s.sync_ms += 0.01),
        ];
        for (i, m) in muts.iter().enumerate() {
            let mut c = base.clone();
            m(&mut c.devices[1]);
            assert_ne!(c.spec_key(), k0, "GpuSpec mutation {i} must change the key");
        }

        // Host link, off-diagonal peer link, cluster sync.
        let mut c = base.clone();
        c.host_links[2].beta_ms_per_word *= 2.0;
        assert_ne!(c.spec_key(), k0);
        let mut c = base.clone();
        c.peer_links[0][2].alpha_ms *= 2.0;
        assert_ne!(c.spec_key(), k0);
        let mut c = base.clone();
        c.sync_ms += 0.5;
        assert_ne!(c.spec_key(), k0);
    }

    #[test]
    fn spec_key_position_sensitive() {
        // Same multiset of devices in a different order is a different
        // cluster (shard plans address devices by index).
        let mut hetero = ClusterSpec::homogeneous(2, GpuSpec::gtx650_like());
        hetero.devices[1] = GpuSpec::midrange_like();
        let mut swapped = hetero.clone();
        swapped.devices.swap(0, 1);
        assert_ne!(hetero.spec_key(), swapped.spec_key());
    }

    #[test]
    fn spec_key_ignores_unused_peer_diagonal() {
        // The diagonal is semantically dead (a device never transfers to
        // itself) — like a kernel's name, it is excluded from the key.
        let base = ClusterSpec::homogeneous(2, GpuSpec::gtx650_like());
        let mut c = base.clone();
        c.peer_links[1][1].alpha_ms *= 1000.0;
        assert_eq!(c.spec_key(), base.spec_key());
    }

    #[test]
    fn presets_get_faster_up_the_range() {
        let low = GpuSpec::gtx650_like();
        let mid = GpuSpec::midrange_like();
        let high = GpuSpec::highend_like();
        assert!(low.k_prime < mid.k_prime && mid.k_prime < high.k_prime);
        assert!(low.xfer_beta_ms_per_word > mid.xfer_beta_ms_per_word);
        assert!(mid.dram_issue_cycles > high.dram_issue_cycles);
    }
}
