//! Per-round and whole-algorithm metrics (paper §III).
//!
//! The model analyses an algorithm through these quantities:
//!
//! * **number of rounds `R`** — data transfer and synchronisation are
//!   expensive, so the model tracks (and algorithm designers minimise) `R`;
//! * **time `tᵢ`** — the maximum number of operations across all MPs in
//!   round `i`;
//! * **I/O `qᵢ`** — the total number of global memory blocks accessed in
//!   the round by all MPs;
//! * **global / shared memory space** — peak words used (algorithms whose
//!   peaks exceed `G` or `M` *cannot run* on the machine);
//! * **data transfer** — `Iᵢ` (`Oᵢ`) words moved host→device
//!   (device→host) at the start (end) of the round, in `Îᵢ` (`Ôᵢ`)
//!   transactions.  This is the paper's addition to the metric set.

use crate::error::ModelError;
use crate::machine::AtgpuMachine;

/// Metrics for a single round of an ATGPU algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundMetrics {
    /// `tᵢ`: maximum number of lockstep operations executed by any MP.
    pub time: u64,
    /// `qᵢ`: total global-memory block transactions by all MPs.
    pub io_blocks: u64,
    /// Peak global-memory words used during the round.
    pub global_words: u64,
    /// Peak shared-memory words used by any MP during the round (`m`, the
    /// per-block footprint that determines occupancy).
    pub shared_words: u64,
    /// `Iᵢ`: words transferred host→device at the start of the round.
    pub inward_words: u64,
    /// `Îᵢ`: number of host→device transfer transactions.
    pub inward_txns: u64,
    /// `Oᵢ`: words transferred device→host at the end of the round.
    pub outward_words: u64,
    /// `Ôᵢ`: number of device→host transfer transactions.
    pub outward_txns: u64,
    /// `k`: thread blocks launched this round (the perfect GPU runs each on
    /// its own MP; the GPU-cost function folds them onto `k′` MPs).
    pub blocks_launched: u64,
}

impl RoundMetrics {
    /// Total words transferred either direction this round, `Iᵢ + Oᵢ`.
    #[inline]
    pub fn transfer_words(&self) -> u64 {
        self.inward_words + self.outward_words
    }

    /// Total transfer transactions this round, `Îᵢ + Ôᵢ`.
    #[inline]
    pub fn transfer_txns(&self) -> u64 {
        self.inward_txns + self.outward_txns
    }

    /// Structural sanity: a transfer with words needs at least one
    /// transaction, and a transaction moves at least zero words (empty
    /// transactions are permitted — they still pay `α`).
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.inward_words > 0 && self.inward_txns == 0 {
            return Err(ModelError::InvalidMetrics {
                reason: format!("round moves {} words inward in 0 transactions", self.inward_words),
            });
        }
        if self.outward_words > 0 && self.outward_txns == 0 {
            return Err(ModelError::InvalidMetrics {
                reason: format!(
                    "round moves {} words outward in 0 transactions",
                    self.outward_words
                ),
            });
        }
        Ok(())
    }
}

/// Metrics for a complete algorithm: one [`RoundMetrics`] per round.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AlgoMetrics {
    /// Per-round metrics, in execution order.
    pub rounds: Vec<RoundMetrics>,
}

impl AlgoMetrics {
    /// Creates metrics from per-round entries.
    pub fn new(rounds: Vec<RoundMetrics>) -> Self {
        Self { rounds }
    }

    /// `R`, the number of rounds.
    #[inline]
    pub fn num_rounds(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// Total words transferred across all rounds, `Σᵢ (Iᵢ + Oᵢ)` — the
    /// paper's headline transfer measure.
    pub fn total_transfer_words(&self) -> u64 {
        self.rounds.iter().map(RoundMetrics::transfer_words).sum()
    }

    /// Total transfer transactions, `Σᵢ (Îᵢ + Ôᵢ)`.
    pub fn total_transfer_txns(&self) -> u64 {
        self.rounds.iter().map(RoundMetrics::transfer_txns).sum()
    }

    /// Total operations `Σ tᵢ`.
    pub fn total_time_ops(&self) -> u64 {
        self.rounds.iter().map(|r| r.time).sum()
    }

    /// Total I/O block transactions `Σ qᵢ`.
    pub fn total_io_blocks(&self) -> u64 {
        self.rounds.iter().map(|r| r.io_blocks).sum()
    }

    /// Peak global-memory words over all rounds ("if there is difference
    /// between rounds, then the largest value is taken").
    pub fn peak_global_words(&self) -> u64 {
        self.rounds.iter().map(|r| r.global_words).max().unwrap_or(0)
    }

    /// Peak shared-memory words over all rounds.
    pub fn peak_shared_words(&self) -> u64 {
        self.rounds.iter().map(|r| r.shared_words).max().unwrap_or(0)
    }

    /// Checks the algorithm can run on `machine`: the paper's rule that an
    /// algorithm whose peak global (shared) usage exceeds `G` (`M`) cannot
    /// be run on the model, plus per-round structural validity.
    pub fn check_fits(&self, machine: &AtgpuMachine) -> Result<(), ModelError> {
        if self.rounds.is_empty() {
            return Err(ModelError::InvalidMetrics { reason: "algorithm has no rounds".into() });
        }
        for r in &self.rounds {
            r.validate()?;
        }
        let g = self.peak_global_words();
        if g > machine.g {
            return Err(ModelError::GlobalMemoryExceeded { required: g, available: machine.g });
        }
        let m = self.peak_shared_words();
        if m > machine.m {
            return Err(ModelError::SharedMemoryExceeded { required: m, available: machine.m });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(time: u64, io: u64) -> RoundMetrics {
        RoundMetrics {
            time,
            io_blocks: io,
            global_words: 100,
            shared_words: 32,
            inward_words: 10,
            inward_txns: 1,
            outward_words: 5,
            outward_txns: 1,
            blocks_launched: 4,
        }
    }

    #[test]
    fn transfer_totals_sum_rounds() {
        let m = AlgoMetrics::new(vec![round(1, 1), round(2, 2)]);
        assert_eq!(m.total_transfer_words(), 30);
        assert_eq!(m.total_transfer_txns(), 4);
        assert_eq!(m.num_rounds(), 2);
    }

    #[test]
    fn totals_and_peaks() {
        let mut r1 = round(5, 7);
        r1.global_words = 50;
        r1.shared_words = 96;
        let r2 = round(3, 9);
        let m = AlgoMetrics::new(vec![r1, r2]);
        assert_eq!(m.total_time_ops(), 8);
        assert_eq!(m.total_io_blocks(), 16);
        assert_eq!(m.peak_global_words(), 100);
        assert_eq!(m.peak_shared_words(), 96);
    }

    #[test]
    fn empty_metrics_have_zero_peaks() {
        let m = AlgoMetrics::default();
        assert_eq!(m.peak_global_words(), 0);
        assert_eq!(m.peak_shared_words(), 0);
    }

    #[test]
    fn fits_small_machine() {
        let mach = AtgpuMachine::new(64, 32, 96, 256).unwrap();
        let m = AlgoMetrics::new(vec![round(1, 1)]);
        m.check_fits(&mach).unwrap();
    }

    #[test]
    fn rejects_global_overflow() {
        let mach = AtgpuMachine::new(64, 32, 96, 64).unwrap();
        let m = AlgoMetrics::new(vec![round(1, 1)]); // needs 100 > 64
        assert!(matches!(
            m.check_fits(&mach),
            Err(ModelError::GlobalMemoryExceeded { required: 100, available: 64 })
        ));
    }

    #[test]
    fn rejects_shared_overflow() {
        let mach = AtgpuMachine::new(64, 32, 32, 4096).unwrap();
        let mut r = round(1, 1);
        r.shared_words = 33;
        let m = AlgoMetrics::new(vec![r]);
        assert!(matches!(m.check_fits(&mach), Err(ModelError::SharedMemoryExceeded { .. })));
    }

    #[test]
    fn rejects_empty_round_list() {
        let mach = AtgpuMachine::new(64, 32, 96, 256).unwrap();
        assert!(AlgoMetrics::default().check_fits(&mach).is_err());
    }

    #[test]
    fn rejects_words_without_txns() {
        let mut r = round(1, 1);
        r.inward_txns = 0;
        assert!(r.validate().is_err());
        let mut r = round(1, 1);
        r.outward_txns = 0;
        assert!(r.validate().is_err());
    }

    #[test]
    fn zero_word_transactions_allowed() {
        let mut r = round(1, 1);
        r.inward_words = 0;
        r.outward_words = 0;
        r.validate().unwrap(); // empty transactions still pay alpha; legal
    }
}
