//! The abstract machine `ATGPU(p, b, M, G)`.
//!
//! From the paper (§II, *Architecture*):
//!
//! > Let `ATGPU(p, b, M, G)` be an instance of the model with `p` cores in
//! > total, `b` cores and shared memory of `M` words per MP, and global
//! > memory of `G` words. […] Therefore `k = p/b`. […] The shared memory of
//! > each `mpᵢ ∈ MP` is split into `b` memory banks, such that `b`
//! > successive words reside in distinct banks. […] The global memory is
//! > divided into memory blocks of `b` words.
//!
//! The global-memory bound `G` is the architectural addition ATGPU makes
//! over SWGPU and AGPU, which both assume unlimited global memory.

use crate::error::ModelError;

/// An instance `ATGPU(p, b, M, G)` of the abstract machine.
///
/// All quantities are in *words*, the model's indivisible memory unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtgpuMachine {
    /// Total number of cores `p` on the device.
    pub p: u64,
    /// Cores per multiprocessor `b`.  Also the number of shared-memory banks
    /// per MP and the number of words per global-memory block — the model
    /// deliberately uses a single granularity for all three.
    pub b: u64,
    /// Shared memory per multiprocessor, `M` words.
    pub m: u64,
    /// Global memory size, `G` words (the ATGPU addition over prior models).
    pub g: u64,
}

impl AtgpuMachine {
    /// Creates a machine, validating the architectural constraints:
    /// `b ≥ 1`, `p ≥ b`, `p` divisible by `b`, `M ≥ b` (an MP must be able
    /// to hold at least one word per bank) and `G ≥ b` (global memory must
    /// hold at least one block).
    pub fn new(p: u64, b: u64, m: u64, g: u64) -> Result<Self, ModelError> {
        if b == 0 {
            return Err(ModelError::InvalidMachine {
                reason: "b = 0: an MP must have at least one core".into(),
            });
        }
        if p == 0 || !p.is_multiple_of(b) {
            return Err(ModelError::InvalidMachine {
                reason: format!("p = {p} must be a positive multiple of b = {b} (k = p/b)"),
            });
        }
        if m < b {
            return Err(ModelError::InvalidMachine {
                reason: format!("M = {m} must be at least b = {b} (one word per bank)"),
            });
        }
        if g < b {
            return Err(ModelError::InvalidMachine {
                reason: format!("G = {g} must be at least b = {b} (one memory block)"),
            });
        }
        Ok(Self { p, b, m, g })
    }

    /// Number of multiprocessors `k = p/b`.
    #[inline]
    pub fn k(&self) -> u64 {
        self.p / self.b
    }

    /// Number of `b`-word blocks global memory is divided into (`⌈G/b⌉`;
    /// a trailing partial block still occupies a block slot).
    #[inline]
    pub fn global_blocks(&self) -> u64 {
        self.g.div_ceil(self.b)
    }

    /// The global-memory block index holding word address `addr`.
    #[inline]
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.b
    }

    /// The shared-memory bank holding shared word address `addr`
    /// (`b` successive words reside in distinct banks).
    #[inline]
    pub fn bank_of(&self, addr: u64) -> u64 {
        addr % self.b
    }

    /// Number of thread blocks needed to give every one of `n` data items
    /// its own core, `⌈n/b⌉` — the launch geometry used by all the paper's
    /// kernels.
    #[inline]
    pub fn blocks_for(&self, n: u64) -> u64 {
        n.div_ceil(self.b)
    }

    /// A "perfect-GPU" sized machine for `n`-element problems: enough MPs to
    /// run every thread block concurrently.  Mirrors the paper's analysis
    /// machine, which is "an impossible machine, with an unlimited amount of
    /// multiprocessors"; we size `p` so that `k = ⌈n/b⌉`.
    pub fn perfect_for(n: u64, b: u64, m: u64, g: u64) -> Result<Self, ModelError> {
        let k = n.div_ceil(b).max(1);
        Self::new(k * b, b, m, g)
    }

    /// A machine with warp width and memory sizes resembling the paper's
    /// NVIDIA GTX 650 testbed: `b = 32` (warp width), `M = 12288` words
    /// (48 KiB of shared memory at 4-byte words), `G = 2²⁸` words (1 GiB).
    /// `p` is sized for 8192 MPs so that moderately sized problems can be
    /// analysed on a "perfect" machine without resizing.
    pub fn gtx650_like() -> Self {
        Self { p: 8192 * 32, b: 32, m: 12_288, g: 1 << 28 }
    }
}

impl std::fmt::Display for AtgpuMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ATGPU(p={}, b={}, M={}, G={}) [k={}]", self.p, self.b, self.m, self.g, self.k())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_is_p_over_b() {
        let m = AtgpuMachine::new(128, 32, 1024, 1 << 20).unwrap();
        assert_eq!(m.k(), 4);
    }

    #[test]
    fn rejects_zero_b() {
        assert!(matches!(
            AtgpuMachine::new(128, 0, 1024, 1024),
            Err(ModelError::InvalidMachine { .. })
        ));
    }

    #[test]
    fn rejects_indivisible_p() {
        assert!(AtgpuMachine::new(100, 32, 1024, 1024).is_err());
    }

    #[test]
    fn rejects_zero_p() {
        assert!(AtgpuMachine::new(0, 32, 1024, 1024).is_err());
    }

    #[test]
    fn rejects_tiny_shared() {
        assert!(AtgpuMachine::new(64, 32, 16, 1024).is_err());
    }

    #[test]
    fn rejects_tiny_global() {
        assert!(AtgpuMachine::new(64, 32, 64, 8).is_err());
    }

    #[test]
    fn block_and_bank_mapping() {
        let m = AtgpuMachine::new(64, 32, 64, 4096).unwrap();
        assert_eq!(m.block_of(0), 0);
        assert_eq!(m.block_of(31), 0);
        assert_eq!(m.block_of(32), 1);
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(33), 1);
        assert_eq!(m.global_blocks(), 128);
    }

    #[test]
    fn global_blocks_rounds_up() {
        let m = AtgpuMachine::new(64, 32, 64, 100).unwrap();
        assert_eq!(m.global_blocks(), 4); // 100 words -> 4 blocks of 32
    }

    #[test]
    fn blocks_for_rounds_up() {
        let m = AtgpuMachine::new(64, 32, 64, 4096).unwrap();
        assert_eq!(m.blocks_for(1), 1);
        assert_eq!(m.blocks_for(32), 1);
        assert_eq!(m.blocks_for(33), 2);
        assert_eq!(m.blocks_for(0), 0);
    }

    #[test]
    fn perfect_machine_covers_n() {
        let m = AtgpuMachine::perfect_for(1000, 32, 96, 1 << 20).unwrap();
        assert_eq!(m.k(), 32); // ceil(1000/32)
        assert_eq!(m.b, 32);
    }

    #[test]
    fn perfect_machine_minimum_one_mp() {
        let m = AtgpuMachine::perfect_for(0, 32, 96, 1 << 20).unwrap();
        assert_eq!(m.k(), 1);
    }

    #[test]
    fn gtx650_preset_is_valid() {
        let m = AtgpuMachine::gtx650_like();
        assert!(AtgpuMachine::new(m.p, m.b, m.m, m.g).is_ok());
        assert_eq!(m.b, 32);
    }

    #[test]
    fn display_contains_fields() {
        let m = AtgpuMachine::new(64, 32, 64, 4096).unwrap();
        let s = m.to_string();
        assert!(s.contains("b=32"));
        assert!(s.contains("k=2"));
    }
}
