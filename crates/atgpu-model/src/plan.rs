//! The planning layer: price candidate shard plans and chunked pipeline
//! schedules through the analytic cost machinery, instead of guessing
//! from compute throughput alone.
//!
//! The paper's point is that data transfer (`Î·α + I·β`) dominates real
//! workloads — so a shard planner that weights devices by `k′·clock`
//! only is blind to exactly the term the model was built to expose.  A
//! cluster of identical GPUs behind asymmetric host links is *not*
//! homogeneous for a transfer-bound kernel: the device on the slow link
//! must receive fewer blocks, and how many fewer depends on the
//! workload's per-block traffic, not on any property of the devices.
//!
//! This module supplies the pieces a cost-driven planner needs:
//!
//! * [`ShardProfile`] — the per-planning-unit traffic and compute of one
//!   launch, the workload-shaped input every pricing function takes;
//! * [`plan_cost`] — prices one candidate apportionment exactly, through
//!   [`crate::cost::cluster_cost_streamed`] (per-device host-link
//!   `α`/`β`, wave factors and the shared [`crate::StreamTimeline`]
//!   scheduler are all in the objective);
//! * [`balanced_units`] — the min–max waterfill: the continuous
//!   apportionment equalising per-device round paths
//!   `T_I(d) + kernel(d) + T_O(d)`, rounded by largest remainder — the
//!   transfer-aware candidate that compute-weighting cannot produce;
//! * [`pipeline_cost`] — prices a double-buffered chunked schedule (the
//!   ping-pong shape `build_streamed` hand-writes) via the same
//!   machinery, per device, with chunk `r + 1`'s upload on stream 1
//!   under chunk `r`'s kernel + download;
//! * [`solve_chunk_units`] — the chunk-size solver: scans candidate
//!   chunk sizes and keeps the one whose *modeled* pipelined time is
//!   lowest — which lands where `T_I ≈ kernel + T_O` per round, the
//!   classic double-buffering balance, without hand-tuning.
//!
//! The actual `Vec<Shard>` plans live in `atgpu-sim` (this crate does
//! not depend on `atgpu-ir`); planners there generate candidate *unit
//! counts per device*, price them here, and keep the argmin.

use crate::cost::cluster_cost_streamed;
use crate::error::ModelError;
use crate::machine::AtgpuMachine;
use crate::metrics::{AlgoMetrics, RoundMetrics};
use crate::occupancy::occupancy;
use crate::params::ClusterSpec;
use crate::streams::{RoundSchedule, StreamItem};

/// The per-unit cost shape of a shardable launch: how much traffic and
/// compute one **planning unit** (usually a thread block; a tile row for
/// matmul) adds to the device that runs it.
///
/// Fixed per-device terms (transfer transactions, broadcast inputs) are
/// kept separate from per-unit terms so the planner prices the `α` setup
/// costs a device pays once, not per block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardProfile {
    /// Lockstep kernel time `t` of the launch (per-round, block-count
    /// independent — waves multiply it).
    pub time_ops: u64,
    /// Global-memory block transactions `q` contributed per unit.
    pub io_blocks_per_unit: u64,
    /// Host→device words staged per unit (the shard's private slice).
    pub inward_words_per_unit: u64,
    /// Host→device transfer transactions per participating device.
    pub inward_txns: u64,
    /// Device→host words returned per unit.
    pub outward_words_per_unit: u64,
    /// Device→host transfer transactions per participating device.
    pub outward_txns: u64,
    /// Words broadcast to every participating device regardless of its
    /// share (e.g. matmul's `B` operand); zero when inputs are sliced.
    pub broadcast_words: u64,
    /// Transfer transactions of the broadcast, per participating device.
    pub broadcast_txns: u64,
    /// Shared-memory words per thread block (`m`, for occupancy).
    pub shared_words: u64,
    /// Thread blocks per planning unit (1 when units are blocks).
    pub blocks_per_unit: u64,
}

impl ShardProfile {
    /// A streaming-workload default (the vecadd shape at warp width `b`):
    /// every block stages `2b` words in, `b` words out, makes 3 coalesced
    /// block transactions and runs an `O(1)` kernel.  This is the profile
    /// [`plan_shards`](../../atgpu_sim/cluster/fn.plan_shards.html) uses
    /// when it has no workload information — a deliberately
    /// transfer-aware stand-in, since transfer is what generic planning
    /// must not be blind to.
    pub fn streaming(b: u64) -> Self {
        Self {
            time_ops: 7,
            io_blocks_per_unit: 3,
            inward_words_per_unit: 2 * b,
            inward_txns: 2,
            outward_words_per_unit: b,
            outward_txns: 1,
            broadcast_words: 0,
            broadcast_txns: 0,
            shared_words: 3 * b,
            blocks_per_unit: 1,
        }
    }

    /// The one-round metrics of a device holding `units` planning units
    /// (all-zero — an idle device — when `units` is 0).
    fn device_round(&self, units: u64) -> RoundMetrics {
        if units == 0 {
            return RoundMetrics::default();
        }
        RoundMetrics {
            time: self.time_ops,
            io_blocks: self.io_blocks_per_unit * units,
            global_words: 0,
            shared_words: self.shared_words,
            inward_words: self.inward_words_per_unit * units + self.broadcast_words,
            inward_txns: self.inward_txns + self.broadcast_txns,
            outward_words: self.outward_words_per_unit * units,
            outward_txns: self.outward_txns,
            blocks_launched: self.blocks_per_unit * units,
        }
    }
}

/// Per-device one-round metric tables for one candidate apportionment.
pub fn plan_metrics(profile: &ShardProfile, units_per_device: &[u64]) -> Vec<AlgoMetrics> {
    units_per_device.iter().map(|&u| AlgoMetrics::new(vec![profile.device_round(u)])).collect()
}

/// Prices one candidate apportionment: the modeled round time of a
/// sharded launch handing `units_per_device[d]` units to device `d`,
/// computed by [`cluster_cost_streamed`] — per-device host-link `α`/`β`,
/// per-device wave factors, max over devices, plus the cluster `σ`.
/// (The sharded builders stage transfers serially within the round, so
/// the per-device schedules are the serial default.)
pub fn plan_cost(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    profile: &ShardProfile,
    units_per_device: &[u64],
) -> Result<f64, ModelError> {
    let metrics = plan_metrics(profile, units_per_device);
    Ok(cluster_cost_streamed(cluster, machine, &metrics, &[], &[])?.total_ms)
}

/// The min–max balanced apportionment: the continuous assignment
/// `x_d ≥ 0, Σ x_d = units` minimising
/// `max_d (fixed_d + rate_d · x_d)` — per-device fixed costs are the
/// transfer-transaction and broadcast terms, per-unit rates combine the
/// host link's `β` with the linearised compute rate
/// `(blocks_per_unit · t / (k′ℓ) + λ·q_unit) / γ` — rounded to integers
/// by largest remainder.  This is the transfer-aware candidate; the
/// planner still *prices* it (wave quantisation and all) before
/// preferring it.
pub fn balanced_units(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    profile: &ShardProfile,
    units: u64,
) -> Vec<u64> {
    let n = cluster.n_devices();
    if n == 0 || units == 0 {
        return vec![0; n];
    }
    let mut fixed = Vec::with_capacity(n);
    let mut rate = Vec::with_capacity(n);
    for (spec, link) in cluster.devices.iter().zip(&cluster.host_links) {
        let p = spec.derived_cost_params();
        let ell = occupancy(machine, profile.shared_words, spec.h_limit).max(1);
        let f = (profile.inward_txns + profile.outward_txns + profile.broadcast_txns) as f64
            * link.alpha_ms
            + profile.broadcast_words as f64 * link.beta_ms_per_word;
        let xfer = (profile.inward_words_per_unit + profile.outward_words_per_unit) as f64
            * link.beta_ms_per_word;
        let compute = (profile.blocks_per_unit as f64 * profile.time_ops as f64
            / (spec.k_prime * ell) as f64
            + p.lambda * profile.io_blocks_per_unit as f64)
            / p.gamma;
        fixed.push(f);
        // A zero rate (free device) would absorb everything; clamp so the
        // waterfill stays finite — pricing decides the rest.
        rate.push((xfer + compute).max(1e-18));
    }

    // Waterfill: find the level T with Σ_d max(0, (T − fixed_d)/rate_d)
    // = units (monotone in T), by bisection.
    let max_fixed = fixed.iter().copied().fold(0.0f64, f64::max);
    let max_rate = rate.iter().copied().fold(0.0f64, f64::max);
    let mut lo = fixed.iter().copied().fold(f64::INFINITY, f64::min);
    let mut hi = max_fixed + units as f64 * max_rate;
    let assigned =
        |t: f64| -> f64 { fixed.iter().zip(&rate).map(|(&f, &r)| ((t - f) / r).max(0.0)).sum() };
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if assigned(mid) < units as f64 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let level = hi;
    let quotas: Vec<f64> =
        fixed.iter().zip(&rate).map(|(&f, &r)| ((level - f) / r).max(0.0)).collect();
    round_quotas(&quotas, units)
}

/// Largest-remainder rounding of fractional quotas to integers summing
/// to `units` (quotas are first rescaled to sum to `units`, so bisection
/// slack cannot leak blocks).
fn round_quotas(quotas: &[f64], units: u64) -> Vec<u64> {
    let total: f64 = quotas.iter().sum();
    if total <= 0.0 {
        // Degenerate: nothing to apportion by — even split.
        let n = quotas.len() as u64;
        return (0..quotas.len() as u64).map(|d| units / n + u64::from(d < units % n)).collect();
    }
    let scaled: Vec<f64> = quotas.iter().map(|q| q * units as f64 / total).collect();
    let mut out: Vec<u64> = scaled.iter().map(|q| (q.floor() as u64).min(units)).collect();
    let assigned: u64 = out.iter().sum();
    if assigned > units {
        // Floating-point edge: fall back to even.
        return round_quotas(&vec![1.0; quotas.len()], units);
    }
    let leftovers = units - assigned;
    let mut order: Vec<usize> = (0..out.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = scaled[a] - scaled[a].floor();
        let rb = scaled[b] - scaled[b].floor();
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    if (leftovers as usize) > order.len() {
        // Floating-point edge (NaN/inf quotas, extreme magnitude skew can
        // floor more than n away): fall back to even rather than panic —
        // planners feed this adversarial shapes during degraded-mode
        // replanning.
        return round_quotas(&vec![1.0; quotas.len()], units);
    }
    for &d in order.iter().take(leftovers as usize) {
        out[d] += 1;
    }
    out
}

/// Builds the per-device metrics and double-buffered stream schedules of
/// a chunked pipeline: `R_d = ⌈units_d / chunk⌉` chunks per device, one
/// prologue round (broadcast + chunk 0's upload, stream 0), then each
/// round uploads the next chunk on **stream 1** while the current
/// chunk's kernel and download run on stream 0 — exactly the ping-pong
/// shape the streamed builders emit.
fn pipeline_tables(
    profile: &ShardProfile,
    units_per_device: &[u64],
    chunk_units: u64,
) -> (Vec<AlgoMetrics>, Vec<Vec<RoundSchedule>>) {
    let chunk = chunk_units.max(1);
    let rounds = units_per_device.iter().map(|&u| u.div_ceil(chunk)).max().unwrap_or(0) as usize;
    let mut metrics = Vec::with_capacity(units_per_device.len());
    let mut schedules = Vec::with_capacity(units_per_device.len());
    for &total in units_per_device {
        let chunks = total.div_ceil(chunk) as usize;
        let chunk_at = |i: usize| -> u64 {
            let off = i as u64 * chunk;
            chunk.min(total.saturating_sub(off))
        };
        let mut rows = Vec::with_capacity(rounds + 1);
        let mut scheds = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut row = RoundMetrics::default();
            let mut items = Vec::new();
            // Upload of chunk `r` (prologue uploads chunk 0 on stream 0,
            // nothing to hide behind yet; later uploads ride stream 1).
            if r < chunks {
                let up = profile.inward_words_per_unit * chunk_at(r)
                    + if r == 0 { profile.broadcast_words } else { 0 };
                let txns = profile.inward_txns + if r == 0 { profile.broadcast_txns } else { 0 };
                row.inward_words += up;
                row.inward_txns += txns;
                items.push(StreamItem::TransferIn { stream: u32::from(r > 0), txns, words: up });
            }
            // Kernel + download of chunk `r − 1`.
            if r > 0 && r - 1 < chunks {
                let cur = chunk_at(r - 1);
                row.time = profile.time_ops;
                row.io_blocks = profile.io_blocks_per_unit * cur;
                row.shared_words = profile.shared_words;
                row.blocks_launched = profile.blocks_per_unit * cur;
                row.outward_words = profile.outward_words_per_unit * cur;
                row.outward_txns = profile.outward_txns;
                items.push(StreamItem::Kernel);
                items.push(StreamItem::TransferOut {
                    stream: 0,
                    txns: profile.outward_txns,
                    words: row.outward_words,
                });
            }
            rows.push(row);
            scheds.push(RoundSchedule { items });
        }
        metrics.push(AlgoMetrics::new(rows));
        schedules.push(scheds);
    }
    (metrics, schedules)
}

/// Prices a double-buffered chunked pipeline over the cluster: the
/// modeled total of `⌈units/chunk⌉ + 1` rounds per device with chunk
/// `r + 1`'s upload overlapping chunk `r`'s kernel + download, computed
/// by [`cluster_cost_streamed`] over the generated stream schedules.
pub fn pipeline_cost(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    profile: &ShardProfile,
    units_per_device: &[u64],
    chunk_units: u64,
) -> Result<f64, ModelError> {
    let (metrics, schedules) = pipeline_tables(profile, units_per_device, chunk_units);
    Ok(cluster_cost_streamed(cluster, machine, &metrics, &schedules, &[])?.total_ms)
}

/// The chunk-size solver: scans `candidates` (planning units per chunk)
/// and returns the one whose modeled pipelined time over the cluster is
/// lowest (ties to the **larger** chunk — fewer rounds means fewer `σ`
/// and `α` payments at equal modeled time).  With per-round transfer and
/// kernel costs both affine in the chunk, the argmin sits where
/// `T_I ≈ kernel + T_O` per round — the double-buffering balance — while
/// wave quantisation and the `σ`/`α` amortisation are priced exactly
/// rather than assumed.  Falls back to the largest candidate if every
/// candidate fails to price (e.g. blocks that cannot fit).
pub fn solve_chunk_units(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    profile: &ShardProfile,
    units_per_device: &[u64],
    candidates: &[u64],
) -> u64 {
    let mut best: Option<(u64, f64)> = None;
    for &c in candidates {
        if c == 0 {
            continue;
        }
        let Ok(cost) = pipeline_cost(cluster, machine, profile, units_per_device, c) else {
            continue;
        };
        let better = match best {
            None => true,
            Some((bc, bcost)) => cost < bcost - 1e-12 || ((cost - bcost).abs() <= 1e-12 && c > bc),
        };
        if better {
            best = Some((c, cost));
        }
    }
    best.map(|(c, _)| c).unwrap_or_else(|| candidates.iter().copied().max().unwrap_or(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{GpuSpec, LinkParams};

    fn machine() -> AtgpuMachine {
        AtgpuMachine::new(1 << 20, 32, 12_288, 1 << 26).unwrap()
    }

    fn cluster(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(n, GpuSpec::gtx650_like())
    }

    #[test]
    fn streaming_profile_is_transfer_heavy() {
        let p = ShardProfile::streaming(32);
        assert_eq!(p.inward_words_per_unit, 64);
        assert_eq!(p.outward_words_per_unit, 32);
        assert_eq!(p.blocks_per_unit, 1);
    }

    #[test]
    fn plan_cost_of_even_split_matches_cluster_cost() {
        let c = cluster(2);
        let p = ShardProfile::streaming(32);
        let counts = [50u64, 50];
        let cost = plan_cost(&c, &machine(), &p, &counts).unwrap();
        let direct =
            crate::cost::cluster_cost(&c, &machine(), &plan_metrics(&p, &counts), &[]).unwrap();
        assert!((cost - direct.total_ms).abs() < 1e-12);
    }

    #[test]
    fn balanced_units_equalise_identical_devices() {
        let c = cluster(4);
        let out = balanced_units(&c, &machine(), &ShardProfile::streaming(32), 100);
        assert_eq!(out.iter().sum::<u64>(), 100);
        for &x in &out {
            assert!((24..=26).contains(&x), "{out:?}");
        }
    }

    #[test]
    fn balanced_units_starve_the_slow_link() {
        // Identical devices, one 8x-slower host link: the slow-link
        // device must receive well under an even share on a streaming
        // (transfer-bound) profile.
        let mut c = cluster(2);
        c.host_links[1] = LinkParams {
            alpha_ms: c.host_links[1].alpha_ms * 8.0,
            beta_ms_per_word: c.host_links[1].beta_ms_per_word * 8.0,
        };
        let out = balanced_units(&c, &machine(), &ShardProfile::streaming(32), 1000);
        assert_eq!(out.iter().sum::<u64>(), 1000);
        assert!(out[1] < 300, "slow-link device over-assigned: {out:?}");
        assert!(out[0] > 700, "{out:?}");
    }

    #[test]
    fn balanced_units_follow_compute_on_compute_bound_profiles() {
        // A compute-heavy profile (huge t, no per-unit traffic) on a
        // mixed-k′ cluster: apportionment tracks k′ like the old
        // weighted planner.
        let mut c = cluster(2);
        c.devices[1].k_prime = 6; // 3x device 0
        let p = ShardProfile {
            time_ops: 1_000_000,
            io_blocks_per_unit: 0,
            inward_words_per_unit: 0,
            inward_txns: 0,
            outward_words_per_unit: 0,
            outward_txns: 0,
            broadcast_words: 0,
            broadcast_txns: 0,
            shared_words: 96,
            blocks_per_unit: 1,
        };
        let out = balanced_units(&c, &machine(), &p, 100);
        assert_eq!(out.iter().sum::<u64>(), 100);
        assert!(out[1] > 2 * out[0], "fast device under-assigned: {out:?}");
    }

    #[test]
    fn round_quotas_boundary_leftovers() {
        // leftovers == n − 1: every device but one gains a unit.
        let out = round_quotas(&[1.0, 1.0, 1.0], 5);
        assert_eq!(out.iter().sum::<u64>(), 5);
        assert_eq!(out.iter().filter(|&&x| x == 2).count(), 2);
    }

    #[test]
    fn pipeline_cost_beats_serial_on_streaming_profiles() {
        // Double buffering must price below the one-shot serial round
        // when transfers and kernel are comparable.
        let c = cluster(1);
        let p = ShardProfile::streaming(32);
        let serial = plan_cost(&c, &machine(), &p, &[4096]).unwrap();
        let piped = pipeline_cost(&c, &machine(), &p, &[4096], 512).unwrap();
        // The pipeline pays extra σ/α per round but hides uploads; on
        // this transfer-bound profile it must stay within the serial
        // cost's neighbourhood and the solver picks the best chunk.
        let best = solve_chunk_units(&c, &machine(), &p, &[4096], &[64, 128, 256, 512, 1024, 2048]);
        let best_cost = pipeline_cost(&c, &machine(), &p, &[4096], best).unwrap();
        assert!(best_cost <= piped + 1e-12);
        assert!(best_cost < serial, "pipelined {best_cost} vs serial {serial}");
    }

    #[test]
    fn solver_ties_prefer_larger_chunks() {
        // With zero per-round fixed costs the total is chunk-invariant;
        // the solver must then keep the largest candidate.
        let mut c = cluster(1);
        c.sync_ms = 0.0;
        c.host_links[0].alpha_ms = 0.0;
        c.devices[0].xfer_alpha_ms = 0.0;
        c.devices[0].sync_ms = 0.0;
        let mut p = ShardProfile::streaming(32);
        p.inward_txns = 0;
        p.outward_txns = 0;
        let best = solve_chunk_units(&c, &machine(), &p, &[1024], &[256, 512]);
        assert_eq!(best, 512);
    }

    #[test]
    fn pipeline_tables_shapes_are_consistent() {
        let p = ShardProfile::streaming(32);
        let (metrics, schedules) = pipeline_tables(&p, &[10, 4], 4);
        // max chunks = ceil(10/4) = 3 → 4 rounds.
        assert!(metrics.iter().all(|m| m.rounds.len() == 4));
        assert!(schedules.iter().all(|s| s.len() == 4));
        // Device 0's units: 4 + 4 + 2.
        let words: u64 = metrics[0].rounds.iter().map(|r| r.inward_words).sum();
        assert_eq!(words, p.inward_words_per_unit * 10);
        let out: u64 = metrics[0].rounds.iter().map(|r| r.outward_words).sum();
        assert_eq!(out, p.outward_words_per_unit * 10);
        // Prologue upload is stream 0, later uploads stream 1.
        assert!(matches!(schedules[0][0].items[0], StreamItem::TransferIn { stream: 0, .. }));
        assert!(matches!(schedules[0][1].items[0], StreamItem::TransferIn { stream: 1, .. }));
    }
}
