//! The planning layer: price candidate shard plans and chunked pipeline
//! schedules through the analytic cost machinery, instead of guessing
//! from compute throughput alone.
//!
//! The paper's point is that data transfer (`Î·α + I·β`) dominates real
//! workloads — so a shard planner that weights devices by `k′·clock`
//! only is blind to exactly the term the model was built to expose.  A
//! cluster of identical GPUs behind asymmetric host links is *not*
//! homogeneous for a transfer-bound kernel: the device on the slow link
//! must receive fewer blocks, and how many fewer depends on the
//! workload's per-block traffic, not on any property of the devices.
//!
//! This module supplies the pieces a cost-driven planner needs:
//!
//! * [`ShardProfile`] — the per-planning-unit traffic and compute of one
//!   launch, the workload-shaped input every pricing function takes,
//!   including its **peer-link traffic** ([`PeerProfile`]: halo words to
//!   adjacent shards, all-to-one merge words, one-to-all scatter words)
//!   and optional per-unit heterogeneity vectors for row-imbalanced
//!   workloads;
//! * [`plan_cost`] — prices one candidate apportionment exactly, through
//!   [`crate::cost::cluster_cost_streamed`] (per-device host-link
//!   `α`/`β`, wave factors, the shared [`crate::StreamTimeline`]
//!   scheduler **and** the directed peer-link matrix are all in the
//!   objective — peer rows are synthesised by [`plan_peer_traffic`], not
//!   dropped);
//! * [`balanced_units`] — the min–max waterfill: the continuous
//!   apportionment equalising per-device round paths
//!   `T_I(d) + kernel(d) + T_peer(d) + T_O(d)`, rounded by largest
//!   remainder — the transfer-aware candidate that compute-weighting
//!   cannot produce.  Peer send/recv terms enter each device's path
//!   under the *directed* `peer_links[src][dst]` matrix;
//! * [`pipeline_cost`] — prices a double-buffered chunked schedule (the
//!   ping-pong shape `build_streamed` hand-writes) via the same
//!   machinery, per device, with chunk `r + 1`'s upload on stream 1
//!   under chunk `r`'s kernel + download;
//! * [`solve_chunk_units`] — the chunk-size solver: scans candidate
//!   chunk sizes and keeps the one whose *modeled* pipelined time is
//!   lowest — which lands where `T_I ≈ kernel + T_O` per round, the
//!   classic double-buffering balance, without hand-tuning.
//!
//! The actual `Vec<Shard>` plans live in `atgpu-sim` (this crate does
//! not depend on `atgpu-ir`); planners there generate candidate *unit
//! counts per device*, price them here, and keep the argmin.

use crate::cost::{cluster_cost_streamed, PeerTraffic};
use crate::error::ModelError;
use crate::machine::AtgpuMachine;
use crate::metrics::{AlgoMetrics, RoundMetrics};
use crate::occupancy::occupancy;
use crate::params::ClusterSpec;
use crate::streams::{RoundSchedule, StreamItem};

/// The peer-link traffic shape of a sharded launch: which words move
/// device↔device (not host↔device) and under what pattern.  All fields
/// zero (the [`Default`]) means a peer-silent workload — vecadd-style
/// slab streaming with no halo, no merge.
///
/// Three neighbour classes cover the irregular quartet:
///
/// * **halo** — boundary cells exchanged with each *adjacent occupied*
///   device (index order), both directions, before every kernel round
///   after the first (stencil);
/// * **merge** — all-to-one: every occupied non-owner device sends its
///   partials to [`owner`](Self::owner) (histogram bins, scan block
///   sums, reduce partials);
/// * **scatter** — one-to-all: the owner sends per-unit words back to
///   each occupied non-owner device (scan's fixed-up block offsets).
///
/// Peer transfers cost `α + I·β` over the *directed*
/// `peer_links[src][dst]` entry and occupy **both** endpoints — exactly
/// the sim's accounting (`TransferEngine::peer` is one transaction per
/// copy, charged to the source and destination timelines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeerProfile {
    /// Words exchanged with each adjacent occupied device, per
    /// direction, per halo exchange (one exchange before each kernel
    /// round after the first).
    pub halo_words: u64,
    /// Transfer transactions per halo copy (the sim charges 1 per
    /// `TransferPeer`).
    pub halo_txns: u64,
    /// Words each occupied non-owner device sends to the owner, per
    /// planning unit it holds.
    pub merge_words_per_unit: u64,
    /// Fixed words each occupied non-owner device sends to the owner
    /// regardless of its share (e.g. one partial-bin row per device).
    pub merge_words_fixed: u64,
    /// Transfer transactions of the merge, per sending device.
    pub merge_txns: u64,
    /// Words the owner sends back to each occupied non-owner device,
    /// per planning unit that device holds.
    pub scatter_words_per_unit: u64,
    /// Transfer transactions of the scatter, per receiving device.
    pub scatter_txns: u64,
    /// The device index partials merge to / scatter from (0 for every
    /// workload in tree; kept explicit so degraded replanning can remap
    /// it into a surviving sub-cluster).
    pub owner: u32,
}

impl PeerProfile {
    /// True when every traffic field is zero — the profile prices
    /// identically with or without peer terms.
    pub fn is_zero(&self) -> bool {
        self.halo_words == 0
            && self.halo_txns == 0
            && self.merge_words_per_unit == 0
            && self.merge_words_fixed == 0
            && self.merge_txns == 0
            && self.scatter_words_per_unit == 0
            && self.scatter_txns == 0
    }
}

/// The per-unit cost shape of a shardable launch: how much traffic and
/// compute one **planning unit** (usually a thread block; a tile row for
/// matmul) adds to the device that runs it.
///
/// Fixed per-device terms (transfer transactions, broadcast inputs) are
/// kept separate from per-unit terms so the planner prices the `α` setup
/// costs a device pays once, not per block.  Peer-link traffic lives in
/// [`peer`](Self::peer); multi-round kernels (stencil iteration) set
/// [`rounds`](Self::rounds); row-imbalanced workloads (spmv) override
/// the scalar per-unit terms with the `unit_*` vectors.
///
/// Construct with struct-update syntax over [`ShardProfile::default`]
/// so adding planner dimensions stays non-breaking:
///
/// ```
/// # use atgpu_model::ShardProfile;
/// let p = ShardProfile { time_ops: 9, io_blocks_per_unit: 2, ..ShardProfile::default() };
/// assert_eq!(p.rounds, 1);
/// assert!(!p.has_peer());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardProfile {
    /// Lockstep kernel time `t` of the launch (per-round, block-count
    /// independent — waves multiply it).
    pub time_ops: u64,
    /// Global-memory block transactions `q` contributed per unit.
    pub io_blocks_per_unit: u64,
    /// Host→device words staged per unit (the shard's private slice).
    pub inward_words_per_unit: u64,
    /// Host→device transfer transactions per participating device.
    pub inward_txns: u64,
    /// Device→host words returned per unit.
    pub outward_words_per_unit: u64,
    /// Device→host transfer transactions per participating device.
    pub outward_txns: u64,
    /// Words broadcast to every participating device regardless of its
    /// share (e.g. matmul's `B` operand); zero when inputs are sliced.
    pub broadcast_words: u64,
    /// Transfer transactions of the broadcast, per participating device.
    pub broadcast_txns: u64,
    /// Shared-memory words per thread block (`m`, for occupancy).
    pub shared_words: u64,
    /// Thread blocks per planning unit (1 when units are blocks).
    pub blocks_per_unit: u64,
    /// Kernel rounds per run: inputs stage once before round 0, outputs
    /// drain after the last round, the kernel runs every round, and
    /// halo traffic (if any) is exchanged before each round after the
    /// first.  1 for single-pass launches.
    pub rounds: u64,
    /// Device↔device traffic shape; [`PeerProfile::default`] (all zero)
    /// for peer-silent workloads.
    pub peer: PeerProfile,
    /// Per-unit staged inward words for row-imbalanced workloads, unit
    /// `u` of the *global* unit order (empty = homogeneous, use
    /// [`inward_words_per_unit`](Self::inward_words_per_unit); missing
    /// tail entries also fall back to the scalar).
    pub unit_inward_words: Vec<u64>,
    /// Per-unit global-memory block transactions, same convention as
    /// [`unit_inward_words`](Self::unit_inward_words).
    pub unit_io_blocks: Vec<u64>,
}

impl Default for ShardProfile {
    /// All-zero traffic, one block per unit, one round, no peer terms,
    /// homogeneous units — the base for struct-update construction.
    fn default() -> Self {
        Self {
            time_ops: 0,
            io_blocks_per_unit: 0,
            inward_words_per_unit: 0,
            inward_txns: 0,
            outward_words_per_unit: 0,
            outward_txns: 0,
            broadcast_words: 0,
            broadcast_txns: 0,
            shared_words: 0,
            blocks_per_unit: 1,
            rounds: 1,
            peer: PeerProfile::default(),
            unit_inward_words: Vec::new(),
            unit_io_blocks: Vec::new(),
        }
    }
}

/// Sum of a per-unit override vector over the global unit range
/// `[lo, hi)`, falling back to `scalar` for units past the vector's end
/// (and entirely when the vector is empty).
fn unit_sum(vec: &[u64], scalar: u64, lo: u64, hi: u64) -> u64 {
    if vec.is_empty() {
        return scalar * (hi - lo);
    }
    (lo..hi).map(|u| vec.get(u as usize).copied().unwrap_or(scalar)).sum()
}

impl ShardProfile {
    /// A streaming-workload default (the vecadd shape at warp width `b`):
    /// every block stages `2b` words in, `b` words out, makes 3 coalesced
    /// block transactions and runs an `O(1)` kernel.  This is the profile
    /// [`plan_shards`](../../atgpu_sim/cluster/fn.plan_shards.html) uses
    /// when it has no workload information — a deliberately
    /// transfer-aware stand-in, since transfer is what generic planning
    /// must not be blind to.
    ///
    /// **Zero-peer assumption:** this default deliberately carries no
    /// [`PeerProfile`] terms — it models slab streaming where shards
    /// never talk to each other.  Halo/merge workloads (stencil, scan,
    /// spmv gathers, histogram) must supply their own peer-aware
    /// profiles or the planner will under-price congested peer links.
    pub fn streaming(b: u64) -> Self {
        Self {
            time_ops: 7,
            io_blocks_per_unit: 3,
            inward_words_per_unit: 2 * b,
            inward_txns: 2,
            outward_words_per_unit: b,
            outward_txns: 1,
            shared_words: 3 * b,
            ..Self::default()
        }
    }

    /// True when the profile carries any peer-link traffic.
    pub fn has_peer(&self) -> bool {
        !self.peer.is_zero()
    }

    /// This profile with all peer terms dropped — the peer-blind view a
    /// legacy planner would have priced.
    pub fn without_peer(&self) -> Self {
        Self { peer: PeerProfile::default(), ..self.clone() }
    }

    /// The metric rows of a device holding the global unit range
    /// `[lo, lo + units)`: [`rounds`](Self::rounds) rows (all-zero — an
    /// idle device — when `units` is 0), staging on the first row,
    /// drain on the last, the kernel every row.
    fn device_rows(&self, units: u64, lo: u64) -> Vec<RoundMetrics> {
        let r_total = self.rounds.max(1) as usize;
        let mut rows = vec![RoundMetrics::default(); r_total];
        if units == 0 {
            return rows;
        }
        let hi = lo + units;
        let inward = unit_sum(&self.unit_inward_words, self.inward_words_per_unit, lo, hi)
            + self.broadcast_words;
        let io_blocks = unit_sum(&self.unit_io_blocks, self.io_blocks_per_unit, lo, hi);
        for (i, row) in rows.iter_mut().enumerate() {
            row.time = self.time_ops;
            row.io_blocks = io_blocks;
            row.shared_words = self.shared_words;
            row.blocks_launched = self.blocks_per_unit * units;
            if i == 0 {
                row.inward_words = inward;
                row.inward_txns = self.inward_txns + self.broadcast_txns;
            }
            if i == r_total - 1 {
                row.outward_words = self.outward_words_per_unit * units;
                row.outward_txns = self.outward_txns;
            }
        }
        rows
    }
}

/// Per-device metric tables for one candidate apportionment: device `d`
/// holds the contiguous global unit range starting at
/// `Σ_{e<d} units_per_device[e]`, with [`ShardProfile::rounds`] rows per
/// device (staging first, drain last).
pub fn plan_metrics(profile: &ShardProfile, units_per_device: &[u64]) -> Vec<AlgoMetrics> {
    let mut lo = 0u64;
    units_per_device
        .iter()
        .map(|&u| {
            let rows = profile.device_rows(u, lo);
            lo += u;
            AlgoMetrics::new(rows)
        })
        .collect()
}

/// Synthesises the per-round [`PeerTraffic`] rows of one candidate
/// apportionment from the profile's [`PeerProfile`]:
///
/// * halo rows between consecutive *occupied* devices (index order),
///   both directions, in every round after the first;
/// * merge rows (occupied non-owner → owner,
///   `merge_words_fixed + merge_words_per_unit · units_d`) and scatter
///   rows (owner → occupied non-owner, `scatter_words_per_unit ·
///   units_d`) in the last round.
///
/// Returns exactly [`ShardProfile::rounds`] rows (all empty for a
/// zero-peer profile), matching [`plan_metrics`]' round count so the
/// pair feeds [`cluster_cost_streamed`] directly.
pub fn plan_peer_traffic(
    profile: &ShardProfile,
    units_per_device: &[u64],
) -> Vec<Vec<PeerTraffic>> {
    let r_total = profile.rounds.max(1) as usize;
    let mut rounds: Vec<Vec<PeerTraffic>> = vec![Vec::new(); r_total];
    let p = profile.peer;
    if p.is_zero() {
        return rounds;
    }
    let occupied: Vec<usize> =
        (0..units_per_device.len()).filter(|&d| units_per_device[d] > 0).collect();
    if p.halo_words > 0 {
        for w in occupied.windows(2) {
            let (a, b) = (w[0] as u32, w[1] as u32);
            for row in rounds.iter_mut().skip(1) {
                row.push(PeerTraffic { src: a, dst: b, words: p.halo_words, txns: p.halo_txns });
                row.push(PeerTraffic { src: b, dst: a, words: p.halo_words, txns: p.halo_txns });
            }
        }
    }
    let last = rounds.last_mut().expect("rounds >= 1");
    for &d in &occupied {
        if d as u32 == p.owner {
            continue;
        }
        let merge_words = p.merge_words_fixed + p.merge_words_per_unit * units_per_device[d];
        if merge_words > 0 {
            last.push(PeerTraffic {
                src: d as u32,
                dst: p.owner,
                words: merge_words,
                txns: p.merge_txns,
            });
        }
        let scatter_words = p.scatter_words_per_unit * units_per_device[d];
        if scatter_words > 0 {
            last.push(PeerTraffic {
                src: p.owner,
                dst: d as u32,
                words: scatter_words,
                txns: p.scatter_txns,
            });
        }
    }
    rounds
}

/// Prices one candidate apportionment: the modeled time of a sharded
/// launch handing `units_per_device[d]` units to device `d`, computed by
/// [`cluster_cost_streamed`] — per-device host-link `α`/`β`, per-device
/// wave factors, max over devices, plus the cluster `σ` per round — with
/// the apportionment's peer traffic ([`plan_peer_traffic`]) priced over
/// the directed peer matrix and charged to both endpoints, exactly as
/// the sim charges it.  (The sharded builders stage transfers serially
/// within a round, so the per-device schedules are the serial default.)
pub fn plan_cost(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    profile: &ShardProfile,
    units_per_device: &[u64],
) -> Result<f64, ModelError> {
    let metrics = plan_metrics(profile, units_per_device);
    let peer = plan_peer_traffic(profile, units_per_device);
    Ok(cluster_cost_streamed(cluster, machine, &metrics, &[], &peer)?.total_ms)
}

/// The per-device linearised cost terms `fixed_d + rate_d · x_d` the
/// waterfill equalises: host-link `α`/broadcast terms plus — new with
/// peer-aware planning — the device's peer send/recv path under the
/// *directed* `peer_links[src][dst]` matrix:
///
/// * **halo**: `(rounds − 1)` exchanges with each index-adjacent device
///   `nb` (assumed occupied), costing `halo_txns·α + halo_words·β` over
///   `peer[d][nb]` (send) *and* `peer[nb][d]` (recv) — peer copies
///   occupy both endpoints;
/// * **merge/scatter, non-owner `d`**: the fixed `α`/fixed-word terms go
///   to `fixed_d`; `merge_words_per_unit·β(d→owner) +
///   scatter_words_per_unit·β(owner→d)` goes to `rate_d`;
/// * **merge/scatter, owner `o`**: receives every merge and sends every
///   scatter, so it pays the per-unit `β̄` (mean over the other
///   devices' directed links) on the `units − x_o` units it does *not*
///   hold — linearised as `fixed_o += per_unit·units` and
///   `rate_o −= per_unit` (clamped positive).
///
/// Compute and per-unit host traffic multiply by `rounds` and 1
/// respectively (staging happens once, the kernel every round).
fn linearised_terms(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    profile: &ShardProfile,
    units: u64,
) -> (Vec<f64>, Vec<f64>) {
    let n = cluster.n_devices();
    let r_rounds = profile.rounds.max(1) as f64;
    let mut fixed = Vec::with_capacity(n);
    let mut rate = Vec::with_capacity(n);
    for (spec, link) in cluster.devices.iter().zip(&cluster.host_links) {
        let p = spec.derived_cost_params();
        let ell = occupancy(machine, profile.shared_words, spec.h_limit).max(1);
        let f = (profile.inward_txns + profile.outward_txns + profile.broadcast_txns) as f64
            * link.alpha_ms
            + profile.broadcast_words as f64 * link.beta_ms_per_word;
        let xfer = (profile.inward_words_per_unit + profile.outward_words_per_unit) as f64
            * link.beta_ms_per_word;
        let compute = (profile.blocks_per_unit as f64 * profile.time_ops as f64
            / (spec.k_prime * ell) as f64
            + p.lambda * profile.io_blocks_per_unit as f64)
            / p.gamma
            * r_rounds;
        fixed.push(f);
        // A zero rate (free device) would absorb everything; clamp so the
        // waterfill stays finite — pricing decides the rest.
        rate.push((xfer + compute).max(1e-18));
    }
    let peer = profile.peer;
    if !peer.is_zero() && n > 1 {
        let link_cost = |src: usize, dst: usize, txns: u64, words: u64| -> f64 {
            cluster.peer_links[src][dst].cost_ms(txns, words)
        };
        let exchanges = r_rounds - 1.0;
        let owner = (peer.owner as usize).min(n - 1);
        for d in 0..n {
            if peer.halo_words > 0 && exchanges > 0.0 {
                for nb in [d.checked_sub(1), (d + 1 < n).then_some(d + 1)].into_iter().flatten() {
                    fixed[d] += exchanges
                        * (link_cost(d, nb, peer.halo_txns, peer.halo_words)
                            + link_cost(nb, d, peer.halo_txns, peer.halo_words));
                }
            }
            if d != owner {
                fixed[d] += link_cost(d, owner, peer.merge_txns, peer.merge_words_fixed)
                    + link_cost(owner, d, peer.scatter_txns, 0);
                rate[d] += peer.merge_words_per_unit as f64
                    * cluster.peer_links[d][owner].beta_ms_per_word
                    + peer.scatter_words_per_unit as f64
                        * cluster.peer_links[owner][d].beta_ms_per_word;
            }
        }
        if peer.merge_words_per_unit > 0
            || peer.merge_words_fixed > 0
            || peer.scatter_words_per_unit > 0
        {
            let others: Vec<usize> = (0..n).filter(|&d| d != owner).collect();
            let beta_in =
                others.iter().map(|&d| cluster.peer_links[d][owner].beta_ms_per_word).sum::<f64>()
                    / others.len() as f64;
            let beta_out =
                others.iter().map(|&d| cluster.peer_links[owner][d].beta_ms_per_word).sum::<f64>()
                    / others.len() as f64;
            for &d in &others {
                fixed[owner] += link_cost(d, owner, peer.merge_txns, peer.merge_words_fixed)
                    + link_cost(owner, d, peer.scatter_txns, 0);
            }
            let per_unit = peer.merge_words_per_unit as f64 * beta_in
                + peer.scatter_words_per_unit as f64 * beta_out;
            fixed[owner] += per_unit * units as f64;
            rate[owner] = (rate[owner] - per_unit).max(1e-18);
        }
    }
    (fixed, rate)
}

/// The min–max balanced apportionment: the continuous assignment
/// `x_d ≥ 0, Σ x_d = units` minimising
/// `max_d (fixed_d + rate_d · x_d)` — per-device fixed costs are the
/// transfer-transaction, broadcast **and directed peer-path** terms
/// (see `linearised_terms`), per-unit rates combine the host link's
/// `β`, the peer merge/scatter `β`, and the linearised compute rate
/// `rounds · (blocks_per_unit · t / (k′ℓ) + λ·q_unit) / γ` — rounded to
/// integers by largest remainder.  This is the transfer-aware candidate;
/// the planner still *prices* it (wave quantisation and all) before
/// preferring it.
///
/// Row-imbalanced profiles (non-empty `unit_inward_words` /
/// `unit_io_blocks`) take the contiguous greedy-pack path instead: the
/// same min–max objective, but units keep their global order and each
/// device takes a prefix of what remains, packed by bisection on the
/// bottleneck level — contiguity is what the sharded builders require.
pub fn balanced_units(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    profile: &ShardProfile,
    units: u64,
) -> Vec<u64> {
    let n = cluster.n_devices();
    if n == 0 || units == 0 {
        return vec![0; n];
    }
    let (fixed, rate) = linearised_terms(cluster, machine, profile, units);
    if !profile.unit_inward_words.is_empty() || !profile.unit_io_blocks.is_empty() {
        return balanced_units_hetero(cluster, machine, profile, units, &fixed);
    }

    // Waterfill: find the level T with Σ_d max(0, (T − fixed_d)/rate_d)
    // = units (monotone in T), by bisection.
    let max_fixed = fixed.iter().copied().fold(0.0f64, f64::max);
    let max_rate = rate.iter().copied().fold(0.0f64, f64::max);
    let mut lo = fixed.iter().copied().fold(f64::INFINITY, f64::min);
    let mut hi = max_fixed + units as f64 * max_rate;
    let assigned =
        |t: f64| -> f64 { fixed.iter().zip(&rate).map(|(&f, &r)| ((t - f) / r).max(0.0)).sum() };
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if assigned(mid) < units as f64 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let level = hi;
    let quotas: Vec<f64> =
        fixed.iter().zip(&rate).map(|(&f, &r)| ((level - f) / r).max(0.0)).collect();
    round_quotas(&quotas, units)
}

/// Contiguous min–max packing for row-imbalanced profiles: device `d`'s
/// per-unit cost of *global* unit `u` is
/// `unit_in(u)·β_d + out_per_unit·β_d + rounds·(blocks·t/(k′ℓ) +
/// λ·unit_io(u))/γ_d`; bisect on the bottleneck level `T` and greedily
/// pack units in order — device `d` keeps taking the next unit while its
/// path stays ≤ `T`.  Feasible iff all units are consumed; the counts at
/// the smallest feasible level are returned (largest-remainder rounding
/// does not apply — the pack is already integral and contiguous).
fn balanced_units_hetero(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    profile: &ShardProfile,
    units: u64,
    fixed: &[f64],
) -> Vec<u64> {
    let n = cluster.n_devices();
    let r_rounds = profile.rounds.max(1) as f64;
    // Per-device cost of one global unit `u`.
    let per_unit: Vec<Vec<f64>> = cluster
        .devices
        .iter()
        .zip(&cluster.host_links)
        .map(|(spec, link)| {
            let p = spec.derived_cost_params();
            let ell = occupancy(machine, profile.shared_words, spec.h_limit).max(1);
            (0..units)
                .map(|u| {
                    let inw = unit_sum(
                        &profile.unit_inward_words,
                        profile.inward_words_per_unit,
                        u,
                        u + 1,
                    );
                    let io =
                        unit_sum(&profile.unit_io_blocks, profile.io_blocks_per_unit, u, u + 1);
                    let xfer =
                        (inw + profile.outward_words_per_unit) as f64 * link.beta_ms_per_word;
                    let compute = (profile.blocks_per_unit as f64 * profile.time_ops as f64
                        / (spec.k_prime * ell) as f64
                        + p.lambda * io as f64)
                        / p.gamma
                        * r_rounds;
                    (xfer + compute).max(1e-18)
                })
                .collect()
        })
        .collect();
    // Greedy contiguous pack at level T; returns counts iff feasible.
    let pack = |t: f64| -> Option<Vec<u64>> {
        let mut counts = vec![0u64; n];
        let mut u = 0u64;
        for d in 0..n {
            let mut acc = fixed[d];
            while u < units && acc + per_unit[d][u as usize] <= t {
                acc += per_unit[d][u as usize];
                counts[d] += 1;
                u += 1;
            }
        }
        (u == units).then_some(counts)
    };
    let max_fixed = fixed.iter().copied().fold(0.0f64, f64::max);
    let worst: f64 =
        (0..units as usize).map(|u| per_unit.iter().map(|row| row[u]).fold(0.0f64, f64::max)).sum();
    let mut lo = max_fixed;
    let mut hi = max_fixed + worst;
    if pack(hi).is_none() {
        // Even the loosest level fails only on FP pathologies — fall
        // back to the even split the planner can still price.
        return round_quotas(&vec![1.0; n], units);
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if pack(mid).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    pack(hi).unwrap_or_else(|| round_quotas(&vec![1.0; n], units))
}

/// Largest-remainder rounding of fractional quotas to integers summing
/// to `units` (quotas are first rescaled to sum to `units`, so bisection
/// slack cannot leak blocks).
fn round_quotas(quotas: &[f64], units: u64) -> Vec<u64> {
    let total: f64 = quotas.iter().sum();
    if total <= 0.0 {
        // Degenerate: nothing to apportion by — even split.
        let n = quotas.len() as u64;
        return (0..quotas.len() as u64).map(|d| units / n + u64::from(d < units % n)).collect();
    }
    let scaled: Vec<f64> = quotas.iter().map(|q| q * units as f64 / total).collect();
    let mut out: Vec<u64> = scaled.iter().map(|q| (q.floor() as u64).min(units)).collect();
    let assigned: u64 = out.iter().sum();
    if assigned > units {
        // Floating-point edge: fall back to even.
        return round_quotas(&vec![1.0; quotas.len()], units);
    }
    let leftovers = units - assigned;
    let mut order: Vec<usize> = (0..out.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = scaled[a] - scaled[a].floor();
        let rb = scaled[b] - scaled[b].floor();
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    if (leftovers as usize) > order.len() {
        // Floating-point edge (NaN/inf quotas, extreme magnitude skew can
        // floor more than n away): fall back to even rather than panic —
        // planners feed this adversarial shapes during degraded-mode
        // replanning.
        return round_quotas(&vec![1.0; quotas.len()], units);
    }
    for &d in order.iter().take(leftovers as usize) {
        out[d] += 1;
    }
    out
}

/// Builds the per-device metrics and double-buffered stream schedules of
/// a chunked pipeline: `R_d = ⌈units_d / chunk⌉` chunks per device, one
/// prologue round (broadcast + chunk 0's upload, stream 0), then each
/// round uploads the next chunk on **stream 1** while the current
/// chunk's kernel and download run on stream 0 — exactly the ping-pong
/// shape the streamed builders emit.
///
/// The pipeline path is deliberately **peer-blind and single-round**: it
/// models the streamed slab builders, none of which carry peer traffic
/// or iterate kernels.  A profile's `peer`/`rounds`/`unit_*` extensions
/// are ignored here; [`plan_cost`] is the peer-aware objective.
fn pipeline_tables(
    profile: &ShardProfile,
    units_per_device: &[u64],
    chunk_units: u64,
) -> (Vec<AlgoMetrics>, Vec<Vec<RoundSchedule>>) {
    let chunk = chunk_units.max(1);
    let rounds = units_per_device.iter().map(|&u| u.div_ceil(chunk)).max().unwrap_or(0) as usize;
    let mut metrics = Vec::with_capacity(units_per_device.len());
    let mut schedules = Vec::with_capacity(units_per_device.len());
    for &total in units_per_device {
        let chunks = total.div_ceil(chunk) as usize;
        let chunk_at = |i: usize| -> u64 {
            let off = i as u64 * chunk;
            chunk.min(total.saturating_sub(off))
        };
        let mut rows = Vec::with_capacity(rounds + 1);
        let mut scheds = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut row = RoundMetrics::default();
            let mut items = Vec::new();
            // Upload of chunk `r` (prologue uploads chunk 0 on stream 0,
            // nothing to hide behind yet; later uploads ride stream 1).
            if r < chunks {
                let up = profile.inward_words_per_unit * chunk_at(r)
                    + if r == 0 { profile.broadcast_words } else { 0 };
                let txns = profile.inward_txns + if r == 0 { profile.broadcast_txns } else { 0 };
                row.inward_words += up;
                row.inward_txns += txns;
                items.push(StreamItem::TransferIn { stream: u32::from(r > 0), txns, words: up });
            }
            // Kernel + download of chunk `r − 1`.
            if r > 0 && r - 1 < chunks {
                let cur = chunk_at(r - 1);
                row.time = profile.time_ops;
                row.io_blocks = profile.io_blocks_per_unit * cur;
                row.shared_words = profile.shared_words;
                row.blocks_launched = profile.blocks_per_unit * cur;
                row.outward_words = profile.outward_words_per_unit * cur;
                row.outward_txns = profile.outward_txns;
                items.push(StreamItem::Kernel);
                items.push(StreamItem::TransferOut {
                    stream: 0,
                    txns: profile.outward_txns,
                    words: row.outward_words,
                });
            }
            rows.push(row);
            scheds.push(RoundSchedule { items });
        }
        metrics.push(AlgoMetrics::new(rows));
        schedules.push(scheds);
    }
    (metrics, schedules)
}

/// Prices a double-buffered chunked pipeline over the cluster: the
/// modeled total of `⌈units/chunk⌉ + 1` rounds per device with chunk
/// `r + 1`'s upload overlapping chunk `r`'s kernel + download, computed
/// by [`cluster_cost_streamed`] over the generated stream schedules.
pub fn pipeline_cost(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    profile: &ShardProfile,
    units_per_device: &[u64],
    chunk_units: u64,
) -> Result<f64, ModelError> {
    let (metrics, schedules) = pipeline_tables(profile, units_per_device, chunk_units);
    Ok(cluster_cost_streamed(cluster, machine, &metrics, &schedules, &[])?.total_ms)
}

/// The chunk-size solver: scans `candidates` (planning units per chunk)
/// and returns the one whose modeled pipelined time over the cluster is
/// lowest (ties to the **larger** chunk — fewer rounds means fewer `σ`
/// and `α` payments at equal modeled time).  With per-round transfer and
/// kernel costs both affine in the chunk, the argmin sits where
/// `T_I ≈ kernel + T_O` per round — the double-buffering balance — while
/// wave quantisation and the `σ`/`α` amortisation are priced exactly
/// rather than assumed.  Falls back to the largest candidate if every
/// candidate fails to price (e.g. blocks that cannot fit).
pub fn solve_chunk_units(
    cluster: &ClusterSpec,
    machine: &AtgpuMachine,
    profile: &ShardProfile,
    units_per_device: &[u64],
    candidates: &[u64],
) -> u64 {
    let mut best: Option<(u64, f64)> = None;
    for &c in candidates {
        if c == 0 {
            continue;
        }
        let Ok(cost) = pipeline_cost(cluster, machine, profile, units_per_device, c) else {
            continue;
        };
        let better = match best {
            None => true,
            Some((bc, bcost)) => cost < bcost - 1e-12 || ((cost - bcost).abs() <= 1e-12 && c > bc),
        };
        if better {
            best = Some((c, cost));
        }
    }
    best.map(|(c, _)| c).unwrap_or_else(|| candidates.iter().copied().max().unwrap_or(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{GpuSpec, LinkParams};

    fn machine() -> AtgpuMachine {
        AtgpuMachine::new(1 << 20, 32, 12_288, 1 << 26).unwrap()
    }

    fn cluster(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(n, GpuSpec::gtx650_like())
    }

    #[test]
    fn streaming_profile_is_transfer_heavy() {
        let p = ShardProfile::streaming(32);
        assert_eq!(p.inward_words_per_unit, 64);
        assert_eq!(p.outward_words_per_unit, 32);
        assert_eq!(p.blocks_per_unit, 1);
    }

    #[test]
    fn plan_cost_of_even_split_matches_cluster_cost() {
        let c = cluster(2);
        let p = ShardProfile::streaming(32);
        let counts = [50u64, 50];
        let cost = plan_cost(&c, &machine(), &p, &counts).unwrap();
        let direct =
            crate::cost::cluster_cost(&c, &machine(), &plan_metrics(&p, &counts), &[]).unwrap();
        assert!((cost - direct.total_ms).abs() < 1e-12);
    }

    #[test]
    fn balanced_units_equalise_identical_devices() {
        let c = cluster(4);
        let out = balanced_units(&c, &machine(), &ShardProfile::streaming(32), 100);
        assert_eq!(out.iter().sum::<u64>(), 100);
        for &x in &out {
            assert!((24..=26).contains(&x), "{out:?}");
        }
    }

    #[test]
    fn balanced_units_starve_the_slow_link() {
        // Identical devices, one 8x-slower host link: the slow-link
        // device must receive well under an even share on a streaming
        // (transfer-bound) profile.
        let mut c = cluster(2);
        c.host_links[1] = LinkParams {
            alpha_ms: c.host_links[1].alpha_ms * 8.0,
            beta_ms_per_word: c.host_links[1].beta_ms_per_word * 8.0,
        };
        let out = balanced_units(&c, &machine(), &ShardProfile::streaming(32), 1000);
        assert_eq!(out.iter().sum::<u64>(), 1000);
        assert!(out[1] < 300, "slow-link device over-assigned: {out:?}");
        assert!(out[0] > 700, "{out:?}");
    }

    #[test]
    fn balanced_units_follow_compute_on_compute_bound_profiles() {
        // A compute-heavy profile (huge t, no per-unit traffic) on a
        // mixed-k′ cluster: apportionment tracks k′ like the old
        // weighted planner.
        let mut c = cluster(2);
        c.devices[1].k_prime = 6; // 3x device 0
        let p = ShardProfile { time_ops: 1_000_000, shared_words: 96, ..ShardProfile::default() };
        let out = balanced_units(&c, &machine(), &p, 100);
        assert_eq!(out.iter().sum::<u64>(), 100);
        assert!(out[1] > 2 * out[0], "fast device under-assigned: {out:?}");
    }

    #[test]
    fn round_quotas_boundary_leftovers() {
        // leftovers == n − 1: every device but one gains a unit.
        let out = round_quotas(&[1.0, 1.0, 1.0], 5);
        assert_eq!(out.iter().sum::<u64>(), 5);
        assert_eq!(out.iter().filter(|&&x| x == 2).count(), 2);
    }

    #[test]
    fn pipeline_cost_beats_serial_on_streaming_profiles() {
        // Double buffering must price below the one-shot serial round
        // when transfers and kernel are comparable.
        let c = cluster(1);
        let p = ShardProfile::streaming(32);
        let serial = plan_cost(&c, &machine(), &p, &[4096]).unwrap();
        let piped = pipeline_cost(&c, &machine(), &p, &[4096], 512).unwrap();
        // The pipeline pays extra σ/α per round but hides uploads; on
        // this transfer-bound profile it must stay within the serial
        // cost's neighbourhood and the solver picks the best chunk.
        let best = solve_chunk_units(&c, &machine(), &p, &[4096], &[64, 128, 256, 512, 1024, 2048]);
        let best_cost = pipeline_cost(&c, &machine(), &p, &[4096], best).unwrap();
        assert!(best_cost <= piped + 1e-12);
        assert!(best_cost < serial, "pipelined {best_cost} vs serial {serial}");
    }

    #[test]
    fn solver_ties_prefer_larger_chunks() {
        // With zero per-round fixed costs the total is chunk-invariant;
        // the solver must then keep the largest candidate.
        let mut c = cluster(1);
        c.sync_ms = 0.0;
        c.host_links[0].alpha_ms = 0.0;
        c.devices[0].xfer_alpha_ms = 0.0;
        c.devices[0].sync_ms = 0.0;
        let mut p = ShardProfile::streaming(32);
        p.inward_txns = 0;
        p.outward_txns = 0;
        let best = solve_chunk_units(&c, &machine(), &p, &[1024], &[256, 512]);
        assert_eq!(best, 512);
    }

    fn stencil_like(rounds: u64) -> ShardProfile {
        ShardProfile {
            time_ops: 11,
            io_blocks_per_unit: 2,
            inward_words_per_unit: 32,
            inward_txns: 1,
            outward_words_per_unit: 32,
            outward_txns: 1,
            shared_words: 34,
            rounds,
            peer: PeerProfile { halo_words: 2, halo_txns: 1, ..PeerProfile::default() },
            ..ShardProfile::default()
        }
    }

    #[test]
    fn peer_traffic_rows_match_rounds_and_occupancy() {
        let p = stencil_like(4);
        // Device 1 idle: halo pairs skip it — devices 0 and 2 are the
        // consecutive occupied pair.
        let rows = plan_peer_traffic(&p, &[10, 0, 10]);
        assert_eq!(rows.len(), 4);
        assert!(rows[0].is_empty(), "no halo before the first round");
        for row in &rows[1..] {
            assert_eq!(row.len(), 2, "{row:?}");
            assert!(row.iter().any(|t| t.src == 0 && t.dst == 2 && t.words == 2));
            assert!(row.iter().any(|t| t.src == 2 && t.dst == 0 && t.words == 2));
        }
        // Zero-peer profiles synthesise nothing.
        assert!(plan_peer_traffic(&p.without_peer(), &[10, 0, 10]).iter().all(Vec::is_empty));
    }

    #[test]
    fn merge_and_scatter_rows_land_in_the_last_round() {
        let p = ShardProfile {
            peer: PeerProfile {
                merge_words_per_unit: 4,
                merge_words_fixed: 8,
                merge_txns: 1,
                scatter_words_per_unit: 2,
                scatter_txns: 1,
                owner: 0,
                ..PeerProfile::default()
            },
            rounds: 2,
            ..ShardProfile::streaming(32)
        };
        let rows = plan_peer_traffic(&p, &[5, 3, 0]);
        assert!(rows[0].is_empty());
        // Device 1 merges 8 + 4·3 words to owner 0 and receives 2·3 back;
        // device 2 holds nothing, device 0 is the owner.
        assert_eq!(rows[1].len(), 2);
        assert!(rows[1].iter().any(|t| t.src == 1 && t.dst == 0 && t.words == 20 && t.txns == 1));
        assert!(rows[1].iter().any(|t| t.src == 0 && t.dst == 1 && t.words == 6 && t.txns == 1));
    }

    #[test]
    fn plan_cost_prices_peer_traffic() {
        // The same apportionment must price strictly higher once the
        // profile declares halo traffic — the rows are no longer dropped.
        let c = cluster(3);
        let p = stencil_like(6);
        let counts = [40u64, 40, 40];
        let aware = plan_cost(&c, &machine(), &p, &counts).unwrap();
        let blind = plan_cost(&c, &machine(), &p.without_peer(), &counts).unwrap();
        assert!(aware > blind, "aware {aware} vs blind {blind}");
    }

    #[test]
    fn balanced_units_avoid_expensive_merge_paths() {
        // Histogram-shaped merge to owner 0; device 2's directed link to
        // the owner is 50x more expensive per word, so the waterfill must
        // hand it fewer units than device 1.
        let mut c = cluster(3);
        c.peer_links[2][0] = LinkParams {
            alpha_ms: c.peer_links[2][0].alpha_ms,
            beta_ms_per_word: c.peer_links[2][0].beta_ms_per_word * 50.0,
        };
        let p = ShardProfile {
            peer: PeerProfile {
                merge_words_per_unit: 64,
                merge_txns: 1,
                owner: 0,
                ..PeerProfile::default()
            },
            ..ShardProfile::streaming(32)
        };
        let out = balanced_units(&c, &machine(), &p, 900);
        assert_eq!(out.iter().sum::<u64>(), 900);
        assert!(out[2] < out[1], "expensive merge path over-assigned: {out:?}");
    }

    #[test]
    fn hetero_pack_is_contiguous_and_weight_aware() {
        // Units 0..16 are 100x heavier than units 16..64 (front-loaded
        // row weights): the first device must take fewer units than an
        // even split, later devices more — while counts stay contiguous
        // by construction and sum exactly.
        let c = cluster(4);
        let mut weights = vec![3200u64; 16];
        weights.extend(std::iter::repeat_n(32u64, 48));
        let p = ShardProfile { unit_inward_words: weights, ..ShardProfile::streaming(32) };
        let out = balanced_units(&c, &machine(), &p, 64);
        assert_eq!(out.iter().sum::<u64>(), 64);
        assert!(out[0] < 16, "heavy prefix over-assigned: {out:?}");
        assert!(out[3] > 16, "light tail under-assigned: {out:?}");
    }

    #[test]
    fn multi_round_metrics_stage_once_and_drain_once() {
        let p = stencil_like(5);
        let metrics = plan_metrics(&p, &[8, 8]);
        for m in &metrics {
            assert_eq!(m.rounds.len(), 5);
            assert!(m.rounds.iter().skip(1).all(|r| r.inward_words == 0));
            assert!(m.rounds.iter().take(4).all(|r| r.outward_words == 0));
            assert_eq!(m.rounds[0].inward_words, 8 * 32);
            assert_eq!(m.rounds[4].outward_words, 8 * 32);
            assert!(m.rounds.iter().all(|r| r.time == 11));
        }
    }

    #[test]
    fn pipeline_tables_shapes_are_consistent() {
        let p = ShardProfile::streaming(32);
        let (metrics, schedules) = pipeline_tables(&p, &[10, 4], 4);
        // max chunks = ceil(10/4) = 3 → 4 rounds.
        assert!(metrics.iter().all(|m| m.rounds.len() == 4));
        assert!(schedules.iter().all(|s| s.len() == 4));
        // Device 0's units: 4 + 4 + 2.
        let words: u64 = metrics[0].rounds.iter().map(|r| r.inward_words).sum();
        assert_eq!(words, p.inward_words_per_unit * 10);
        let out: u64 = metrics[0].rounds.iter().map(|r| r.outward_words).sum();
        assert_eq!(out, p.outward_words_per_unit * 10);
        // Prologue upload is stream 0, later uploads stream 1.
        assert!(matches!(schedules[0][0].items[0], StreamItem::TransferIn { stream: 0, .. }));
        assert!(matches!(schedules[0][1].items[0], StreamItem::TransferIn { stream: 1, .. }));
    }
}
