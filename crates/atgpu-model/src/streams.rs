//! Stream timelines — the copy/compute-overlap extension of the timing
//! model.
//!
//! The paper's cost function charges a round's transfers and kernel
//! **serially**: `T_I + kernel + T_O`.  Real GPUs hide transfer latency
//! behind compute with *streams*: operations on one stream are ordered,
//! operations on different streams may overlap — the mechanism CrystalGPU
//! exploits for transparent transfer/compute overlap.  This module models
//! it with a small list scheduler:
//!
//! * every operation belongs to a **stream** (an ordering queue chosen by
//!   the program) and occupies a **resource** (fixed by what the
//!   operation physically is);
//! * an operation starts at the maximum of its stream's ready time, its
//!   resource's ready time and the current sync *floor*, and runs for its
//!   serial duration;
//! * `SyncStream`/`SyncDevice` raise the floor (host-blocking joins);
//! * the round's duration is the time the last operation finishes — the
//!   **max over per-stream serial chains between sync points**.
//!
//! The resources encode what real hardware serialises regardless of
//! stream tags: one DMA engine per transfer direction and one compute
//! engine, so two H2D copies never overlap each other (they share a
//! link), while an H2D copy, a kernel and a D2H copy on three streams all
//! run concurrently.  A program that keeps everything on stream 0
//! degenerates to exactly the paper's serial sum.
//!
//! [`StreamTimeline`] is shared by the simulator (observed round times,
//! `atgpu-sim`) and the analytic cost functions
//! ([`crate::cost::streamed_evaluate`], [`crate::cost::cluster_cost`]) so
//! prediction and observation use the same overlap semantics by
//! construction.

/// Streams addressable per device, mirroring `atgpu_ir::MAX_STREAMS`
/// (this crate does not depend on atgpu-ir).  [`StreamTimeline`] clamps
/// larger ids to the last slot as a defensive bound — the IR validator
/// rejects them before any well-formed program gets here — so a corrupt
/// id can never drive an unbounded allocation.
pub const MAX_STREAMS: u32 = 8;

/// The hardware unit an operation occupies.  Operations on the same
/// resource serialise even when enqueued on different streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamResource {
    /// The host→device DMA engine (one per device).
    HostToDevice,
    /// The multiprocessors: kernel launches.
    Compute,
    /// The device→host DMA engine.
    DeviceToHost,
    /// A peer-link engine (device↔device copies).
    Peer,
}

impl StreamResource {
    #[inline]
    fn index(self) -> usize {
        self.lane() as usize
    }

    /// Stable lane number of this resource (H2D=0, Compute=1, D2H=2,
    /// Peer=3) — the `tid` a trace exporter files the resource's spans
    /// under.
    #[inline]
    pub fn lane(self) -> u8 {
        match self {
            StreamResource::HostToDevice => 0,
            StreamResource::Compute => 1,
            StreamResource::DeviceToHost => 2,
            StreamResource::Peer => 3,
        }
    }

    /// Short human-readable lane name, matching [`Self::lane`] order.
    pub fn lane_name(self) -> &'static str {
        match self {
            StreamResource::HostToDevice => "H2D",
            StreamResource::Compute => "Compute",
            StreamResource::DeviceToHost => "D2H",
            StreamResource::Peer => "Peer",
        }
    }
}

/// Per-round, per-device stream scheduler: tracks when each stream and
/// each resource becomes free, plus the host-sync floor.
///
/// Times are relative to the round start (every round boundary is an
/// implicit device-wide synchronisation).
#[derive(Debug, Clone, Default)]
pub struct StreamTimeline {
    /// Ready time of each stream, indexed by stream id (grown on demand).
    streams: Vec<f64>,
    /// Ready time of each [`StreamResource`].
    resources: [f64; 4],
    /// Sync floor: no operation starts earlier.
    floor: f64,
}

impl StreamTimeline {
    /// A fresh timeline at round start (everything idle at time 0).
    pub fn new() -> Self {
        Self::default()
    }

    fn stream_mut(&mut self, stream: u32) -> &mut f64 {
        let i = (stream.min(MAX_STREAMS - 1)) as usize;
        if i >= self.streams.len() {
            self.streams.resize(i + 1, 0.0);
        }
        &mut self.streams[i]
    }

    /// Schedules one operation of duration `dur` on `stream` occupying
    /// `res`; returns its completion time.
    #[inline]
    pub fn advance(&mut self, stream: u32, res: StreamResource, dur: f64) -> f64 {
        self.advance_spanned(stream, res, dur).1
    }

    /// [`Self::advance`] exposing the operation's full `(start, end)`
    /// span — the primitive the timeline tracer records.  `advance` is a
    /// thin wrapper, so tracing sees exactly the times the scheduler
    /// uses.
    pub fn advance_spanned(&mut self, stream: u32, res: StreamResource, dur: f64) -> (f64, f64) {
        let floor = self.floor;
        let r = self.resources[res.index()];
        let s = self.stream_mut(stream);
        let start = s.max(r).max(floor);
        let end = start + dur;
        *s = end;
        self.resources[res.index()] = end;
        (start, end)
    }

    /// Host-blocking join on one stream: later operations (any stream)
    /// start no earlier than everything enqueued on `stream` so far.  A
    /// sync on an idle (or never-used) stream is a no-op (and allocates
    /// nothing).
    pub fn sync_stream(&mut self, stream: u32) {
        let i = (stream.min(MAX_STREAMS - 1)) as usize;
        let t = self.streams.get(i).copied().unwrap_or(0.0);
        self.floor = self.floor.max(t);
    }

    /// Host-blocking join on the whole device: later operations start no
    /// earlier than everything enqueued so far.
    pub fn sync_device(&mut self) {
        self.floor = self.finish();
    }

    /// The round's duration so far: when the last scheduled operation
    /// completes (or the floor, if a sync raised it past that).
    pub fn finish(&self) -> f64 {
        let s = self.streams.iter().copied().fold(self.floor, f64::max);
        self.resources.iter().copied().fold(s, f64::max)
    }
}

/// One schedule entry of a round, for the analytic streamed cost: the
/// stream placement and link traffic of every transfer, the kernel
/// launch, and explicit syncs — exactly the information
/// [`crate::cost::streamed_evaluate`] needs to price a round the way the
/// simulator times it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamItem {
    /// Host→device traffic on `stream`: `txns` transactions moving
    /// `words` in total (priced `txns·α + words·β` on the host link).
    TransferIn {
        /// Stream the copies are enqueued on.
        stream: u32,
        /// Transfer transactions `Î`.
        txns: u64,
        /// Words moved `I`.
        words: u64,
    },
    /// Device→host traffic on `stream`.
    TransferOut {
        /// Stream the copies are enqueued on.
        stream: u32,
        /// Transfer transactions `Ô`.
        txns: u64,
        /// Words moved `O`.
        words: u64,
    },
    /// The round's kernel launch (always stream 0, the compute stream);
    /// its duration is the cost function's kernel term.
    Kernel,
    /// Host-blocking join on one stream.
    SyncStream {
        /// The stream to wait for.
        stream: u32,
    },
    /// Host-blocking join on the whole device.
    SyncDevice,
}

/// A round's stream schedule: its [`StreamItem`]s in host order.  An
/// empty schedule means "serial": all traffic on stream 0 (derived from
/// the round's aggregate metrics), reproducing the paper's
/// `T_I + kernel + T_O` exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundSchedule {
    /// The items, in the order the host enqueues them.
    pub items: Vec<StreamItem>,
}

impl RoundSchedule {
    /// Whether the schedule contains an explicit kernel item.
    pub fn has_kernel(&self) -> bool {
        self.items.iter().any(|i| matches!(i, StreamItem::Kernel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use StreamResource::*;

    #[test]
    fn single_stream_degenerates_to_serial_sum() {
        // Everything on stream 0: the paper's T_I + kernel + T_O.
        let mut t = StreamTimeline::new();
        t.advance(0, HostToDevice, 3.0);
        t.advance(0, Compute, 5.0);
        t.advance(0, DeviceToHost, 2.0);
        assert_eq!(t.finish(), 10.0);
    }

    #[test]
    fn two_streams_overlap_copy_and_compute() {
        // H2D of the next chunk (stream 1) hides behind this chunk's
        // kernel + D2H (stream 0).
        let mut t = StreamTimeline::new();
        t.advance(1, HostToDevice, 4.0);
        t.advance(0, Compute, 5.0);
        t.advance(0, DeviceToHost, 2.0);
        assert_eq!(t.finish(), 7.0);
    }

    #[test]
    fn same_resource_serialises_across_streams() {
        // Two H2D copies on different streams share the DMA engine.
        let mut t = StreamTimeline::new();
        t.advance(1, HostToDevice, 4.0);
        t.advance(2, HostToDevice, 4.0);
        assert_eq!(t.finish(), 8.0);
        // ... but opposite directions overlap.
        let mut t = StreamTimeline::new();
        t.advance(1, HostToDevice, 4.0);
        t.advance(2, DeviceToHost, 4.0);
        assert_eq!(t.finish(), 4.0);
    }

    #[test]
    fn empty_stream_sync_is_noop() {
        let mut t = StreamTimeline::new();
        t.advance(0, Compute, 5.0);
        t.sync_stream(3); // never used
        t.advance(1, HostToDevice, 1.0);
        assert_eq!(t.finish(), 5.0);
    }

    #[test]
    fn sync_heavy_schedule_is_fully_serial() {
        // A device sync after every operation removes all overlap.
        let mut t = StreamTimeline::new();
        for (s, r, d) in [(1, HostToDevice, 4.0), (0, Compute, 5.0), (2, DeviceToHost, 2.0)] {
            t.advance(s, r, d);
            t.sync_device();
        }
        assert_eq!(t.finish(), 11.0);
    }

    #[test]
    fn stream_sync_orders_later_work() {
        let mut t = StreamTimeline::new();
        t.advance(1, HostToDevice, 4.0);
        t.sync_stream(1);
        // The kernel now waits for the copy even on another stream.
        t.advance(0, Compute, 5.0);
        assert_eq!(t.finish(), 9.0);
    }

    #[test]
    fn zero_duration_operations_are_free() {
        let mut t = StreamTimeline::new();
        t.advance(0, Compute, 0.0);
        t.sync_device();
        assert_eq!(t.finish(), 0.0);
    }

    #[test]
    fn out_of_range_stream_ids_clamp_without_allocating() {
        // Defensive bound: a corrupt id must not drive a huge resize.
        let mut t = StreamTimeline::new();
        t.advance(u32::MAX, HostToDevice, 2.0);
        assert!(t.streams.len() <= MAX_STREAMS as usize);
        t.sync_stream(u32::MAX); // floor picks up the clamped slot
        t.advance(0, Compute, 1.0);
        assert_eq!(t.finish(), 3.0);
    }

    /// Pins the clamp's aliasing behaviour: stream ids `≥ MAX_STREAMS`
    /// all alias the **last** slot, identically in `advance` and
    /// `sync_stream`, so a future refactor cannot diverge the two (an
    /// `advance` clamping while `sync_stream` allocated — or vice versa —
    /// would silently un-order operations the clamp had chained).  No
    /// validated program reaches this: the IR validator bounds every
    /// built program's stream ids, `check_schedule_streams` bounds every
    /// hand-built [`RoundSchedule`], and the simulator driver re-checks
    /// hand-constructed programs.
    #[test]
    fn clamp_aliases_advance_and_sync_identically() {
        // advance on MAX_STREAMS+1 and sync on MAX_STREAMS land on the
        // same slot: the sync must observe the advance.
        let mut t = StreamTimeline::new();
        t.advance(MAX_STREAMS + 1, HostToDevice, 4.0);
        t.sync_stream(MAX_STREAMS);
        t.advance(0, Compute, 1.0);
        assert_eq!(t.finish(), 5.0);

        // The clamped slot is the genuine last stream: work enqueued on
        // MAX_STREAMS−1 and on any id above it forms ONE serial chain.
        let mut t = StreamTimeline::new();
        t.advance(MAX_STREAMS - 1, HostToDevice, 2.0);
        t.advance(MAX_STREAMS + 5, DeviceToHost, 3.0); // aliased: same chain
        assert_eq!(t.finish(), 5.0);

        // And distinct out-of-range ids alias each other too.
        let mut t = StreamTimeline::new();
        t.advance(8, HostToDevice, 2.0);
        t.advance(9, HostToDevice, 2.0);
        t.sync_stream(u32::MAX);
        assert_eq!(t.floor, 4.0);
    }

    #[test]
    fn advance_returns_completion_time() {
        let mut t = StreamTimeline::new();
        assert_eq!(t.advance(0, Compute, 2.0), 2.0);
        assert_eq!(t.advance(1, HostToDevice, 3.0), 3.0);
        assert_eq!(t.advance(1, HostToDevice, 1.0), 4.0);
    }
}
