//! Occupancy: how many thread blocks a physical multiprocessor holds.
//!
//! Paper §III (GPU-Cost Function): "Each streaming multiprocessor on a GPU
//! can accommodate `ℓ = min(⌊M/m⌋, H)` blocks concurrently, where `H`
//! represents a hardware imposed limit."  A higher `ℓ` enlarges the
//! instruction pool and therefore the latency-hiding opportunity.

use crate::machine::AtgpuMachine;
use crate::params::GpuSpec;

/// Blocks resident per MP, `ℓ = min(⌊M/m⌋, H)`.
///
/// `m_used` is the shared-memory footprint (words) of one thread block.  A
/// block that declares no shared memory still occupies a residency slot, so
/// `m_used = 0` yields `H`.  Returns at least 1 when the block fits at all
/// (`m_used ≤ M`); returns 0 when the block cannot fit, meaning the kernel
/// cannot run.
pub fn occupancy(machine: &AtgpuMachine, m_used: u64, h_limit: u64) -> u64 {
    if m_used > machine.m {
        return 0;
    }
    let by_shared = machine.m.checked_div(m_used).unwrap_or(h_limit);
    by_shared.min(h_limit)
}

/// The wave factor `⌈k / (k′ℓ)⌉` of Expression (2): how many "waves" of
/// thread blocks a `k′`-MP GPU needs to execute `k` blocks when each MP
/// holds `ℓ` blocks at once.
///
/// Returns `None` when `ℓ = 0` (the block does not fit in shared memory, so
/// the kernel cannot run on the device at all).  `k = 0` (an empty launch)
/// costs zero waves.
pub fn wave_factor(machine: &AtgpuMachine, spec: &GpuSpec, k: u64, m_used: u64) -> Option<u64> {
    let ell = occupancy(machine, m_used, spec.h_limit);
    if ell == 0 {
        return None;
    }
    Some(k.div_ceil(spec.k_prime * ell))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> AtgpuMachine {
        AtgpuMachine::new(2048, 32, 12_288, 1 << 20).unwrap()
    }

    fn spec() -> GpuSpec {
        GpuSpec::gtx650_like() // k' = 2, H = 16
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        // m = 12288; blocks of 1024 words -> floor(12) but H = 16 -> 12.
        assert_eq!(occupancy(&machine(), 1024, 16), 12);
    }

    #[test]
    fn hardware_limit_caps_occupancy() {
        // blocks of 96 words -> floor(128) but H = 16 -> 16.
        assert_eq!(occupancy(&machine(), 96, 16), 16);
    }

    #[test]
    fn zero_shared_usage_gives_h() {
        assert_eq!(occupancy(&machine(), 0, 16), 16);
    }

    #[test]
    fn oversized_block_cannot_run() {
        assert_eq!(occupancy(&machine(), 12_289, 16), 0);
    }

    #[test]
    fn exact_fit_gives_one() {
        assert_eq!(occupancy(&machine(), 12_288, 16), 1);
    }

    #[test]
    fn wave_factor_rounds_up() {
        // k' * l = 2 * 16 = 32 concurrent blocks.
        assert_eq!(wave_factor(&machine(), &spec(), 1, 96), Some(1));
        assert_eq!(wave_factor(&machine(), &spec(), 32, 96), Some(1));
        assert_eq!(wave_factor(&machine(), &spec(), 33, 96), Some(2));
        assert_eq!(wave_factor(&machine(), &spec(), 320, 96), Some(10));
    }

    #[test]
    fn wave_factor_zero_blocks() {
        assert_eq!(wave_factor(&machine(), &spec(), 0, 96), Some(0));
    }

    #[test]
    fn wave_factor_none_when_block_too_big() {
        assert_eq!(wave_factor(&machine(), &spec(), 10, 20_000), None);
    }

    #[test]
    fn more_shared_usage_never_increases_occupancy() {
        let m = machine();
        let mut prev = occupancy(&m, 1, 16);
        for used in 2..200 {
            let cur = occupancy(&m, used, 16);
            assert!(cur <= prev, "occupancy increased at m_used={used}");
            prev = cur;
        }
    }
}
