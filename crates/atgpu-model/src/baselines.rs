//! Baseline models the paper compares against.
//!
//! * **AGPU** (Koike & Sadakane): analyses algorithms asymptotically by
//!   time, number of memory requests and space in global and shared memory;
//!   no synchronisation, no cost function, shared memory may not exceed `M`.
//! * **SWGPU** (Sitchinava & Weichert): rounds delimited by host
//!   synchronisation; cost function of operations, memory requests and
//!   synchronisation — no data transfer.  (The paper evaluates SWGPU as
//!   "the GPU cost function of our model minus the data transfer", which
//!   lives in [`crate::cost`].)
//!
//! The structs here give those baselines a concrete, queryable form so that
//! experiments can report "what AGPU/SWGPU would tell you" alongside ATGPU.

use crate::error::ModelError;
use crate::machine::AtgpuMachine;
use crate::metrics::AlgoMetrics;

/// The quantities the AGPU model reports for an algorithm.
///
/// AGPU has no rounds, no synchronisation and no data transfer; it sees
/// only the kernel: total time, total I/O, and peak space.  It *does*
/// enforce the shared-memory capacity (algorithms whose shared usage
/// exceeds `M` are disallowed) but, unlike ATGPU, places **no bound on
/// global memory**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgpuAnalysis {
    /// Total parallel time (operations).
    pub time: u64,
    /// Total global-memory block requests.
    pub io: u64,
    /// Peak global-memory words (reported, but unbounded in AGPU).
    pub global_space: u64,
    /// Peak shared-memory words (bounded by `M`).
    pub shared_space: u64,
    /// AGPU's occupancy measure: blocks per MP as a function of shared
    /// usage, `⌊M/m⌋` (no hardware cap — that is an ATGPU/GPU-cost notion).
    pub occupancy: u64,
}

/// Projects ATGPU metrics down to what the AGPU model can express.
///
/// Data-transfer and synchronisation information is *dropped* — that is
/// precisely the paper's point about AGPU's blind spot.
pub fn agpu_view(
    machine: &AtgpuMachine,
    metrics: &AlgoMetrics,
) -> Result<AgpuAnalysis, ModelError> {
    let shared = metrics.peak_shared_words();
    if shared > machine.m {
        // AGPU "disallows algorithms where shared memory used exceeds capacity".
        return Err(ModelError::SharedMemoryExceeded { required: shared, available: machine.m });
    }
    Ok(AgpuAnalysis {
        time: metrics.total_time_ops(),
        io: metrics.total_io_blocks(),
        global_space: metrics.peak_global_words(),
        shared_space: shared,
        occupancy: machine.m.checked_div(shared).unwrap_or(machine.m),
    })
}

/// The quantities the SWGPU model reports: rounds, per-round max time,
/// per-round memory requests, synchronisation count.  No transfer, no
/// space accounting, no global-memory bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwgpuAnalysis {
    /// Number of rounds `R` (synchronisation count).
    pub rounds: u64,
    /// Total operations `Σ tᵢ`.
    pub time: u64,
    /// Total memory requests `Σ qᵢ`.
    pub io: u64,
}

/// Projects ATGPU metrics down to what the SWGPU model can express.
pub fn swgpu_view(metrics: &AlgoMetrics) -> SwgpuAnalysis {
    SwgpuAnalysis {
        rounds: metrics.num_rounds(),
        time: metrics.total_time_ops(),
        io: metrics.total_io_blocks(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RoundMetrics;

    fn metrics() -> AlgoMetrics {
        AlgoMetrics::new(vec![
            RoundMetrics {
                time: 10,
                io_blocks: 4,
                global_words: 128,
                shared_words: 64,
                inward_words: 100,
                inward_txns: 1,
                outward_words: 0,
                outward_txns: 0,
                blocks_launched: 4,
            },
            RoundMetrics {
                time: 6,
                io_blocks: 2,
                global_words: 128,
                shared_words: 32,
                inward_words: 0,
                inward_txns: 0,
                outward_words: 1,
                outward_txns: 1,
                blocks_launched: 1,
            },
        ])
    }

    #[test]
    fn agpu_sums_and_peaks() {
        let m = AtgpuMachine::new(64, 32, 128, 1024).unwrap();
        let a = agpu_view(&m, &metrics()).unwrap();
        assert_eq!(a.time, 16);
        assert_eq!(a.io, 6);
        assert_eq!(a.global_space, 128);
        assert_eq!(a.shared_space, 64);
        assert_eq!(a.occupancy, 2); // M/m = 128/64
    }

    #[test]
    fn agpu_drops_transfer_info() {
        // There is simply no transfer field on AgpuAnalysis: the projection
        // type-checks the blindness. This test documents the intent.
        let m = AtgpuMachine::new(64, 32, 128, 1024).unwrap();
        let _a = agpu_view(&m, &metrics()).unwrap();
    }

    #[test]
    fn agpu_enforces_shared_limit() {
        let m = AtgpuMachine::new(64, 32, 48, 1024).unwrap();
        assert!(matches!(agpu_view(&m, &metrics()), Err(ModelError::SharedMemoryExceeded { .. })));
    }

    #[test]
    fn agpu_ignores_global_limit() {
        // Global usage 128 > G = 32? AGPU doesn't care; it has no G.
        let m = AtgpuMachine::new(64, 32, 128, 32).unwrap();
        assert!(agpu_view(&m, &metrics()).is_ok());
    }

    #[test]
    fn swgpu_counts_rounds() {
        let s = swgpu_view(&metrics());
        assert_eq!(s.rounds, 2);
        assert_eq!(s.time, 16);
        assert_eq!(s.io, 6);
    }

    #[test]
    fn agpu_zero_shared_occupancy_is_full() {
        let m = AtgpuMachine::new(64, 32, 128, 1024).unwrap();
        let mut met = metrics();
        for r in &mut met.rounds {
            r.shared_words = 0;
        }
        let a = agpu_view(&m, &met).unwrap();
        assert_eq!(a.occupancy, 128);
    }
}
