//! # ATGPU — the Abstract Transferring GPU model
//!
//! This crate implements the analytical model introduced by Carroll & Wong in
//! *“An Improved Abstract GPU Model with Data Transfer”* (ICPP 2017
//! Workshops).  ATGPU extends the earlier SWGPU (Sitchinava & Weichert) and
//! AGPU (Koike & Sadakane) abstract GPU models with:
//!
//! * a **bounded global memory** of `G` words (prior models assumed it
//!   unlimited), and
//! * **host↔device data transfer** as an integral part of the model, costed
//!   with the affine transaction model of Boyer et al.
//!   (`T(i) = Î·α + I·β`).
//!
//! The crate provides:
//!
//! * [`machine::AtgpuMachine`] — the abstract machine `ATGPU(p, b, M, G)`;
//! * [`metrics::RoundMetrics`] / [`metrics::AlgoMetrics`] — the per-round
//!   quantities the model tracks (`tᵢ`, `qᵢ`, space, `Iᵢ`, `Oᵢ`, `Îᵢ`, `Ôᵢ`);
//! * [`params::CostParams`] — the cost constants `γ, λ, σ, α, β`;
//! * [`params::GpuSpec`] — a concrete GPU (`k′` multiprocessors, hardware
//!   block-residency limit `H`, clock, bandwidths) used by the GPU-cost
//!   function and by the simulator;
//! * [`cost`] — the perfect-GPU cost (paper Expression 1), the GPU-cost with
//!   occupancy (Expression 2), and the SWGPU baseline cost (the same
//!   function with the transfer terms removed, exactly as the paper's
//!   evaluation constructs it);
//! * [`occupancy`](mod@occupancy) — the block-residency function `ℓ = min(⌊M/m⌋, H)`;
//! * [`plan`] — the planning layer: workload [`plan::ShardProfile`]s
//!   (including their [`plan::PeerProfile`] device↔device traffic),
//!   cost-driven shard apportionment and the chunk-size solver, all
//!   priced through the cost functions above;
//! * [`baselines`] — AGPU-style asymptotic summaries and the classical
//!   models (PRAM, BSP, BSPRAM, PEM) discussed in the paper's related work;
//! * [`comparison`] — the feature matrix of Table I, generated from data;
//! * [`asymptotics`] — a tiny symbolic big-O term language used to state
//!   and numerically evaluate the paper's closed-form complexities.
//!
//! The companion crates build the rest of the system: `atgpu-ir` (kernel
//! pseudocode/IR), `atgpu-analyze` (derives [`metrics::AlgoMetrics`] from
//! IR), `atgpu-sim` (the simulated “real GPU” standing in for the paper's
//! GTX 650), `atgpu-algos` (the evaluated workloads) and `atgpu-exp`
//! (regenerates every table and figure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asymptotics;
pub mod baselines;
pub mod comparison;
pub mod cost;
pub mod error;
pub mod machine;
pub mod metrics;
pub mod occupancy;
pub mod params;
pub mod plan;
pub mod streams;

pub use cost::{
    ClusterCostBreakdown, CostBreakdown, DegradedLoss, PeerTraffic, PredictedSpan, StreamedCost,
};
pub use error::ModelError;
pub use machine::AtgpuMachine;
pub use metrics::{AlgoMetrics, RoundMetrics};
pub use occupancy::occupancy;
pub use params::{ClusterSpec, CostParams, GpuSpec, LinkParams};
pub use plan::{PeerProfile, ShardProfile};
pub use streams::{RoundSchedule, StreamItem, StreamResource, StreamTimeline, MAX_STREAMS};
