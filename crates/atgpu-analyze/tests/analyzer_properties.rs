//! Analyser-level property tests: exactness of the residue-class
//! coalescing analysis against brute force over a wide shape space, and
//! soundness of the bank-conflict fast paths against enumeration.

use atgpu_analyze::bankconflict::{site_conflict_degree, ConflictDegree};
use atgpu_analyze::coalesce::site_transactions;
use atgpu_analyze::space::touched_range;
use atgpu_ir::affine::CompiledAddr;
use atgpu_ir::AddrExpr;
use proptest::prelude::*;

fn affine_site() -> impl Strategy<Value = AddrExpr> {
    (
        -6i64..7,   // lane coefficient
        -48i64..49, // block x coefficient
        -16i64..17, // block y coefficient
        -12i64..13, // loop-0 coefficient
        0i64..128,  // base
    )
        .prop_map(|(l, bx, by, t0, base)| {
            AddrExpr::lane() * l
                + AddrExpr::block() * bx
                + AddrExpr::block_y() * by
                + AddrExpr::loop_var(0) * t0
                + base
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The fast coalescing count equals brute-force enumeration over the
    /// full (grid × loop × lane) space, for any affine shape.
    #[test]
    fn coalescing_is_exact(
        e in affine_site(),
        gx in 1u64..9,
        gy in 1u64..4,
        trips in 0u32..4,
        buf_base in 0u64..64,
    ) {
        let b = 16u64;
        let addr = CompiledAddr::compile(e.clone());
        let fast = site_transactions(&addr, buf_base, (gx, gy), &[trips], b);
        prop_assert!(fast.exact);

        let mut slow = 0u64;
        for by in 0..gy as i64 {
            for bx in 0..gx as i64 {
                for t in 0..trips {
                    let mut blocks: Vec<i64> = (0..b as i64)
                        .map(|l| {
                            let mut rr = |_| 0i64;
                            (e.eval(l, (bx, by), &[t], &mut rr) + buf_base as i64)
                                .div_euclid(b as i64)
                        })
                        .collect();
                    blocks.sort_unstable();
                    blocks.dedup();
                    slow += blocks.len() as u64;
                }
            }
        }
        prop_assert_eq!(fast.txns, slow);
    }

    /// The analytic bank-conflict degree equals enumeration for static
    /// affine addresses with all lanes active.
    #[test]
    fn conflict_degree_is_exact(lane_c in -40i64..41, base in 0i64..100) {
        let b = 32u64;
        let e = AddrExpr::lane() * lane_c + base;
        let addr = CompiledAddr::compile(e.clone());
        let fast = match site_conflict_degree(&addr, b) {
            ConflictDegree::Exact(d) => d,
            ConflictDegree::DataDependent => unreachable!("static affine site"),
        };
        // Enumerate: distinct addresses per bank, max over banks.
        let mut per_bank: Vec<Vec<i64>> = vec![Vec::new(); b as usize];
        for l in 0..b as i64 {
            let a = base + lane_c * l;
            per_bank[a.rem_euclid(b as i64) as usize].push(a);
        }
        let slow = per_bank
            .iter_mut()
            .map(|v| {
                v.sort_unstable();
                v.dedup();
                v.len() as u64
            })
            .max()
            .unwrap()
            .max(1);
        prop_assert_eq!(fast, slow, "lane_c={}", lane_c);
    }

    /// The touched-range analysis is a sound bounding box: every address
    /// the site can produce lies within it.
    #[test]
    fn touched_range_is_sound(
        e in affine_site(),
        gx in 1u64..6,
        gy in 1u64..3,
        trips in 1u32..4,
    ) {
        let b = 8u64;
        let addr = CompiledAddr::compile(e.clone());
        let Some((lo, hi)) = touched_range(&addr, b, (gx, gy), &[trips]) else {
            return Ok(()); // non-affine shapes may be unknown
        };
        for by in 0..gy as i64 {
            for bx in 0..gx as i64 {
                for t in 0..trips {
                    for l in 0..b as i64 {
                        let mut rr = |_| 0i64;
                        let v = e.eval(l, (bx, by), &[t], &mut rr);
                        prop_assert!(v >= lo && v <= hi,
                            "addr {} outside [{}, {}]", v, lo, hi);
                    }
                }
            }
        }
    }

    /// Transactions scale exactly linearly when a loop only repeats the
    /// same access (coefficient zero).
    #[test]
    fn pure_repetition_multiplies_txns(gx in 1u64..20, trips in 1u32..20) {
        let b = 32u64;
        let addr = CompiledAddr::compile(AddrExpr::block() * (b as i64) + AddrExpr::lane());
        let one = site_transactions(&addr, 0, (gx, 1), &[], b).txns;
        let many = site_transactions(&addr, 0, (gx, 1), &[trips], b).txns;
        prop_assert_eq!(many, one * u64::from(trips));
    }
}
