//! Lockstep operation counting — the model's time metric `tᵢ`.
//!
//! Counting rules, following the model's execution semantics:
//!
//! * every leaf instruction (move, memory access, sync) issues as one
//!   lockstep operation — memory *latency* is accounted separately through
//!   `λ·qᵢ`, so an access costs one issue slot here; ALU operations are
//!   weighted by [`atgpu_ir::AluOp::issue_cycles`] (integer div/mod expand
//!   to long sequences on real GPUs);
//! * a divergent region costs one operation for the predicate evaluation
//!   **plus both arms** ("if execution paths diverge, all paths are
//!   executed");
//! * a counted loop costs its trip count times its body (loop bookkeeping
//!   is free, matching how the paper counts its kernels);
//! * the body is SPMD with launch-time-constant trip counts, so every
//!   thread block executes the same operation count and `tᵢ = max over
//!   MPs` equals the per-block count.

use atgpu_ir::{Instr, Kernel};

/// Operations executed by one thread block of `kernel` — the model's `tᵢ`
/// for a round launching it.
pub fn kernel_time_ops(kernel: &Kernel) -> u64 {
    body_ops(&kernel.body)
}

fn body_ops(body: &[Instr]) -> u64 {
    body.iter()
        .map(|i| match i {
            Instr::Pred { then_body, else_body, .. } => {
                1 + body_ops(then_body) + body_ops(else_body)
            }
            Instr::Repeat { count, body } => u64::from(*count) * body_ops(body),
            Instr::Alu { op, .. } => u64::from(op.issue_cycles()),
            _ => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, PredExpr};

    #[test]
    fn straight_line_counts_instructions() {
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.mov(0, Operand::Imm(1));
        kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Imm(2));
        kb.st_shr(AddrExpr::lane(), Operand::Reg(0));
        assert_eq!(kernel_time_ops(&kb.build()), 3);
    }

    #[test]
    fn empty_kernel_is_zero_ops() {
        assert_eq!(kernel_time_ops(&KernelBuilder::new("k", 1, 0).build()), 0);
    }

    #[test]
    fn divergence_charges_both_arms() {
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.pred(
            PredExpr::Lt(Operand::Lane, Operand::Imm(16)),
            |kb| {
                kb.mov(0, Operand::Imm(1));
                kb.mov(1, Operand::Imm(2));
            },
            |kb| {
                kb.mov(2, Operand::Imm(3));
            },
        );
        // 1 (pred) + 2 (then) + 1 (else)
        assert_eq!(kernel_time_ops(&kb.build()), 4);
    }

    #[test]
    fn loops_multiply_body() {
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.repeat(5, |kb| {
            kb.mov(0, Operand::LoopVar(0));
            kb.alu(AluOp::Add, 1, Operand::Reg(1), Operand::Reg(0));
        });
        assert_eq!(kernel_time_ops(&kb.build()), 10);
    }

    #[test]
    fn nested_loops_multiply_through() {
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.repeat(3, |kb| {
            kb.mov(0, Operand::Imm(0));
            kb.repeat(4, |kb| {
                kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Imm(1));
            });
        });
        // 3 * (1 + 4*1)
        assert_eq!(kernel_time_ops(&kb.build()), 15);
    }

    #[test]
    fn zero_trip_loop_is_free() {
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.repeat(0, |kb| {
            kb.mov(0, Operand::Imm(1));
        });
        assert_eq!(kernel_time_ops(&kb.build()), 0);
    }

    #[test]
    fn divergence_inside_loop() {
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.repeat(2, |kb| {
            kb.when(PredExpr::Eq(Operand::LoopVar(0), Operand::Imm(0)), |kb| {
                kb.sync();
            });
        });
        // 2 * (1 + 1)
        assert_eq!(kernel_time_ops(&kb.build()), 4);
    }

    #[test]
    fn memory_ops_cost_one_issue_each() {
        let mut kb = KernelBuilder::new("k", 1, 64);
        kb.glb_to_shr(AddrExpr::lane(), atgpu_ir::DBuf(0), AddrExpr::lane());
        kb.ld_shr(0, AddrExpr::lane());
        kb.shr_to_glb(atgpu_ir::DBuf(0), AddrExpr::lane(), AddrExpr::lane());
        assert_eq!(kernel_time_ops(&kb.build()), 3);
    }
}
