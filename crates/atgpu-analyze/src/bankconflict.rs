//! Shared-memory bank-conflict analysis.
//!
//! The model *assumes* bank conflicts do not occur ("as these are
//! difficult to analyse") — but our kernels might still have them, and the
//! simulator will charge for them.  This module statically bounds the
//! serialisation degree so experiments can quantify exactly how much the
//! conflict-free assumption costs (extension experiment E3).
//!
//! For an affine shared address with lane stride `cL` on `b` banks:
//!
//! * `cL = 0` — every lane reads the same word: hardware broadcasts,
//!   degree 1;
//! * otherwise the addresses are distinct and lanes `l₁, l₂` collide iff
//!   `cL·(l₁−l₂) ≡ 0 (mod b)`, giving `gcd(|cL|, b)` lanes per bank —
//!   the serialisation degree.
//!
//! Register-dependent addresses are data-dependent: the static bound is
//! the worst case `b`, reported as [`ConflictDegree::DataDependent`].

use atgpu_ir::affine::CompiledAddr;

/// Worst-case serialisation degree of one shared access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictDegree {
    /// Statically known degree (1 = conflict-free).
    Exact(u64),
    /// Depends on run-time register values; worst case is `b`.
    DataDependent,
}

impl ConflictDegree {
    /// Upper bound as a number, given `b` banks.
    pub fn bound(&self, b: u64) -> u64 {
        match self {
            ConflictDegree::Exact(d) => *d,
            ConflictDegree::DataDependent => b,
        }
    }

    /// Combines two degrees, keeping the worse.
    pub fn max(self, other: ConflictDegree, b: u64) -> ConflictDegree {
        match (self, other) {
            (ConflictDegree::DataDependent, _) | (_, ConflictDegree::DataDependent) => {
                ConflictDegree::DataDependent
            }
            (ConflictDegree::Exact(x), ConflictDegree::Exact(y)) => {
                ConflictDegree::Exact(x.max(y).min(b))
            }
        }
    }
}

/// Degree of one shared access site with `b` banks.
///
/// Delegates to the shared classifier in
/// [`atgpu_ir::AffineAddr::full_warp_conflict_degree`], the same formula
/// the simulator's micro-op compiler bakes into its per-site metadata.
/// Non-affine register-free shapes could in principle be enumerated, but
/// they are rare; the safe worst case is reported instead.
pub fn site_conflict_degree(addr: &CompiledAddr, b: u64) -> ConflictDegree {
    match addr.as_affine().and_then(|a| a.full_warp_conflict_degree(b)) {
        Some(d) => ConflictDegree::Exact(d),
        None => ConflictDegree::DataDependent,
    }
}

/// Summary of a kernel's shared-memory conflict behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankConflictReport {
    /// Worst degree over all shared access sites.
    pub worst: ConflictDegree,
    /// Number of shared access sites analysed.
    pub sites: usize,
    /// Whether the kernel satisfies the model's conflict-free assumption
    /// (statically: every site has exact degree 1).
    pub conflict_free: bool,
}

impl BankConflictReport {
    /// A report for a kernel with no shared accesses.
    pub fn empty() -> Self {
        Self { worst: ConflictDegree::Exact(1), sites: 0, conflict_free: true }
    }

    /// Folds one site into the report.
    pub fn add_site(&mut self, degree: ConflictDegree, b: u64) {
        self.sites += 1;
        self.worst = self.worst.max(degree, b);
        if !matches!(degree, ConflictDegree::Exact(1)) {
            self.conflict_free = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_ir::AddrExpr;

    fn degree(e: AddrExpr, b: u64) -> ConflictDegree {
        site_conflict_degree(&CompiledAddr::compile(e), b)
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        assert_eq!(degree(AddrExpr::lane(), 32), ConflictDegree::Exact(1));
        assert_eq!(degree(AddrExpr::lane() + 7, 32), ConflictDegree::Exact(1));
    }

    #[test]
    fn broadcast_is_conflict_free() {
        assert_eq!(degree(AddrExpr::c(5), 32), ConflictDegree::Exact(1));
        assert_eq!(degree(AddrExpr::loop_var(0), 32), ConflictDegree::Exact(1));
    }

    #[test]
    fn stride_two_is_two_way() {
        assert_eq!(degree(AddrExpr::lane() * 2, 32), ConflictDegree::Exact(2));
    }

    #[test]
    fn odd_stride_is_conflict_free() {
        assert_eq!(degree(AddrExpr::lane() * 3, 32), ConflictDegree::Exact(1));
        assert_eq!(degree(AddrExpr::lane() * 31, 32), ConflictDegree::Exact(1));
    }

    #[test]
    fn stride_b_is_worst_case() {
        // Distinct addresses all in one bank.
        assert_eq!(degree(AddrExpr::lane() * 32, 32), ConflictDegree::Exact(32));
    }

    #[test]
    fn negative_stride_same_as_positive() {
        assert_eq!(degree(AddrExpr::c(100) - AddrExpr::lane() * 2, 32), ConflictDegree::Exact(2));
    }

    #[test]
    fn register_address_is_data_dependent() {
        assert_eq!(degree(AddrExpr::reg(0), 32), ConflictDegree::DataDependent);
        assert_eq!(degree(AddrExpr::reg(0), 32).bound(32), 32);
    }

    #[test]
    fn non_affine_is_data_dependent() {
        assert_eq!(degree(AddrExpr::lane() * AddrExpr::lane(), 32), ConflictDegree::DataDependent);
    }

    #[test]
    fn report_tracks_worst_site() {
        let mut r = BankConflictReport::empty();
        assert!(r.conflict_free);
        r.add_site(ConflictDegree::Exact(1), 32);
        assert!(r.conflict_free);
        r.add_site(ConflictDegree::Exact(4), 32);
        assert!(!r.conflict_free);
        assert_eq!(r.worst, ConflictDegree::Exact(4));
        r.add_site(ConflictDegree::DataDependent, 32);
        assert_eq!(r.worst, ConflictDegree::DataDependent);
        assert_eq!(r.sites, 3);
    }

    #[test]
    fn degree_max_combines() {
        let b = 32;
        assert_eq!(
            ConflictDegree::Exact(2).max(ConflictDegree::Exact(8), b),
            ConflictDegree::Exact(8)
        );
        assert_eq!(
            ConflictDegree::Exact(2).max(ConflictDegree::DataDependent, b),
            ConflictDegree::DataDependent
        );
    }
}
