//! # atgpu-analyze — static derivation of ATGPU model metrics from IR
//!
//! The paper analyses each kernel by hand to obtain the model quantities
//! (`tᵢ`, `qᵢ`, space, transfer).  This crate mechanises that analysis: it
//! walks the same IR the simulator executes and produces an
//! [`atgpu_model::AlgoMetrics`] ready for the cost functions.
//!
//! * [`opcount`] — `tᵢ`: lockstep operations of one thread block, counting
//!   **both** arms of every divergence (the model's rule) and multiplying
//!   loop bodies by their trip counts;
//! * [`coalesce`] — `qᵢ`: exact global-memory transaction counts for
//!   static affine addresses via residue-class convolution (no
//!   per-thread-block enumeration, so analysing a 10-million-element
//!   launch costs microseconds), with a declared-conservative fall-back
//!   for data-dependent addressing;
//! * [`bankconflict`] — checks the model's "bank conflicts do not occur"
//!   assumption, reporting the worst serialisation degree a kernel can
//!   incur;
//! * [`space`] — global/shared space metrics plus touched-range analysis
//!   of shared addresses;
//! * [`analyze`] — the top-level [`analyze::analyze_program`] driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod bankconflict;
pub mod coalesce;
pub mod error;
pub mod opcount;
pub mod space;

pub use analyze::{
    analyze_cluster_program, analyze_program, attribute_peer_units, stream_schedule,
    stream_schedules, ClusterProgramAnalysis, KernelAnalysis, PeerAttribution, ProgramAnalysis,
    RoundAnalysis,
};
pub use bankconflict::{BankConflictReport, ConflictDegree};
pub use error::AnalyzeError;
