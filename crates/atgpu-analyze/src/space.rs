//! Space metrics and touched-range analysis.
//!
//! * **Global memory space** — the model takes the peak words stored in
//!   global memory; with the canonical up-front allocation discipline
//!   (matching the paper's kernels, which `cudaMalloc` everything before
//!   round 1) this is the padded total of
//!   [`atgpu_ir::Program::buffer_layout`].
//! * **Shared memory space** — each kernel declares its per-block
//!   footprint `m`; [`affine_range`] additionally bounds the addresses a
//!   static access can actually touch, catching kernels that under-declare
//!   (an error) long before simulation.

use atgpu_ir::affine::{AffineAddr, CompiledAddr};

/// Inclusive `(min, max)` of the values an affine address takes over
/// `lane ∈ [0, b)`, `block ∈ [0, blocks)` and the given loop trip counts.
/// Returns `None` for data-dependent addresses, or when any enclosing
/// trip count is zero (the site never executes).
pub fn affine_range(
    a: &AffineAddr,
    b: u64,
    grid: (u64, u64),
    loop_counts: &[u32],
) -> Option<(i64, i64)> {
    if !a.is_static() {
        return None;
    }
    if b == 0 || grid.0 == 0 || grid.1 == 0 || loop_counts.contains(&0) {
        return None;
    }
    let mut lo = a.base as i128;
    let mut hi = a.base as i128;
    let mut extend = |coef: i64, count: u64| {
        if count == 0 {
            return;
        }
        let span = coef as i128 * (count as i128 - 1);
        if span >= 0 {
            hi += span;
        } else {
            lo += span;
        }
    };
    extend(a.lane, b);
    extend(a.block, grid.0);
    extend(a.block_y, grid.1);
    for (d, &count) in loop_counts.iter().enumerate() {
        extend(a.loops.get(d).copied().unwrap_or(0), u64::from(count));
    }
    // Kernel addresses stay far inside i64 for any realistic machine.
    Some((lo as i64, hi as i64))
}

/// Touched range for a compiled address, if statically known.
pub fn touched_range(
    addr: &CompiledAddr,
    b: u64,
    grid: (u64, u64),
    loop_counts: &[u32],
) -> Option<(i64, i64)> {
    affine_range(addr.as_affine()?, b, grid, loop_counts)
}

/// Inclusive `(min, max)` of an affine address over the **active lanes
/// of a constant mask** — the masked-affine refinement of
/// [`affine_range`].  A tree-reduction step that reads `_s[j + s]` under
/// `j < s` touches only `[s, 2s)`, not the full-warp `[s, b − 1 + s]`.
/// Returns `None` for data-dependent addresses or when the site never
/// executes (empty mask, zero trip count).
pub fn masked_affine_range(
    a: &AffineAddr,
    mask: u64,
    b: u64,
    grid: (u64, u64),
    loop_counts: &[u32],
) -> Option<(i64, i64)> {
    if mask == 0 {
        return None;
    }
    let lanes = b.min(64);
    let lo_lane = mask.trailing_zeros() as i64;
    let hi_lane = (63 - mask.leading_zeros() as i64).min(lanes as i64 - 1);
    // Full-warp range with the lane term zeroed, then the exact lane span.
    let no_lane = AffineAddr { lane: 0, ..*a };
    let (mut lo, mut hi) = affine_range(&no_lane, b, grid, loop_counts)?;
    let (l1, l2) = (a.lane * lo_lane, a.lane * hi_lane);
    lo += l1.min(l2);
    hi += l1.max(l2);
    Some((lo, hi))
}

/// Masked touched range for a compiled address, if statically known.
pub fn masked_touched_range(
    addr: &CompiledAddr,
    mask: u64,
    b: u64,
    grid: (u64, u64),
    loop_counts: &[u32],
) -> Option<(i64, i64)> {
    masked_affine_range(addr.as_affine()?, mask, b, grid, loop_counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_ir::AddrExpr;

    fn range(e: AddrExpr, b: u64, grid: (u64, u64), loops: &[u32]) -> Option<(i64, i64)> {
        touched_range(&CompiledAddr::compile(e), b, grid, loops)
    }

    #[test]
    fn lane_only_range() {
        assert_eq!(range(AddrExpr::lane(), 32, (1, 1), &[]), Some((0, 31)));
    }

    #[test]
    fn block_and_lane_range() {
        // i*32 + j for 4 blocks of 32 lanes: [0, 127]
        assert_eq!(
            range(AddrExpr::block() * 32 + AddrExpr::lane(), 32, (4, 1), &[]),
            Some((0, 127))
        );
    }

    #[test]
    fn negative_coefficient_extends_low() {
        assert_eq!(range(AddrExpr::c(10) - AddrExpr::lane(), 4, (1, 1), &[]), Some((7, 10)));
    }

    #[test]
    fn loop_counts_extend_range() {
        assert_eq!(
            range(AddrExpr::loop_var(0) * 8 + AddrExpr::lane(), 8, (1, 1), &[5]),
            Some((0, 39))
        );
    }

    #[test]
    fn data_dependent_is_unknown() {
        assert_eq!(range(AddrExpr::reg(0), 32, (1, 1), &[]), None);
    }

    #[test]
    fn non_affine_is_unknown() {
        assert_eq!(range(AddrExpr::lane() * AddrExpr::lane(), 32, (1, 1), &[]), None);
    }

    #[test]
    fn zero_trip_loop_never_executes() {
        assert_eq!(range(AddrExpr::lane(), 32, (1, 1), &[0]), None);
    }

    #[test]
    fn masked_range_shrinks_to_active_lanes() {
        let addr = CompiledAddr::compile(AddrExpr::lane() + 16);
        // Full warp: [16, 47].  Masked to lanes 0..16: [16, 31].
        assert_eq!(touched_range(&addr, 32, (1, 1), &[]), Some((16, 47)));
        assert_eq!(masked_touched_range(&addr, 0xFFFF, 32, (1, 1), &[]), Some((16, 31)));
        // Single-lane mask.
        assert_eq!(masked_touched_range(&addr, 1 << 5, 32, (1, 1), &[]), Some((21, 21)));
        // Empty mask: never executes.
        assert_eq!(masked_touched_range(&addr, 0, 32, (1, 1), &[]), None);
        // Negative stride flips the lane span.
        let rev = CompiledAddr::compile(AddrExpr::c(10) - AddrExpr::lane());
        assert_eq!(masked_touched_range(&rev, 0b1100, 16, (1, 1), &[]), Some((7, 8)));
    }

    #[test]
    fn unreferenced_deep_loops_ignored() {
        // Address uses only lane; enclosing loops with coef 0 don't move it.
        assert_eq!(range(AddrExpr::lane(), 4, (2, 1), &[3, 7]), Some((0, 3)));
    }
}
