//! Exact global-memory coalescing analysis — the model's I/O metric `qᵢ`.
//!
//! The model: "if `Cᵢ` requests words within the same memory block,
//! instructions coalesce and complete as a single transaction.  If
//! requested words are in `l` separate memory blocks, `l` separate
//! transactions occur."
//!
//! For a static affine address `base + cB·block + Σ c_d·loop_d + cL·lane`
//! the per-instance transaction count depends on the warp-folded base
//! **only through its residue mod `b`** (shifting all lane addresses by a
//! whole number of blocks shifts every block index equally).  So instead
//! of enumerating every `(block, iteration)` instance — there are millions
//! in the paper's sweeps — we:
//!
//! 1. build the histogram of folded-base residues over all instances by
//!    convolving per-dimension residue histograms (each computed in
//!    `O(b)` using the cyclic structure of `coef·idx mod b`), and
//! 2. weight each residue by its per-warp transaction count, obtained by
//!    one `O(b)` monotone scan over lanes.
//!
//! Total cost: `O(dims·b²)` independent of `k` and trip counts, and
//! **exact** — property tests check it against brute-force enumeration.
//!
//! Masked accesses (inside divergent regions) are counted with all lanes
//! active: a deliberate, documented over-approximation matching how the
//! paper's hand analyses count their kernels.  Data-dependent addresses
//! (register operands) cannot be resolved statically; they are bounded by
//! the worst case of `b` transactions per instance and flagged inexact.

use atgpu_ir::affine::CompiledAddr;

/// Result of analysing one access site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteTxns {
    /// Transactions contributed to `qᵢ` by this site across all thread
    /// blocks and loop iterations.
    pub txns: u64,
    /// Whether the count is exact (static affine address) or a
    /// conservative upper bound (data-dependent or non-affine address).
    pub exact: bool,
}

/// Greatest common divisor.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Number of distinct memory blocks touched by addresses
/// `{base + stride·lane : lane ∈ [0, lanes)}` with block size `b`.
/// Depends on `base` only through `base mod b` (callers exploit this).
///
/// The implementation is the shared shape-classifier primitive in
/// [`atgpu_ir::affine::lane_span_blocks`], which the simulator's micro-op
/// compiler uses to build its per-residue transaction tables — analyser
/// and simulator count transactions with the same code.
pub fn lane_block_count(base: i64, stride: i64, lanes: u64, b: u64) -> u64 {
    atgpu_ir::affine::lane_span_blocks(base, stride, lanes, b)
}

/// Histogram over residues mod `b` of `{coef·idx mod b : idx ∈ [0, count)}`.
/// `O(b)` via the cycle structure: residues repeat with period
/// `b / gcd(coef mod b, b)`.
pub fn residue_histogram(count: u64, coef: i64, b: u64) -> Vec<u64> {
    let bu = b as usize;
    let mut h = vec![0u64; bu];
    if count == 0 {
        return h;
    }
    let step = coef.rem_euclid(b as i64) as u64;
    let g = gcd(step, b).max(1);
    let period = if step == 0 { 1 } else { b / g };
    let full = count / period;
    let rem = count % period;
    let mut r = 0u64;
    for i in 0..period {
        h[r as usize] += full + u64::from(i < rem);
        r = (r + step) % b;
    }
    h
}

/// Convolution of two residue histograms: `out[(i + j) mod b] +=
/// h1[i]·h2[j]`.
pub fn convolve_mod(h1: &[u64], h2: &[u64], b: u64) -> Vec<u64> {
    let bu = b as usize;
    let mut out = vec![0u64; bu];
    for (i, &x) in h1.iter().enumerate() {
        if x == 0 {
            continue;
        }
        for (j, &y) in h2.iter().enumerate() {
            if y == 0 {
                continue;
            }
            out[(i + j) % bu] += x * y;
        }
    }
    out
}

/// Transactions for one global access site.
///
/// * `addr` — the buffer-relative per-lane offset;
/// * `buf_base` — the buffer's absolute base address (from
///   [`atgpu_ir::Program::buffer_layout`]);
/// * `grid` — the launch grid `(gx, gy)`, `k = gx·gy` thread blocks;
/// * `loop_counts` — trip counts of the loops enclosing the site,
///   outermost first (absolute depth `d` matches `AffineAddr::loops[d]`);
/// * `b` — lanes per warp = words per memory block.
pub fn site_transactions(
    addr: &CompiledAddr,
    buf_base: u64,
    grid: (u64, u64),
    loop_counts: &[u32],
    b: u64,
) -> SiteTxns {
    let blocks = grid.0 * grid.1;
    let instances: u64 = loop_counts.iter().map(|&c| u64::from(c)).product::<u64>() * blocks;
    if instances == 0 {
        return SiteTxns { txns: 0, exact: true };
    }
    match addr.as_affine() {
        Some(a) if a.is_static() => {
            // Histogram of folded-base residues over (block × loops).
            let abs_base = a.base + buf_base as i64;
            let mut hist = vec![0u64; b as usize];
            hist[abs_base.rem_euclid(b as i64) as usize] = 1;
            hist = convolve_mod(&hist, &residue_histogram(grid.0, a.block, b), b);
            hist = convolve_mod(&hist, &residue_histogram(grid.1, a.block_y, b), b);
            for (d, &count) in loop_counts.iter().enumerate() {
                let coef = a.loops.get(d).copied().unwrap_or(0);
                hist = convolve_mod(&hist, &residue_histogram(u64::from(count), coef, b), b);
            }
            let mut txns = 0u64;
            for (r, &weight) in hist.iter().enumerate() {
                if weight > 0 {
                    txns += weight * lane_block_count(r as i64, a.lane, b, b);
                }
            }
            SiteTxns { txns, exact: true }
        }
        // Data-dependent or non-affine: each lane may hit its own block.
        _ => SiteTxns { txns: instances * b.min(b), exact: false },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_ir::AddrExpr;

    /// Brute-force reference: enumerate every (block, iterations, lane).
    fn brute_force(
        addr: &CompiledAddr,
        buf_base: u64,
        grid: (u64, u64),
        loop_counts: &[u32],
        b: u64,
    ) -> u64 {
        fn rec(
            addr: &CompiledAddr,
            buf_base: u64,
            block: (i64, i64),
            counts: &[u32],
            iters: &mut Vec<u32>,
            b: u64,
        ) -> u64 {
            if let Some((&c, rest)) = counts.split_first() {
                let mut total = 0;
                for i in 0..c {
                    iters.push(i);
                    total += rec(addr, buf_base, block, rest, iters, b);
                    iters.pop();
                }
                total
            } else {
                let mut blocks_touched: Vec<i64> = (0..b)
                    .map(|lane| {
                        let mut rr = |_: u8| panic!("static only");
                        let off = addr.eval(lane as i64, block, iters, &mut rr);
                        (off + buf_base as i64).div_euclid(b as i64)
                    })
                    .collect();
                blocks_touched.sort_unstable();
                blocks_touched.dedup();
                blocks_touched.len() as u64
            }
        }
        let mut total = 0;
        for by in 0..grid.1 {
            for bx in 0..grid.0 {
                total +=
                    rec(addr, buf_base, (bx as i64, by as i64), loop_counts, &mut Vec::new(), b);
            }
        }
        total
    }

    fn check(expr: AddrExpr, buf_base: u64, grid: (u64, u64), loop_counts: &[u32], b: u64) {
        let addr = CompiledAddr::compile(expr);
        let fast = site_transactions(&addr, buf_base, grid, loop_counts, b);
        let slow = brute_force(&addr, buf_base, grid, loop_counts, b);
        assert!(fast.exact);
        assert_eq!(fast.txns, slow, "mismatch for {addr:?}");
    }

    #[test]
    fn perfectly_coalesced_unit_stride() {
        // a[i·b + j]: one transaction per block.
        let e = AddrExpr::block() * 32 + AddrExpr::lane();
        check(e, 0, (10, 1), &[], 32);
        let addr = CompiledAddr::compile(AddrExpr::block() * 32 + AddrExpr::lane());
        assert_eq!(site_transactions(&addr, 0, (10, 1), &[], 32).txns, 10);
    }

    #[test]
    fn stride_two_doubles_transactions() {
        // a[2(i·b + j)]: every warp spans two blocks.
        let e = (AddrExpr::block() * 32 + AddrExpr::lane()) * 2;
        let addr = CompiledAddr::compile(e.clone());
        assert_eq!(site_transactions(&addr, 0, (8, 1), &[], 32).txns, 16);
        check(e, 0, (8, 1), &[], 32);
    }

    #[test]
    fn broadcast_single_block() {
        // a[i]: all lanes read the same word.
        let e = AddrExpr::block();
        let addr = CompiledAddr::compile(e.clone());
        assert_eq!(site_transactions(&addr, 0, (100, 1), &[], 32).txns, 100);
        check(e, 0, (100, 1), &[], 32);
    }

    #[test]
    fn misaligned_base_splits_warp() {
        // a[i·b + j + 1]: every warp straddles two blocks.
        let e = AddrExpr::block() * 32 + AddrExpr::lane() + 1;
        let addr = CompiledAddr::compile(e.clone());
        assert_eq!(site_transactions(&addr, 0, (4, 1), &[], 32).txns, 8);
        check(e, 0, (4, 1), &[], 32);
    }

    #[test]
    fn buffer_base_alignment_matters() {
        let e = AddrExpr::block() * 32 + AddrExpr::lane();
        // Aligned base: 1 txn/block; misaligned base (17): 2 txn/block.
        let addr = CompiledAddr::compile(e.clone());
        assert_eq!(site_transactions(&addr, 64, (4, 1), &[], 32).txns, 4);
        assert_eq!(site_transactions(&addr, 17, (4, 1), &[], 32).txns, 8);
        check(e, 17, (4, 1), &[], 32);
    }

    #[test]
    fn loop_iterations_multiply() {
        // Same access repeated in a loop of 5: 5x the transactions.
        let e = AddrExpr::block() * 32 + AddrExpr::lane();
        let addr = CompiledAddr::compile(e.clone());
        assert_eq!(site_transactions(&addr, 0, (4, 1), &[5], 32).txns, 20);
        check(e, 0, (4, 1), &[5], 32);
    }

    #[test]
    fn loop_var_in_address() {
        // a[t0·b + j] over t0 in 0..6, one block: 6 coalesced txns.
        let e = AddrExpr::loop_var(0) * 32 + AddrExpr::lane();
        let addr = CompiledAddr::compile(e.clone());
        assert_eq!(site_transactions(&addr, 0, (1, 1), &[6], 32).txns, 6);
        check(e, 0, (1, 1), &[6], 32);
    }

    #[test]
    fn matmul_row_access_pattern() {
        // A-tile row load: a[(i/T)·b·n + row·n + t0·b + j] style; exercise a
        // mixed pattern with loop strides that are not multiples of b.
        let n = 40i64;
        let e = AddrExpr::block() * n + AddrExpr::loop_var(0) * 8 + AddrExpr::lane();
        check(e, 0, (6, 1), &[5], 8);
    }

    #[test]
    fn reduction_strided_gather() {
        // a[j·s] for stride s = 4: lanes span s/… blocks.
        let e = AddrExpr::lane() * 4 + AddrExpr::block() * 128;
        check(e, 0, (7, 1), &[], 32);
    }

    #[test]
    fn negative_stride_supported() {
        let e = AddrExpr::c(1000) - AddrExpr::lane();
        check(e, 0, (3, 1), &[2], 32);
    }

    #[test]
    fn zero_trip_loop_contributes_nothing() {
        let e = AddrExpr::lane();
        let addr = CompiledAddr::compile(e);
        assert_eq!(site_transactions(&addr, 0, (4, 1), &[0], 32).txns, 0);
    }

    #[test]
    fn data_dependent_address_is_worst_case_inexact() {
        let addr = CompiledAddr::compile(AddrExpr::reg(0));
        let r = site_transactions(&addr, 0, (4, 1), &[], 32);
        assert!(!r.exact);
        assert_eq!(r.txns, 4 * 32);
    }

    #[test]
    fn non_affine_address_is_worst_case_inexact() {
        let addr = CompiledAddr::compile(AddrExpr::lane() * AddrExpr::lane());
        let r = site_transactions(&addr, 0, (2, 1), &[3], 32);
        assert!(!r.exact);
        assert_eq!(r.txns, 2 * 3 * 32);
    }

    #[test]
    fn lane_block_count_basics() {
        assert_eq!(lane_block_count(0, 1, 32, 32), 1);
        assert_eq!(lane_block_count(1, 1, 32, 32), 2);
        assert_eq!(lane_block_count(0, 0, 32, 32), 1);
        assert_eq!(lane_block_count(0, 32, 32, 32), 32);
        assert_eq!(lane_block_count(0, 2, 32, 32), 2);
        assert_eq!(lane_block_count(0, 1, 0, 32), 0);
    }

    #[test]
    fn residue_histogram_total_is_count() {
        for (count, coef, b) in [(10u64, 3i64, 32u64), (7, -5, 8), (100, 0, 16), (5, 32, 32)] {
            let h = residue_histogram(count, coef, b);
            assert_eq!(h.iter().sum::<u64>(), count, "coef={coef}");
        }
    }

    #[test]
    fn residue_histogram_matches_enumeration() {
        for coef in [-7i64, -1, 0, 1, 2, 5, 8, 15, 16, 33] {
            let b = 16u64;
            let count = 23u64;
            let fast = residue_histogram(count, coef, b);
            let mut slow = vec![0u64; b as usize];
            for idx in 0..count {
                slow[(coef * idx as i64).rem_euclid(b as i64) as usize] += 1;
            }
            assert_eq!(fast, slow, "coef={coef}");
        }
    }

    #[test]
    fn convolve_preserves_mass() {
        let h1 = residue_histogram(9, 3, 8);
        let h2 = residue_histogram(4, 5, 8);
        let out = convolve_mod(&h1, &h2, 8);
        assert_eq!(out.iter().sum::<u64>(), 36);
    }
}
