//! Analyser errors.

use atgpu_ir::IrError;
use atgpu_model::ModelError;
use std::fmt;

/// Errors raised during static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The program failed IR validation.
    Ir(IrError),
    /// The program violates a machine limit.
    Model(ModelError),
    /// The program addresses several devices; the single-device analyser
    /// cannot price it faithfully.
    MultiDevice {
        /// What makes the program multi-device.
        reason: String,
    },
    /// A shared-memory access can touch addresses outside the kernel's
    /// declared shared allocation.
    SharedOutOfRange {
        /// Kernel name.
        kernel: String,
        /// Lowest address the access can touch.
        min: i64,
        /// Highest address the access can touch.
        max: i64,
        /// Declared shared words.
        declared: u64,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Ir(e) => write!(f, "IR error: {e}"),
            AnalyzeError::Model(e) => write!(f, "model error: {e}"),
            AnalyzeError::MultiDevice { reason } => write!(
                f,
                "multi-device program ({reason}); analyse per-device shards and price them \
                 with `atgpu_model::cost::cluster_cost` instead"
            ),
            AnalyzeError::SharedOutOfRange { kernel, min, max, declared } => write!(
                f,
                "kernel `{kernel}`: shared access range [{min}, {max}] exceeds the declared \
                 {declared} words"
            ),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<IrError> for AnalyzeError {
    fn from(e: IrError) -> Self {
        AnalyzeError::Ir(e)
    }
}

impl From<ModelError> for AnalyzeError {
    fn from(e: ModelError) -> Self {
        AnalyzeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_ir_error() {
        let e: AnalyzeError = IrError::EmptyProgram.into();
        assert!(e.to_string().contains("no rounds"));
    }

    #[test]
    fn shared_range_message() {
        let e =
            AnalyzeError::SharedOutOfRange { kernel: "k".into(), min: -1, max: 40, declared: 32 };
        let s = e.to_string();
        assert!(s.contains("[-1, 40]") && s.contains("32"));
    }
}
