//! The top-level analysis driver: IR program → ATGPU model metrics.

use crate::bankconflict::{site_conflict_degree, BankConflictReport};
use crate::coalesce::site_transactions;
use crate::error::AnalyzeError;
use crate::opcount::kernel_time_ops;
use crate::space::{masked_touched_range, touched_range};
use atgpu_ir::affine::CompiledAddr;
use atgpu_ir::{validate, HostStep, Instr, Kernel, Program};
use atgpu_model::{
    AlgoMetrics, AtgpuMachine, PeerTraffic, RoundMetrics, RoundSchedule, StreamItem,
};

/// A global or shared memory access site found in a kernel body, together
/// with the trip counts of its enclosing loops (outermost first).
#[derive(Debug, Clone)]
pub struct AccessSite {
    /// The per-lane address (buffer-relative for global sites).
    pub addr: CompiledAddr,
    /// For global sites, the buffer accessed.
    pub buf: Option<atgpu_ir::DBuf>,
    /// Trip counts of enclosing loops.
    pub loop_counts: Vec<u32>,
    /// Compile-time active-lane mask (the masked-affine shape, shared
    /// with the simulator through [`atgpu_ir::lanemask`]): `Some(m)` when
    /// every enclosing divergence arm folds to a constant mask, `None`
    /// under data-, block- or loop-dependent predicates.
    pub lane_mask: Option<u64>,
}

/// All access sites of a kernel, split by memory space.
#[derive(Debug, Clone, Default)]
pub struct KernelSites {
    /// Global-memory accesses (`⇐` instructions).
    pub global: Vec<AccessSite>,
    /// Shared-memory accesses (`←` and the shared side of `⇐`).
    pub shared: Vec<AccessSite>,
}

/// Collects every memory access site in a kernel body, threading the
/// compile-time lane-mask context (`b` is the machine's lanes per warp).
pub fn collect_sites(kernel: &Kernel, b: u64) -> KernelSites {
    struct Walker {
        lanes: atgpu_ir::LaneValues,
        counts: Vec<u32>,
        mask: Option<u64>,
        out: KernelSites,
    }
    impl Walker {
        fn site(&self, addr: &CompiledAddr, buf: Option<atgpu_ir::DBuf>) -> AccessSite {
            AccessSite {
                addr: addr.clone(),
                buf,
                loop_counts: self.counts.clone(),
                lane_mask: self.mask,
            }
        }
        fn walk(&mut self, body: &[Instr]) {
            for i in body {
                let full = self.mask == Some(self.lanes.full_mask());
                match i {
                    Instr::Alu { op, dst, a, b } => self.lanes.record_alu(*op, *dst, *a, *b, full),
                    Instr::Mov { dst, src } => self.lanes.record_mov(*dst, *src, full),
                    Instr::GlbToShr { shared, global } => {
                        self.out.global.push(self.site(&global.offset, Some(global.buf)));
                        self.out.shared.push(self.site(shared, None));
                    }
                    Instr::ShrToGlb { global, shared } => {
                        self.out.global.push(self.site(&global.offset, Some(global.buf)));
                        self.out.shared.push(self.site(shared, None));
                    }
                    Instr::LdShr { dst, shared } => {
                        self.out.shared.push(self.site(shared, None));
                        self.lanes.kill(*dst);
                    }
                    Instr::StShr { shared, .. } => {
                        self.out.shared.push(self.site(shared, None));
                    }
                    Instr::Pred { pred, then_body, else_body } => {
                        let parent = self.mask;
                        let folded = self.lanes.pred_mask(pred);
                        let (then_mask, else_mask) = self.lanes.arm_masks(parent, folded);
                        self.mask = then_mask;
                        self.walk(then_body);
                        self.mask = else_mask;
                        self.walk(else_body);
                        self.mask = parent;
                    }
                    Instr::Repeat { count, body } => {
                        self.counts.push(*count);
                        self.lanes.kill_written(body);
                        self.walk(body);
                        self.counts.pop();
                    }
                    Instr::Sync => {}
                }
            }
        }
    }
    let lanes = atgpu_ir::LaneValues::new(b.clamp(1, 64) as u32);
    let full = lanes.full_mask();
    let mut w = Walker { lanes, counts: Vec::new(), mask: Some(full), out: KernelSites::default() };
    w.walk(&kernel.body);
    w.out
}

/// Per-kernel analysis results.
#[derive(Debug, Clone)]
pub struct KernelAnalysis {
    /// Kernel name.
    pub name: String,
    /// Thread blocks `k` (grid product).
    pub blocks: u64,
    /// The model's time metric `t` for this launch.
    pub time_ops: u64,
    /// The model's I/O metric `q`: global memory block transactions.
    pub io_txns: u64,
    /// Whether `io_txns` is exact (all addresses statically analysable).
    pub io_exact: bool,
    /// Declared shared words per block, `m`.
    pub shared_words: u64,
    /// Bank-conflict report for the conflict-free assumption check.
    pub bank: BankConflictReport,
}

/// Per-round analysis: the kernel view plus the model metrics row.
#[derive(Debug, Clone)]
pub struct RoundAnalysis {
    /// The round's model metrics.
    pub metrics: RoundMetrics,
    /// Kernel analysis, if the round launches one.
    pub kernel: Option<KernelAnalysis>,
}

/// Whole-program analysis: everything the cost functions and the
/// experiment harness need.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Per-round results.
    pub rounds: Vec<RoundAnalysis>,
    /// Padded device-memory footprint (the global space metric).
    pub global_words: u64,
    /// Whether every I/O count is exact.
    pub io_exact: bool,
    /// Worst bank-conflict report across all kernels.
    pub conflict_free: bool,
}

impl ProgramAnalysis {
    /// The metrics table consumed by [`atgpu_model::cost`].
    pub fn metrics(&self) -> AlgoMetrics {
        AlgoMetrics::new(self.rounds.iter().map(|r| r.metrics).collect())
    }
}

/// Analyses a validated program on `machine`, deriving every model metric
/// the paper defines (§III).
pub fn analyze_program(
    p: &Program,
    machine: &AtgpuMachine,
) -> Result<ProgramAnalysis, AnalyzeError> {
    validate::validate_program(p)?;
    // The analyser models one device behind one host link.  A program
    // addressing several devices (device-targeted transfers, sharded
    // launches, peer copies) would be silently mispriced here — its
    // per-device host links run concurrently and its peer traffic has no
    // RoundMetrics slot — so reject it rather than mis-predict; the
    // cluster cost function covers that case.
    if p.max_device() > 0 {
        return Err(AnalyzeError::MultiDevice {
            reason: format!("steps address devices up to {}", p.max_device()),
        });
    }
    if let Some(round) = p.rounds.iter().find(|r| r.peer().1 > 0) {
        return Err(AnalyzeError::MultiDevice {
            reason: format!("a round makes {} peer transfer(s)", round.peer().1),
        });
    }
    let (bases, global_words) = p.buffer_layout(machine.b);
    if global_words > machine.g {
        return Err(atgpu_model::ModelError::GlobalMemoryExceeded {
            required: global_words,
            available: machine.g,
        }
        .into());
    }

    let mut rounds = Vec::with_capacity(p.rounds.len());
    let mut io_exact = true;
    let mut conflict_free = true;

    for round in &p.rounds {
        let (inward_words, inward_txns) = round.inward();
        let (outward_words, outward_txns) = round.outward();

        let kernel_analysis = match round.kernel() {
            Some(k) => Some(analyze_kernel(k, &bases, machine)?),
            None => None,
        };

        let (time, io, shared, blocks) = kernel_analysis
            .as_ref()
            .map(|ka| (ka.time_ops, ka.io_txns, ka.shared_words, ka.blocks))
            .unwrap_or((0, 0, 0, 0));

        if let Some(ka) = &kernel_analysis {
            io_exact &= ka.io_exact;
            conflict_free &= ka.bank.conflict_free;
            if ka.shared_words > machine.m {
                return Err(atgpu_model::ModelError::SharedMemoryExceeded {
                    required: ka.shared_words,
                    available: machine.m,
                }
                .into());
            }
        }

        rounds.push(RoundAnalysis {
            metrics: RoundMetrics {
                time,
                io_blocks: io,
                global_words,
                shared_words: shared,
                inward_words,
                inward_txns,
                outward_words,
                outward_txns,
                blocks_launched: blocks,
            },
            kernel: kernel_analysis,
        });
    }

    Ok(ProgramAnalysis { rounds, global_words, io_exact, conflict_free })
}

/// Derives the per-round [`RoundSchedule`] of a **single-device** program
/// — the stream placement, traffic and syncs that
/// [`atgpu_model::cost::streamed_evaluate`] prices with the same
/// stream-chain scheduler the simulator times rounds with.  Each transfer
/// step becomes one single-transaction item, launches become the kernel
/// item, peer steps are skipped (a single-device program has none that
/// validate anyway).
pub fn stream_schedule(p: &Program) -> Vec<RoundSchedule> {
    stream_schedules(p, 1).into_iter().next().unwrap_or_default()
}

/// Per-device stream schedules of a (possibly multi-device) program,
/// indexed `[device][round]` — the input of
/// [`atgpu_model::cost::cluster_cost_streamed`].  The table covers
/// `max(devices, max_device()+1)` devices so idle devices get empty
/// (serial) schedules of the right round count.
pub fn stream_schedules(p: &Program, devices: u32) -> Vec<Vec<RoundSchedule>> {
    let n = devices.max(p.max_device() + 1).max(1) as usize;
    let mut out: Vec<Vec<RoundSchedule>> = (0..n).map(|_| Vec::new()).collect();
    for round in &p.rounds {
        let mut scheds = vec![RoundSchedule::default(); n];
        for step in &round.steps {
            match step {
                HostStep::TransferIn { words, device, stream, .. } => {
                    scheds[*device as usize].items.push(StreamItem::TransferIn {
                        stream: *stream,
                        txns: 1,
                        words: *words,
                    });
                }
                HostStep::TransferOut { words, device, stream, .. } => {
                    scheds[*device as usize].items.push(StreamItem::TransferOut {
                        stream: *stream,
                        txns: 1,
                        words: *words,
                    });
                }
                HostStep::SyncStream { device, stream } => {
                    scheds[*device as usize].items.push(StreamItem::SyncStream { stream: *stream });
                }
                HostStep::SyncDevice { device } => {
                    scheds[*device as usize].items.push(StreamItem::SyncDevice);
                }
                HostStep::Launch(_) => scheds[0].items.push(StreamItem::Kernel),
                HostStep::LaunchSharded { shards, .. } => {
                    // One kernel item per participating device: that
                    // device's metrics row prices its whole shard set.
                    let mut seen: Vec<u32> = Vec::new();
                    for s in shards {
                        if !seen.contains(&s.device) {
                            seen.push(s.device);
                            scheds[s.device as usize].items.push(StreamItem::Kernel);
                        }
                    }
                }
                // Peer traffic is priced separately by the cluster cost.
                HostStep::TransferPeer { .. } => {}
            }
        }
        for (d, s) in scheds.into_iter().enumerate() {
            out[d].push(s);
        }
    }
    out
}

/// Whole-cluster analysis of a multi-device program: the per-device
/// metrics tables and per-round peer traffic that
/// [`atgpu_model::cost::cluster_cost_streamed`] prices.
#[derive(Debug, Clone)]
pub struct ClusterProgramAnalysis {
    /// Per-device metrics tables, every device covering every round.
    pub per_device: Vec<AlgoMetrics>,
    /// Peer transfers, `peer[round]` listing that round's copies.
    pub peer: Vec<Vec<PeerTraffic>>,
    /// Padded per-replica device-memory footprint.
    pub global_words: u64,
    /// Whether every I/O count is exact — sharded launches whose
    /// transaction count does not divide evenly across shards are
    /// apportioned by rounding and clear this flag.
    pub io_exact: bool,
    /// Whether every kernel is shared-memory bank-conflict free.
    pub conflict_free: bool,
}

/// Per-device attribution of a sharded program's peer traffic onto the
/// planner's unit grid — the measured counterpart of the
/// [`atgpu_model::PeerProfile`] `*_words_per_unit` terms.
///
/// Units are the grid blocks of the program's **widest sharded launch**
/// (the launch the planner apportioned); each [`PeerTraffic`] row is
/// charged to its source device (send side) and destination device
/// (receive side), summed over every round, then spread evenly over the
/// device's units.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PeerAttribution {
    /// Units (blocks of the widest sharded launch) held per device.
    pub units: Vec<u64>,
    /// Directed peer words sent by each device over the whole program.
    pub sent_words: Vec<u64>,
    /// Directed peer words received by each device over the whole program.
    pub recv_words: Vec<u64>,
    /// Peer transactions originated by each device (one per copy —
    /// `TransferEngine::peer` semantics in atgpu-sim).
    pub sent_txns: Vec<u64>,
}

impl PeerAttribution {
    /// Words device `d` sends per held unit, rounded up; 0 for idle
    /// devices.  This is the number a workload's
    /// [`atgpu_model::PeerProfile`] `merge_words_per_unit`/`halo` terms
    /// should reproduce for the plan the program was built with.
    pub fn sent_per_unit(&self, d: usize) -> u64 {
        match self.units.get(d) {
            Some(&u) if u > 0 => self.sent_words[d].div_ceil(u),
            _ => 0,
        }
    }

    /// Words device `d` receives per held unit, rounded up; 0 for idle
    /// devices.
    pub fn recv_per_unit(&self, d: usize) -> u64 {
        match self.units.get(d) {
            Some(&u) if u > 0 => self.recv_words[d].div_ceil(u),
            _ => 0,
        }
    }
}

/// Derives the per-unit peer-word attribution of a sharded program for
/// `devices` devices (see [`PeerAttribution`]).  Programs with no
/// sharded launch attribute every unit to device 0.
pub fn attribute_peer_units(p: &Program, devices: u32) -> PeerAttribution {
    let n = devices.max(p.max_device() + 1).max(1) as usize;
    let mut att = PeerAttribution {
        units: vec![0; n],
        sent_words: vec![0; n],
        recv_words: vec![0; n],
        sent_txns: vec![0; n],
    };
    // The widest sharded launch defines the unit grid.
    let widest = p
        .rounds
        .iter()
        .filter_map(|r| r.kernel().map(|k| (k.blocks(), r.shards())))
        .max_by_key(|&(blocks, _)| blocks);
    match widest {
        Some((_, Some(shards))) => {
            for s in shards {
                att.units[s.device as usize] += s.end.saturating_sub(s.start);
            }
        }
        Some((blocks, None)) => att.units[0] = blocks,
        None => {}
    }
    for round in &p.rounds {
        for step in &round.steps {
            if let HostStep::TransferPeer { src, dst, words, .. } = step {
                att.sent_words[*src as usize] += words;
                att.recv_words[*dst as usize] += words;
                att.sent_txns[*src as usize] += 1;
            }
        }
    }
    att
}

/// Analyses a **multi-device** program for `devices` devices: the
/// cluster-aware counterpart of [`analyze_program`], producing exactly
/// the inputs [`atgpu_model::cost::cluster_cost_streamed`] needs (pair
/// it with [`stream_schedules`] for the overlap-aware prediction).
///
/// Per round and device the analysis attributes:
///
/// * **host traffic** — each device-targeted `TransferIn`/`TransferOut`
///   lands on its own device's metrics row (the single-device analyser
///   would serialize these concurrent links, which is why it rejects
///   multi-device programs);
/// * **kernel work** — a plain `Launch` bills device 0 for the whole
///   grid; a `LaunchSharded` bills each participating device for its
///   shard blocks, with the lockstep time metric `t` unchanged (it is
///   block-invariant) and the transaction metric `q` apportioned by the
///   device's share of the grid;
/// * **peer copies** — collected per round as [`PeerTraffic`] for the
///   peer-link α/β terms.
///
/// Single-device programs analyse identically to [`analyze_program`]
/// (device 0 gets every row), so this is a strict generalisation.
pub fn analyze_cluster_program(
    p: &Program,
    machine: &AtgpuMachine,
    devices: u32,
) -> Result<ClusterProgramAnalysis, AnalyzeError> {
    validate::validate_program(p)?;
    let n = devices.max(p.max_device() + 1).max(1) as usize;
    let (bases, global_words) = p.buffer_layout(machine.b);
    if global_words > machine.g {
        return Err(atgpu_model::ModelError::GlobalMemoryExceeded {
            required: global_words,
            available: machine.g,
        }
        .into());
    }

    let mut per_device: Vec<Vec<RoundMetrics>> = vec![Vec::with_capacity(p.rounds.len()); n];
    let mut peer: Vec<Vec<PeerTraffic>> = Vec::with_capacity(p.rounds.len());
    let mut io_exact = true;
    let mut conflict_free = true;

    for round in &p.rounds {
        let mut rows = vec![RoundMetrics { global_words, ..RoundMetrics::default() }; n];
        let mut round_peer = Vec::new();
        for step in &round.steps {
            match step {
                HostStep::TransferIn { words, device, .. } => {
                    let r = &mut rows[*device as usize];
                    r.inward_words += words;
                    r.inward_txns += 1;
                }
                HostStep::TransferOut { words, device, .. } => {
                    let r = &mut rows[*device as usize];
                    r.outward_words += words;
                    r.outward_txns += 1;
                }
                HostStep::TransferPeer { src, dst, words, .. } => {
                    round_peer.push(PeerTraffic { src: *src, dst: *dst, words: *words, txns: 1 });
                }
                HostStep::Launch(k) => {
                    let ka = analyze_kernel(k, &bases, machine)?;
                    check_kernel_fits(&ka, machine)?;
                    io_exact &= ka.io_exact;
                    conflict_free &= ka.bank.conflict_free;
                    let r = &mut rows[0];
                    r.time += ka.time_ops;
                    r.io_blocks += ka.io_txns;
                    r.shared_words = r.shared_words.max(ka.shared_words);
                    r.blocks_launched += ka.blocks;
                }
                HostStep::LaunchSharded { kernel, shards } => {
                    let ka = analyze_kernel(kernel, &bases, machine)?;
                    check_kernel_fits(&ka, machine)?;
                    io_exact &= ka.io_exact;
                    conflict_free &= ka.bank.conflict_free;
                    let total = ka.blocks.max(1);
                    let mut blocks_of = vec![0u64; n];
                    for s in shards {
                        blocks_of[s.device as usize] += s.end.saturating_sub(s.start);
                    }
                    for (d, &blocks) in blocks_of.iter().enumerate() {
                        if blocks == 0 {
                            continue;
                        }
                        // `q` splits with the blocks; `t` is lockstep
                        // per-block work and does not.
                        let scaled = ka.io_txns as u128 * blocks as u128;
                        io_exact &= scaled.is_multiple_of(total as u128);
                        let q = ((scaled as f64) / total as f64).round() as u64;
                        let r = &mut rows[d];
                        r.time += ka.time_ops;
                        r.io_blocks += q;
                        r.shared_words = r.shared_words.max(ka.shared_words);
                        r.blocks_launched += blocks;
                    }
                }
                HostStep::SyncStream { .. } | HostStep::SyncDevice { .. } => {}
            }
        }
        for (d, row) in rows.into_iter().enumerate() {
            per_device[d].push(row);
        }
        peer.push(round_peer);
    }

    Ok(ClusterProgramAnalysis {
        per_device: per_device.into_iter().map(AlgoMetrics::new).collect(),
        peer,
        global_words,
        io_exact,
        conflict_free,
    })
}

fn check_kernel_fits(ka: &KernelAnalysis, machine: &AtgpuMachine) -> Result<(), AnalyzeError> {
    if ka.shared_words > machine.m {
        return Err(atgpu_model::ModelError::SharedMemoryExceeded {
            required: ka.shared_words,
            available: machine.m,
        }
        .into());
    }
    Ok(())
}

fn analyze_kernel(
    k: &Kernel,
    bases: &[u64],
    machine: &AtgpuMachine,
) -> Result<KernelAnalysis, AnalyzeError> {
    let b = machine.b;
    let sites = collect_sites(k, b);

    let mut io_txns = 0u64;
    let mut io_exact = true;
    for site in &sites.global {
        let buf = site.buf.expect("global site has a buffer");
        let base = bases.get(buf.0 as usize).copied().unwrap_or(0);
        let r = site_transactions(&site.addr, base, k.grid, &site.loop_counts, b);
        io_txns += r.txns;
        io_exact &= r.exact;
    }

    let mut bank = BankConflictReport::empty();
    for site in &sites.shared {
        bank.add_site(site_conflict_degree(&site.addr, b), b);
        // Static shared accesses must stay inside the declared footprint.
        // With a compile-time lane mask the bound covers exactly the
        // active lanes (a reduction step reading `_s[j + s]` under
        // `j < s` stays in bounds even though lane b−1 would not).
        let range = match site.lane_mask {
            Some(m) => masked_touched_range(&site.addr, m, b, (1, 1), &site.loop_counts),
            None => touched_range(&site.addr, b, (1, 1), &site.loop_counts),
        };
        if let Some((lo, hi)) = range {
            if lo < 0 || hi >= k.shared_words as i64 {
                return Err(AnalyzeError::SharedOutOfRange {
                    kernel: k.name.clone(),
                    min: lo,
                    max: hi,
                    declared: k.shared_words,
                });
            }
        }
    }

    Ok(KernelAnalysis {
        name: k.name.clone(),
        blocks: k.blocks(),
        time_ops: kernel_time_ops(k),
        io_txns,
        io_exact,
        shared_words: k.shared_words,
        bank,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, ProgramBuilder};

    fn machine() -> AtgpuMachine {
        AtgpuMachine::new(1 << 16, 32, 12_288, 1 << 22).unwrap()
    }

    /// The paper's vector-addition program at size n (multiple of b).
    fn vecadd(n: u64) -> Program {
        let b = 32i64;
        let k = n / 32;
        let mut pb = ProgramBuilder::new("vecadd");
        let ha = pb.host_input("A", n);
        let hb = pb.host_input("B", n);
        let hc = pb.host_output("C", n);
        let da = pb.device_alloc("a", n);
        let db = pb.device_alloc("b", n);
        let dc = pb.device_alloc("c", n);
        let mut kb = KernelBuilder::new("vecadd_kernel", k, 3 * 32);
        let g = AddrExpr::block() * b + AddrExpr::lane();
        kb.glb_to_shr(AddrExpr::lane(), da, g.clone());
        kb.glb_to_shr(AddrExpr::lane() + b, db, g.clone());
        kb.ld_shr(0, AddrExpr::lane());
        kb.ld_shr(1, AddrExpr::lane() + b);
        kb.alu(AluOp::Add, 2, Operand::Reg(0), Operand::Reg(1));
        kb.st_shr(AddrExpr::lane() + 2 * b, Operand::Reg(2));
        kb.shr_to_glb(dc, g, AddrExpr::lane() + 2 * b);
        pb.begin_round();
        pb.transfer_in(ha, da, n);
        pb.transfer_in(hb, db, n);
        pb.launch(kb.build());
        pb.transfer_out(dc, hc, n);
        pb.build().unwrap()
    }

    #[test]
    fn vecadd_metrics_match_paper_closed_form() {
        let n = 32 * 100;
        let k = 100;
        let a = analyze_program(&vecadd(n), &machine()).unwrap();
        assert_eq!(a.rounds.len(), 1);
        let m = &a.rounds[0].metrics;
        // q = 3k: one coalesced transaction per buffer per block.
        assert_eq!(m.io_blocks, 3 * k);
        // I = 2n in 2 transactions; O = n in 1 transaction.
        assert_eq!(m.inward_words, 2 * n);
        assert_eq!(m.inward_txns, 2);
        assert_eq!(m.outward_words, n);
        assert_eq!(m.outward_txns, 1);
        // t = 7 lockstep ops in our IR encoding (the paper counts 13 for
        // its CUDA kernel; both are O(1) constants).
        assert_eq!(m.time, 7);
        // Global space = 3n (all buffers block-aligned already).
        assert_eq!(m.global_words, 3 * n);
        // Shared space = 3b.
        assert_eq!(m.shared_words, 96);
        assert_eq!(m.blocks_launched, k);
        assert!(a.io_exact);
        assert!(a.conflict_free);
    }

    #[test]
    fn metrics_feed_cost_function() {
        let a = analyze_program(&vecadd(3200), &machine()).unwrap();
        let params = atgpu_model::CostParams::unit();
        let spec = atgpu_model::GpuSpec::gtx650_like();
        let cost = atgpu_model::cost::atgpu_cost(&params, &machine(), &spec, &a.metrics()).unwrap();
        assert!(cost > 0.0);
    }

    #[test]
    fn global_limit_enforced_with_padding() {
        let m = AtgpuMachine::new(64, 32, 12_288, 95).unwrap();
        // One 33-word buffer pads to 64; a second 32-word buffer brings the
        // padded total to 96 > G = 95.
        let mut pb = ProgramBuilder::new("p");
        let _ = pb.device_alloc("a", 33);
        let _ = pb.device_alloc("b", 32);
        pb.begin_round();
        pb.launch(KernelBuilder::new("k", 1, 0).build());
        let p = pb.build().unwrap();
        assert!(matches!(
            analyze_program(&p, &m),
            Err(AnalyzeError::Model(atgpu_model::ModelError::GlobalMemoryExceeded {
                required: 96,
                available: 95
            }))
        ));
    }

    #[test]
    fn shared_limit_enforced() {
        let m = AtgpuMachine::new(64, 32, 64, 1 << 20).unwrap();
        let mut pb = ProgramBuilder::new("p");
        pb.begin_round();
        pb.launch(KernelBuilder::new("k", 1, 65).build());
        let p = pb.build().unwrap();
        assert!(matches!(
            analyze_program(&p, &m),
            Err(AnalyzeError::Model(atgpu_model::ModelError::SharedMemoryExceeded { .. }))
        ));
    }

    #[test]
    fn shared_out_of_range_detected() {
        let mut pb = ProgramBuilder::new("p");
        pb.begin_round();
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.st_shr(AddrExpr::lane() + 1, Operand::Imm(0)); // touches 32
        pb.launch(kb.build());
        let p = pb.build().unwrap();
        assert!(matches!(
            analyze_program(&p, &machine()),
            Err(AnalyzeError::SharedOutOfRange { max: 32, .. })
        ));
    }

    #[test]
    fn collect_sites_finds_nested_accesses() {
        let mut kb = KernelBuilder::new("k", 4, 64);
        kb.repeat(3, |kb| {
            kb.glb_to_shr(AddrExpr::lane(), atgpu_ir::DBuf(0), AddrExpr::lane());
            kb.when(atgpu_ir::PredExpr::Lt(Operand::Lane, Operand::Imm(4)), |kb| {
                kb.ld_shr(0, AddrExpr::lane());
            });
        });
        let sites = collect_sites(&kb.build(), 32);
        assert_eq!(sites.global.len(), 1);
        assert_eq!(sites.shared.len(), 2); // shared half of ⇐ plus LdShr
        assert_eq!(sites.global[0].loop_counts, vec![3]);
    }

    #[test]
    fn round_without_kernel_has_zero_compute() {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 32);
        let _o = pb.host_output("B", 32);
        let d = pb.device_alloc("a", 32);
        pb.begin_round();
        pb.transfer_in(h, d, 32);
        let p = pb.build().unwrap();
        let a = analyze_program(&p, &machine()).unwrap();
        assert_eq!(a.rounds[0].metrics.time, 0);
        assert_eq!(a.rounds[0].metrics.io_blocks, 0);
        assert_eq!(a.rounds[0].metrics.inward_words, 32);
        assert!(a.rounds[0].kernel.is_none());
    }

    #[test]
    fn multi_device_programs_rejected() {
        // The single-device analyser would serialize concurrent host
        // links and drop peer traffic: refuse rather than mis-predict.
        let mut pb = ProgramBuilder::new("md");
        let ha = pb.host_input("A", 64);
        let da = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in_to(1, ha, 0, da, 0, 64);
        let p = pb.build().unwrap();
        assert!(matches!(analyze_program(&p, &machine()), Err(AnalyzeError::MultiDevice { .. })));

        let mut pb = ProgramBuilder::new("peer");
        let ha = pb.host_input("A", 64);
        let da = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in(ha, da, 64);
        pb.transfer_peer(0, 1, da, 0, 0, 64);
        let p = pb.build().unwrap();
        assert!(matches!(analyze_program(&p, &machine()), Err(AnalyzeError::MultiDevice { .. })));
    }

    #[test]
    fn uncoalesced_writes_counted() {
        // Each block writes one word at c[i]: k blocks -> k transactions,
        // but they all share memory blocks: block i writes word i, so 32
        // consecutive blocks' single-word writes are *separate* instruction
        // executions and cannot coalesce across blocks: q = k.
        let k = 64;
        let mut pb = ProgramBuilder::new("p");
        let dc = pb.device_alloc("c", k);
        pb.begin_round();
        let mut kb = KernelBuilder::new("k", k, 32);
        kb.when(atgpu_ir::PredExpr::Eq(Operand::Lane, Operand::Imm(0)), |kb| {
            kb.shr_to_glb(dc, AddrExpr::block(), AddrExpr::c(0));
        });
        pb.launch(kb.build());
        let p = pb.build().unwrap();
        let a = analyze_program(&p, &machine()).unwrap();
        // Masked global access counted with all lanes active (documented
        // over-approximation): all lanes hit word `i` -> 1 block each.
        assert_eq!(a.rounds[0].metrics.io_blocks, k);
    }

    #[test]
    fn stream_schedule_mirrors_host_steps() {
        let mut pb = ProgramBuilder::new("dbuf");
        let h = pb.host_input("A", 64);
        let o = pb.host_output("C", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in_streamed(0, 1, h, 0, d, 0, 48);
        pb.sync_stream(0, 1);
        pb.launch(KernelBuilder::new("k", 1, 0).build());
        pb.transfer_out_streamed(0, 0, d, 0, o, 0, 16);
        let p = pb.build().unwrap();
        let sched = stream_schedule(&p);
        assert_eq!(sched.len(), 1);
        assert_eq!(
            sched[0].items,
            vec![
                StreamItem::TransferIn { stream: 1, txns: 1, words: 48 },
                StreamItem::SyncStream { stream: 1 },
                StreamItem::Kernel,
                StreamItem::TransferOut { stream: 0, txns: 1, words: 16 },
            ]
        );
        // The streamed cost of this schedule, with everything serial,
        // matches the plain GPU-cost (sync after the only other stream).
        let a = analyze_program(&p, &machine()).unwrap();
        let spec = atgpu_model::GpuSpec::gtx650_like();
        let serial = atgpu_model::cost::evaluate(
            atgpu_model::cost::CostModel::GpuCost,
            &spec.derived_cost_params(),
            &machine(),
            &spec,
            &a.metrics(),
        )
        .unwrap();
        let streamed = atgpu_model::cost::streamed_evaluate(
            &spec.derived_cost_params(),
            &machine(),
            &spec,
            &a.metrics(),
            &sched,
        )
        .unwrap();
        assert!((streamed.total_ms - serial.total()).abs() < 1e-12);
    }

    /// `Program::destreamed()` must strip every `SyncStream`/`SyncDevice`
    /// step along with the stream tags, so its schedule prices **exactly**
    /// the plain serial Expression-(2) cost under `streamed_evaluate` —
    /// a leftover sync would survive as a `StreamItem` and could only
    /// coincidentally match the serial sum.
    #[test]
    fn destreamed_program_prices_exactly_serial() {
        // A genuinely overlapped program: upload on stream 1 under the
        // kernel, explicit syncs, split downloads on two streams.
        let mut pb = ProgramBuilder::new("overlapped");
        let h = pb.host_input("A", 64);
        let o = pb.host_output("C", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in_streamed(0, 1, h, 0, d, 0, 48);
        let mut kb = KernelBuilder::new("k", 64, 0);
        kb.repeat(64, |kb| {
            kb.mov(0, atgpu_ir::Operand::Imm(1));
        });
        pb.launch(kb.build());
        pb.sync_stream(0, 1);
        pb.transfer_out_streamed(0, 2, d, 0, o, 0, 16);
        pb.begin_round();
        pb.sync_device(0);
        pb.transfer_out_streamed(0, 1, d, 16, o, 16, 16);
        let p = pb.build().unwrap();
        assert!(p.uses_streams());

        let d = p.destreamed();
        // No sync step survives de-streaming, in any round.
        assert!(d.rounds.iter().flat_map(|r| r.steps.iter()).all(|s| !matches!(
            s,
            atgpu_ir::HostStep::SyncStream { .. } | atgpu_ir::HostStep::SyncDevice { .. }
        )));
        assert!(!d.uses_streams());
        let sched = stream_schedule(&d);
        assert!(sched
            .iter()
            .flat_map(|r| r.items.iter())
            .all(|i| !matches!(i, StreamItem::SyncStream { .. } | StreamItem::SyncDevice)));

        // Bit-exact serial pricing: the de-streamed schedule through the
        // stream scheduler equals the plain serial cost function.
        let spec = atgpu_model::GpuSpec::gtx650_like();
        let metrics = analyze_program(&d, &machine()).unwrap().metrics();
        let serial = atgpu_model::cost::evaluate(
            atgpu_model::cost::CostModel::GpuCost,
            &spec.derived_cost_params(),
            &machine(),
            &spec,
            &metrics,
        )
        .unwrap();
        let streamed = atgpu_model::cost::streamed_evaluate(
            &spec.derived_cost_params(),
            &machine(),
            &spec,
            &metrics,
            &sched,
        )
        .unwrap();
        assert_eq!(streamed.total_ms, serial.total(), "de-streamed cost must be exactly serial");

        // And the original streamed form is strictly cheaper (overlap).
        let orig_metrics = analyze_program(&p, &machine()).unwrap().metrics();
        let overlapped = atgpu_model::cost::streamed_evaluate(
            &spec.derived_cost_params(),
            &machine(),
            &spec,
            &orig_metrics,
            &stream_schedule(&p),
        )
        .unwrap();
        assert!(overlapped.total_ms < serial.total());
    }

    /// Every path that could hand an out-of-range stream id to the
    /// shared `StreamTimeline` (whose clamp would silently alias streams
    /// 8, 9, … onto one chain) is closed:
    ///
    /// 1. the IR validator's bound and the model's timeline bound are
    ///    the same constant;
    /// 2. every *validated* program carries only in-range ids, so the
    ///    schedules [`stream_schedule`] derives from it do too;
    /// 3. a forged program is rejected by the validator before this
    ///    module could propagate its ids (and `streamed_evaluate` /
    ///    `cluster_cost_streamed` reject forged *schedules* — pinned in
    ///    atgpu-model's own tests).
    #[test]
    fn stream_bounds_cover_every_schedule_path() {
        assert_eq!(atgpu_ir::MAX_STREAMS, atgpu_model::MAX_STREAMS);

        let build = |stream: u32| {
            let mut pb = ProgramBuilder::new("bounds");
            let h = pb.host_input("A", 64);
            let o = pb.host_output("C", 64);
            let d = pb.device_alloc("a", 64);
            pb.begin_round();
            pb.transfer_in_streamed(0, stream, h, 0, d, 0, 64);
            pb.sync_stream(0, stream);
            pb.transfer_out_streamed(0, stream, d, 0, o, 0, 64);
            pb.build()
        };
        // The top legal id validates; its derived schedule stays bounded.
        let p = build(atgpu_ir::MAX_STREAMS - 1).unwrap();
        for sched in stream_schedules(&p, 2).iter().flatten() {
            for item in &sched.items {
                let stream = match item {
                    StreamItem::TransferIn { stream, .. }
                    | StreamItem::TransferOut { stream, .. }
                    | StreamItem::SyncStream { stream } => *stream,
                    StreamItem::Kernel | StreamItem::SyncDevice => continue,
                };
                assert!(stream < atgpu_model::MAX_STREAMS);
            }
        }
        // One past the bound never builds.
        assert!(build(atgpu_ir::MAX_STREAMS).is_err());

        // A program forged *after* validation is caught by re-validation
        // — the check `analyze_program` runs on entry.
        let mut forged = build(0).unwrap();
        for round in &mut forged.rounds {
            for step in &mut round.steps {
                if let HostStep::TransferIn { stream, .. } = step {
                    *stream = atgpu_ir::MAX_STREAMS + 7;
                }
            }
        }
        assert!(analyze_program(&forged, &machine()).is_err());
    }

    #[test]
    fn cluster_analysis_degenerates_to_single_device() {
        // On a single-device program, device 0's table must equal the
        // single-device analyser's output row for row.
        let p = vecadd(3200);
        let solo = analyze_program(&p, &machine()).unwrap();
        let clu = analyze_cluster_program(&p, &machine(), 1).unwrap();
        assert_eq!(clu.per_device.len(), 1);
        assert_eq!(clu.per_device[0].rounds, solo.metrics().rounds);
        assert!(clu.peer.iter().all(Vec::is_empty));
        assert_eq!(clu.io_exact, solo.io_exact);
        assert_eq!(clu.conflict_free, solo.conflict_free);
    }

    #[test]
    fn cluster_analysis_splits_sharded_launch() {
        // 2 devices: per-device transfers, a 3:1 sharded launch, a peer
        // copy.  Each attribution lands on the right device.
        let n = 32 * 4; // 4 blocks
        let mut pb = ProgramBuilder::new("md");
        let ha = pb.host_input("A", n);
        let hc = pb.host_output("C", n);
        let da = pb.device_alloc("a", n);
        let mut kb = KernelBuilder::new("k", 4, 32);
        kb.glb_to_shr(AddrExpr::lane(), da, AddrExpr::block() * 32 + AddrExpr::lane());
        pb.begin_round();
        pb.transfer_in_to(0, ha, 0, da, 0, n);
        pb.transfer_in_to(1, ha, 0, da, 0, n);
        pb.launch_sharded(
            kb.build(),
            vec![
                atgpu_ir::Shard { device: 0, start: 0, end: 3 },
                atgpu_ir::Shard { device: 1, start: 3, end: 4 },
            ],
        );
        pb.transfer_peer(0, 1, da, 0, 0, 32);
        pb.transfer_out_from(1, da, 0, hc, 0, n);
        let p = pb.build().unwrap();

        let a = analyze_cluster_program(&p, &machine(), 2).unwrap();
        assert_eq!(a.per_device.len(), 2);
        let (d0, d1) = (&a.per_device[0].rounds[0], &a.per_device[1].rounds[0]);
        assert_eq!((d0.inward_words, d0.inward_txns), (n, 1));
        assert_eq!((d1.inward_words, d1.inward_txns), (n, 1));
        assert_eq!((d0.outward_words, d0.outward_txns), (0, 0));
        assert_eq!((d1.outward_words, d1.outward_txns), (n, 1));
        // 4 coalesced transactions split 3:1 with the blocks; the
        // lockstep time metric is block-invariant.
        assert_eq!(d0.blocks_launched, 3);
        assert_eq!(d1.blocks_launched, 1);
        assert_eq!(d0.io_blocks, 3);
        assert_eq!(d1.io_blocks, 1);
        assert_eq!(d0.time, d1.time);
        assert!(a.io_exact);
        assert_eq!(a.peer.len(), 1);
        assert_eq!(a.peer[0], vec![PeerTraffic { src: 0, dst: 1, words: 32, txns: 1 }]);
    }

    #[test]
    fn peer_copy_is_one_transaction_regardless_of_size() {
        // Pin the paper semantics: `TransferEngine::peer` makes exactly
        // one transaction per copy — a 1-word halo cell and a 10k-word
        // merge row both cost one α on their directed link.  The cluster
        // analysis must never split a copy into per-b transactions.
        for words in [1u64, 32, 320, 9984] {
            let mut pb = ProgramBuilder::new("pin");
            let h = pb.host_input("A", 9984);
            let o = pb.host_output("C", 32);
            let d = pb.device_alloc("a", 9984);
            pb.begin_round();
            pb.transfer_in_to(1, h, 0, d, 0, words);
            pb.transfer_peer(1, 0, d, 0, 0, words);
            pb.transfer_out_from(0, d, 0, o, 0, 32);
            let p = pb.build().unwrap();
            let a = analyze_cluster_program(&p, &machine(), 2).unwrap();
            assert_eq!(a.peer[0], vec![PeerTraffic { src: 1, dst: 0, words, txns: 1 }]);
        }
    }

    #[test]
    fn peer_attribution_recovers_merge_profile() {
        // A histogram-shaped program: 8 blocks split 3/3/2 across three
        // devices, each non-owner device merging one 32-word partial row
        // per block to device 0.  The derived per-unit send rate must
        // equal the 32 words/unit a PeerProfile would declare.
        let b = 32u64;
        let k = 8u64;
        let mut pb = ProgramBuilder::new("merge");
        let h = pb.host_input("A", k * b);
        let o = pb.host_output("C", b);
        let d = pb.device_alloc("part", k * b);
        let shards = vec![
            atgpu_ir::Shard { device: 0, start: 0, end: 3 },
            atgpu_ir::Shard { device: 1, start: 3, end: 6 },
            atgpu_ir::Shard { device: 2, start: 6, end: 8 },
        ];
        let mut kb = KernelBuilder::new("k", k, b);
        kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::block() * b as i64 + AddrExpr::lane());
        pb.begin_round();
        for s in &shards {
            pb.transfer_in_to(s.device, h, s.start * b, d, s.start * b, (s.end - s.start) * b);
        }
        pb.launch_sharded(kb.build(), shards.clone());
        pb.begin_round();
        for s in &shards[1..] {
            pb.transfer_peer(s.device, 0, d, s.start * b, s.start * b, (s.end - s.start) * b);
        }
        pb.transfer_out_from(0, d, 0, o, 0, b);
        let p = pb.build().unwrap();

        let att = attribute_peer_units(&p, 3);
        assert_eq!(att.units, vec![3, 3, 2]);
        assert_eq!(att.sent_words, vec![0, 3 * b, 2 * b]);
        assert_eq!(att.recv_words, vec![5 * b, 0, 0]);
        assert_eq!(att.sent_txns, vec![0, 1, 1]);
        assert_eq!(att.sent_per_unit(0), 0);
        assert_eq!(att.sent_per_unit(1), b);
        assert_eq!(att.sent_per_unit(2), b);
        assert_eq!(att.recv_per_unit(0), (5 * b).div_ceil(3));
    }

    #[test]
    fn cluster_analysis_prices_through_streamed_cost() {
        // The analysis output plugs straight into the streamed cluster
        // cost function alongside the derived schedules.
        let n = 32 * 8;
        let mut pb = ProgramBuilder::new("md");
        let ha = pb.host_input("A", n);
        let hc = pb.host_output("C", n);
        let da = pb.device_alloc("a", n);
        let mut kb = KernelBuilder::new("k", 8, 32);
        kb.glb_to_shr(AddrExpr::lane(), da, AddrExpr::block() * 32 + AddrExpr::lane());
        pb.begin_round();
        pb.transfer_in_to(0, ha, 0, da, 0, n / 2);
        pb.transfer_in_to(1, ha, n / 2, da, n / 2, n / 2);
        pb.launch_sharded(
            kb.build(),
            vec![
                atgpu_ir::Shard { device: 0, start: 0, end: 4 },
                atgpu_ir::Shard { device: 1, start: 4, end: 8 },
            ],
        );
        pb.transfer_out_from(0, da, 0, hc, 0, n / 2);
        let p = pb.build().unwrap();

        let machine = machine();
        let a = analyze_cluster_program(&p, &machine, 2).unwrap();
        let scheds = stream_schedules(&p, 2);
        let spec = atgpu_model::ClusterSpec::homogeneous(2, atgpu_model::GpuSpec::gtx650_like());
        let cost = atgpu_model::cost::cluster_cost_streamed(
            &spec,
            &machine,
            &a.per_device,
            &scheds,
            &a.peer,
        )
        .unwrap();
        assert!(cost.total_ms > 0.0);
        assert_eq!(cost.per_device.len(), 2);
    }

    #[test]
    fn stream_schedules_split_by_device() {
        let mut pb = ProgramBuilder::new("multi");
        let h = pb.host_input("A", 64);
        let o = pb.host_output("C", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in_to(0, h, 0, d, 0, 32);
        pb.transfer_in_streamed(1, 2, h, 32, d, 32, 32);
        let k = KernelBuilder::new("k", 4, 0).build();
        pb.launch_sharded(
            k,
            vec![
                atgpu_ir::Shard { device: 0, start: 0, end: 1 },
                atgpu_ir::Shard { device: 1, start: 1, end: 3 },
                atgpu_ir::Shard { device: 1, start: 3, end: 4 },
            ],
        );
        pb.transfer_out_from(1, d, 0, o, 0, 8);
        let p = pb.build().unwrap();
        let scheds = stream_schedules(&p, 3);
        assert_eq!(scheds.len(), 3);
        assert_eq!(scheds[0][0].items.len(), 2); // in + kernel
                                                 // Device 1: one in, ONE kernel item despite two shards, one out.
        assert_eq!(
            scheds[1][0].items.iter().filter(|i| matches!(i, StreamItem::Kernel)).count(),
            1
        );
        assert_eq!(scheds[1][0].items.len(), 3);
        // The idle third device still has a (serial) round entry.
        assert!(scheds[2][0].items.is_empty());
    }
}
