//! The multi-device layer: `N` simulated GPUs, each with its own global
//! memory and links, running **sharded** kernel launches.
//!
//! ## Execution model
//!
//! Every device holds a *replica* of the program's device-buffer layout
//! (the single-device layout from [`atgpu_ir::Program::buffer_layout`],
//! instantiated once per device).  The host distributes data with
//! device-targeted `TransferIn` steps, devices exchange data over
//! directed peer links (`TransferPeer`), and a `LaunchSharded` step runs
//! disjoint block ranges of one grid on different devices.
//!
//! ## Determinism
//!
//! A sharded launch reuses the deferred-write machinery of
//! [`ExecMode::Parallel`]: each shard executes against its device's
//! pre-launch memory snapshot and logs its global writes; afterwards the
//! logs are merged **in thread-block order** by
//! [`crate::device::apply_write_log`].  Because block indices are
//! globally unique across shards, the merged result is bit-identical to
//! a single-device launch of the same grid — regardless of the device
//! count, the shard boundaries, or how MP simulation threads interleave.
//! The differential suite in `tests/cluster_differential.rs` pins this
//! down over randomized kernels and shard plans.
//!
//! ## Timing
//!
//! Devices work concurrently, so a round's observed time is
//! `σ + max_d(T_in(d) + T_kernel(d) + T_peer(d) + T_out(d))` — the
//! slowest device's critical path.  Peer-transfer time is charged to
//! both endpoints (source reads while destination writes).  The
//! analytical counterpart is [`atgpu_model::cost::cluster_cost`].

use crate::device::{apply_write_log, check_log_races, Device, DeviceStats, KernelStats};
use crate::driver::HostData;
use crate::error::SimError;
use crate::fault::{FaultRuntime, LinkEdge};
use crate::gmem::GlobalMemory;
use crate::trace::{SpanKind, Tracer};
use crate::warp::WriteRec;
use crate::xfer::TransferEngine;
use crate::{EngineSel, ExecMode, SimConfig};
use atgpu_ir::{HostStep, Kernel, Program, Shard};
use atgpu_model::{plan, AtgpuMachine, ClusterSpec, ShardProfile, StreamResource, StreamTimeline};
use std::collections::HashMap;

/// A simulated multi-GPU system.
///
/// A `Cluster` is **shareable**: every run method takes `&self`, and the
/// only mutable state a run touches on the cluster itself is each
/// device's interior-locked [`KernelCache`](crate::KernelCache) and
/// watchdog — everything else (memory replicas, host data, transfer
/// engines, fault state, tracers) is allocated per call.  A long-lived
/// service can therefore hold one `Cluster` and serve many concurrent
/// [`run_cluster_program_on`] calls from different threads; results stay
/// bit-identical to solo runs because the shared kernel cache never
/// changes results (pinned by the cache differential suite) and all
/// cross-request state is per-call.
#[derive(Debug)]
pub struct Cluster {
    devices: Vec<Device>,
    spec: ClusterSpec,
    machine: AtgpuMachine,
}

/// One shard's execution record within a sharded launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Device that ran the shard.
    pub device: u32,
    /// Block range `[start, end)`.
    pub range: (u64, u64),
    /// The shard's kernel statistics (cycles, transactions, …).
    pub stats: KernelStats,
}

/// Splits `blocks` thread blocks into `n` contiguous shards, one per
/// device, as evenly as possible (the first `blocks mod n` shards get one
/// extra block).  Devices that would receive zero blocks are omitted.
pub fn even_shards(blocks: u64, n: u32) -> Vec<Shard> {
    let n = u64::from(n.max(1));
    let base = blocks / n;
    let extra = blocks % n;
    let mut out = Vec::new();
    let mut cursor = 0u64;
    for d in 0..n {
        let len = base + u64::from(d < extra);
        if len == 0 {
            continue;
        }
        out.push(Shard { device: d as u32, start: cursor, end: cursor + len });
        cursor += len;
    }
    out
}

/// Splits `blocks` into contiguous shards sized proportionally to each
/// device's compute throughput (`k′ · clock`), so a mixed-generation
/// cluster finishes its waves together instead of idling the fast devices
/// behind the slowest one.  Apportionment is largest-remainder: every
/// device gets `⌊blocks·wᵈ/W⌋` blocks, and the leftovers go to the
/// largest fractional remainders (ties to the lower device index).
/// Devices that end up with zero blocks are omitted.
pub fn weighted_shards(blocks: u64, spec: &ClusterSpec) -> Vec<Shard> {
    let weights: Vec<f64> =
        spec.devices.iter().map(|d| d.k_prime as f64 * d.clock_cycles_per_ms).collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || blocks == 0 {
        return even_shards(blocks, spec.n_devices() as u32);
    }
    let quotas: Vec<f64> = weights.iter().map(|w| blocks as f64 * w / total).collect();
    let mut lens: Vec<u64> = quotas.iter().map(|q| (q.floor() as u64).min(blocks)).collect();
    let assigned: u64 = lens.iter().sum();
    if assigned > blocks {
        // Floating-point edge (quotas rounding up across an integer,
        // only reachable at astronomic block counts): the
        // largest-remainder invariant Σ⌊qᵈ⌋ ≤ blocks no longer holds, so
        // apportioning is meaningless — fall back to the even split
        // rather than underflow `blocks - assigned` below.
        return even_shards(blocks, spec.n_devices() as u32);
    }
    // Hand the remaining blocks to the largest fractional remainders, so
    // a zero-quota device is only drafted in when every faster device
    // already took its share — on tiny grids the leftovers land on the
    // fastest devices and the slow device's empty shard is dropped.
    let mut order: Vec<usize> = (0..lens.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = quotas[a] - quotas[a].floor();
        let rb = quotas[b] - quotas[b].floor();
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    // Largest-remainder invariant: Σ⌊qᵈ⌋ > blocks − n_devices, so fewer
    // leftovers than devices.  Checked, not assumed — the old
    // `order[i % len]` wrap would have silently double-assigned to the
    // highest-remainder device if it ever broke.  Like the symmetric
    // `assigned > blocks` edge above, the only way here is FP rounding
    // (every quota epsilon below its exact integer), where apportioning
    // is meaningless — fall back to the even split rather than panic
    // mid-simulation.
    let leftovers = (blocks - assigned) as usize;
    if leftovers >= order.len() {
        return even_shards(blocks, spec.n_devices() as u32);
    }
    for &d in order.iter().take(leftovers) {
        lens[d] += 1;
    }
    counts_to_shards(&lens)
}

/// Converts per-device contiguous block counts into a shard plan:
/// device `d` gets the block range after devices `0..d`, zero-count
/// devices are omitted (a zero-block shard would be rejected by
/// `LaunchSharded` validation as a non-partition).
pub fn counts_to_shards(counts: &[u64]) -> Vec<Shard> {
    let mut out = Vec::new();
    let mut cursor = 0u64;
    for (d, &len) in counts.iter().enumerate() {
        if len == 0 {
            continue;
        }
        out.push(Shard { device: d as u32, start: cursor, end: cursor + len });
        cursor += len;
    }
    out
}

/// Per-device block counts of a shard plan (inverse of
/// [`counts_to_shards`] for contiguous plans) — the shape
/// [`atgpu_model::plan::plan_cost`] prices.
pub fn shard_counts(shards: &[Shard], n_devices: usize) -> Vec<u64> {
    let mut counts = vec![0u64; n_devices];
    for s in shards {
        counts[s.device as usize] += s.blocks();
    }
    counts
}

/// The **cost-driven planner**: apportions `units` planning units
/// (thread blocks, or coarser units like matmul tile rows — see
/// [`ShardProfile::blocks_per_unit`]) by *pricing* candidate plans
/// through the analytic machinery and keeping the cheapest.
///
/// Candidates: the even split, the compute-weighted split
/// ([`weighted_shards`]'s `k′·clock` apportionment) and the min–max
/// transfer-balanced waterfill ([`atgpu_model::plan::balanced_units`]).
/// **Peer-aware profiles** ([`ShardProfile::has_peer`]) additionally get
/// one *drop-device* candidate per device: the waterfill over the
/// sub-cluster with that device idled — on an asymmetric peer matrix the
/// cheapest plan for a halo or merge workload is often to hand a device
/// with expensive peer edges *nothing* and eat the extra compute on the
/// rest, a shape no all-devices waterfill can reach.
///
/// Each candidate is priced with [`atgpu_model::plan::plan_cost`] —
/// per-device host-link `α`/`β`, wave factors, the max-over-devices
/// round shape **and the candidate's own peer traffic** (halo rows only
/// between devices that actually hold units) all in the objective — so
/// the modeled time of the returned plan is never above the even or
/// compute-weighted plans'.  Ties keep the earlier candidate (even
/// before weighted before balanced before drop-device); candidates that
/// fail to price (e.g. blocks that cannot fit the machine) are skipped,
/// and if none price the even split is returned.
pub fn planned_shards(
    units: u64,
    spec: &ClusterSpec,
    machine: &AtgpuMachine,
    profile: &ShardProfile,
) -> Vec<Shard> {
    let n = spec.n_devices();
    let mut candidates = vec![
        shard_counts(&even_shards(units, n as u32), n),
        shard_counts(&weighted_shards(units, spec), n),
        plan::balanced_units(spec, machine, profile, units),
    ];
    if profile.has_peer() && n > 1 {
        let peer = profile.peer;
        let has_merge = peer.merge_words_per_unit > 0
            || peer.merge_words_fixed > 0
            || peer.scatter_words_per_unit > 0;
        for skip in 0..n {
            // The merge owner must stay addressable; every other device
            // is a candidate to idle.
            if has_merge && skip == peer.owner as usize {
                continue;
            }
            let mut alive = vec![true; n];
            alive[skip] = false;
            let (sub, idx) = surviving_subspec(spec, &alive);
            let mut sub_profile = profile.clone();
            if has_merge {
                let Some(sub_owner) = idx.iter().position(|&o| o == peer.owner as usize) else {
                    continue;
                };
                sub_profile.peer.owner = sub_owner as u32;
            }
            let sub_counts = plan::balanced_units(&sub, machine, &sub_profile, units);
            let mut counts = vec![0u64; n];
            for (si, &orig) in idx.iter().enumerate() {
                counts[orig] = sub_counts[si];
            }
            candidates.push(counts);
        }
    }
    let mut best: Option<(usize, f64)> = None;
    for (i, counts) in candidates.iter().enumerate() {
        let Ok(cost) = plan::plan_cost(spec, machine, profile, counts) else { continue };
        if best.map(|(_, b)| cost < b - 1e-12).unwrap_or(true) {
            best = Some((i, cost));
        }
    }
    match best {
        Some((i, _)) => counts_to_shards(&candidates[i]),
        None => even_shards(units, n as u32),
    }
}

/// The default (zero-workload-knowledge) shard planner:
///
/// * identical devices **and** identical host links → [`even_shards`];
/// * devices differ, links equal → [`weighted_shards`] (`k′·clock`):
///   with equal links the transfer terms cannot discriminate between
///   devices for *any* workload, so compute throughput is the only
///   signal — the pre-existing heuristic, preserved for compute-bound
///   kernels launched through this entry point;
/// * host links differ (whether or not the devices do) → the
///   cost-driven [`planned_shards`] with a transfer-aware
///   [`ShardProfile::streaming`] default on a GTX 650-like machine.
///
/// Device equality alone is not homogeneity: a pair of identical GPUs
/// behind a fast and a slow PCIe link is heterogeneous for every
/// transfer-bound kernel, and handing it an even split was precisely the
/// transfer blind spot the paper's cost model exists to expose.  The
/// streaming default is an approximation (it assumes a vecadd-shaped,
/// `b = 32` workload); builders that know their real per-block traffic
/// should call [`planned_shards`] with their own profile instead.
pub fn plan_shards(blocks: u64, spec: &ClusterSpec) -> Vec<Shard> {
    let devices_eq = spec.devices.windows(2).all(|w| w[0] == w[1]);
    let links_eq = spec.host_links.windows(2).all(|w| w[0] == w[1]);
    if links_eq {
        if devices_eq {
            even_shards(blocks, spec.n_devices() as u32)
        } else {
            weighted_shards(blocks, spec)
        }
    } else {
        planned_shards(blocks, spec, &AtgpuMachine::gtx650_like(), &ShardProfile::streaming(32))
    }
}

impl Cluster {
    /// Builds a cluster of devices sharing one abstract machine shape.
    pub fn new(machine: AtgpuMachine, spec: ClusterSpec) -> Result<Self, SimError> {
        spec.validate().map_err(|e| SimError::InvalidCluster { reason: e.to_string() })?;
        let devices =
            spec.devices.iter().map(|d| Device::new(machine, *d)).collect::<Result<Vec<_>, _>>()?;
        Ok(Self { devices, spec, machine })
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// The cluster specification.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The abstract machine shape every device shares.
    pub fn machine(&self) -> &AtgpuMachine {
        &self.machine
    }

    /// Applies a [`SimConfig`]'s device-global settings (kernel-cache
    /// enable/capacity, watchdog budget) to every device.  Run methods do
    /// **not** call this: on a shared cluster the owner configures once,
    /// and per-request configs cannot flip device-global state out from
    /// under concurrent requests.
    pub fn configure_devices(&self, config: &SimConfig) {
        for d in &self.devices {
            d.configure_cache(config.cache, config.cache_capacity);
            d.configure_watchdog(config.watchdog_cycles);
        }
    }

    /// One device.
    pub fn device(&self, i: u32) -> Option<&Device> {
        self.devices.get(i as usize)
    }

    fn device_checked(&self, i: u32) -> Result<&Device, SimError> {
        self.devices
            .get(i as usize)
            .ok_or(SimError::NoSuchDevice { device: i, devices: self.devices.len() })
    }

    /// Runs one kernel launch sharded across the cluster against a single
    /// canonical memory image: every shard reads the pre-launch `gmem`
    /// snapshot (each device's replica is identical at launch time), and
    /// all shards' deferred writes are merged back into `gmem` in block
    /// order.
    ///
    /// This is the launch-level API the differential tests exercise: for
    /// any shard plan partitioning the grid, the final `gmem` is
    /// bit-identical to a single-device [`Device::run_kernel_with`] of
    /// the same kernel.
    pub fn run_sharded_kernel(
        &self,
        kernel: &Kernel,
        gmem: &mut GlobalMemory,
        shards: &[Shard],
        mode: ExecMode,
        detect_races: bool,
        engine: EngineSel,
    ) -> Result<Vec<ShardStats>, SimError> {
        let mut merged: Vec<WriteRec> = Vec::new();
        let mut out = Vec::with_capacity(shards.len());
        for shard in shards {
            let device = self.device_checked(shard.device)?;
            let stats = device.run_shard(
                kernel,
                gmem,
                mode,
                engine,
                (shard.start, shard.end),
                &mut merged,
            )?;
            out.push(ShardStats { device: shard.device, range: (shard.start, shard.end), stats });
        }
        apply_write_log(kernel, gmem, merged, detect_races)?;
        Ok(out)
    }
}

/// Observed times of one device during one round, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceRoundObservation {
    /// Host→device transfer time over this device's host link (serial
    /// component sum over all streams).
    pub xfer_in_ms: f64,
    /// Kernel execution time of this device's shard(s).
    pub kernel_ms: f64,
    /// Device→host transfer time over this device's host link (serial
    /// component sum over all streams).
    pub xfer_out_ms: f64,
    /// Peer-transfer time on links touching this device (charged to both
    /// endpoints).
    pub peer_ms: f64,
    /// Stream-aware critical path through the device's round: the max
    /// over per-stream chains between sync points.  Equals the component
    /// sum when everything runs on stream 0.
    pub stream_ms: f64,
    /// Kernel statistics of this device's shard(s); zero when the device
    /// ran no blocks this round.
    pub kernel_stats: KernelStats,
    /// Transfer attempts on this device's links this round that were
    /// dropped and re-run ([`crate::fault`]); 0 without a fault plan.
    pub retries: u64,
    /// Exponential-backoff wait time accumulated this round, already
    /// included in the transfer times and the stream critical path.
    pub backoff_ms: f64,
}

impl DeviceRoundObservation {
    /// The device's critical path through the round (stream-aware).
    pub fn path_ms(&self) -> f64 {
        self.stream_ms
    }

    /// The device's serial (no-overlap) path — the component sum.
    pub fn serial_path_ms(&self) -> f64 {
        self.xfer_in_ms + self.kernel_ms + self.peer_ms + self.xfer_out_ms
    }
}

/// Observed times of one round across the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRoundObservation {
    /// Per-device observations.
    pub devices: Vec<DeviceRoundObservation>,
    /// Cluster-wide synchronisation overhead.
    pub sync_ms: f64,
}

impl ClusterRoundObservation {
    /// The round's wall-clock time: `σ + max_d path_d`.
    pub fn total_ms(&self) -> f64 {
        self.sync_ms + self.devices.iter().map(DeviceRoundObservation::path_ms).fold(0.0, f64::max)
    }
}

/// The result of simulating a program on a cluster.
#[derive(Debug, Clone)]
pub struct ClusterSimReport {
    /// Per-round observations.
    pub rounds: Vec<ClusterRoundObservation>,
    /// Final host buffers (outputs filled in).
    pub host: HostData,
    /// Per-device counters after the run (kernel-cache hits/misses),
    /// indexed by device — observability only.
    pub device_stats: Vec<DeviceStats>,
    /// Recorded timeline spans when [`SimConfig::trace`] was on
    /// (`None` otherwise); export with
    /// [`crate::trace::cluster_report_trace_json`].
    pub trace: Option<crate::trace::Trace>,
}

impl ClusterSimReport {
    /// Cluster-wide device counters (per-device stats summed).
    pub fn device_stats_total(&self) -> DeviceStats {
        let mut total = DeviceStats::default();
        for s in &self.device_stats {
            total.merge(s);
        }
        total
    }

    /// Total running time: rounds are serial, devices within a round are
    /// concurrent.
    pub fn total_ms(&self) -> f64 {
        self.rounds.iter().map(ClusterRoundObservation::total_ms).sum()
    }

    /// Slowest-device kernel time, summed over rounds (the cluster's
    /// observed "Kernel" series).
    pub fn kernel_ms(&self) -> f64 {
        self.rounds.iter().map(|r| r.devices.iter().map(|d| d.kernel_ms).fold(0.0, f64::max)).sum()
    }

    /// Per-device slots sized to the **max** across rounds: device
    /// indices are stable identities, so a report whose rounds carry
    /// different device counts (e.g. across a loss boundary) still
    /// attributes every round's times to the right device instead of
    /// panicking or truncating to the first round's width.
    fn device_slots(&self) -> Vec<f64> {
        let n = self.rounds.iter().map(|r| r.devices.len()).max().unwrap_or(0);
        vec![0.0; n]
    }

    /// Per-device transfer time (host link + peer links), summed over
    /// rounds — the per-device transfer cost a sweep reports.
    pub fn transfer_ms_per_device(&self) -> Vec<f64> {
        let mut out = self.device_slots();
        for r in &self.rounds {
            for (d, obs) in r.devices.iter().enumerate() {
                out[d] += obs.xfer_in_ms + obs.peer_ms + obs.xfer_out_ms;
            }
        }
        out
    }

    /// Per-device kernel time, summed over rounds.
    pub fn kernel_ms_per_device(&self) -> Vec<f64> {
        let mut out = self.device_slots();
        for r in &self.rounds {
            for (d, obs) in r.devices.iter().enumerate() {
                out[d] += obs.kernel_ms;
            }
        }
        out
    }

    /// An output buffer's final contents.
    pub fn output(&self, id: atgpu_ir::HBuf) -> &[i64] {
        self.host.buf(id)
    }
}

/// Host CPUs available for shard threads, probed once.  On a single-core
/// host threaded dispatch is pure overhead, so [`crate::SimConfig`]'s
/// default enables it only when this exceeds 1 (an explicit
/// `device_threads: true` always threads).
pub fn host_parallelism() -> usize {
    static P: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *P.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Decorrelates the jitter streams of distinct links deterministically.
fn link_seed(seed: u64, idx: u64) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(idx.wrapping_add(1))
}

/// Disjoint `(&src, &mut dst)` borrows of two cluster memories.
fn two_mems(
    gmems: &mut [GlobalMemory],
    src: usize,
    dst: usize,
) -> (&GlobalMemory, &mut GlobalMemory) {
    debug_assert_ne!(src, dst);
    if src < dst {
        let (a, b) = gmems.split_at_mut(dst);
        (&a[src], &mut b[0])
    } else {
        let (a, b) = gmems.split_at_mut(src);
        (&b[0], &mut a[dst])
    }
}

/// Per-run fault bookkeeping for the cluster driver: liveness, the
/// per-device mutation journals that double as host-side checkpoints,
/// and the recovery counters.  Only constructed when the fault plan is
/// non-empty — a faultless run never journals and never branches here.
struct FaultState {
    rt: FaultRuntime,
    /// Liveness per device (deaths are permanent).
    alive: Vec<bool>,
    /// Per-device journals of every global-memory mutation since the run
    /// started: `(seq, word address, value)`, with `seq` drawn from one
    /// cluster-global counter so "latest write" is well-defined across
    /// devices.  The journal is the checkpoint a dead device is
    /// recovered from — completed rounds are never re-executed.
    journals: Vec<Vec<(u64, u64, i64)>>,
    /// The cluster-global mutation sequence counter.
    seq: u64,
    /// Recoveries absorbed per device (one per death it survived).
    recoveries: Vec<u64>,
}

impl FaultState {
    fn new(rt: FaultRuntime, n: usize) -> Self {
        Self {
            rt,
            alive: vec![true; n],
            journals: vec![Vec::new(); n],
            seq: 0,
            recoveries: vec![0; n],
        }
    }

    /// Journals one word written on device `d`.
    fn journal_word(&mut self, d: usize, addr: u64, val: i64) {
        self.seq += 1;
        self.journals[d].push((self.seq, addr, val));
    }

    /// Journals a contiguous write of `vals` at `addr` on device `d`.
    fn journal_words(&mut self, d: usize, addr: u64, vals: &[i64]) {
        for (i, &v) in vals.iter().enumerate() {
            self.journal_word(d, addr + i as u64, v);
        }
    }

    /// The lowest-index survivor — the device redirected outputs and
    /// orphaned peer sources are served from.
    fn heir(&self) -> usize {
        self.alive.iter().position(|&a| a).unwrap_or(0)
    }

    /// The surviving devices, in index order.
    fn survivors(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&i| self.alive[i]).collect()
    }
}

/// The sub-cluster of surviving devices, plus the mapping from
/// sub-cluster index back to real device index — what the cost-driven
/// planner re-apportions a dead device's shards over.
fn surviving_subspec(spec: &ClusterSpec, alive: &[bool]) -> (ClusterSpec, Vec<usize>) {
    let idx: Vec<usize> = (0..alive.len()).filter(|&i| alive[i]).collect();
    let sub = ClusterSpec {
        devices: idx.iter().map(|&i| spec.devices[i]).collect(),
        host_links: idx.iter().map(|&i| spec.host_links[i]).collect(),
        peer_links: idx
            .iter()
            .map(|&i| idx.iter().map(|&j| spec.peer_links[i][j]).collect())
            .collect(),
        sync_ms: spec.sync_ms,
    };
    (sub, idx)
}

/// Handles every death scheduled at the start of `round`: marks the
/// device dead, errors if nobody survives, and replays its journal onto
/// each survivor — last-write-wins on the global sequence number, so a
/// survivor keeps its own later writes and gains exactly the words where
/// the dead device held the latest value.  Every survivor's memory is
/// restored and its [`DeviceStats::recoveries`] counter bumped, but the
/// one-time replay *transfer* is priced as a single inward transaction
/// (`α + β·words`) on the **heir's** host link alone — the replay lands
/// in exactly one device's round columns, never double-charged across
/// survivors.
fn process_deaths(
    fs: &mut FaultState,
    round: usize,
    gmems: &mut [GlobalMemory],
    host_xfer: &mut [TransferEngine],
    devs: &mut [DeviceRoundObservation],
    timelines: &mut [StreamTimeline],
    tracer: &mut Option<Tracer>,
) -> Result<(), SimError> {
    let n = fs.alive.len();
    for d in 0..n {
        if !fs.alive[d] || fs.rt.down_at(d as u32) != Some(round) {
            continue;
        }
        fs.alive[d] = false;
        if !fs.alive.iter().any(|&a| a) {
            return Err(SimError::DeviceLost { device: d as u32, round });
        }
        let dead_journal = std::mem::take(&mut fs.journals[d]);
        // addr → (latest seq, value) over the dead device's mutations.
        let mut dead_last: HashMap<u64, (u64, i64)> = HashMap::new();
        for &(seq, addr, val) in &dead_journal {
            let e = dead_last.entry(addr).or_insert((seq, val));
            if seq > e.0 {
                *e = (seq, val);
            }
        }
        for s in 0..n {
            if !fs.alive[s] {
                continue;
            }
            let mut own_last: HashMap<u64, u64> = HashMap::new();
            for &(seq, addr, _) in &fs.journals[s] {
                let e = own_last.entry(addr).or_insert(seq);
                if seq > *e {
                    *e = seq;
                }
            }
            // Restore exactly the words where the dead device held the
            // globally latest value.  Distinct addresses commute, so the
            // map's iteration order cannot matter.
            let mut applied = 0u64;
            let heap = gmems[s].words_mut();
            for (&addr, &(dseq, val)) in &dead_last {
                if own_last.get(&addr).is_none_or(|&os| dseq > os) {
                    heap[addr as usize] = val;
                    applied += 1;
                }
            }
            if s == fs.heir() {
                let t = host_xfer[s].replay_in(applied);
                devs[s].xfer_in_ms += t;
                let (t0, t1) = timelines[s].advance_spanned(0, StreamResource::HostToDevice, t);
                if let Some(tr) = tracer.as_mut() {
                    let pred = host_xfer[s].link().cost_ms(1, applied);
                    tr.record(
                        round,
                        s as u32,
                        StreamResource::HostToDevice,
                        0,
                        SpanKind::Replay,
                        applied,
                        pred,
                        t0,
                        t1,
                    );
                }
            }
            fs.recoveries[s] += 1;
            // The survivor now answers for those words; fold the dead
            // journal in so a later death of *this* device replays them
            // too (redundant entries are harmless under max-seq merge).
            fs.journals[s].extend_from_slice(&dead_journal);
        }
    }
    Ok(())
}

/// Runs one (possibly sharded) launch on the cluster: each shard
/// executes against its own device's replica and logs its writes; races
/// are checked across the whole launch, then every device merges its own
/// writes in block order.
///
/// With [`SimConfig::device_threads`] set (the default) every shard is
/// simulated on its own scoped OS thread — shard runs only *read* their
/// device's pre-launch snapshot and log into private vectors, so the
/// launch is embarrassingly parallel on the host.  Results, statistics
/// and timing are bit-identical to sequential dispatch: shard outcomes
/// are folded in shard-plan order and the logs merge through the shared
/// block-order [`apply_write_log`].
#[allow(clippy::too_many_arguments)]
fn run_sharded_launch(
    cluster: &Cluster,
    cluster_spec: &ClusterSpec,
    machine: &AtgpuMachine,
    config: &SimConfig,
    engine: EngineSel,
    kernel: &Kernel,
    shards: &[Shard],
    round: usize,
    gmems: &mut [GlobalMemory],
    devs: &mut [DeviceRoundObservation],
    timelines: &mut [StreamTimeline],
    fault: &mut Option<FaultState>,
    tracer: &mut Option<Tracer>,
) -> Result<(), SimError> {
    // Under an active fault plan, a dead device's shards are
    // re-apportioned over the survivors through the cost-driven planner;
    // the takeover shards' writes are applied to *every* alive device so
    // redirected outputs (and later recoveries) can be served from any
    // survivor.  Block indices stay globally unique, so the block-order
    // merge keeps the result bit-identical to the fault-free plan.
    let mut plan: Vec<Shard> = Vec::with_capacity(shards.len());
    let mut is_recovery: Vec<bool> = Vec::with_capacity(shards.len());
    if let Some(f) = fault.as_ref() {
        for sh in shards {
            if f.alive[sh.device as usize] {
                plan.push(*sh);
                is_recovery.push(false);
            } else {
                let (sub, idx) = surviving_subspec(cluster_spec, &f.alive);
                let profile = ShardProfile::streaming(machine.b);
                for rs in planned_shards(sh.blocks(), &sub, machine, &profile) {
                    plan.push(Shard {
                        device: idx[rs.device as usize] as u32,
                        start: sh.start + rs.start,
                        end: sh.start + rs.end,
                    });
                    is_recovery.push(true);
                }
            }
        }
    } else {
        plan.extend_from_slice(shards);
        is_recovery.resize(shards.len(), false);
    }
    let shards: &[Shard] = &plan;

    // Resolve devices up front so an unknown device errors before any
    // thread spawns.
    let devices: Vec<&Device> =
        shards.iter().map(|s| cluster.device_checked(s.device)).collect::<Result<_, _>>()?;

    let mut logs: Vec<Vec<WriteRec>> = (0..gmems.len()).map(|_| Vec::new()).collect();
    let mut recovery_log: Vec<WriteRec> = Vec::new();
    let mut stats_in_order: Vec<KernelStats> = Vec::with_capacity(shards.len());
    if config.device_threads && shards.len() > 1 {
        // One (stats, log) per shard, folded back in shard-plan order.
        type ShardOutcome = Result<(KernelStats, Vec<WriteRec>), SimError>;
        let gm: &[GlobalMemory] = gmems;
        let run_one = |shard: &Shard, device: &Device| -> ShardOutcome {
            let mut log = Vec::new();
            let stats = device.run_shard(
                kernel,
                &gm[shard.device as usize],
                config.mode,
                engine,
                (shard.start, shard.end),
                &mut log,
            )?;
            Ok((stats, log))
        };
        let outcomes: Vec<ShardOutcome> =
            std::thread::scope(|s| -> Result<Vec<ShardOutcome>, SimError> {
                let handles: Vec<_> = shards
                    .iter()
                    .zip(&devices)
                    .map(|(shard, device)| s.spawn(move || run_one(shard, device)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().map_err(|_| SimError::WorkerPanic {
                            context: format!("simulating shards of kernel `{}`", kernel.name),
                        })
                    })
                    .collect()
            })?;
        for ((shard, rec), outcome) in shards.iter().zip(&is_recovery).zip(outcomes) {
            let d = shard.device as usize;
            let (stats, mut log) = outcome?;
            // First shard on a device hands its log over; later shards
            // append (several shards per device only happens in
            // hand-written plans).
            if *rec {
                recovery_log.append(&mut log);
            } else if logs[d].is_empty() {
                logs[d] = log;
            } else {
                logs[d].append(&mut log);
            }
            stats_in_order.push(stats);
        }
    } else {
        // Sequential dispatch logs straight into the per-device logs —
        // no intermediate vectors on the default single-core path.
        for ((shard, rec), device) in shards.iter().zip(&is_recovery).zip(&devices) {
            let d = shard.device as usize;
            let sink = if *rec { &mut recovery_log } else { &mut logs[d] };
            let stats = device.run_shard(
                kernel,
                &gmems[d],
                config.mode,
                engine,
                (shard.start, shard.end),
                sink,
            )?;
            stats_in_order.push(stats);
        }
    }
    for (shard, stats) in shards.iter().zip(stats_in_order) {
        let d = shard.device as usize;
        let slow = fault.as_ref().map_or(1.0, |f| f.rt.clock_factor(shard.device));
        let ms = stats.cycles as f64 / cluster_spec.devices[d].clock_cycles_per_ms * slow;
        let obs = &mut devs[d];
        obs.kernel_ms += ms;
        obs.kernel_stats.merge_serial(&stats);
        // Shards on one device run back to back on its compute stream.
        let (t0, t1) = timelines[d].advance_spanned(0, StreamResource::Compute, ms);
        if let Some(tr) = tracer.as_mut() {
            let blocks = shard.end - shard.start;
            tr.record(
                round,
                shard.device,
                StreamResource::Compute,
                0,
                SpanKind::Kernel,
                blocks,
                -1.0,
                t0,
                t1,
            );
        }
    }
    if config.detect_races {
        let merged: Vec<WriteRec> = logs
            .iter()
            .chain(std::iter::once(&recovery_log))
            .flat_map(|l| l.iter().copied())
            .collect();
        check_log_races(kernel, &merged)?;
    }
    match fault.as_mut() {
        None => {
            for (d, log) in logs.into_iter().enumerate() {
                if !log.is_empty() {
                    apply_write_log(kernel, &mut gmems[d], log, false)?;
                }
            }
        }
        Some(f) => {
            for (d, mut log) in logs.into_iter().enumerate() {
                if !f.alive[d] {
                    continue;
                }
                log.extend(recovery_log.iter().copied());
                if log.is_empty() {
                    continue;
                }
                // Journal the applied writes in block order — sorting
                // here is the same stable sort `apply_write_log` runs,
                // so the journal's last-write map matches the device's
                // final memory word for word.
                log.sort_by_key(|w| w.block);
                for w in &log {
                    f.journal_word(d, w.addr, w.val);
                }
                apply_write_log(kernel, &mut gmems[d], log, false)?;
            }
        }
    }
    Ok(())
}

/// Simulates `program` on a cluster built from `machine` + `cluster`.
///
/// Each device gets a zero-initialised replica of the program's buffer
/// layout; transfers and launches address devices explicitly (plain
/// `Launch` and untargeted transfers run on device 0).  Kernel
/// correctness therefore depends on the program staging each shard's
/// inputs onto the device that runs it — exactly the obligation a real
/// multi-GPU host program has.
pub fn run_cluster_program(
    program: &Program,
    inputs: Vec<Vec<i64>>,
    machine: &AtgpuMachine,
    cluster_spec: &ClusterSpec,
    config: &SimConfig,
) -> Result<ClusterSimReport, SimError> {
    let cluster = Cluster::new(*machine, cluster_spec.clone())?;
    cluster.configure_devices(config);
    run_cluster_program_on(&cluster, program, inputs, config)
}

/// Simulates `program` against an **existing, possibly shared** cluster.
///
/// This is the serving-layer entry point: a long-lived [`Cluster`] keeps
/// its per-device kernel caches warm across calls, and because every
/// other piece of run state (memory replicas, host buffers, transfer
/// engines, fault state, tracer) is allocated here per call, concurrent
/// invocations from different threads produce reports bit-identical to
/// running each program alone — the guarantee the serve differential
/// suite pins.
///
/// Unlike [`run_cluster_program`], this does **not** apply `config`'s
/// device-global settings (cache enable/capacity, watchdog): the
/// cluster's owner configures those once via
/// [`Cluster::configure_devices`], so one request cannot reconfigure
/// devices out from under another.  All per-run settings (`mode`,
/// `noise`, `seed`, `use_reference`, fault plan, tracing) are honoured.
pub fn run_cluster_program_on(
    cluster: &Cluster,
    program: &Program,
    inputs: Vec<Vec<i64>>,
    config: &SimConfig,
) -> Result<ClusterSimReport, SimError> {
    crate::driver::check_program_streams(program)?;
    let machine = &cluster.machine;
    let cluster_spec = &cluster.spec;
    let n = cluster.n_devices();
    let needed = program.max_device() as usize + 1;
    if needed > n {
        return Err(SimError::NoSuchDevice { device: program.max_device(), devices: n });
    }

    let (bases, total_words) = program.buffer_layout(machine.b);
    let mut gmems = (0..n)
        .map(|_| GlobalMemory::new(bases.clone(), total_words, machine.b, machine.g))
        .collect::<Result<Vec<_>, _>>()?;
    let mut host = HostData::new(program, inputs)?;

    let mut host_xfer: Vec<TransferEngine> = cluster_spec
        .host_links
        .iter()
        .enumerate()
        .map(|(i, l)| TransferEngine::with_link(l, config.noise, link_seed(config.seed, i as u64)))
        .collect();
    let mut peer_xfer: Vec<Vec<TransferEngine>> = cluster_spec
        .peer_links
        .iter()
        .enumerate()
        .map(|(s, row)| {
            row.iter()
                .enumerate()
                .map(|(d, l)| {
                    let idx = (n + s * n + d) as u64;
                    TransferEngine::with_link(l, config.noise, link_seed(config.seed, idx))
                })
                .collect()
        })
        .collect();

    let engine = if config.use_reference { EngineSel::Reference } else { EngineSel::MicroOp };
    let mut fs = FaultRuntime::new(&config.fault).map(|rt| FaultState::new(rt, n));
    let mut tracer = if config.trace { Some(Tracer::new(config.trace_capacity)) } else { None };
    let mut rounds = Vec::with_capacity(program.rounds.len());
    for (round_idx, round) in program.rounds.iter().enumerate() {
        let mut devs = vec![DeviceRoundObservation::default(); n];
        let mut timelines = vec![StreamTimeline::new(); n];
        if let Some(f) = fs.as_mut() {
            process_deaths(
                f,
                round_idx,
                &mut gmems,
                &mut host_xfer,
                &mut devs,
                &mut timelines,
                &mut tracer,
            )?;
        }
        for step in &round.steps {
            match step {
                HostStep::TransferIn { host: h, host_off, dev, dev_off, words, device, stream } => {
                    let d = *device as usize;
                    let src =
                        &host.bufs[h.0 as usize][*host_off as usize..(*host_off + *words) as usize];
                    match fs.as_mut() {
                        None => {
                            let dst = gmems[d].base(dev.0) + dev_off;
                            let t = host_xfer[d].to_device(&mut gmems[d], dst, src);
                            devs[d].xfer_in_ms += t;
                            let (t0, t1) = timelines[d].advance_spanned(
                                *stream,
                                StreamResource::HostToDevice,
                                t,
                            );
                            if let Some(tr) = tracer.as_mut() {
                                let pred = host_xfer[d].link().cost_ms(1, *words);
                                tr.record(
                                    round_idx,
                                    *device,
                                    StreamResource::HostToDevice,
                                    *stream,
                                    SpanKind::TransferIn,
                                    *words,
                                    pred,
                                    t0,
                                    t1,
                                );
                            }
                        }
                        Some(f) => {
                            // A dead target's input is broadcast to every
                            // survivor — any of them may serve the data
                            // (takeover shards, redirected outputs, later
                            // recoveries).  Each pays its own link cost.
                            let targets = if f.alive[d] { vec![d] } else { f.survivors() };
                            for s in targets {
                                let dst = gmems[s].base(dev.0) + dev_off;
                                let obs = &mut devs[s];
                                let t = match tracer.as_mut() {
                                    Some(tr) => {
                                        let segs = &mut tr.segs;
                                        f.rt.transfer_segmented(
                                            LinkEdge::Host(s as u32),
                                            round_idx,
                                            cluster_spec.sync_ms,
                                            &mut obs.retries,
                                            &mut obs.backoff_ms,
                                            || host_xfer[s].to_device(&mut gmems[s], dst, src),
                                            |a, b, w| segs.push(a, b, w),
                                        )
                                    }
                                    None => f.rt.transfer(
                                        LinkEdge::Host(s as u32),
                                        round_idx,
                                        cluster_spec.sync_ms,
                                        &mut obs.retries,
                                        &mut obs.backoff_ms,
                                        || host_xfer[s].to_device(&mut gmems[s], dst, src),
                                    ),
                                };
                                obs.xfer_in_ms += t;
                                f.journal_words(s, dst, src);
                                let (t0, t1) = timelines[s].advance_spanned(
                                    *stream,
                                    StreamResource::HostToDevice,
                                    t,
                                );
                                if let Some(tr) = tracer.as_mut() {
                                    let pred = host_xfer[s].link().cost_ms(1, *words);
                                    tr.record(
                                        round_idx,
                                        s as u32,
                                        StreamResource::HostToDevice,
                                        *stream,
                                        SpanKind::TransferIn,
                                        *words,
                                        pred,
                                        t0,
                                        t1,
                                    );
                                }
                            }
                        }
                    }
                }
                HostStep::TransferOut {
                    dev,
                    dev_off,
                    host: h,
                    host_off,
                    words,
                    device,
                    stream,
                } => {
                    let d = *device as usize;
                    let dst = &mut host.bufs[h.0 as usize]
                        [*host_off as usize..(*host_off + *words) as usize];
                    match fs.as_mut() {
                        None => {
                            let src = gmems[d].base(dev.0) + dev_off;
                            let t = host_xfer[d].to_host(&gmems[d], src, dst);
                            devs[d].xfer_out_ms += t;
                            let (t0, t1) = timelines[d].advance_spanned(
                                *stream,
                                StreamResource::DeviceToHost,
                                t,
                            );
                            if let Some(tr) = tracer.as_mut() {
                                let pred = host_xfer[d].link().cost_ms(1, *words);
                                tr.record(
                                    round_idx,
                                    *device,
                                    StreamResource::DeviceToHost,
                                    *stream,
                                    SpanKind::TransferOut,
                                    *words,
                                    pred,
                                    t0,
                                    t1,
                                );
                            }
                        }
                        Some(f) => {
                            // A dead source's output is served by the heir
                            // (lowest-index survivor, which holds the
                            // recovered data) over the heir's host link.
                            let s = if f.alive[d] { d } else { f.heir() };
                            let src = gmems[s].base(dev.0) + dev_off;
                            let obs = &mut devs[s];
                            let t = match tracer.as_mut() {
                                Some(tr) => {
                                    let segs = &mut tr.segs;
                                    f.rt.transfer_segmented(
                                        LinkEdge::Host(s as u32),
                                        round_idx,
                                        cluster_spec.sync_ms,
                                        &mut obs.retries,
                                        &mut obs.backoff_ms,
                                        || host_xfer[s].to_host(&gmems[s], src, dst),
                                        |a, b, w| segs.push(a, b, w),
                                    )
                                }
                                None => f.rt.transfer(
                                    LinkEdge::Host(s as u32),
                                    round_idx,
                                    cluster_spec.sync_ms,
                                    &mut obs.retries,
                                    &mut obs.backoff_ms,
                                    || host_xfer[s].to_host(&gmems[s], src, dst),
                                ),
                            };
                            obs.xfer_out_ms += t;
                            let (t0, t1) = timelines[s].advance_spanned(
                                *stream,
                                StreamResource::DeviceToHost,
                                t,
                            );
                            if let Some(tr) = tracer.as_mut() {
                                let pred = host_xfer[s].link().cost_ms(1, *words);
                                tr.record(
                                    round_idx,
                                    s as u32,
                                    StreamResource::DeviceToHost,
                                    *stream,
                                    SpanKind::TransferOut,
                                    *words,
                                    pred,
                                    t0,
                                    t1,
                                );
                            }
                        }
                    }
                }
                HostStep::SyncStream { device, stream } => {
                    if fs.as_ref().is_none_or(|f| f.alive[*device as usize]) {
                        timelines[*device as usize].sync_stream(*stream);
                    }
                }
                HostStep::SyncDevice { device } => {
                    if fs.as_ref().is_none_or(|f| f.alive[*device as usize]) {
                        timelines[*device as usize].sync_device();
                    }
                }
                HostStep::TransferPeer { src, dst, buf, src_off, dst_off, words } => {
                    let (s0, d0) = (*src as usize, *dst as usize);
                    match fs.as_mut() {
                        None => {
                            let base = gmems[s0].base(buf.0);
                            let dst_base = gmems[d0].base(buf.0);
                            let (sm, dm) = two_mems(&mut gmems, s0, d0);
                            let t = peer_xfer[s0][d0].peer(
                                sm,
                                base + src_off,
                                dm,
                                dst_base + dst_off,
                                *words,
                            );
                            devs[s0].peer_ms += t;
                            devs[d0].peer_ms += t;
                            // A peer copy occupies both endpoints' peer
                            // engines.
                            let (a0, a1) =
                                timelines[s0].advance_spanned(0, StreamResource::Peer, t);
                            let (b0, b1) =
                                timelines[d0].advance_spanned(0, StreamResource::Peer, t);
                            if let Some(tr) = tracer.as_mut() {
                                let pred = peer_xfer[s0][d0].link().cost_ms(1, *words);
                                tr.record(
                                    round_idx,
                                    *src,
                                    StreamResource::Peer,
                                    0,
                                    SpanKind::Peer,
                                    *words,
                                    pred,
                                    a0,
                                    a1,
                                );
                                tr.record(
                                    round_idx,
                                    *dst,
                                    StreamResource::Peer,
                                    0,
                                    SpanKind::Peer,
                                    *words,
                                    pred,
                                    b0,
                                    b1,
                                );
                            }
                        }
                        Some(f) => {
                            // Dead source → served by the heir; dead
                            // destination → broadcast to every survivor.
                            // When redirection folds both endpoints onto
                            // one device the copy is local and free.
                            let sp = if f.alive[s0] { s0 } else { f.heir() };
                            let receivers = if f.alive[d0] { vec![d0] } else { f.survivors() };
                            for r in receivers {
                                let src_addr = gmems[sp].base(buf.0) + src_off;
                                let dst_addr = gmems[r].base(buf.0) + dst_off;
                                let w = *words as usize;
                                if r == sp {
                                    let heap = gmems[r].words_mut();
                                    heap.copy_within(
                                        src_addr as usize..src_addr as usize + w,
                                        dst_addr as usize,
                                    );
                                } else {
                                    let obs = &mut devs[r];
                                    let t = match tracer.as_mut() {
                                        Some(tr) => {
                                            let segs = &mut tr.segs;
                                            f.rt.transfer_segmented(
                                                LinkEdge::Peer(sp as u32, r as u32),
                                                round_idx,
                                                cluster_spec.sync_ms,
                                                &mut obs.retries,
                                                &mut obs.backoff_ms,
                                                || {
                                                    let (sm, dm) = two_mems(&mut gmems, sp, r);
                                                    peer_xfer[sp][r]
                                                        .peer(sm, src_addr, dm, dst_addr, *words)
                                                },
                                                |a, b, w| segs.push(a, b, w),
                                            )
                                        }
                                        None => f.rt.transfer(
                                            LinkEdge::Peer(sp as u32, r as u32),
                                            round_idx,
                                            cluster_spec.sync_ms,
                                            &mut obs.retries,
                                            &mut obs.backoff_ms,
                                            || {
                                                let (sm, dm) = two_mems(&mut gmems, sp, r);
                                                peer_xfer[sp][r]
                                                    .peer(sm, src_addr, dm, dst_addr, *words)
                                            },
                                        ),
                                    };
                                    devs[sp].peer_ms += t;
                                    devs[r].peer_ms += t;
                                    let (a0, a1) =
                                        timelines[r].advance_spanned(0, StreamResource::Peer, t);
                                    let (b0, b1) =
                                        timelines[sp].advance_spanned(0, StreamResource::Peer, t);
                                    if let Some(tr) = tracer.as_mut() {
                                        let pred = peer_xfer[sp][r].link().cost_ms(1, *words);
                                        // The receiver's span carries the
                                        // retry/backoff segments; the
                                        // source shows the fused copy.
                                        tr.record(
                                            round_idx,
                                            r as u32,
                                            StreamResource::Peer,
                                            0,
                                            SpanKind::Peer,
                                            *words,
                                            pred,
                                            a0,
                                            a1,
                                        );
                                        tr.record(
                                            round_idx,
                                            sp as u32,
                                            StreamResource::Peer,
                                            0,
                                            SpanKind::Peer,
                                            *words,
                                            pred,
                                            b0,
                                            b1,
                                        );
                                    }
                                }
                                let vals: Vec<i64> = gmems[r].words()
                                    [dst_addr as usize..dst_addr as usize + w]
                                    .to_vec();
                                f.journal_words(r, dst_addr, &vals);
                            }
                        }
                    }
                }
                HostStep::Launch(kernel) => {
                    // A plain launch is a one-shard plan on device 0.
                    let whole = [Shard { device: 0, start: 0, end: kernel.blocks() }];
                    run_sharded_launch(
                        cluster,
                        cluster_spec,
                        machine,
                        config,
                        engine,
                        kernel,
                        &whole,
                        round_idx,
                        &mut gmems,
                        &mut devs,
                        &mut timelines,
                        &mut fs,
                        &mut tracer,
                    )?;
                }
                HostStep::LaunchSharded { kernel, shards } => {
                    run_sharded_launch(
                        cluster,
                        cluster_spec,
                        machine,
                        config,
                        engine,
                        kernel,
                        shards,
                        round_idx,
                        &mut gmems,
                        &mut devs,
                        &mut timelines,
                        &mut fs,
                        &mut tracer,
                    )?;
                }
            }
        }
        for (obs, tl) in devs.iter_mut().zip(&timelines) {
            obs.stream_ms = tl.finish();
        }
        rounds.push(ClusterRoundObservation { devices: devs, sync_ms: cluster_spec.sync_ms });
    }

    let mut device_stats: Vec<DeviceStats> = cluster.devices.iter().map(Device::stats).collect();
    for r in &rounds {
        for (d, o) in r.devices.iter().enumerate() {
            device_stats[d].retries += o.retries;
            device_stats[d].backoff_ms += o.backoff_ms;
        }
    }
    if let Some(f) = &fs {
        for (d, st) in device_stats.iter_mut().enumerate() {
            st.recoveries = f.recoveries[d];
        }
    }
    Ok(ClusterSimReport { rounds, host, device_stats, trace: tracer.map(Tracer::finish) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, ProgramBuilder};
    use atgpu_model::GpuSpec;

    fn machine() -> AtgpuMachine {
        AtgpuMachine::new(1 << 12, 4, 64, 1 << 16).unwrap()
    }

    fn cspec(n: usize) -> ClusterSpec {
        let spec = GpuSpec {
            k_prime: 2,
            h_limit: 4,
            clock_cycles_per_ms: 1000.0,
            xfer_alpha_ms: 0.1,
            xfer_beta_ms_per_word: 0.001,
            sync_ms: 0.05,
            ..GpuSpec::gtx650_like()
        };
        ClusterSpec::homogeneous(n, spec)
    }

    fn scale_kernel(blocks: u64) -> Kernel {
        let mut kb = KernelBuilder::new("scale", blocks, 8);
        let g = AddrExpr::block() * 4 + AddrExpr::lane();
        kb.glb_to_shr(AddrExpr::lane(), atgpu_ir::DBuf(0), g.clone());
        kb.ld_shr(0, AddrExpr::lane());
        kb.alu(AluOp::Mul, 0, Operand::Reg(0), Operand::Imm(3));
        kb.st_shr(AddrExpr::lane() + 4, Operand::Reg(0));
        kb.shr_to_glb(atgpu_ir::DBuf(1), g, AddrExpr::lane() + 4);
        kb.build()
    }

    fn fresh_gmem(n: u64) -> GlobalMemory {
        let mut g = GlobalMemory::new(vec![0, n], 2 * n, 4, 1 << 16).unwrap();
        for i in 0..n {
            g.write(i as i64, i as i64);
        }
        g
    }

    #[test]
    fn even_shards_partition_the_grid() {
        assert_eq!(
            even_shards(10, 3),
            vec![
                Shard { device: 0, start: 0, end: 4 },
                Shard { device: 1, start: 4, end: 7 },
                Shard { device: 2, start: 7, end: 10 },
            ]
        );
        // Fewer blocks than devices: trailing devices receive nothing.
        assert_eq!(even_shards(2, 4).len(), 2);
        assert_eq!(even_shards(0, 4), vec![]);
        let s = even_shards(64, 1);
        assert_eq!(s, vec![Shard { device: 0, start: 0, end: 64 }]);
    }

    #[test]
    fn weighted_shards_follow_device_speed() {
        // Device 1 has 3x the MPs of device 0: it should get ~3/4 of the
        // blocks, and the plan must still partition the grid.
        let slow = GpuSpec { k_prime: 2, ..GpuSpec::gtx650_like() };
        let fast = GpuSpec { k_prime: 6, ..GpuSpec::gtx650_like() };
        let mut spec = ClusterSpec::homogeneous(2, slow);
        spec.devices[1] = fast;
        let shards = weighted_shards(100, &spec);
        assert_eq!(shards.iter().map(|s| s.blocks()).sum::<u64>(), 100);
        assert_eq!(shards[0].device, 0);
        assert_eq!(shards[1].device, 1);
        assert_eq!(shards[0].blocks(), 25);
        assert_eq!(shards[1].blocks(), 75);
        // Contiguous partition.
        assert_eq!(shards[0].end, shards[1].start);
        assert_eq!(shards[1].end, 100);
    }

    #[test]
    fn weighted_shards_handle_remainders_and_tiny_grids() {
        let mut spec = ClusterSpec::homogeneous(3, GpuSpec::gtx650_like());
        spec.devices[2].k_prime = 4; // twice the others
        let shards = weighted_shards(7, &spec);
        assert_eq!(shards.iter().map(|s| s.blocks()).sum::<u64>(), 7);
        let mut cursor = 0;
        for s in &shards {
            assert_eq!(s.start, cursor);
            cursor = s.end;
        }
        // Fewer blocks than devices: zero-length shards are omitted.
        let shards = weighted_shards(1, &spec);
        assert_eq!(shards.iter().map(|s| s.blocks()).sum::<u64>(), 1);
        assert!(shards.iter().all(|s| s.blocks() > 0));
        assert!(weighted_shards(0, &spec).is_empty());
    }

    /// Regression: a slow device whose largest-remainder quota rounds to
    /// 0 (extreme `k′·clock` ratios, fewer blocks than devices) must not
    /// surface as a zero-block shard — `LaunchSharded` validation
    /// rejects those as a non-partition.  Empty shards are dropped and
    /// the grid's blocks land on the fastest devices.
    #[test]
    fn weighted_shards_drop_zero_quota_devices_on_tiny_grids() {
        // Device 0 is 1000x slower than devices 1-3 (1000:1 k′·clock
        // ratio), and the grid has fewer blocks than devices.
        let slow = GpuSpec { k_prime: 1, clock_cycles_per_ms: 1000.0, ..GpuSpec::gtx650_like() };
        let fast =
            GpuSpec { k_prime: 10, clock_cycles_per_ms: 100_000.0, ..GpuSpec::gtx650_like() };
        let mut spec = ClusterSpec::homogeneous(4, fast);
        spec.devices[0] = slow;

        for blocks in 1..=6u64 {
            let shards = weighted_shards(blocks, &spec);
            // A valid partition: non-empty, contiguous, covers the grid.
            assert!(shards.iter().all(|s| s.blocks() > 0), "empty shard at blocks={blocks}");
            assert_eq!(shards.iter().map(Shard::blocks).sum::<u64>(), blocks);
            let mut cursor = 0;
            for s in &shards {
                assert_eq!(s.start, cursor, "gap in plan at blocks={blocks}");
                cursor = s.end;
            }
            // The 1000x-slower device never takes a block from a grid
            // this small — its share folds into the fast devices.
            assert!(
                shards.iter().all(|s| s.device != 0),
                "slow device drafted on a {blocks}-block grid: {shards:?}"
            );
            // And the plan passes `LaunchSharded` validation end to end.
            let mut kb = KernelBuilder::new("tiny", blocks, 4);
            kb.st_shr(AddrExpr::lane(), Operand::Block);
            let mut pb = ProgramBuilder::new("tiny_plan");
            let _ = pb.device_alloc("a", 64);
            pb.begin_round();
            pb.launch_sharded(kb.build(), shards);
            pb.build().expect("weighted plan must validate as a partition");
        }
    }

    #[test]
    fn plan_shards_picks_planner_by_homogeneity() {
        let spec = ClusterSpec::homogeneous(4, GpuSpec::gtx650_like());
        assert_eq!(plan_shards(64, &spec), even_shards(64, 4));
        // Devices differ, links equal: equal links cannot discriminate,
        // so the compute-weighted heuristic is preserved — the fast
        // device gets more blocks.
        let mut mixed = spec.clone();
        mixed.devices[0].k_prime *= 3;
        let weighted = plan_shards(64, &mixed);
        assert_eq!(weighted, weighted_shards(64, &mixed));
        assert_ne!(weighted, even_shards(64, 4));
        assert!(weighted[0].blocks() > weighted[1].blocks());
        // Links differ: routed to the cost-driven planner, whose modeled
        // cost can never exceed the even or weighted plans'.
        let mut asym = spec.clone();
        asym.host_links[3] = atgpu_model::LinkParams {
            alpha_ms: asym.host_links[3].alpha_ms * 8.0,
            beta_ms_per_word: asym.host_links[3].beta_ms_per_word * 8.0,
        };
        let planned = plan_shards(64, &asym);
        assert_eq!(planned.iter().map(Shard::blocks).sum::<u64>(), 64);
        let machine = AtgpuMachine::gtx650_like();
        let profile = ShardProfile::streaming(32);
        let cost =
            |s: &[Shard]| plan::plan_cost(&asym, &machine, &profile, &shard_counts(s, 4)).unwrap();
        assert!(cost(&planned) <= cost(&even_shards(64, 4)) + 1e-12);
        assert!(cost(&planned) <= cost(&weighted_shards(64, &asym)) + 1e-12);
    }

    /// Regression for the transfer blind spot: identical devices behind a
    /// fast and a slow host link are **not** homogeneous — the old
    /// planner's `DeviceSpec`-equality check handed them an even split.
    /// The slow-link device must receive strictly fewer blocks.
    #[test]
    fn plan_shards_starves_slow_host_links() {
        let mut spec = cspec(2);
        spec.host_links[1] = atgpu_model::LinkParams {
            alpha_ms: spec.host_links[1].alpha_ms * 8.0,
            beta_ms_per_word: spec.host_links[1].beta_ms_per_word * 8.0,
        };
        let shards = plan_shards(256, &spec);
        assert_eq!(shards.iter().map(Shard::blocks).sum::<u64>(), 256);
        assert_ne!(shards, even_shards(256, 2), "slow link must not get an even share");
        let blocks_of =
            |d: u32| shards.iter().filter(|s| s.device == d).map(Shard::blocks).sum::<u64>();
        assert!(blocks_of(1) < blocks_of(0), "slow-link device over-assigned: {shards:?}");
        // And the plan still validates as a partition end to end.
        let mut kb = KernelBuilder::new("probe", 256, 4);
        kb.st_shr(AddrExpr::lane(), Operand::Block);
        let mut pb = ProgramBuilder::new("probe_plan");
        let _ = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.launch_sharded(kb.build(), shards);
        pb.build().expect("cost-planned shards must partition the grid");
    }

    /// The largest-remainder boundary: `leftovers == n_devices − 1` is
    /// the most the invariant permits, and every leftover must land on a
    /// distinct device (the old `order[i % len]` wrap would have been
    /// exercised exactly one step past this).
    #[test]
    fn weighted_shards_leftover_boundary() {
        // 3 equal-weight devices, 5 blocks: quotas 5/3 each, floors sum
        // to 3, leftovers = 2 = n − 1.
        let spec = ClusterSpec::homogeneous(3, GpuSpec::gtx650_like());
        let shards = weighted_shards(5, &spec);
        let mut blocks: Vec<u64> = shards.iter().map(Shard::blocks).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![1, 2, 2], "{shards:?}");
        assert_eq!(shards.iter().map(Shard::blocks).sum::<u64>(), 5);
    }

    #[test]
    fn sharded_kernel_matches_single_device() {
        let n = 256u64;
        let k = scale_kernel(n / 4);
        let dev = Device::new(machine(), cspec(1).devices[0]).unwrap();
        let mut g1 = fresh_gmem(n);
        dev.run_kernel(&k, &mut g1, ExecMode::Sequential, false).unwrap();

        for devices in [1u32, 2, 3, 4] {
            let cluster = Cluster::new(machine(), cspec(devices as usize)).unwrap();
            let mut g = fresh_gmem(n);
            let shards = even_shards(k.blocks(), devices);
            let stats = cluster
                .run_sharded_kernel(
                    &k,
                    &mut g,
                    &shards,
                    ExecMode::Sequential,
                    false,
                    EngineSel::MicroOp,
                )
                .unwrap();
            assert_eq!(g.words(), g1.words(), "devices={devices}");
            let blocks: u64 = stats.iter().map(|s| s.stats.blocks).sum();
            assert_eq!(blocks, k.blocks());
        }
    }

    #[test]
    fn run_shard_rejects_unknown_device() {
        let k = scale_kernel(4);
        let cluster = Cluster::new(machine(), cspec(2)).unwrap();
        let mut g = fresh_gmem(16);
        let bad = vec![Shard { device: 5, start: 0, end: 4 }];
        assert!(matches!(
            cluster.run_sharded_kernel(
                &k,
                &mut g,
                &bad,
                ExecMode::Sequential,
                false,
                EngineSel::MicroOp
            ),
            Err(SimError::NoSuchDevice { device: 5, devices: 2 })
        ));
    }

    #[test]
    fn cluster_detects_cross_device_races() {
        // Every block writes word 0 — on different devices.
        let mut kb = KernelBuilder::new("racy", 4, 4);
        kb.st_shr(AddrExpr::lane(), Operand::Block);
        kb.shr_to_glb(atgpu_ir::DBuf(0), AddrExpr::c(0), AddrExpr::c(0));
        let k = kb.build();
        let cluster = Cluster::new(machine(), cspec(2)).unwrap();
        let mut g = fresh_gmem(16);
        let shards = even_shards(4, 2);
        assert!(matches!(
            cluster.run_sharded_kernel(
                &k,
                &mut g,
                &shards,
                ExecMode::Sequential,
                true,
                EngineSel::MicroOp
            ),
            Err(SimError::RaceDetected { addr: 0, .. })
        ));
        // Without detection the merge is deterministic: last block wins.
        let mut g = fresh_gmem(16);
        cluster
            .run_sharded_kernel(
                &k,
                &mut g,
                &shards,
                ExecMode::Sequential,
                false,
                EngineSel::MicroOp,
            )
            .unwrap();
        assert_eq!(g.read(0), Some(3));
    }

    /// A 2-device vecadd program: each device gets its slice of A and B,
    /// runs its shard, and returns its slice of C.
    fn sharded_vecadd_program(n: u64, devices: u32) -> (Program, atgpu_ir::HBuf) {
        let b = 4u64;
        let blocks = n / b;
        let mut pb = ProgramBuilder::new("vecadd_sharded");
        let ha = pb.host_input("A", n);
        let hb = pb.host_input("B", n);
        let hc = pb.host_output("C", n);
        let da = pb.device_alloc("a", n);
        let db = pb.device_alloc("b", n);
        let dc = pb.device_alloc("c", n);
        let mut kb = KernelBuilder::new("vecadd_kernel", blocks, 3 * b);
        let bi = b as i64;
        let g = AddrExpr::block() * bi + AddrExpr::lane();
        kb.glb_to_shr(AddrExpr::lane(), da, g.clone());
        kb.glb_to_shr(AddrExpr::lane() + bi, db, g.clone());
        kb.ld_shr(0, AddrExpr::lane());
        kb.ld_shr(1, AddrExpr::lane() + bi);
        kb.alu(AluOp::Add, 2, Operand::Reg(0), Operand::Reg(1));
        kb.st_shr(AddrExpr::lane() + 2 * bi, Operand::Reg(2));
        kb.shr_to_glb(dc, g, AddrExpr::lane() + 2 * bi);
        let shards = even_shards(blocks, devices);
        pb.begin_round();
        for s in &shards {
            let (off, words) = (s.start * b, s.blocks() * b);
            pb.transfer_in_to(s.device, ha, off, da, off, words);
            pb.transfer_in_to(s.device, hb, off, db, off, words);
        }
        pb.launch_sharded(kb.build(), shards.clone());
        for s in &shards {
            let (off, words) = (s.start * b, s.blocks() * b);
            pb.transfer_out_from(s.device, dc, off, hc, off, words);
        }
        (pb.build().unwrap(), hc)
    }

    #[test]
    fn cluster_program_end_to_end() {
        let n = 64u64;
        let (p, hc) = sharded_vecadd_program(n, 2);
        let a: Vec<i64> = (0..n as i64).collect();
        let b: Vec<i64> = (0..n as i64).map(|x| 10 * x).collect();
        let report = run_cluster_program(
            &p,
            vec![a.clone(), b.clone()],
            &machine(),
            &cspec(2),
            &SimConfig::default(),
        )
        .unwrap();
        for i in 0..n as usize {
            assert_eq!(report.output(hc)[i], a[i] + b[i], "i={i}");
        }
        // Two devices moved data; the round total is max-based, so it is
        // strictly less than the sum of per-device paths.
        let r = &report.rounds[0];
        let sum: f64 = r.devices.iter().map(|d| d.path_ms()).sum();
        assert!(r.total_ms() < sum + r.sync_ms);
        let per_dev = report.transfer_ms_per_device();
        assert_eq!(per_dev.len(), 2);
        assert!(per_dev.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn cluster_matches_single_device_outputs() {
        let n = 128u64;
        for devices in [1u32, 2, 4] {
            let (p, hc) = sharded_vecadd_program(n, devices);
            let a: Vec<i64> = (0..n as i64).collect();
            let b: Vec<i64> = (0..n as i64).rev().collect();
            let report = run_cluster_program(
                &p,
                vec![a.clone(), b.clone()],
                &machine(),
                &cspec(devices.max(1) as usize),
                &SimConfig::default(),
            )
            .unwrap();
            for (i, &v) in report.output(hc).iter().enumerate() {
                assert_eq!(v, n as i64 - 1, "devices={devices} i={i}");
            }
        }
    }

    #[test]
    fn peer_transfer_moves_data_and_charges_both_ends() {
        let mut pb = ProgramBuilder::new("peer");
        let h = pb.host_input("A", 8);
        let o = pb.host_output("B", 8);
        let d = pb.device_alloc("a", 8);
        pb.begin_round();
        pb.transfer_in_to(0, h, 0, d, 0, 8);
        pb.transfer_peer(0, 1, d, 0, 0, 8);
        pb.transfer_out_from(1, d, 0, o, 0, 8);
        let p = pb.build().unwrap();
        let report = run_cluster_program(
            &p,
            vec![(1..=8).collect()],
            &machine(),
            &cspec(2),
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(report.output(o), &[1, 2, 3, 4, 5, 6, 7, 8]);
        let r = &report.rounds[0];
        assert!(r.devices[0].peer_ms > 0.0);
        assert_eq!(r.devices[0].peer_ms, r.devices[1].peer_ms);
        // Peer link defaults to 4x the host link: 8 words over the peer
        // link must be cheaper than the same 8 words over the host link.
        assert!(r.devices[0].peer_ms < r.devices[0].xfer_in_ms);
    }

    /// The cluster driver applies the same stream-id guard as the
    /// single-device driver: a forged sync step cannot reach the
    /// timeline clamp.
    #[test]
    fn cluster_rejects_out_of_range_stream() {
        let (mut p, _) = sharded_vecadd_program(64, 2);
        p.rounds[0]
            .steps
            .insert(0, HostStep::SyncStream { device: 0, stream: atgpu_ir::MAX_STREAMS });
        assert!(matches!(
            run_cluster_program(
                &p,
                vec![vec![0; 64], vec![0; 64]],
                &machine(),
                &cspec(2),
                &SimConfig::default()
            ),
            Err(SimError::StreamOutOfRange { stream, round: 0 })
                if stream == atgpu_ir::MAX_STREAMS
        ));
    }

    #[test]
    fn program_needing_more_devices_is_rejected() {
        let (p, _) = sharded_vecadd_program(64, 4);
        let r = run_cluster_program(
            &p,
            vec![vec![0; 64], vec![0; 64]],
            &machine(),
            &cspec(2),
            &SimConfig::default(),
        );
        assert!(matches!(r, Err(SimError::NoSuchDevice { .. })));
    }
}
