//! The micro-op block executor: runs a [`CompiledKernel`] with **zero
//! heap allocations per instruction** in steady state, plus the
//! block-invariant timing-replay cache.
//!
//! ```text
//!            compile (once per launch)              execute (per block)
//!  Kernel ────────────────────────────► CompiledKernel ───────────────► StepEvents
//!  (Instr tree: Repeat/Pred nesting)    (flat Vec<Uop>,                 (same stream as
//!                                        jump offsets,                   the tree-walking
//!                                        per-site shapes)                reference)
//! ```
//!
//! Design points:
//!
//! * flat program counter + fixed-capacity mask/arm stacks instead of the
//!   reference interpreter's per-instruction frame walk;
//! * active lanes iterated with `mask.trailing_zeros()`, never `0..b`
//!   scans over inactive lanes;
//! * per-site compile-time shapes: unit-stride warp accesses become
//!   bounds-checked block copies, transaction counts come from the
//!   compile-time residue table, bank-conflict degrees from the shared
//!   classifier — the dynamic fallbacks use fixed `[i64; 64]` scratch and
//!   a generation-stamped bank-counter array (no `Vec`, no sort, no
//!   dedup);
//! * when [`CompiledKernel::replayable`] holds, the first block a
//!   multiprocessor runs records its memory-event stream; subsequent
//!   blocks execute functionally but *replay* the recorded events for
//!   timing, skipping re-analysis entirely (see [`crate::mp`]).
//!
//! The executor is bit-exact with [`crate::warp::WarpExec`] — same
//! register/memory state, same `StepEvent` stream — which the
//! differential property tests in `tests/engine_differential.rs` enforce.

use crate::error::SimError;
use crate::smem::SharedMemory;
use crate::uop::{CompiledKernel, FastPath, Site, SiteAddr, Uop};
use crate::warp::{GmemAccess, StepEvent};
use atgpu_ir::affine::lane_span_blocks;
use atgpu_ir::{AluOp, Operand, Reg, MAX_LOOP_DEPTH};
use std::sync::Arc;

/// Common interface of the two block executors (micro-op engine and
/// tree-walking reference), so the multiprocessor scheduler can drive
/// either.
pub trait BlockSim {
    /// Re-arms the executor for a new thread block.
    fn reset(&mut self, block: u64);
    /// Executes the next instruction; returns its timing event.
    fn step(&mut self, gmem: &mut GmemAccess<'_>) -> Result<StepEvent, SimError>;
    /// Starts recording the memory-event trace (replayable kernels).
    fn begin_record(&mut self) {}
    /// Supplies a recorded trace to replay instead of re-analysing.
    fn begin_replay(&mut self, _trace: Arc<[StepEvent]>) {}
    /// Takes the completed trace out of a recording executor.
    fn take_trace(&mut self) -> Option<Arc<[StepEvent]>> {
        None
    }
}

impl BlockSim for crate::warp::WarpExec<'_> {
    fn reset(&mut self, block: u64) {
        crate::warp::WarpExec::reset(self, block);
    }
    fn step(&mut self, gmem: &mut GmemAccess<'_>) -> Result<StepEvent, SimError> {
        crate::warp::WarpExec::step(self, gmem)
    }
}

/// Memory-event trace role of one executor.
enum TraceRole {
    /// Analyse every access (non-replayable kernels).
    Off,
    /// Analyse and record memory events.
    Record(Vec<StepEvent>),
    /// Execute functionally, pull memory events from the trace.
    Replay { trace: Arc<[StepEvent]>, idx: usize },
}

/// How a site's lane addresses are materialised for one access.
#[derive(Clone, Copy)]
enum AddrPlan {
    /// Contiguous words `[base, base + popcount(mask))` in lane order
    /// (unit stride, full warp).
    Contig(i64),
    /// Every active lane addresses `addr`.
    Bcast(i64),
    /// `addr_buf[lane]` holds each active lane's address.
    PerLane,
}

/// Executes one thread block over the flat micro-op program.
pub struct BlockExec<'k> {
    ck: &'k CompiledKernel,
    /// Linear thread-block index.
    pub block: u64,
    block_xy: (i64, i64),
    b: u32,
    full_mask: u64,
    regs: Vec<i64>,
    pc: u32,
    /// Saved parent masks (one per open divergence arm).
    masks: Vec<u64>,
    cur_mask: u64,
    /// Pending else masks (one per open divergence arm).
    arms: Vec<u64>,
    loops: [u32; MAX_LOOP_DEPTH],
    /// The block's shared memory.
    pub smem: SharedMemory,
    addr_buf: [i64; 64],
    val_buf: [i64; 64],
    // Operand-row scratch (avoids zero-initialising stack arrays per op).
    op_a: [i64; 64],
    op_b: [i64; 64],
    // Generation-stamped bank counters for the dynamic conflict path.
    bank_count: [u16; 64],
    bank_gen: [u64; 64],
    gen: u64,
    trace: TraceRole,
}

impl<'k> BlockExec<'k> {
    /// Creates an executor for one launch's compiled kernel.
    pub fn new(ck: &'k CompiledKernel) -> Self {
        let b = ck.b;
        let full_mask = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
        Self {
            ck,
            block: 0,
            block_xy: (0, 0),
            b,
            full_mask,
            regs: vec![0; ck.nregs as usize * b as usize],
            pc: 0,
            masks: Vec::with_capacity(ck.max_arm_depth),
            cur_mask: full_mask,
            arms: Vec::with_capacity(ck.max_arm_depth),
            loops: [0; MAX_LOOP_DEPTH],
            smem: SharedMemory::new(ck.shared_words, u64::from(b)),
            addr_buf: [0; 64],
            val_buf: [0; 64],
            op_a: [0; 64],
            op_b: [0; 64],
            bank_count: [0; 64],
            bank_gen: [0; 64],
            gen: 0,
            trace: TraceRole::Off,
        }
    }

    /// The compiled kernel this executor runs.
    pub fn compiled(&self) -> &'k CompiledKernel {
        self.ck
    }

    /// The per-lane register file, laid out `reg-major` (`r·b + lane`) —
    /// exposed for differential testing against the reference.
    pub fn regs(&self) -> &[i64] {
        &self.regs
    }

    #[inline]
    fn reg(&self, r: Reg, lane: u32) -> i64 {
        self.regs[r as usize * self.b as usize + lane as usize]
    }

    #[inline]
    fn set_reg(&mut self, r: Reg, lane: u32, v: i64) {
        self.regs[r as usize * self.b as usize + lane as usize] = v;
    }

    #[inline]
    fn operand(&self, op: Operand, lane: u32) -> i64 {
        match op {
            Operand::Reg(r) => self.reg(r, lane),
            Operand::Imm(v) => v,
            Operand::Lane => i64::from(lane),
            Operand::Block => self.block_xy.0,
            Operand::BlockY => self.block_xy.1,
            Operand::LoopVar(d) => self.loops.get(d as usize).copied().unwrap_or(0) as i64,
        }
    }

    /// Fills `out[0..b]` with an operand's value for every lane.  An
    /// associated function over disjoint fields so callers can fill the
    /// persistent scratch rows while holding other borrows of `self`.
    fn operand_row_into(
        regs: &[i64],
        b: usize,
        block_xy: (i64, i64),
        loops: &[u32; MAX_LOOP_DEPTH],
        op: Operand,
        out: &mut [i64; 64],
    ) {
        match op {
            Operand::Reg(r) => out[..b].copy_from_slice(&regs[r as usize * b..r as usize * b + b]),
            Operand::Imm(v) => out[..b].fill(v),
            Operand::Lane => {
                for (i, slot) in out[..b].iter_mut().enumerate() {
                    *slot = i as i64;
                }
            }
            Operand::Block => out[..b].fill(block_xy.0),
            Operand::BlockY => out[..b].fill(block_xy.1),
            Operand::LoopVar(d) => {
                out[..b].fill(loops.get(d as usize).copied().unwrap_or(0) as i64)
            }
        }
    }

    fn oob_shared(&self, addr: i64) -> SimError {
        SimError::SharedOutOfBounds { kernel: self.ck.name.clone(), addr, size: self.smem.len() }
    }

    fn oob_global(&self, addr: i64, size: u64) -> SimError {
        SimError::GlobalOutOfBounds { kernel: self.ck.name.clone(), addr, size }
    }

    /// The first out-of-bounds address a lane-ordered scan of the
    /// contiguous range `[base, base + n)` against `len` would report.
    #[inline]
    fn first_oob(base: i64, len: u64) -> i64 {
        if base < 0 {
            base
        } else {
            base.max(len as i64)
        }
    }

    /// Evaluates a site's addresses for the active lanes into `addr_buf`
    /// and returns the materialisation plan.
    fn plan_addrs(&mut self, site: &'k Site, mask: u64) -> AddrPlan {
        match &site.addr {
            SiteAddr::Affine(a) => {
                let folded = a.fold_warp(self.block_xy, &self.loops);
                match site.fast {
                    FastPath::Unit if mask == self.full_mask => AddrPlan::Contig(folded),
                    FastPath::Broadcast => AddrPlan::Bcast(folded),
                    _ => {
                        let stride = a.lane;
                        match a.reg {
                            None => {
                                let mut m = mask;
                                while m != 0 {
                                    let lane = m.trailing_zeros();
                                    m &= m - 1;
                                    self.addr_buf[lane as usize] =
                                        folded + stride * i64::from(lane);
                                }
                            }
                            Some((r, c)) => {
                                let mut m = mask;
                                while m != 0 {
                                    let lane = m.trailing_zeros();
                                    m &= m - 1;
                                    self.addr_buf[lane as usize] =
                                        folded + stride * i64::from(lane) + c * self.reg(r, lane);
                                }
                            }
                        }
                        AddrPlan::PerLane
                    }
                }
            }
            SiteAddr::Tree(t) => {
                let block = self.block_xy;
                let gbase = site.gbase;
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    let regs = &self.regs;
                    let b = self.b as usize;
                    let mut read = |r: Reg| regs[r as usize * b + lane as usize];
                    self.addr_buf[lane as usize] =
                        t.eval(i64::from(lane), block, &self.loops, &mut read) + gbase;
                }
                AddrPlan::PerLane
            }
        }
    }

    /// Bank-conflict degree of one shared access, given the plan.
    fn shared_degree(&mut self, site: &Site, mask: u64, plan: AddrPlan) -> u32 {
        if let Some(d) = site.full_degree {
            // Degree 1 is mask-independent (broadcast, or all lanes in
            // distinct banks); other exact degrees hold for the full warp.
            if d == 1 || mask == self.full_mask {
                return d;
            }
        }
        // Masked-affine static path: the compiler proved this site always
        // executes under `site.mask` and precomputed the exact degree.
        if let (Some(m), Some(d)) = (site.mask, site.masked_degree) {
            if m == mask {
                return d;
            }
        }
        match plan {
            AddrPlan::Contig(_) | AddrPlan::Bcast(_) => 1,
            AddrPlan::PerLane => self.dyn_conflict_degree(mask),
        }
    }

    /// Dynamic conflict degree: max distinct addresses in any one bank
    /// among the active lanes.  Allocation-free: O(active²) duplicate
    /// suppression over `addr_buf` plus a generation-stamped bank-counter
    /// array.
    fn dyn_conflict_degree(&mut self, mask: u64) -> u32 {
        let banks = i64::from(self.b);
        self.gen += 1;
        let gen = self.gen;
        let mut degree = 1u16;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros();
            m &= m - 1;
            let addr = self.addr_buf[lane as usize];
            // Same address in an earlier active lane broadcasts — skip.
            let mut earlier = mask & ((1u64 << lane) - 1);
            let mut dup = false;
            while earlier != 0 {
                let l2 = earlier.trailing_zeros();
                earlier &= earlier - 1;
                if self.addr_buf[l2 as usize] == addr {
                    dup = true;
                    break;
                }
            }
            if dup {
                continue;
            }
            let bank = addr.rem_euclid(banks) as usize;
            let count = if self.bank_gen[bank] == gen { self.bank_count[bank] + 1 } else { 1 };
            self.bank_gen[bank] = gen;
            self.bank_count[bank] = count;
            degree = degree.max(count);
        }
        u32::from(degree)
    }

    /// Coalesced transaction count of one global access, given the plan.
    fn global_txns(&mut self, site: &Site, mask: u64, plan: AddrPlan) -> u32 {
        let bw = i64::from(self.b);
        match plan {
            AddrPlan::Bcast(_) => 1,
            AddrPlan::Contig(folded) => {
                if let Some(table) = &site.txn_table {
                    table[folded.rem_euclid(bw) as usize]
                } else {
                    lane_span_blocks(folded.rem_euclid(bw), 1, u64::from(self.b), u64::from(self.b))
                        as u32
                }
            }
            AddrPlan::PerLane => match &site.addr {
                SiteAddr::Affine(a) if a.reg.is_none() => {
                    // The table is exact for the mask it was computed
                    // over: the site's compile-time mask when one is
                    // known (masked-affine static path), the full warp
                    // otherwise.
                    if mask == site.mask.unwrap_or(self.full_mask) {
                        if let Some(table) = &site.txn_table {
                            let folded = a.fold_warp(self.block_xy, &self.loops);
                            return table[folded.rem_euclid(bw) as usize];
                        }
                    }
                    // Static affine addresses are monotone in lane order:
                    // count quotient transitions over active lanes.
                    let mut txns = 0u32;
                    let mut prev = 0i64;
                    let mut first = true;
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        let q = self.addr_buf[lane as usize].div_euclid(bw);
                        if first || q != prev {
                            txns += 1;
                            prev = q;
                            first = false;
                        }
                    }
                    txns
                }
                _ => self.dyn_distinct_blocks(mask),
            },
        }
    }

    /// Distinct memory blocks among active lanes' addresses, without the
    /// monotonicity guarantee.  Allocation-free O(active²) scan.
    fn dyn_distinct_blocks(&mut self, mask: u64) -> u32 {
        let bw = i64::from(self.b);
        let mut txns = 0u32;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros();
            m &= m - 1;
            let q = self.addr_buf[lane as usize].div_euclid(bw);
            let mut earlier = mask & ((1u64 << lane) - 1);
            let mut dup = false;
            while earlier != 0 {
                let l2 = earlier.trailing_zeros();
                earlier &= earlier - 1;
                if self.addr_buf[l2 as usize].div_euclid(bw) == q {
                    dup = true;
                    break;
                }
            }
            if !dup {
                txns += 1;
            }
        }
        txns
    }

    /// True when this access's timing should be pulled from the replay
    /// trace instead of analysed.
    #[inline]
    fn replaying(&self) -> bool {
        matches!(self.trace, TraceRole::Replay { .. })
    }

    /// Emits a memory event: records it, or swaps in the replayed one.
    #[inline]
    fn emit_mem_event(&mut self, computed: StepEvent) -> StepEvent {
        match &mut self.trace {
            TraceRole::Off => computed,
            TraceRole::Record(events) => {
                events.push(computed);
                computed
            }
            TraceRole::Replay { trace, idx } => {
                // The trace is complete before any replaying block is
                // admitted, and replayable kernels emit identical event
                // streams, so the cursor always lands on a valid entry.
                let e = trace[*idx];
                *idx += 1;
                e
            }
        }
    }

    /// Reads a shared site's words into `val_buf` for the active lanes.
    fn shared_gather(&mut self, plan: AddrPlan, mask: u64) -> Result<(), SimError> {
        let b = self.b as usize;
        match plan {
            AddrPlan::Contig(base) => {
                let len = self.smem.len();
                if base < 0 || base + b as i64 > len as i64 {
                    return Err(self.oob_shared(Self::first_oob(base, len)));
                }
                let start = base as usize;
                self.val_buf[..b].copy_from_slice(&self.smem.words()[start..start + b]);
            }
            AddrPlan::Bcast(addr) => {
                let v = self.smem.read(addr).ok_or_else(|| self.oob_shared(addr))?;
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    self.val_buf[lane as usize] = v;
                }
            }
            AddrPlan::PerLane => {
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    let addr = self.addr_buf[lane as usize];
                    self.val_buf[lane as usize] =
                        self.smem.read(addr).ok_or_else(|| self.oob_shared(addr))?;
                }
            }
        }
        Ok(())
    }

    /// Writes `val_buf` to a shared site for the active lanes.
    fn shared_scatter(&mut self, plan: AddrPlan, mask: u64) -> Result<(), SimError> {
        let b = self.b as usize;
        match plan {
            AddrPlan::Contig(base) => {
                let len = self.smem.len();
                if base < 0 || base + b as i64 > len as i64 {
                    return Err(self.oob_shared(Self::first_oob(base, len)));
                }
                let start = base as usize;
                self.smem.words_mut()[start..start + b].copy_from_slice(&self.val_buf[..b]);
            }
            _ => {
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    let addr = match plan {
                        AddrPlan::Bcast(a) => a,
                        _ => self.addr_buf[lane as usize],
                    };
                    if !self.smem.write(addr, self.val_buf[lane as usize]) {
                        return Err(self.oob_shared(addr));
                    }
                }
            }
        }
        Ok(())
    }

    /// Reads a global site's words into `val_buf` for the active lanes.
    fn global_gather(
        &mut self,
        gmem: &GmemAccess<'_>,
        plan: AddrPlan,
        mask: u64,
    ) -> Result<(), SimError> {
        let b = self.b as usize;
        match plan {
            AddrPlan::Contig(base) => {
                let len = gmem.len();
                if base < 0 || base + b as i64 > len as i64 {
                    return Err(self.oob_global(Self::first_oob(base, len), len));
                }
                let ok = gmem.read_block(base, &mut self.val_buf[..b]);
                debug_assert!(ok);
            }
            AddrPlan::Bcast(addr) => {
                let v = gmem.read(addr).ok_or_else(|| self.oob_global(addr, gmem.len()))?;
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    self.val_buf[lane as usize] = v;
                }
            }
            AddrPlan::PerLane => {
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    let addr = self.addr_buf[lane as usize];
                    self.val_buf[lane as usize] =
                        gmem.read(addr).ok_or_else(|| self.oob_global(addr, gmem.len()))?;
                }
            }
        }
        Ok(())
    }

    /// Writes `val_buf` to a global site for the active lanes.
    fn global_scatter(
        &mut self,
        gmem: &mut GmemAccess<'_>,
        plan: AddrPlan,
        mask: u64,
    ) -> Result<(), SimError> {
        let b = self.b as usize;
        let block = self.block;
        match plan {
            AddrPlan::Contig(base) => {
                let len = gmem.len();
                if base < 0 || base + b as i64 > len as i64 {
                    return Err(self.oob_global(Self::first_oob(base, len), len));
                }
                let ok = gmem.write_block(base, &self.val_buf[..b], block);
                debug_assert!(ok);
            }
            _ => {
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    let addr = match plan {
                        AddrPlan::Bcast(a) => a,
                        _ => self.addr_buf[lane as usize],
                    };
                    if !gmem.write(addr, self.val_buf[lane as usize], block) {
                        return Err(self.oob_global(addr, gmem.len()));
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluates a branch predicate over the active lanes.
    fn eval_pred(&self, pred: &atgpu_ir::PredExpr, parent: u64) -> u64 {
        let block = self.block_xy;
        let mut then_mask = 0u64;
        let mut m = parent;
        while m != 0 {
            let lane = m.trailing_zeros();
            m &= m - 1;
            let regs = &self.regs;
            let b = self.b as usize;
            let mut read = |r: Reg| regs[r as usize * b + lane as usize];
            if pred.eval(i64::from(lane), block, &self.loops, &mut read) {
                then_mask |= 1 << lane;
            }
        }
        then_mask
    }
}

impl BlockSim for BlockExec<'_> {
    fn reset(&mut self, block: u64) {
        self.block = block;
        let gx = self.ck.grid.0.max(1);
        self.block_xy = ((block % gx) as i64, (block / gx) as i64);
        // Clear only what the kernel can observe: registers the compiler
        // could not prove write-before-read, and shared memory unless the
        // kernel provably overwrites all of it (state-exact elision).
        let n = self.b as usize;
        for &r in &self.ck.dirty_regs {
            self.regs[r as usize * n..r as usize * n + n].fill(0);
        }
        if !self.ck.smem_clean {
            self.smem.reset();
        }
        self.pc = 0;
        self.masks.clear();
        self.arms.clear();
        self.cur_mask = self.full_mask;
        self.loops = [0; MAX_LOOP_DEPTH];
        self.trace = TraceRole::Off;
    }

    fn begin_record(&mut self) {
        self.trace = TraceRole::Record(Vec::new());
    }

    fn begin_replay(&mut self, trace: Arc<[StepEvent]>) {
        self.trace = TraceRole::Replay { trace, idx: 0 };
    }

    fn take_trace(&mut self) -> Option<Arc<[StepEvent]>> {
        match std::mem::replace(&mut self.trace, TraceRole::Off) {
            TraceRole::Record(events) => Some(events.into()),
            other => {
                self.trace = other;
                None
            }
        }
    }

    fn step(&mut self, gmem: &mut GmemAccess<'_>) -> Result<StepEvent, SimError> {
        loop {
            let Some(op) = self.ck.prog.get(self.pc as usize) else {
                return Ok(StepEvent::Done);
            };
            match op {
                Uop::LoopStart { depth } => {
                    self.loops[*depth as usize] = 0;
                    self.pc += 1;
                }
                Uop::LoopEnd { depth, count, body_start } => {
                    let d = *depth as usize;
                    self.loops[d] += 1;
                    if self.loops[d] < *count {
                        self.pc = *body_start;
                    } else {
                        self.pc += 1;
                    }
                }
                Uop::ThenEnd { join } => {
                    let pending = self.arms.last_mut().expect("arm stack in sync");
                    if *pending != 0 {
                        self.cur_mask = *pending;
                        *pending = 0;
                        self.pc += 1; // else-region starts right after
                    } else {
                        self.arms.pop();
                        self.cur_mask = self.masks.pop().expect("mask stack in sync");
                        self.pc = *join;
                    }
                }
                Uop::ElseEnd => {
                    self.arms.pop();
                    self.cur_mask = self.masks.pop().expect("mask stack in sync");
                    self.pc += 1;
                }
                Uop::Branch { pred, const_then, else_start, join } => {
                    let parent = self.cur_mask;
                    let then_mask = match const_then {
                        Some(m) => m & parent,
                        None => self.eval_pred(pred, parent),
                    };
                    let else_mask = parent & !then_mask;
                    let has_then = *else_start > self.pc + 1;
                    let has_else = *join > *else_start;
                    if has_then && then_mask != 0 {
                        self.masks.push(parent);
                        self.arms.push(if has_else { else_mask } else { 0 });
                        self.cur_mask = then_mask;
                        self.pc += 1;
                    } else if has_else && else_mask != 0 {
                        self.masks.push(parent);
                        self.arms.push(0);
                        self.cur_mask = else_mask;
                        self.pc = *else_start;
                    } else {
                        self.pc = *join;
                    }
                    return Ok(StepEvent::Compute { cycles: 1 });
                }
                Uop::Sync => {
                    self.pc += 1;
                    return Ok(StepEvent::Compute { cycles: 1 });
                }
                Uop::Alu { op, dst, a, b } => {
                    let mask = self.cur_mask;
                    let (op, dst, a, b) = (*op, *dst, *a, *b);
                    if mask == self.full_mask {
                        let n = self.b as usize;
                        Self::operand_row_into(
                            &self.regs,
                            n,
                            self.block_xy,
                            &self.loops,
                            a,
                            &mut self.op_a,
                        );
                        Self::operand_row_into(
                            &self.regs,
                            n,
                            self.block_xy,
                            &self.loops,
                            b,
                            &mut self.op_b,
                        );
                        let start = dst as usize * n;
                        let (ra, rb) = (&self.op_a, &self.op_b);
                        let row = &mut self.regs[start..start + n];
                        // One branch on `op`, then a tight (vectorisable)
                        // lane loop — the compiler cannot be trusted to
                        // unswitch `op.apply` out of the loop on its own.
                        macro_rules! row_op {
                            ($f:expr) => {
                                for i in 0..n {
                                    row[i] = $f(ra[i], rb[i]);
                                }
                            };
                        }
                        match op {
                            AluOp::Add => row_op!(i64::wrapping_add),
                            AluOp::Sub => row_op!(i64::wrapping_sub),
                            AluOp::Mul => row_op!(i64::wrapping_mul),
                            AluOp::Min => row_op!(|x: i64, y: i64| x.min(y)),
                            AluOp::Max => row_op!(|x: i64, y: i64| x.max(y)),
                            AluOp::And => row_op!(|x: i64, y: i64| x & y),
                            AluOp::Or => row_op!(|x: i64, y: i64| x | y),
                            AluOp::Xor => row_op!(|x: i64, y: i64| x ^ y),
                            AluOp::SetLt => row_op!(|x: i64, y: i64| i64::from(x < y)),
                            AluOp::SetEq => row_op!(|x: i64, y: i64| i64::from(x == y)),
                            _ => row_op!(|x: i64, y: i64| op.apply(x, y)),
                        }
                    } else {
                        let mut m = mask;
                        while m != 0 {
                            let lane = m.trailing_zeros();
                            m &= m - 1;
                            let va = self.operand(a, lane);
                            let vb = self.operand(b, lane);
                            self.set_reg(dst, lane, op.apply(va, vb));
                        }
                    }
                    self.pc += 1;
                    return Ok(StepEvent::Compute { cycles: op.issue_cycles() });
                }
                Uop::Mov { dst, src } => {
                    let mask = self.cur_mask;
                    let (dst, src) = (*dst, *src);
                    if mask == self.full_mask {
                        let n = self.b as usize;
                        let start = dst as usize * n;
                        match src {
                            Operand::Reg(r) => {
                                self.regs.copy_within(r as usize * n..r as usize * n + n, start);
                            }
                            _ => {
                                Self::operand_row_into(
                                    &self.regs,
                                    n,
                                    self.block_xy,
                                    &self.loops,
                                    src,
                                    &mut self.op_a,
                                );
                                self.regs[start..start + n].copy_from_slice(&self.op_a[..n]);
                            }
                        }
                    } else {
                        let mut m = mask;
                        while m != 0 {
                            let lane = m.trailing_zeros();
                            m &= m - 1;
                            let v = self.operand(src, lane);
                            self.set_reg(dst, lane, v);
                        }
                    }
                    self.pc += 1;
                    return Ok(StepEvent::Compute { cycles: 1 });
                }
                Uop::LdShr { dst, site } => {
                    let mask = self.cur_mask;
                    let (dst, site_id) = (*dst, *site);
                    let site = &self.ck.sites[site_id as usize];
                    let plan = self.plan_addrs(site, mask);
                    let degree =
                        if self.replaying() { 0 } else { self.shared_degree(site, mask, plan) };
                    if let AddrPlan::Contig(base) = plan {
                        // Fused path: shared words straight into the
                        // register row, no intermediate buffer.
                        let n = self.b as usize;
                        let len = self.smem.len();
                        if base < 0 || base + n as i64 > len as i64 {
                            return Err(self.oob_shared(Self::first_oob(base, len)));
                        }
                        let start = dst as usize * n;
                        self.regs[start..start + n]
                            .copy_from_slice(&self.smem.words()[base as usize..base as usize + n]);
                    } else {
                        self.shared_gather(plan, mask)?;
                        let mut m = mask;
                        while m != 0 {
                            let lane = m.trailing_zeros();
                            m &= m - 1;
                            self.set_reg(dst, lane, self.val_buf[lane as usize]);
                        }
                    }
                    self.pc += 1;
                    return Ok(self.emit_mem_event(StepEvent::Shared { degree }));
                }
                Uop::StShr { site, src } => {
                    let mask = self.cur_mask;
                    let (site_id, src) = (*site, *src);
                    let site = &self.ck.sites[site_id as usize];
                    let plan = self.plan_addrs(site, mask);
                    let degree =
                        if self.replaying() { 0 } else { self.shared_degree(site, mask, plan) };
                    if let (AddrPlan::Contig(base), Operand::Reg(r)) = (plan, src) {
                        // Fused path: register row straight into shared
                        // memory.
                        let n = self.b as usize;
                        let len = self.smem.len();
                        if base < 0 || base + n as i64 > len as i64 {
                            return Err(self.oob_shared(Self::first_oob(base, len)));
                        }
                        self.smem.words_mut()[base as usize..base as usize + n]
                            .copy_from_slice(&self.regs[r as usize * n..r as usize * n + n]);
                    } else {
                        if mask == self.full_mask {
                            let n = self.b as usize;
                            Self::operand_row_into(
                                &self.regs,
                                n,
                                self.block_xy,
                                &self.loops,
                                src,
                                &mut self.val_buf,
                            );
                        } else {
                            let mut m = mask;
                            while m != 0 {
                                let lane = m.trailing_zeros();
                                m &= m - 1;
                                self.val_buf[lane as usize] = self.operand(src, lane);
                            }
                        }
                        self.shared_scatter(plan, mask)?;
                    }
                    self.pc += 1;
                    return Ok(self.emit_mem_event(StepEvent::Shared { degree }));
                }
                Uop::GlbToShr { shared, global } => {
                    let mask = self.cur_mask;
                    let (shared_id, global_id) = (*shared, *global);
                    let gsite = &self.ck.sites[global_id as usize];
                    let gplan = self.plan_addrs(gsite, mask);
                    let txns =
                        if self.replaying() { 0 } else { self.global_txns(gsite, mask, gplan) };
                    let ssite = &self.ck.sites[shared_id as usize];
                    if let (AddrPlan::Contig(gbase), FastPath::Unit) = (gplan, ssite.fast) {
                        // Fused path: both sides contiguous — one
                        // global-heap-to-shared copy.  Error precedence
                        // matches the reference: global bounds first.
                        let n = self.b as usize;
                        let glen = gmem.len();
                        if gbase < 0 || gbase + n as i64 > glen as i64 {
                            return Err(self.oob_global(Self::first_oob(gbase, glen), glen));
                        }
                        let splan = self.plan_addrs(ssite, mask);
                        let AddrPlan::Contig(sbase) = splan else {
                            unreachable!("unit-stride site under full mask is contiguous")
                        };
                        let degree = if self.replaying() {
                            0
                        } else {
                            self.shared_degree(ssite, mask, splan)
                        };
                        let slen = self.smem.len();
                        if sbase < 0 || sbase + n as i64 > slen as i64 {
                            return Err(self.oob_shared(Self::first_oob(sbase, slen)));
                        }
                        self.smem.words_mut()[sbase as usize..sbase as usize + n]
                            .copy_from_slice(&gmem.view()[gbase as usize..gbase as usize + n]);
                        self.pc += 1;
                        return Ok(self.emit_mem_event(StepEvent::Global { txns, issue: degree }));
                    }
                    self.global_gather(gmem, gplan, mask)?;
                    let splan = self.plan_addrs(ssite, mask);
                    let degree =
                        if self.replaying() { 0 } else { self.shared_degree(ssite, mask, splan) };
                    self.shared_scatter(splan, mask)?;
                    self.pc += 1;
                    return Ok(self.emit_mem_event(StepEvent::Global { txns, issue: degree }));
                }
                Uop::ShrToGlb { global, shared } => {
                    let mask = self.cur_mask;
                    let (shared_id, global_id) = (*shared, *global);
                    let ssite = &self.ck.sites[shared_id as usize];
                    let splan = self.plan_addrs(ssite, mask);
                    let degree =
                        if self.replaying() { 0 } else { self.shared_degree(ssite, mask, splan) };
                    let gsite = &self.ck.sites[global_id as usize];
                    if let (AddrPlan::Contig(sbase), FastPath::Unit) = (splan, gsite.fast) {
                        // Fused path: shared words straight to the global
                        // heap.  Error precedence matches the reference:
                        // shared bounds first.
                        let n = self.b as usize;
                        let slen = self.smem.len();
                        if sbase < 0 || sbase + n as i64 > slen as i64 {
                            return Err(self.oob_shared(Self::first_oob(sbase, slen)));
                        }
                        let gplan = self.plan_addrs(gsite, mask);
                        let AddrPlan::Contig(gbase) = gplan else {
                            unreachable!("unit-stride site under full mask is contiguous")
                        };
                        let txns =
                            if self.replaying() { 0 } else { self.global_txns(gsite, mask, gplan) };
                        let glen = gmem.len();
                        if gbase < 0 || gbase + n as i64 > glen as i64 {
                            return Err(self.oob_global(Self::first_oob(gbase, glen), glen));
                        }
                        let ok = gmem.write_block(
                            gbase,
                            &self.smem.words()[sbase as usize..sbase as usize + n],
                            self.block,
                        );
                        debug_assert!(ok);
                        self.pc += 1;
                        return Ok(self.emit_mem_event(StepEvent::Global { txns, issue: degree }));
                    }
                    self.shared_gather(splan, mask)?;
                    let gplan = self.plan_addrs(gsite, mask);
                    let txns =
                        if self.replaying() { 0 } else { self.global_txns(gsite, mask, gplan) };
                    self.global_scatter(gmem, gplan, mask)?;
                    self.pc += 1;
                    return Ok(self.emit_mem_event(StepEvent::Global { txns, issue: degree }));
                }
            }
        }
    }
}
