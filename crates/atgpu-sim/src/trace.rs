//! Per-operation timeline tracing: pooled span recording in the drivers
//! and Chrome `trace_event` export.
//!
//! When [`crate::SimConfig::trace`] is on, every operation the stream
//! scheduler places — host↔device transfers, kernel launches, peer
//! copies, degraded-mode journal replays, retry attempts and backoff
//! waits — is recorded as a [`Span`]: which device, which hardware lane
//! ([`StreamResource`]), which stream, the exact `[start, end)` the
//! [`atgpu_model::StreamTimeline`] scheduled (round-relative
//! milliseconds), the words moved, and the model's predicted duration
//! where one exists.  The spans land in a [`SpanRing`] — a fixed-capacity
//! pool allocated once up front, overwriting oldest-first when full — so
//! steady-state recording allocates nothing and the traced run's timing
//! arithmetic is bit-identical to the untraced run (tracing *observes*
//! `advance_spanned`'s results; it never feeds back into them).
//!
//! [`chrome_trace_json`] serialises a finished [`Trace`] to the Chrome
//! `trace_event` JSON-array format (hand-rolled — this workspace carries
//! no serde): `pid` = device, `tid` = resource lane, `ph:"X"` duration
//! events in microseconds, plus `ph:"C"` counter tracks for retries,
//! backoff and kernel-cache hits.  The output opens directly in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//! [`validate_chrome_json`] parses such a file back and checks its
//! structural invariants (array form, non-negative times, per-lane
//! non-overlap) — the round-trip check `atgpu-exp check-trace` runs in
//! CI.

use crate::cluster::ClusterSimReport;
use crate::driver::SimReport;
use atgpu_model::StreamResource;

/// Default span-pool capacity ([`crate::SimConfig::trace_capacity`]).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// What a span's operation was — the `name` of its Chrome trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A host→device transfer attempt (one per retry when faults drop).
    TransferIn,
    /// A kernel launch (one span per shard on its device).
    Kernel,
    /// A device→host transfer attempt.
    TransferOut,
    /// A device↔device peer copy attempt.
    Peer,
    /// A degraded-mode journal replay onto the heir's host link.
    Replay,
    /// An exponential-backoff wait between dropped attempts.
    Backoff,
}

impl SpanKind {
    /// The event name the Chrome export uses.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::TransferIn => "TransferIn",
            SpanKind::Kernel => "Kernel",
            SpanKind::TransferOut => "TransferOut",
            SpanKind::Peer => "Peer",
            SpanKind::Replay => "Replay",
            SpanKind::Backoff => "Backoff",
        }
    }
}

/// One traced operation, exactly as the stream scheduler placed it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Round index the operation ran in.
    pub round: u32,
    /// Device whose timeline scheduled it (`pid` in the export).
    pub device: u32,
    /// Hardware lane it occupied (`tid` in the export).
    pub resource: StreamResource,
    /// Stream it was enqueued on.
    pub stream: u32,
    /// The operation kind (event name).
    pub kind: SpanKind,
    /// Words moved (transfers/replay) or thread blocks run (kernels).
    pub words: u64,
    /// Start, in milliseconds relative to the round's start.
    pub start_ms: f64,
    /// End, in milliseconds relative to the round's start.
    pub end_ms: f64,
    /// The model's predicted duration for this operation, or a negative
    /// value when no per-span prediction exists (kernels in pure sim
    /// runs, backoff waits).
    pub predicted_ms: f64,
}

impl Span {
    /// Observed duration.
    pub fn dur_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// A fixed-capacity span pool: allocated once, then recording is a plain
/// indexed store.  When full it overwrites oldest-first and counts what
/// it evicted, so a bounded trace of a huge run keeps the most recent
/// window instead of growing without bound (the renacer span-pool
/// discipline).
#[derive(Debug, Clone)]
pub struct SpanRing {
    spans: Vec<Span>,
    cap: usize,
    /// Overwrite cursor once `spans.len() == cap`.
    next: usize,
    dropped: u64,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans (clamped to ≥ 1), with the
    /// backing store reserved immediately.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self { spans: Vec::with_capacity(cap), cap, next: 0, dropped: 0 }
    }

    /// Records one span; evicts the oldest when the pool is full.  Never
    /// allocates after construction (the backing store is pre-reserved).
    #[inline]
    pub fn push(&mut self, span: Span) {
        if self.spans.len() < self.cap {
            self.spans.push(span);
        } else {
            self.spans[self.next] = span;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted because the pool was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring, returning the retained spans in recording
    /// order.
    fn into_spans(mut self) -> (Vec<Span>, u64) {
        // Once wrapped, the oldest retained span sits at `next`.
        if self.dropped > 0 {
            self.spans.rotate_left(self.next);
        }
        (self.spans, self.dropped)
    }
}

/// Maximum retry/backoff segments buffered per logical transfer.
const SEG_CAP: usize = 64;

/// A fixed buffer for one transfer's fault segments — the per-attempt
/// and per-wait pieces [`crate::fault::FaultRuntime::transfer_segmented`]
/// reports.  Offsets are relative to the transfer's start; `true` marks
/// a backoff wait.  Overflow past the 64-segment cap folds into the last
/// segment (a >64-retry transfer keeps a correct total, losing only
/// segment granularity) so recording stays allocation-free.
#[derive(Debug, Clone)]
pub struct SegBuf {
    segs: [(f64, f64, bool); SEG_CAP],
    len: usize,
}

impl SegBuf {
    fn new() -> Self {
        Self { segs: [(0.0, 0.0, false); SEG_CAP], len: 0 }
    }

    /// Appends one segment `[start_off, end_off)` (`backoff` marks a
    /// wait).
    #[inline]
    pub fn push(&mut self, start_off: f64, end_off: f64, backoff: bool) {
        if self.len < SEG_CAP {
            self.segs[self.len] = (start_off, end_off, backoff);
            self.len += 1;
        } else {
            self.segs[SEG_CAP - 1].1 = end_off;
        }
    }

    fn clear(&mut self) {
        self.len = 0;
    }
}

/// The recording half of tracing: the span pool plus the per-transfer
/// segment buffer the fault retry loop fills.  One tracer serves a whole
/// run (all devices of a cluster).
#[derive(Debug)]
pub struct Tracer {
    ring: SpanRing,
    /// Segment scratch for the in-flight transfer; drained by the next
    /// [`Tracer::record`].
    pub segs: SegBuf,
}

impl Tracer {
    /// A tracer whose pool holds `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        Self { ring: SpanRing::with_capacity(capacity), segs: SegBuf::new() }
    }

    /// Records one scheduled operation spanning `[start_ms, end_ms)` on
    /// `device`'s `resource` lane.  If the segment buffer is non-empty
    /// (the transfer went through the fault retry loop), one span per
    /// segment is emitted instead — attempts under `kind`, waits as
    /// [`SpanKind::Backoff`] — tiling the same interval; the buffer is
    /// then cleared.  `predicted_ms < 0` means "no prediction".
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        round: usize,
        device: u32,
        resource: StreamResource,
        stream: u32,
        kind: SpanKind,
        words: u64,
        predicted_ms: f64,
        start_ms: f64,
        end_ms: f64,
    ) {
        let round = round as u32;
        if self.segs.len == 0 {
            self.ring.push(Span {
                round,
                device,
                resource,
                stream,
                kind,
                words,
                start_ms,
                end_ms,
                predicted_ms,
            });
            return;
        }
        for &(a, b, backoff) in &self.segs.segs[..self.segs.len] {
            let (kind, words, predicted_ms) =
                if backoff { (SpanKind::Backoff, 0, -1.0) } else { (kind, words, predicted_ms) };
            self.ring.push(Span {
                round,
                device,
                resource,
                stream,
                kind,
                words,
                start_ms: start_ms + a,
                end_ms: start_ms + b,
                predicted_ms,
            });
        }
        self.segs.clear();
    }

    /// Ends the run, yielding the recorded spans.
    pub fn finish(self) -> Trace {
        let (spans, dropped) = self.ring.into_spans();
        Trace { spans, dropped }
    }
}

/// A finished run's recorded spans, in recording order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The retained spans (oldest evicted first when the pool
    /// overflowed).
    pub spans: Vec<Span>,
    /// Spans evicted because the pool was full.
    pub dropped: u64,
}

/// One `ph:"C"` counter track of the export: `samples` are
/// `(absolute ms, value)` pairs on `device`'s process row.
#[derive(Debug, Clone, Default)]
pub struct CounterTrack {
    /// Counter name (e.g. `"retries"`).
    pub name: String,
    /// Device (`pid`) the track belongs to.
    pub device: u32,
    /// `(timestamp ms, value)` samples, in time order.
    pub samples: Vec<(f64, f64)>,
}

fn push_f64(out: &mut String, v: f64) {
    // Microsecond timestamps with sub-ns precision; fixed notation keeps
    // the file greppable and the validator's parser trivial.
    out.push_str(&format!("{v:.4}"));
}

/// Serialises a trace to Chrome `trace_event` JSON (array format).
///
/// * `round_starts[r]` is the absolute millisecond at which round `r`
///   begins (spans store round-relative times); missing entries fall
///   back to 0.
/// * `pid` = device, `tid` = [`StreamResource::lane`], `ts`/`dur` in
///   microseconds.
/// * Each span's `args` carry its round, stream, words and — when
///   present — `predicted_ms` next to `observed_ms`.
/// * `counters` become `ph:"C"` tracks.
pub fn chrome_trace_json(trace: &Trace, round_starts: &[f64], counters: &[CounterTrack]) -> String {
    let mut out = String::with_capacity(256 + 160 * trace.spans.len());
    out.push('[');
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };

    // Metadata: name each device's process row and each lane's thread
    // row that actually appears.
    let mut seen: Vec<(u32, u8)> = Vec::new();
    let mut devices: Vec<u32> = Vec::new();
    for s in &trace.spans {
        if !devices.contains(&s.device) {
            devices.push(s.device);
        }
        let key = (s.device, s.resource.lane());
        if !seen.contains(&key) {
            seen.push(key);
        }
    }
    for c in counters {
        if !devices.contains(&c.device) {
            devices.push(c.device);
        }
    }
    devices.sort_unstable();
    seen.sort_unstable();
    for d in &devices {
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{d},\"args\":{{\"name\":\"device {d}\"}}}}"
        ));
    }
    for (d, lane) in &seen {
        let name = lane_name(*lane);
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{d},\"tid\":{lane},\"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }

    for s in &trace.spans {
        let base = round_starts.get(s.round as usize).copied().unwrap_or(0.0);
        let ts_us = (base + s.start_ms) * 1000.0;
        let dur_us = s.dur_ms() * 1000.0;
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"timeline\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":",
            s.kind.name(),
            s.device,
            s.resource.lane()
        ));
        push_f64(&mut out, ts_us);
        out.push_str(",\"dur\":");
        push_f64(&mut out, dur_us);
        out.push_str(&format!(
            ",\"args\":{{\"round\":{},\"stream\":{},\"words\":{},\"observed_ms\":",
            s.round, s.stream, s.words
        ));
        push_f64(&mut out, s.dur_ms());
        if s.predicted_ms >= 0.0 {
            out.push_str(",\"predicted_ms\":");
            push_f64(&mut out, s.predicted_ms);
        }
        out.push_str("}}");
    }

    for c in counters {
        for &(ts_ms, value) in &c.samples {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{},\"ts\":",
                c.name, c.device
            ));
            push_f64(&mut out, ts_ms * 1000.0);
            out.push_str(&format!(",\"args\":{{\"{}\":", c.name));
            push_f64(&mut out, value);
            out.push_str("}}");
        }
    }

    if trace.dropped > 0 {
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"spans_dropped\",\"ph\":\"C\",\"pid\":0,\"ts\":0.0,\"args\":{{\"spans_dropped\":{}}}}}",
            trace.dropped
        ));
    }
    out.push_str("\n]\n");
    out
}

fn lane_name(lane: u8) -> &'static str {
    match lane {
        0 => StreamResource::HostToDevice.lane_name(),
        1 => StreamResource::Compute.lane_name(),
        2 => StreamResource::DeviceToHost.lane_name(),
        _ => StreamResource::Peer.lane_name(),
    }
}

/// Absolute start time of each round of a single-device report.
pub fn sim_round_starts(report: &SimReport) -> Vec<f64> {
    let mut starts = Vec::with_capacity(report.rounds.len());
    let mut t = 0.0;
    for r in &report.rounds {
        starts.push(t);
        t += r.total_ms();
    }
    starts
}

/// Absolute start time of each round of a cluster report.
pub fn cluster_round_starts(report: &ClusterSimReport) -> Vec<f64> {
    let mut starts = Vec::with_capacity(report.rounds.len());
    let mut t = 0.0;
    for r in &report.rounds {
        starts.push(t);
        t += r.total_ms();
    }
    starts
}

/// The export for a traced single-device run: the report's trace with
/// round starts from its own round totals, plus cumulative retry /
/// backoff / cache-hit counter tracks.  `None` when the run was not
/// traced.
pub fn sim_report_trace_json(report: &SimReport) -> Option<String> {
    let trace = report.trace.as_ref()?;
    let starts = sim_round_starts(report);
    let mut retries = CounterTrack { name: "retries".into(), device: 0, samples: Vec::new() };
    let mut backoff = CounterTrack { name: "backoff_ms".into(), device: 0, samples: Vec::new() };
    let (mut racc, mut bacc) = (0.0, 0.0);
    for (r, s) in report.rounds.iter().zip(&starts) {
        racc += r.retries as f64;
        bacc += r.backoff_ms;
        retries.samples.push((*s, racc));
        backoff.samples.push((*s, bacc));
    }
    let end = starts.last().copied().unwrap_or(0.0);
    let hits = CounterTrack {
        name: "cache_hits".into(),
        device: 0,
        samples: vec![(end, report.device_stats.cache.hits as f64)],
    };
    Some(chrome_trace_json(trace, &starts, &[retries, backoff, hits]))
}

/// The export for a traced cluster run: per-device cumulative retry /
/// backoff / cache-hit counter tracks next to the spans.  `None` when
/// the run was not traced.
pub fn cluster_report_trace_json(report: &ClusterSimReport) -> Option<String> {
    let trace = report.trace.as_ref()?;
    let starts = cluster_round_starts(report);
    let n = report.device_stats.len();
    let mut counters = Vec::with_capacity(3 * n);
    let end = starts.last().copied().unwrap_or(0.0);
    for d in 0..n {
        let mut retries =
            CounterTrack { name: "retries".into(), device: d as u32, samples: Vec::new() };
        let mut backoff =
            CounterTrack { name: "backoff_ms".into(), device: d as u32, samples: Vec::new() };
        let (mut racc, mut bacc) = (0.0, 0.0);
        for (r, s) in report.rounds.iter().zip(&starts) {
            if let Some(o) = r.devices.get(d) {
                racc += o.retries as f64;
                bacc += o.backoff_ms;
            }
            retries.samples.push((*s, racc));
            backoff.samples.push((*s, bacc));
        }
        counters.push(retries);
        counters.push(backoff);
        counters.push(CounterTrack {
            name: "cache_hits".into(),
            device: d as u32,
            samples: vec![(end, report.device_stats[d].cache.hits as f64)],
        });
    }
    Some(chrome_trace_json(trace, &starts, &counters))
}

/// Summary a successful [`validate_chrome_json`] returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// `ph:"X"` duration events found.
    pub spans: usize,
    /// `ph:"C"` counter samples found.
    pub counters: usize,
    /// Distinct `pid`s (devices) seen.
    pub devices: usize,
}

/// Splits the body of a JSON array into its top-level objects (brace
/// matching, string-aware).  Hand-rolled on purpose: the workspace has
/// no serde, and the exporter's output is regular enough that structural
/// validation doesn't need a general JSON parser.
fn split_objects(body: &str) -> Result<Vec<&str>, String> {
    let mut objs = Vec::new();
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b' ' | b'\n' | b'\r' | b'\t' | b',' => i += 1,
            b'{' => {
                let start = i;
                let mut depth = 0usize;
                let mut in_str = false;
                let mut escaped = false;
                loop {
                    if i >= bytes.len() {
                        return Err("unterminated object".into());
                    }
                    let c = bytes[i];
                    if in_str {
                        if escaped {
                            escaped = false;
                        } else if c == b'\\' {
                            escaped = true;
                        } else if c == b'"' {
                            in_str = false;
                        }
                    } else {
                        match c {
                            b'"' => in_str = true,
                            b'{' => depth += 1,
                            b'}' => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    i += 1;
                }
                objs.push(&body[start..i]);
            }
            c => return Err(format!("unexpected byte `{}` at array level", c as char)),
        }
    }
    Ok(objs)
}

/// The string value of `"key"` in `obj` (first occurrence; the exporter
/// writes each event's own fields before its `args`).
fn field_str<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = obj.find(&pat)? + pat.len();
    let rest = &obj[at..];
    Some(&rest[..rest.find('"')?])
}

/// The numeric value of `"key"` in `obj` (first occurrence).
fn field_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a Chrome `trace_event` JSON file back and checks it:
///
/// * JSON-array format (what the exporter writes);
/// * every event has a `name` and a valid `ph` (`X`, `C` or `M`);
/// * `X` events carry `pid`, `tid`, `ts ≥ 0`, `dur ≥ 0`;
/// * on each `(pid, tid)` lane, duration events never overlap (spans on
///   one hardware resource are serial by construction — an overlap means
///   a corrupted trace).
///
/// Returns event counts on success, the first violation otherwise.
pub fn validate_chrome_json(s: &str) -> Result<TraceCheck, String> {
    let t = s.trim();
    let body = t
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| "not a JSON array (Chrome trace_event array format)".to_string())?;
    // Span intervals seen so far, grouped by (pid, tid) lane.
    type LaneSpans = ((u64, u64), Vec<(f64, f64)>);
    let mut check = TraceCheck::default();
    let mut lanes: Vec<LaneSpans> = Vec::new();
    let mut devices: Vec<u64> = Vec::new();
    for obj in split_objects(body)? {
        let ph = field_str(obj, "ph").ok_or_else(|| format!("event without ph: {obj}"))?;
        if field_str(obj, "name").is_none() {
            return Err(format!("event without name: {obj}"));
        }
        match ph {
            "M" => {}
            "C" => {
                check.counters += 1;
                let pid =
                    field_num(obj, "pid").ok_or_else(|| format!("counter without pid: {obj}"))?;
                if !devices.contains(&(pid as u64)) {
                    devices.push(pid as u64);
                }
            }
            "X" => {
                check.spans += 1;
                let pid =
                    field_num(obj, "pid").ok_or_else(|| format!("span without pid: {obj}"))? as u64;
                let tid =
                    field_num(obj, "tid").ok_or_else(|| format!("span without tid: {obj}"))? as u64;
                let ts = field_num(obj, "ts").ok_or_else(|| format!("span without ts: {obj}"))?;
                let dur =
                    field_num(obj, "dur").ok_or_else(|| format!("span without dur: {obj}"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("negative ts/dur: {obj}"));
                }
                if !devices.contains(&pid) {
                    devices.push(pid);
                }
                match lanes.iter_mut().find(|(k, _)| *k == (pid, tid)) {
                    Some((_, v)) => v.push((ts, ts + dur)),
                    None => lanes.push(((pid, tid), vec![(ts, ts + dur)])),
                }
            }
            other => return Err(format!("unknown ph `{other}`: {obj}")),
        }
    }
    // Per-lane non-overlap (µs, with slack for the writer's 4-decimal
    // rounding).
    const EPS_US: f64 = 1e-3;
    for ((pid, tid), mut spans) in lanes {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            if w[1].0 < w[0].1 - EPS_US {
                return Err(format!(
                    "overlapping spans on pid {pid} tid {tid}: [{}, {}) then [{}, {})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
    }
    check.devices = devices.len();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(round: u32, device: u32, start: f64, end: f64) -> Span {
        Span {
            round,
            device,
            resource: StreamResource::HostToDevice,
            stream: 0,
            kind: SpanKind::TransferIn,
            words: 8,
            start_ms: start,
            end_ms: end,
            predicted_ms: end - start,
        }
    }

    #[test]
    fn ring_keeps_recording_order_and_counts_evictions() {
        let mut ring = SpanRing::with_capacity(3);
        for i in 0..5 {
            ring.push(span(i, 0, i as f64, i as f64 + 1.0));
        }
        assert_eq!(ring.dropped(), 2);
        let (spans, dropped) = ring.into_spans();
        assert_eq!(dropped, 2);
        // The three most recent, oldest first.
        assert_eq!(spans.iter().map(|s| s.round).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn tracer_expands_fault_segments_into_attempt_and_backoff_spans() {
        let mut tr = Tracer::new(16);
        tr.segs.push(0.0, 1.0, false);
        tr.segs.push(1.0, 1.5, true);
        tr.segs.push(1.5, 2.5, false);
        tr.record(0, 0, StreamResource::HostToDevice, 2, SpanKind::TransferIn, 64, 1.0, 10.0, 12.5);
        let t = tr.finish();
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.spans[0].kind, SpanKind::TransferIn);
        assert_eq!(t.spans[1].kind, SpanKind::Backoff);
        assert_eq!(t.spans[2].kind, SpanKind::TransferIn);
        // Segments tile the scheduled interval with absolute offsets.
        assert_eq!(t.spans[0].start_ms, 10.0);
        assert_eq!(t.spans[1].start_ms, 11.0);
        assert_eq!(t.spans[2].end_ms, 12.5);
        // Backoff spans carry no prediction; attempts keep the payload's.
        assert!(t.spans[1].predicted_ms < 0.0);
        assert_eq!(t.spans[0].words, 64);
        assert_eq!(t.spans[1].words, 0);
    }

    #[test]
    fn export_round_trips_through_the_validator() {
        let trace = Trace {
            spans: vec![
                span(0, 0, 0.0, 1.0),
                Span {
                    resource: StreamResource::Compute,
                    kind: SpanKind::Kernel,
                    predicted_ms: -1.0,
                    start_ms: 1.0,
                    end_ms: 3.0,
                    ..span(0, 0, 0.0, 0.0)
                },
                span(1, 1, 0.5, 2.0),
            ],
            dropped: 0,
        };
        let counters = [CounterTrack {
            name: "retries".into(),
            device: 0,
            samples: vec![(0.0, 0.0), (5.0, 2.0)],
        }];
        let json = chrome_trace_json(&trace, &[0.0, 4.0], &counters);
        let check = validate_chrome_json(&json).unwrap();
        assert_eq!(check.spans, 3);
        assert_eq!(check.counters, 2);
        assert_eq!(check.devices, 2);
    }

    #[test]
    fn validator_rejects_overlap_and_malformed_input() {
        let trace = Trace { spans: vec![span(0, 0, 0.0, 2.0), span(0, 0, 1.0, 3.0)], dropped: 0 };
        let json = chrome_trace_json(&trace, &[0.0], &[]);
        assert!(validate_chrome_json(&json).unwrap_err().contains("overlapping"));
        assert!(validate_chrome_json("{\"not\":\"an array\"}").is_err());
        assert!(validate_chrome_json("[{\"name\":\"x\"}]").is_err(), "missing ph");
    }

    #[test]
    fn dropped_spans_surface_as_a_counter() {
        let mut ring = SpanRing::with_capacity(1);
        ring.push(span(0, 0, 0.0, 1.0));
        ring.push(span(1, 0, 1.0, 2.0));
        let (spans, dropped) = ring.into_spans();
        let json = chrome_trace_json(&Trace { spans, dropped }, &[0.0, 1.0], &[]);
        assert!(json.contains("spans_dropped"));
        validate_chrome_json(&json).unwrap();
    }
}
