//! The host↔device transfer engine.
//!
//! Each transfer transaction costs `α + β·words` milliseconds — Boyer et
//! al.'s affine model, which the paper adopts for its cost function — and
//! actually moves the words.  Optional multiplicative noise (seeded,
//! uniform in `[1−ε, 1+ε]`) lets experiments produce realistically jittery
//! "observed" curves while remaining reproducible.

use crate::gmem::GlobalMemory;
use atgpu_model::{GpuSpec, LinkParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative transfer-time jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XferNoise {
    /// Relative amplitude ε (e.g. 0.02 for ±2%).
    pub rel: f64,
}

/// The transfer engine.
#[derive(Debug)]
pub struct TransferEngine {
    alpha_ms: f64,
    beta_ms_per_word: f64,
    noise: Option<XferNoise>,
    rng: StdRng,
    /// Total words moved host→device.
    pub words_in: u64,
    /// Total words moved device→host.
    pub words_out: u64,
    /// Transactions host→device.
    pub txns_in: u64,
    /// Transactions device→host.
    pub txns_out: u64,
}

impl TransferEngine {
    /// Creates an engine from a device spec (its host↔device link).
    pub fn new(spec: &GpuSpec, noise: Option<XferNoise>, seed: u64) -> Self {
        Self::with_link(&spec.host_link(), noise, seed)
    }

    /// Creates an engine for one explicit link — a host↔device edge or a
    /// device↔device peer edge of a multi-GPU system.  Each link carries
    /// its own `α`/`β` and its own jitter stream.
    pub fn with_link(link: &LinkParams, noise: Option<XferNoise>, seed: u64) -> Self {
        Self {
            alpha_ms: link.alpha_ms,
            beta_ms_per_word: link.beta_ms_per_word,
            noise,
            rng: StdRng::seed_from_u64(seed),
            words_in: 0,
            words_out: 0,
            txns_in: 0,
            txns_out: 0,
        }
    }

    /// The link parameters this engine prices transfers with.
    pub fn link(&self) -> LinkParams {
        LinkParams { alpha_ms: self.alpha_ms, beta_ms_per_word: self.beta_ms_per_word }
    }

    fn jitter(&mut self) -> f64 {
        match self.noise {
            Some(XferNoise { rel }) if rel > 0.0 => self.rng.gen_range(1.0 - rel..=1.0 + rel),
            _ => 1.0,
        }
    }

    /// Prices one inward transaction of `words` words without moving any
    /// data; counted like a regular host→device transfer.  The recovery
    /// path uses this to charge a survivor for absorbing a dead device's
    /// host-side checkpoint — the words themselves are restored from the
    /// checkpoint journal, not copied from a device buffer.
    pub fn replay_in(&mut self, words: u64) -> f64 {
        self.words_in += words;
        self.txns_in += 1;
        (self.alpha_ms + self.beta_ms_per_word * words as f64) * self.jitter()
    }

    /// Host→device copy; returns elapsed milliseconds.
    pub fn to_device(&mut self, gmem: &mut GlobalMemory, dst: u64, data: &[i64]) -> f64 {
        gmem.copy_in(dst, data);
        self.words_in += data.len() as u64;
        self.txns_in += 1;
        (self.alpha_ms + self.beta_ms_per_word * data.len() as f64) * self.jitter()
    }

    /// Device→host copy; returns elapsed milliseconds.
    pub fn to_host(&mut self, gmem: &GlobalMemory, src: u64, out: &mut [i64]) -> f64 {
        gmem.copy_out(src, out);
        self.words_out += out.len() as u64;
        self.txns_out += 1;
        (self.alpha_ms + self.beta_ms_per_word * out.len() as f64) * self.jitter()
    }

    /// Device→device copy over this engine's (peer) link; returns elapsed
    /// milliseconds.  Counted as one outward transaction on this link
    /// (`words_out`/`txns_out`): a directed peer edge only ever moves
    /// data one way, so the in/out split is not meaningful for it.
    pub fn peer(
        &mut self,
        src: &GlobalMemory,
        src_addr: u64,
        dst: &mut GlobalMemory,
        dst_addr: u64,
        words: u64,
    ) -> f64 {
        let s = src_addr as usize;
        let d = dst_addr as usize;
        let n = words as usize;
        dst.words_mut()[d..d + n].copy_from_slice(&src.words()[s..s + n]);
        self.words_out += words;
        self.txns_out += 1;
        (self.alpha_ms + self.beta_ms_per_word * words as f64) * self.jitter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GpuSpec {
        GpuSpec { xfer_alpha_ms: 0.5, xfer_beta_ms_per_word: 0.01, ..GpuSpec::gtx650_like() }
    }

    #[test]
    fn affine_cost_without_noise() {
        let mut g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        let mut e = TransferEngine::new(&spec(), None, 0);
        let t = e.to_device(&mut g, 0, &[1, 2, 3, 4]);
        assert!((t - (0.5 + 0.04)).abs() < 1e-12);
        assert_eq!(g.read(2), Some(3));
        assert_eq!(e.words_in, 4);
        assert_eq!(e.txns_in, 1);
    }

    #[test]
    fn outward_copy_and_cost() {
        let mut g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        g.write(0, 7);
        g.write(1, 8);
        let mut e = TransferEngine::new(&spec(), None, 0);
        let mut out = vec![0; 2];
        let t = e.to_host(&g, 0, &mut out);
        assert_eq!(out, vec![7, 8]);
        assert!((t - 0.52).abs() < 1e-12);
        assert_eq!(e.txns_out, 1);
    }

    #[test]
    fn noise_is_bounded_and_seeded() {
        let mut g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        let mut e1 = TransferEngine::new(&spec(), Some(XferNoise { rel: 0.1 }), 42);
        let mut e2 = TransferEngine::new(&spec(), Some(XferNoise { rel: 0.1 }), 42);
        let base = 0.5 + 0.04;
        for _ in 0..10 {
            let t1 = e1.to_device(&mut g, 0, &[1, 2, 3, 4]);
            let t2 = e2.to_device(&mut g, 0, &[1, 2, 3, 4]);
            assert_eq!(t1, t2, "same seed must give same jitter");
            assert!(t1 >= base * 0.9 - 1e-12 && t1 <= base * 1.1 + 1e-12);
        }
    }

    #[test]
    fn zero_word_transfer_costs_alpha() {
        let mut g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        let mut e = TransferEngine::new(&spec(), None, 0);
        let t = e.to_device(&mut g, 0, &[]);
        assert!((t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transaction_mix_costs_exactly_txns_alpha_plus_words_beta() {
        // A crafted mix of Î = 4 inward transactions moving I = 1+7+32+0
        // words and Ô = 2 outward transactions moving O = 5+11 words must
        // cost exactly Î·α + I·β and Ô·α + O·β.
        let mut g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        let mut e = TransferEngine::new(&spec(), None, 0);
        let mut total_in = 0.0;
        for words in [1usize, 7, 32, 0] {
            total_in += e.to_device(&mut g, 0, &vec![9; words]);
        }
        let mut total_out = 0.0;
        for words in [5usize, 11] {
            let mut out = vec![0; words];
            total_out += e.to_host(&g, 0, &mut out);
        }
        assert_eq!((e.txns_in, e.words_in), (4, 40));
        assert_eq!((e.txns_out, e.words_out), (2, 16));
        assert!((total_in - (4.0 * 0.5 + 40.0 * 0.01)).abs() < 1e-12, "T_I = Î·α + I·β");
        assert!((total_out - (2.0 * 0.5 + 16.0 * 0.01)).abs() < 1e-12, "T_O = Ô·α + O·β");
    }

    #[test]
    fn per_link_engines_price_their_own_link() {
        let fast = LinkParams { alpha_ms: 0.1, beta_ms_per_word: 0.001 };
        let slow = LinkParams { alpha_ms: 0.4, beta_ms_per_word: 0.02 };
        let mut g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        let mut ef = TransferEngine::with_link(&fast, None, 0);
        let mut es = TransferEngine::with_link(&slow, None, 0);
        assert_eq!(ef.link(), fast);
        let tf = ef.to_device(&mut g, 0, &[1; 10]);
        let ts = es.to_device(&mut g, 0, &[1; 10]);
        assert!((tf - 0.11).abs() < 1e-12);
        assert!((ts - 0.6).abs() < 1e-12);
    }

    #[test]
    fn peer_copy_moves_words_and_costs_affine() {
        let link = LinkParams { alpha_ms: 0.25, beta_ms_per_word: 0.005 };
        let mut src = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        let mut dst = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        for i in 0..8 {
            src.write(i, 100 + i);
        }
        let mut e = TransferEngine::with_link(&link, None, 0);
        let t = e.peer(&src, 2, &mut dst, 10, 4);
        assert!((t - (0.25 + 4.0 * 0.005)).abs() < 1e-12);
        for i in 0..4 {
            assert_eq!(dst.read(10 + i), Some(102 + i));
        }
        assert_eq!((e.txns_out, e.words_out), (1, 4));
    }

    #[test]
    fn peer_links_can_be_asymmetric() {
        // A directed pair: 0→1 is NVLink-fast, 1→0 crosses a slow hop.
        let fwd = LinkParams { alpha_ms: 0.01, beta_ms_per_word: 1e-4 };
        let rev = LinkParams { alpha_ms: 0.2, beta_ms_per_word: 4e-3 };
        let mut a = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        let mut b = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        let mut ef = TransferEngine::with_link(&fwd, None, 1);
        let mut er = TransferEngine::with_link(&rev, None, 1);
        let t_fwd = ef.peer(&a, 0, &mut b, 0, 32);
        let t_rev = er.peer(&b, 0, &mut a, 0, 32);
        assert!((t_fwd - (0.01 + 32.0 * 1e-4)).abs() < 1e-12);
        assert!((t_rev - (0.2 + 32.0 * 4e-3)).abs() < 1e-12);
        assert!(t_rev > 10.0 * t_fwd, "the two directions must price independently");
    }

    #[test]
    fn peer_noise_is_deterministic_per_seed() {
        let link = LinkParams { alpha_ms: 0.25, beta_ms_per_word: 0.005 };
        let noise = Some(XferNoise { rel: 0.1 });
        let run = |seed: u64| -> Vec<f64> {
            let src = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
            let mut dst = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
            let mut e = TransferEngine::with_link(&link, noise, seed);
            (0..6).map(|i| e.peer(&src, 0, &mut dst, 0, i * 3)).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same jitter stream");
        assert_ne!(run(7), run(8), "different seeds must decorrelate");
        let base = |w: f64| 0.25 + w * 0.005;
        for (i, t) in run(7).iter().enumerate() {
            let b = base((i * 3) as f64);
            assert!(*t >= b * 0.9 - 1e-12 && *t <= b * 1.1 + 1e-12, "jitter bounded");
        }
    }
}
