//! The host↔device transfer engine.
//!
//! Each transfer transaction costs `α + β·words` milliseconds — Boyer et
//! al.'s affine model, which the paper adopts for its cost function — and
//! actually moves the words.  Optional multiplicative noise (seeded,
//! uniform in `[1−ε, 1+ε]`) lets experiments produce realistically jittery
//! "observed" curves while remaining reproducible.

use crate::gmem::GlobalMemory;
use atgpu_model::GpuSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative transfer-time jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XferNoise {
    /// Relative amplitude ε (e.g. 0.02 for ±2%).
    pub rel: f64,
}

/// The transfer engine.
#[derive(Debug)]
pub struct TransferEngine {
    alpha_ms: f64,
    beta_ms_per_word: f64,
    noise: Option<XferNoise>,
    rng: StdRng,
    /// Total words moved host→device.
    pub words_in: u64,
    /// Total words moved device→host.
    pub words_out: u64,
    /// Transactions host→device.
    pub txns_in: u64,
    /// Transactions device→host.
    pub txns_out: u64,
}

impl TransferEngine {
    /// Creates an engine from a device spec.
    pub fn new(spec: &GpuSpec, noise: Option<XferNoise>, seed: u64) -> Self {
        Self {
            alpha_ms: spec.xfer_alpha_ms,
            beta_ms_per_word: spec.xfer_beta_ms_per_word,
            noise,
            rng: StdRng::seed_from_u64(seed),
            words_in: 0,
            words_out: 0,
            txns_in: 0,
            txns_out: 0,
        }
    }

    fn jitter(&mut self) -> f64 {
        match self.noise {
            Some(XferNoise { rel }) if rel > 0.0 => self.rng.gen_range(1.0 - rel..=1.0 + rel),
            _ => 1.0,
        }
    }

    /// Host→device copy; returns elapsed milliseconds.
    pub fn to_device(&mut self, gmem: &mut GlobalMemory, dst: u64, data: &[i64]) -> f64 {
        gmem.copy_in(dst, data);
        self.words_in += data.len() as u64;
        self.txns_in += 1;
        (self.alpha_ms + self.beta_ms_per_word * data.len() as f64) * self.jitter()
    }

    /// Device→host copy; returns elapsed milliseconds.
    pub fn to_host(&mut self, gmem: &GlobalMemory, src: u64, out: &mut [i64]) -> f64 {
        gmem.copy_out(src, out);
        self.words_out += out.len() as u64;
        self.txns_out += 1;
        (self.alpha_ms + self.beta_ms_per_word * out.len() as f64) * self.jitter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GpuSpec {
        GpuSpec { xfer_alpha_ms: 0.5, xfer_beta_ms_per_word: 0.01, ..GpuSpec::gtx650_like() }
    }

    #[test]
    fn affine_cost_without_noise() {
        let mut g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        let mut e = TransferEngine::new(&spec(), None, 0);
        let t = e.to_device(&mut g, 0, &[1, 2, 3, 4]);
        assert!((t - (0.5 + 0.04)).abs() < 1e-12);
        assert_eq!(g.read(2), Some(3));
        assert_eq!(e.words_in, 4);
        assert_eq!(e.txns_in, 1);
    }

    #[test]
    fn outward_copy_and_cost() {
        let mut g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        g.write(0, 7);
        g.write(1, 8);
        let mut e = TransferEngine::new(&spec(), None, 0);
        let mut out = vec![0; 2];
        let t = e.to_host(&g, 0, &mut out);
        assert_eq!(out, vec![7, 8]);
        assert!((t - 0.52).abs() < 1e-12);
        assert_eq!(e.txns_out, 1);
    }

    #[test]
    fn noise_is_bounded_and_seeded() {
        let mut g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        let mut e1 = TransferEngine::new(&spec(), Some(XferNoise { rel: 0.1 }), 42);
        let mut e2 = TransferEngine::new(&spec(), Some(XferNoise { rel: 0.1 }), 42);
        let base = 0.5 + 0.04;
        for _ in 0..10 {
            let t1 = e1.to_device(&mut g, 0, &[1, 2, 3, 4]);
            let t2 = e2.to_device(&mut g, 0, &[1, 2, 3, 4]);
            assert_eq!(t1, t2, "same seed must give same jitter");
            assert!(t1 >= base * 0.9 - 1e-12 && t1 <= base * 1.1 + 1e-12);
        }
    }

    #[test]
    fn zero_word_transfer_costs_alpha() {
        let mut g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        let mut e = TransferEngine::new(&spec(), None, 0);
        let t = e.to_device(&mut g, 0, &[]);
        assert!((t - 0.5).abs() < 1e-12);
    }
}
