//! # atgpu-sim — a discrete-event GPU simulator
//!
//! This crate is the **hardware substitute** for the paper's NVIDIA GTX
//! 650 testbed: a functional *and* timing simulator for ATGPU kernel IR.
//! Where the abstract model deliberately simplifies, the simulator keeps
//! the microarchitectural behaviour the model abstracts away — which is
//! exactly what makes "model prediction vs simulated observation" a
//! faithful analogue of the paper's "model prediction vs GTX 650
//! measurement":
//!
//! | Behaviour | Model | Simulator |
//! |---|---|---|
//! | Warp scheduling / latency hiding | charged `λ` per access | warps overlap memory stalls with other warps' issue slots |
//! | DRAM bandwidth | unmodelled | memory controller with issue-rate limit and queueing |
//! | Bank conflicts | assumed absent | measured and serialised |
//! | Divergence | both arms always charged | arms with no active lanes are skipped (as real SIMT hardware does) |
//! | Transfer | `Î·α + I·β` | `α + β·words` per transaction, optional noise |
//! | Occupancy | `ℓ = min(⌊M/m⌋, H)` | blocks resident per MP, refilled as blocks retire |
//!
//! ## Structure
//!
//! * [`gmem`] / [`smem`] — global memory (bounded by `G`, canonical buffer
//!   layout) and per-block shared memory (banked);
//! * [`warp`] — lockstep functional execution of one thread block with
//!   divergence masks, producing per-instruction timing events;
//! * [`dram`] — the memory controller (latency + issue-rate bandwidth);
//! * [`mp`] — a multiprocessor: resident warps, ready-time scheduling,
//!   occupancy-limited block slots;
//! * [`device`] — the whole device: `k′` MPs co-simulated in global time
//!   order against a shared memory controller ([`ExecMode::Sequential`]),
//!   or partitioned across OS threads with per-MP bandwidth shares
//!   ([`ExecMode::Parallel`]);
//! * [`xfer`] — the PCIe-like transfer engine (`α`, `β`, optional seeded
//!   noise);
//! * [`driver`] — runs whole multi-round programs and reports per-round
//!   observed times, the simulated counterpart of the paper's "Total" and
//!   "Kernel" series.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod device;
pub mod dram;
pub mod driver;
pub mod error;
pub mod gmem;
pub mod mp;
pub mod smem;
pub mod warp;
pub mod xfer;

pub use device::{Device, KernelStats};
pub use driver::{run_program, HostData, RoundObservation, SimConfig, SimReport};
pub use error::SimError;

/// Execution strategy for the device simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum ExecMode {
    /// One event loop over all MPs in global time order with a shared
    /// memory controller.  Deterministic, bit-exact, the reference mode.
    #[default]
    Sequential,
    /// MPs partitioned over OS threads (crossbeam scoped), each MP with a
    /// `1/k′` share of memory bandwidth and static round-robin block
    /// assignment.  Deterministic functional results; timing agrees with
    /// sequential mode to within a small tolerance (the bandwidth-sharing
    /// approximation).
    Parallel {
        /// Worker threads to use (clamped to at least 1).
        threads: usize,
    },
}

