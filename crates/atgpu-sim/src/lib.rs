//! # atgpu-sim — a discrete-event GPU simulator
//!
//! This crate is the **hardware substitute** for the paper's NVIDIA GTX
//! 650 testbed: a functional *and* timing simulator for ATGPU kernel IR.
//! Where the abstract model deliberately simplifies, the simulator keeps
//! the microarchitectural behaviour the model abstracts away — which is
//! exactly what makes "model prediction vs simulated observation" a
//! faithful analogue of the paper's "model prediction vs GTX 650
//! measurement":
//!
//! | Behaviour | Model | Simulator |
//! |---|---|---|
//! | Warp scheduling / latency hiding | charged `λ` per access | warps overlap memory stalls with other warps' issue slots |
//! | DRAM bandwidth | unmodelled | memory controller with issue-rate limit and queueing |
//! | Bank conflicts | assumed absent | measured and serialised |
//! | Divergence | both arms always charged | arms with no active lanes are skipped (as real SIMT hardware does) |
//! | Transfer | `Î·α + I·β` | `α + β·words` per transaction, optional noise |
//! | Occupancy | `ℓ = min(⌊M/m⌋, H)` | blocks resident per MP, refilled as blocks retire |
//!
//! ## Compile → execute pipeline
//!
//! Kernel launches flow through a compile-then-execute pipeline: the
//! structured IR is lowered **once per launch** into a flat micro-op
//! program with precomputed access shapes, which every thread block then
//! executes allocation-free:
//!
//! ```text
//!           ┌ once per launch ─────────────┐   ┌ per thread block ──────────────┐
//!  Kernel ──► uop::CompiledKernel::compile ├───► engine::BlockExec (flat pc,    ├──► StepEvents
//!  (Instr    │  · flatten Repeat/Pred into │   │   mask/arm stacks, contiguous  │    │
//!   tree)    │    jump-targeted Vec<Uop>   │   │   copies, O(1) txn/degree      │    ▼
//!            │  · classify each site:      │   │   lookups, fixed scratch)      │  mp::Mp (ready-time
//!            │    unit/bcast/strided/dyn   │   │                                │  scheduling, replay
//!            │  · bake conflict degrees +  │   │  replayable? first block       │  cache) → device
//!            │    residue txn tables       │   │  records its event trace,      │  event loop → driver
//!            │  · prove replayability and  │   │  later blocks replay timing    │  (transfers, rounds)
//!            │    init-elision             │   └────────────────────────────────┘
//!            └──────────────────────────────┘
//! ```
//!
//! The pre-engine tree-walking interpreter ([`warp::WarpExec`]) is
//! retained as the executable reference semantics: differential property
//! tests pit the two against each other instruction by instruction, and
//! [`SimConfig::use_reference`] / [`EngineSel::Reference`] select it for
//! baseline benchmarking.
//!
//! ## Cross-launch kernel cache
//!
//! "Once per launch" is actually "once per kernel shape": every
//! [`Device`] owns a [`cache::KernelCache`] mapping a **structural**
//! kernel hash ([`atgpu_ir::Kernel::cache_key`] — instruction body, grid
//! and shared footprint; the *name* is excluded) plus the launch
//! parameters `(buffer bases, b, nregs)` to the compiled micro-op
//! program and, for replay-eligible kernels, the recorded
//! block-invariant timing trace.  Sweep harnesses relaunching one kernel
//! shape thousands of times (atgpu-exp, `throughput`) therefore compile
//! once and replay every block of every later launch from the first
//! cycle — with **bit-identical** memory, events and statistics to a
//! cold launch (`tests/cache_differential.rs` proves this across
//! `ExecMode`s, engines and clusters):
//!
//! * **keying** — the full key (structural hash, complete base vector,
//!   `b`, `nregs`) is stored and compared, so a hash collision alone can
//!   never alias two kernels; mutating one instruction, the grid, the
//!   shared footprint or the memory layout changes the key;
//! * **invalidation** — entries are immutable; stale shapes simply age
//!   out of the FIFO bound ([`SimConfig::cache_capacity`], default
//!   [`cache::DEFAULT_CACHE_CAPACITY`]);
//! * **kill-switch** — [`SimConfig::cache`]` = false` restores
//!   compile-every-launch behaviour exactly (the cold baseline used by
//!   the differential tests and the cache-off bench numbers);
//! * **observability** — per-device hit/miss/entry counters surface as
//!   [`device::DeviceStats`] via [`Device::stats`],
//!   [`SimReport::device_stats`] and
//!   [`cluster::ClusterSimReport::device_stats`], and are reported by
//!   `throughput` and the E-series sweeps.
//!
//! The reference interpreter bypasses the cache entirely: it exists to
//! re-derive everything from the IR tree each time.
//!
//! ## Multi-device clusters
//!
//! [`cluster`] scales the single device to `N` GPUs: each device owns a
//! replica of the program's global-memory layout and sits behind its own
//! links, priced per edge with Boyer et al.'s affine model
//! (`Î·α + I·β`):
//!
//! | link | parameters | used by |
//! |---|---|---|
//! | host ↔ device `d` | `ClusterSpec::host_links[d]` (`α`, `β`) | `TransferIn`/`TransferOut { device: d }` |
//! | device `s` → device `d` | `ClusterSpec::peer_links[s][d]` (directed, asymmetry allowed) | `TransferPeer { src: s, dst: d }` |
//! | cluster barrier | `ClusterSpec::sync_ms` (`σ`, per round) | every round |
//!
//! A `LaunchSharded` step splits one grid into contiguous block ranges
//! ([`atgpu_ir::Shard`], planned by the planners below or by hand).  Every shard
//! executes against its device's pre-launch snapshot with writes
//! deferred, and the logs merge in thread-block order through
//! [`device::apply_write_log`] — the same machinery
//! [`ExecMode::Parallel`] uses — so a sharded launch is **bit-identical**
//! to the single-device launch regardless of device count, shard
//! boundaries or thread interleaving (`tests/cluster_differential.rs`
//! proves this over randomized kernels and plans).  With
//! [`SimConfig::device_threads`] (default on multicore hosts) the shards
//! of one launch are simulated on their own scoped OS threads — shard
//! runs only read their device's snapshot, so the launch is
//! embarrassingly parallel on the host with the identical report
//! (`tests/stream_differential.rs`).  Observed round time is
//! `σ + max_d(device d's stream timeline)` — the slowest device's
//! critical path — mirrored analytically by
//! [`atgpu_model::cost::cluster_cost`] /
//! [`atgpu_model::cost::cluster_cost_streamed`].
//!
//! ## Planner selection (even / weighted / cost-driven pipeline)
//!
//! Three shard planners, in increasing awareness of the cost model:
//!
//! | planner | apportions by | blind to |
//! |---|---|---|
//! | [`cluster::even_shards`] | nothing (equal shares) | everything but the block count |
//! | [`cluster::weighted_shards`] | compute throughput `k′·clock` (largest remainder) | transfer: host-link `α`/`β`, broadcast inputs, wave quantisation |
//! | [`cluster::planned_shards`] | **modeled round time** | nothing the cost model prices |
//!
//! [`cluster::planned_shards`] is the cost-driven planner: it generates
//! candidate apportionments — the even split, the compute-weighted
//! split, the transfer-balanced min–max waterfill
//! ([`atgpu_model::plan::balanced_units`]), and (for peer-aware
//! profiles) one drop-device candidate per idleable device — prices
//! each through [`atgpu_model::plan::plan_cost`] (which runs the same
//! `cluster_cost_streamed` objective the predictions use: per-device
//! host-link `Î·α + I·β`, per-device wave factors, max over devices,
//! cluster `σ`, and the candidate's own peer-traffic rows), and keeps
//! the argmin.  Its modeled round time is therefore **never worse than
//! either heuristic's** (pinned by `tests/planner_properties.rs`).  The
//! objective's inputs are a [`atgpu_model::ShardProfile`] — the
//! workload's per-unit traffic and compute — supplied by the planned
//! builders in `atgpu-algos` (`build_sharded_planned` on
//! vecadd/matmul/reduce and the irregular quartet below).
//!
//! ### Peer-aware planning (halo / gather / scatter / merge)
//!
//! [`atgpu_model::ShardProfile::peer`] ([`atgpu_model::PeerProfile`])
//! makes inter-device traffic a first-class priced quantity: `halo_words`
//! per device boundary per round (stencil), `merge_words_per_unit` to an
//! `owner` device (histogram partial bins, scan block sums) and
//! `scatter_words_per_unit` back out (scan fix-up).
//! [`atgpu_model::plan::plan_cost`] turns a candidate's per-device unit
//! counts into directed peer rows, prices each over
//! `ClusterSpec::peer_links[src][dst]` and charges **both endpoints** —
//! exactly the sim's `TransferPeer` accounting.  Two consequences the
//! zero-peer objective cannot reach:
//!
//! * halo rows appear only between devices that actually *hold* units,
//!   so the planner can see that merging two neighbouring slabs onto one
//!   device deletes their boundary;
//! * the drop-device candidates make "give the device with expensive
//!   peer edges *nothing*" expressible — on an asymmetric peer matrix
//!   this is where the argmin flips away from every peer-blind plan
//!   (experiment E13 measures the flip at ≥ 1.3x observed):
//!
//! ```rust
//! use atgpu_algos::stencil::Stencil;
//! use atgpu_model::{AtgpuMachine, ClusterSpec, GpuSpec};
//! use atgpu_sim::{planned_shards, shard_counts};
//!
//! let machine = AtgpuMachine::gtx650_like();
//! // Four identical devices behind identical host links — but every
//! // peer edge touching device 3 is two orders of magnitude slower.
//! let mut cluster = ClusterSpec::homogeneous(4, GpuSpec::gtx650_like());
//! for d in 0..3 {
//!     cluster.peer_links[d][3] = cluster.peer_links[d][3].scaled(128.0);
//!     cluster.peer_links[3][d] = cluster.peer_links[3][d].scaled(128.0);
//! }
//!
//! let blocks = 256;
//! let profile = Stencil::shard_profile(&machine, 8); // halo_words: 1
//! // Peer-blind pricing sees a homogeneous cluster and splits evenly …
//! let blind = shard_counts(
//!     &planned_shards(blocks, &cluster, &machine, &profile.without_peer()), 4);
//! assert!(blind.iter().all(|&c| c == 64));
//! // … the peer-aware argmin idles the expensive device entirely.
//! let aware = shard_counts(&planned_shards(blocks, &cluster, &machine, &profile), 4);
//! assert_eq!(aware[3], 0);
//! assert_eq!(aware.iter().sum::<u64>(), blocks);
//! ```
//!
//! The irregular quartet exercises every peer pattern end to end, each
//! with a workload-true profile, a `build_sharded_with(plan)` explicit
//! variant and a peer-aware `build_sharded_planned`: **stencil**
//! (boundary-cell halo exchange per round), **scan** (block sums
//! gathered to an owner, scanned, scattered back), **spmv** (row-band
//! imbalance expressed through `unit_inward_words`, routing the planner
//! onto the heterogeneous greedy-pack path) and **histogram**
//! (partial-bin rows merged to the owner).  Random-plan differential
//! tests (`atgpu-algos/tests/cluster_quartet_differential.rs`) pin all
//! four bit-identical to the host reference on both engines, through a
//! mid-program device loss included;
//! `atgpu_analyze::attribute_peer_units` recovers per-unit peer words
//! from the built programs.
//!
//! [`cluster::plan_shards`] is the zero-knowledge entry point: even on a
//! genuinely homogeneous cluster (identical devices **and** identical
//! host links), compute-weighted when only the devices differ (equal
//! links cannot discriminate for any workload, so `k′·clock` is the
//! only signal), and cost-driven with a streaming default profile as
//! soon as the host links differ.  Device-spec equality alone is *not*
//! homogeneity — identical GPUs behind a fast and a slow PCIe link must
//! not get an even split for a transfer-bound kernel (the transfer
//! blind spot this layer exists to close):
//!
//! ```rust
//! use atgpu_model::{AtgpuMachine, ClusterSpec, GpuSpec, ShardProfile};
//! use atgpu_sim::{planned_shards, shard_counts, weighted_shards};
//!
//! let machine = AtgpuMachine::gtx650_like();
//! // Identical GPUs, but device 1 sits behind an 8x slower host link —
//! // "homogeneous" to a compute-weighted planner, not to a priced one.
//! let mut cluster = ClusterSpec::homogeneous(2, GpuSpec::gtx650_like());
//! cluster.host_links[1] = cluster.host_links[1].scaled(8.0);
//!
//! let blocks = 1024;
//! let profile = ShardProfile::streaming(machine.b); // transfer-bound
//! let weighted = shard_counts(&weighted_shards(blocks, &cluster), 2);
//! let planned =
//!     shard_counts(&planned_shards(blocks, &cluster, &machine, &profile), 2);
//! // Compute weighting sees equal `k'·clock` and splits evenly …
//! assert_eq!(weighted[0], weighted[1]);
//! // … while the cost-driven planner starves the slow link.
//! assert!(planned[1] < planned[0]);
//! ```
//!
//! On top of shard planning, the **chunk-size solver**
//! ([`atgpu_model::plan::solve_chunk_units`]) prices double-buffered
//! ping-pong schedules per candidate chunk and picks the modeled
//! optimum — which lands where `T_I ≈ kernel + T_O` per round while the
//! `σ`/`α` amortisation is priced exactly.  `OocVecAdd::build_planned`
//! and `MatMul::build_sharded_pipelined` use it to auto-derive the
//! schedules their `build_streamed` variants hand-write; the solver
//! deliberately emits a *serial* single-slab program when overlap would
//! not repay the extra per-round `σ` (compute-bound shapes on fast
//! links).
//!
//! ## Stream semantics (copy/compute overlap)
//!
//! Transfers carry a **stream** id and rounds may contain
//! `SyncStream`/`SyncDevice` steps ([`atgpu_ir::HostStep`]); kernel
//! launches always run on **stream 0**, the compute stream.  Streams
//! change *when* work is modelled to happen, never *what* happens:
//!
//! * **What overlaps** — operations on different streams of one device
//!   run concurrently unless they share a hardware resource: one
//!   host→device DMA engine, one compute engine, one device→host DMA
//!   engine and one peer engine per device
//!   ([`atgpu_model::StreamResource`]).  So the next chunk's upload
//!   hides behind this chunk's kernel and download (double buffering),
//!   but two same-direction copies never overlap each other, and
//!   everything on one stream is serial.
//! * **What syncs** — `SyncStream(s)` blocks later steps of the round
//!   until everything enqueued on `s` finished; `SyncDevice` waits for
//!   all streams; every round boundary is an implicit device-wide sync.
//! * **How round time is computed** — each round builds a per-device
//!   [`atgpu_model::StreamTimeline`]: an operation starts at
//!   `max(stream ready, resource ready, sync floor)` and the round's
//!   time is when the last operation finishes — the max over per-stream
//!   serial chains between sync points.  A program that keeps everything
//!   on stream 0 reproduces the serial `T_I + kernel + T_O` exactly, and
//!   [`driver::RoundObservation`] reports both (`stream_ms` vs
//!   `serial_ms`).
//!
//! Functional execution always follows host-step order, so a
//! mis-pipelined program (kernel overlapping the upload it depends on)
//! still computes deterministically correct results — its *timing claim*
//! is simply unrealizable on real hardware.  Keeping dependent work on
//! one stream (or inserting syncs) is the program's responsibility,
//! exactly as in CUDA; `tests/stream_differential.rs` proves streamed
//! programs bit-identical to their serial de-streamed forms across
//! modes and engines.
//!
//! ```rust
//! use atgpu_algos::ooc::OocVecAdd;
//! use atgpu_model::{AtgpuMachine, GpuSpec};
//! use atgpu_sim::{run_program, SimConfig};
//!
//! let machine = AtgpuMachine::gtx650_like();
//! let spec = GpuSpec::gtx650_like();
//! // A hand-written double-buffered ooc vecadd: chunk r+1's upload is
//! // enqueued on stream 1 under chunk r's kernel + download.
//! let built = OocVecAdd::new(1 << 14, 1 << 12, 1).build_streamed(&machine).unwrap();
//! let r = run_program(&built.program, built.inputs.clone(), &machine, &spec,
//!                     &SimConfig::default()).unwrap();
//! // The stream-aware critical path beats the serial component sum …
//! assert!(r.total_ms() < r.serial_ms());
//! // … and each round reports both, so the overlap is observable.
//! assert!(r.rounds.iter().all(|o| o.stream_ms <= o.serial_ms() + 1e-12));
//! ```
//!
//! ## Fault model & recovery
//!
//! [`fault`] injects **seeded, deterministic** fault events into a run
//! through [`SimConfig::fault`].  A [`fault::FaultPlan`] is data — a
//! seed plus a list of [`fault::FaultEvent`]s — so every chaos run
//! replays exactly, and an **empty plan is bit-identical** (memory,
//! stats, timing) to a build with fault injection absent: the runtime
//! is only constructed when events exist
//! (`tests/chaos_differential.rs` pins this).  Four event kinds:
//!
//! | event | effect | recovery | pricing |
//! |---|---|---|---|
//! | `TransferDrop { edge, nth }` | the nth *attempt* on a link fails | retry with exponential backoff | every attempt pays the full affine transfer cost; waits of `σ·2ᵏ` accumulate as `backoff_ms` |
//! | `LinkDegraded { edge, factor, window }` | attempts in the round window cost `× factor` | none needed (slow, not wrong) | multiplies each attempt's cost |
//! | `Straggler { device, clock_factor }` | device's kernels run `× clock_factor` slower | none needed | multiplies kernel milliseconds |
//! | `DeviceDown { device, at_round }` | device dies at the start of `at_round` | re-apportionment over survivors | journal replay + takeover shards, priced per survivor link |
//!
//! Retry counts are **exact and recomputable**: drops are indexed by
//! attempt number per edge, so a mirror [`fault::FaultRuntime`] predicts
//! `retries`/`backoff_ms` ([`DeviceStats`], per-round observations) to
//! the counter:
//!
//! ```rust
//! use atgpu_algos::vecadd::VecAdd;
//! use atgpu_model::{AtgpuMachine, ClusterSpec, GpuSpec};
//! use atgpu_sim::{run_cluster_program, FaultEvent, FaultPlan, LinkEdge, SimConfig};
//!
//! let machine = AtgpuMachine::gtx650_like();
//! let cluster = ClusterSpec::homogeneous(2, GpuSpec::gtx650_like());
//! let built = VecAdd::new(32 * 8, 7).build_sharded(&machine, 2).unwrap();
//! let run = |sim: &SimConfig| {
//!     run_cluster_program(&built.program, built.inputs.clone(), &machine,
//!                         &cluster, sim).unwrap()
//! };
//! let base = run(&SimConfig::default());
//!
//! // Drop device 0's first two host-link transfer attempts: the driver
//! // retries with exponential backoff and the answer cannot change.
//! let mut plan = FaultPlan::new(0);
//! plan.push(FaultEvent::TransferDrop { edge: LinkEdge::Host(0), nth: 0 });
//! plan.push(FaultEvent::TransferDrop { edge: LinkEdge::Host(0), nth: 1 });
//! let faulted = run(&SimConfig { fault: plan, ..SimConfig::default() });
//!
//! assert_eq!(faulted.output(built.outputs[0]), base.output(built.outputs[0]));
//! // Two scheduled drops are exactly two retries — not a distribution.
//! assert_eq!(faulted.device_stats_total().retries, 2);
//! // Every failed attempt and backoff wait is priced into wall-clock.
//! assert!(faulted.total_ms() > base.total_ms());
//! ```
//!
//! **Device loss** is survived by replanning, and the answer provably
//! does not change.  Every global-memory mutation on every device is
//! journaled (address, value, cluster-global sequence number) while
//! faults are active.  When device `d` dies at the start of a round:
//!
//! 1. each survivor merges `d`'s journal by **last-write-wins on the
//!    sequence number** — restoring exactly the words where `d` held the
//!    latest value — priced as one inward transaction
//!    (`α + β·words_replayed`) on the survivor's own host link and
//!    counted in `DeviceStats::recoveries`;
//! 2. `d`'s unfinished shards are re-apportioned across survivors by the
//!    PR-5 cost planner ([`cluster::planned_shards`] over the surviving
//!    sub-spec), and its transfers are redirected (inputs broadcast to
//!    all survivors, outputs served by the lowest-index survivor);
//! 3. completed rounds are never re-executed — the journal *is* the
//!    host-side checkpoint.
//!
//! Because sharded launches merge write logs in thread-block order
//! ([`device::apply_write_log`]), the post-recovery shard plan is
//! bit-identical to the fault-free one — the same argument that makes
//! any shard plan bit-identical to single-device execution.  Losing the
//! last device is unrecoverable and surfaces as
//! [`SimError::DeviceLost`].  Independently, a **watchdog**
//! ([`SimConfig::watchdog_cycles`]) bounds each launch's simulated
//! cycles and turns runaway kernels into structured
//! [`SimError::Watchdog`] errors instead of hangs.
//! [`atgpu_model::cost::cluster_cost_degraded`] mirrors the whole
//! recovery path analytically so predictions track degraded runs too.
//!
//! ## Timeline tracing
//!
//! [`SimConfig::trace`]` = true` (off by default) records every
//! scheduled operation — each H2D/compute/D2H/peer lane occupancy the
//! [`atgpu_model::StreamTimeline`] computes — as a [`trace::Span`]
//! `{round, device, resource lane, stream, kind, words, start, end,
//! predicted_ms}`.  Tracing *observes* the scheduler's results
//! (`advance_spanned` returns the same `(start, end)` the untraced
//! `advance` collapses to a finish time), never feeds back into them,
//! so a traced run is **bit-identical** in memory, statistics and
//! timing to an untraced one; with tracing off the only residue is one
//! `Option` null test per operation, the same gating idiom the fault
//! plan uses (`atgpu-bench` pins both claims).  Spans land in a
//! pooled, pre-allocated [`trace::SpanRing`]
//! ([`SimConfig::trace_capacity`], default
//! [`trace::DEFAULT_TRACE_CAPACITY`]): the steady state allocates
//! nothing per span (`tests/engine_alloc.rs`), and when the ring is
//! full the oldest spans are overwritten and surfaced as a
//! `spans_dropped` count rather than growing or erroring.
//!
//! Fault machinery is traced too: each retry attempt and each
//! exponential-backoff wait from [`fault::FaultRuntime`] becomes its
//! own span segment ([`fault::FaultRuntime::transfer_segmented`]
//! reports segments that tile the fused transfer exactly), and a
//! degraded-mode journal replay appears as a `Replay` span on the
//! heir's host lane.
//!
//! [`trace::chrome_trace_json`] serialises a finished [`trace::Trace`]
//! to Chrome `trace_event` JSON (the array form) loadable in
//! `chrome://tracing` or Perfetto: `pid` = device, `tid` = resource
//! lane, duration events carry `round`/`stream`/`words`/`observed_ms`
//! and, where the model prices the operation, `predicted_ms`; counter
//! tracks plot cumulative retries, backoff milliseconds and kernel
//! cache hits per device.  [`trace::sim_report_trace_json`] /
//! [`trace::cluster_report_trace_json`] build the export straight from
//! a report, and [`trace::validate_chrome_json`] parses it back
//! (structure, required fields, per-lane monotone non-overlap) — the
//! round-trip check `atgpu-exp check-trace` and CI run on every traced
//! smoke artifact.  On the analytic side,
//! [`atgpu_model::cost::schedule_round_spans`] emits *predicted* spans
//! from the same `RoundSchedule`s, so the E-series sweeps report
//! per-span predicted-vs-observed error, not just round totals.
//!
//! ## Structure
//!
//! * [`gmem`] / [`smem`] — global memory (bounded by `G`, canonical buffer
//!   layout) and per-block shared memory (banked);
//! * [`uop`] — the flat micro-op program: compile-once lowering, per-site
//!   access-shape classification (shared with `atgpu-analyze` through
//!   `atgpu_ir::affine`), replayability and initialisation analysis;
//! * [`cache`] — the cross-launch kernel cache: keyed compiled programs
//!   plus recorded timing traces, per device (hit/miss counters in
//!   [`device::DeviceStats`]);
//! * [`engine`] — the micro-op block executor: allocation-free stepping,
//!   contiguous fast paths, block-invariant timing replay;
//! * [`warp`] — the reference interpreter: lockstep tree-walking
//!   execution of one thread block with divergence masks;
//! * [`dram`] — the memory controller (latency + issue-rate bandwidth);
//! * [`mp`] — a multiprocessor: resident warps, tournament-tree
//!   ready-time scheduling, occupancy-limited block slots, the per-MP
//!   replay cache;
//! * [`device`] — the whole device: `k′` MPs co-simulated in global time
//!   order against a shared memory controller ([`ExecMode::Sequential`]),
//!   or partitioned across OS threads with per-MP bandwidth shares
//!   ([`ExecMode::Parallel`]);
//! * [`xfer`] — the per-link transfer engine (`α`, `β`, optional seeded
//!   noise; host↔device and device↔device peer edges);
//! * [`fault`] — seeded deterministic fault plans and the runtime that
//!   injects them (drops, degradation, stragglers, device death);
//! * [`trace`] — per-operation span recording (pooled ring), Chrome
//!   `trace_event` export and the round-trip validator;
//! * [`driver`] — runs whole multi-round programs and reports per-round
//!   observed times, the simulated counterpart of the paper's "Total" and
//!   "Kernel" series;
//! * [`cluster`] — the multi-device layer: `N` devices with per-device
//!   memory replicas and links, sharded launches, peer transfers, and
//!   [`cluster::run_cluster_program`] with per-device round
//!   observations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod cluster;
pub mod device;
pub mod dram;
pub mod driver;
pub mod engine;
pub mod error;
pub mod fault;
pub mod gmem;
pub mod mp;
pub mod smem;
pub mod trace;
pub mod uop;
pub mod warp;
pub mod xfer;

pub use cache::{CacheEntry, CacheKey, CacheStats, KernelCache};
pub use cluster::{
    counts_to_shards, even_shards, plan_shards, planned_shards, run_cluster_program,
    run_cluster_program_on, shard_counts, weighted_shards, Cluster, ClusterRoundObservation,
    ClusterSimReport, DeviceRoundObservation, ShardStats,
};
pub use device::{apply_write_log, Device, DeviceStats, KernelStats};
pub use driver::{run_program, HostData, RoundObservation, SimConfig, SimReport};
pub use engine::{BlockExec, BlockSim};
pub use error::SimError;
pub use fault::{FaultEvent, FaultPlan, FaultRuntime, LinkEdge};
pub use trace::{
    chrome_trace_json, cluster_report_trace_json, sim_report_trace_json, validate_chrome_json,
    Span, SpanKind, SpanRing, Trace, Tracer, DEFAULT_TRACE_CAPACITY,
};
pub use uop::CompiledKernel;

/// Which block executor a launch uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineSel {
    /// The flat micro-op engine: kernel IR compiled once per launch,
    /// allocation-free block execution, block-invariant timing replay.
    #[default]
    MicroOp,
    /// The tree-walking reference interpreter ([`warp::WarpExec`]) — the
    /// pre-engine baseline, retained for differential testing and
    /// benchmarking.
    Reference,
}

/// Execution strategy for the device simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One event loop over all MPs in global time order with a shared
    /// memory controller.  Deterministic, bit-exact, the reference mode.
    #[default]
    Sequential,
    /// MPs partitioned over OS threads (crossbeam scoped), each MP with a
    /// `1/k′` share of memory bandwidth and static round-robin block
    /// assignment.  Deterministic functional results; timing agrees with
    /// sequential mode to within a small tolerance (the bandwidth-sharing
    /// approximation).
    Parallel {
        /// Worker threads to use (clamped to at least 1).
        threads: usize,
    },
}
