//! Per-block shared memory: `m` words across `b` banks.
//!
//! Word `w` lives in bank `w mod b` ("b successive words reside in
//! distinct banks").  The buffer is reused across blocks resident in the
//! same slot and cleared on block start.

/// One thread block's shared memory.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    words: Vec<i64>,
    banks: u64,
}

impl SharedMemory {
    /// Allocates `m` words over `b` banks.
    pub fn new(m: u64, b: u64) -> Self {
        Self { words: vec![0; m as usize], banks: b.max(1) }
    }

    /// Clears for the next resident block (keeps the allocation —
    /// workhorse-buffer reuse on the hot path).
    pub fn reset(&mut self) {
        self.words.fill(0);
    }

    /// Words available.
    #[inline]
    pub fn len(&self) -> u64 {
        self.words.len() as u64
    }

    /// True when the block declared no shared memory.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The bank holding word address `addr`.
    #[inline]
    pub fn bank_of(&self, addr: u64) -> u64 {
        addr % self.banks
    }

    /// Reads a word.
    #[inline]
    pub fn read(&self, addr: i64) -> Option<i64> {
        usize::try_from(addr).ok().and_then(|a| self.words.get(a)).copied()
    }

    /// Writes a word.
    #[inline]
    pub fn write(&mut self, addr: i64, value: i64) -> bool {
        match usize::try_from(addr).ok().and_then(|a| self.words.get_mut(a)) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// The whole word array (contiguous fast paths in the micro-op
    /// engine).
    #[inline]
    pub fn words(&self) -> &[i64] {
        &self.words
    }

    /// Mutable view of the word array.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [i64] {
        &mut self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_and_reset() {
        let mut s = SharedMemory::new(8, 4);
        assert!(s.write(3, 9));
        assert_eq!(s.read(3), Some(9));
        s.reset();
        assert_eq!(s.read(3), Some(0));
    }

    #[test]
    fn bounds_checked() {
        let mut s = SharedMemory::new(8, 4);
        assert_eq!(s.read(8), None);
        assert_eq!(s.read(-1), None);
        assert!(!s.write(8, 1));
    }

    #[test]
    fn bank_mapping_wraps() {
        let s = SharedMemory::new(8, 4);
        assert_eq!(s.bank_of(0), 0);
        assert_eq!(s.bank_of(5), 1);
        assert_eq!(s.bank_of(7), 3);
    }
}
