//! The cross-launch kernel cache: keyed compiled programs plus recorded
//! block-invariant timing traces, reused across launches the way real
//! drivers cache PTX→SASS compilations.
//!
//! ## Keying rule
//!
//! A cache entry is addressed by everything [`CompiledKernel::compile`]
//! reads:
//!
//! * [`atgpu_ir::Kernel::cache_key`] — a stable **structural** hash of
//!   the instruction body, grid and shared footprint (names excluded:
//!   renamed kernels share an entry, any instruction mutation misses);
//! * the device-buffer **base addresses** (compilation folds them into
//!   affine sites and the coalescing transaction tables);
//! * the lane count `b` and register count `nregs`.
//!
//! The full key — including the complete base vector, not just a hash of
//! it — is stored and compared on lookup, so two kernels can never
//! false-hit through a hash collision alone.
//!
//! ## Trace reuse
//!
//! When a kernel is replay-eligible ([`CompiledKernel::replayable`]) its
//! memory-event stream is provably identical for every thread block *and
//! therefore for every launch* of the same compiled kernel: eligibility
//! requires every divergence mask and every site's timing contribution
//! to be independent of the block index and of loaded data.  The first
//! launch records one block's trace into the entry
//! ([`CacheEntry::trace`], a write-once slot); later launches seed every
//! multiprocessor with it, so **all** blocks replay from the first cycle
//! — no per-launch first-block warmup.  Replaying blocks still execute
//! functionally (their memory writes are real); only the timing analysis
//! is skipped, which is what makes cached and cold launches bit-identical
//! in memory, statistics and events (`tests/cache_differential.rs`).
//!
//! ## Invalidation and the kill-switch
//!
//! Entries are only ever superseded, never mutated: a changed kernel or
//! layout produces a different key.  The per-device cache holds at most
//! [`SimConfig::cache_capacity`](crate::SimConfig::cache_capacity)
//! entries, evicting the oldest insertion (FIFO) beyond that, and
//! [`SimConfig::cache`](crate::SimConfig::cache) is the kill-switch:
//! when off, every launch compiles fresh and records nothing — the
//! pre-cache behaviour, retained for differential testing.
//!
//! Each [`crate::Device`] owns its own cache, so threaded cluster
//! dispatch never contends across devices; within a device, lookups take
//! a read lock only and the compile happens outside any lock.

use crate::uop::CompiledKernel;
use crate::warp::StepEvent;
use atgpu_ir::Kernel;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Default per-device entry bound (see
/// [`SimConfig::cache_capacity`](crate::SimConfig::cache_capacity)).
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// The full lookup key of one compiled kernel (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Structural kernel hash ([`Kernel::cache_key`]).
    pub kernel: u64,
    /// Device-buffer base addresses the compile folded in.
    pub bases: Box<[u64]>,
    /// Lanes per block.
    pub b: u32,
    /// Registers per lane.
    pub nregs: u32,
}

/// One cached compilation: the flat program plus, for replay-eligible
/// kernels, the recorded block-invariant timing trace.
#[derive(Debug)]
pub struct CacheEntry {
    /// The compiled kernel, shared by every launch that hits this entry.
    pub compiled: Arc<CompiledKernel>,
    /// The recorded memory-event trace, set once by the first launch
    /// that completes a recording block (replayable kernels only).
    pub trace: OnceLock<Arc<[StepEvent]>>,
}

impl CacheEntry {
    fn new(compiled: CompiledKernel) -> Arc<Self> {
        Arc::new(Self { compiled: Arc::new(compiled), trace: OnceLock::new() })
    }

    /// The cached trace to seed a launch's multiprocessors with, if one
    /// was recorded.
    pub fn seeded_trace(&self) -> Option<Arc<[StepEvent]>> {
        if self.compiled.replayable {
            self.trace.get().cloned()
        } else {
            None
        }
    }
}

/// Cache observability counters, surfaced through
/// [`crate::device::DeviceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Launches served from a cached compilation.
    pub hits: u64,
    /// Launches that compiled fresh (and, when enabled, populated the
    /// cache).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Folds another device's counters in (cluster-wide totals).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.entries += other.entries;
    }
}

/// The per-device keyed kernel cache.
#[derive(Debug)]
pub struct KernelCache {
    map: RwLock<HashMap<CacheKey, Arc<CacheEntry>>>,
    /// Insertion order for FIFO eviction, guarded separately so the hit
    /// path never takes a write lock.
    order: Mutex<VecDeque<CacheKey>>,
    capacity: AtomicUsize,
    enabled: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl KernelCache {
    /// An enabled cache bounded to `capacity` entries (a capacity of 0
    /// disables storage entirely, like the kill-switch).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
            order: Mutex::new(VecDeque::new()),
            capacity: AtomicUsize::new(capacity),
            enabled: AtomicBool::new(true),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Turns the cache on or off (the
    /// [`SimConfig::cache`](crate::SimConfig::cache) kill-switch).
    /// Disabling does not drop resident entries; re-enabling sees them
    /// again.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Re-bounds the cache, evicting oldest-first if the new capacity is
    /// below the resident count.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut map = self.map.write().expect("cache lock poisoned");
        let mut order = self.order.lock().expect("cache order lock poisoned");
        while map.len() > capacity {
            match order.pop_front() {
                Some(old) => {
                    map.remove(&old);
                }
                None => break,
            }
        }
    }

    /// Whether lookups are live.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Drops every entry (counters are kept — they describe lookups, not
    /// contents).
    pub fn clear(&self) {
        self.map.write().expect("cache lock poisoned").clear();
        self.order.lock().expect("cache order lock poisoned").clear();
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.read().expect("cache lock poisoned").len(),
        }
    }

    /// Looks up (or compiles and inserts) the compilation of `kernel`
    /// for the launch parameters `(bases, b, nregs)`.
    ///
    /// With the cache disabled this compiles fresh into an unshared
    /// entry and records nothing — cold-launch behaviour.
    pub fn get_or_compile(
        &self,
        kernel: &Kernel,
        bases: &[u64],
        b: u32,
        nregs: u32,
    ) -> Arc<CacheEntry> {
        let capacity = self.capacity.load(Ordering::Relaxed);
        if !self.enabled() || capacity == 0 {
            return CacheEntry::new(CompiledKernel::compile(kernel, bases, b, nregs));
        }
        let key = CacheKey { kernel: kernel.cache_key(), bases: bases.into(), b, nregs };
        if let Some(entry) = self.map.read().expect("cache lock poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(entry);
        }
        // Compile outside any lock: misses on different keys proceed in
        // parallel and never block a concurrent hit.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = CacheEntry::new(CompiledKernel::compile(kernel, bases, b, nregs));
        let mut map = self.map.write().expect("cache lock poisoned");
        if let Some(entry) = map.get(&key) {
            // A concurrent miss on the same key won the race; share its
            // entry so the recorded trace converges on one slot.
            return Arc::clone(entry);
        }
        let mut order = self.order.lock().expect("cache order lock poisoned");
        while map.len() >= capacity {
            match order.pop_front() {
                Some(old) => {
                    map.remove(&old);
                }
                None => break,
            }
        }
        order.push_back(key.clone());
        map.insert(key, Arc::clone(&fresh));
        fresh
    }
}

impl Default for KernelCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, DBuf, KernelBuilder, Operand};

    fn kernel(name: &str, imm: i64) -> Kernel {
        let mut kb = KernelBuilder::new(name, 4, 8);
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::block() * 4 + AddrExpr::lane());
        kb.mov(0, Operand::Imm(imm));
        kb.build()
    }

    #[test]
    fn hit_returns_same_compilation() {
        let cache = KernelCache::new(8);
        let k = kernel("a", 1);
        let e1 = cache.get_or_compile(&k, &[0], 4, 1);
        let e2 = cache.get_or_compile(&k, &[0], 4, 1);
        assert!(Arc::ptr_eq(&e1, &e2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn renamed_kernel_hits_mutated_kernel_misses() {
        let cache = KernelCache::new(8);
        let e1 = cache.get_or_compile(&kernel("a", 1), &[0], 4, 1);
        let e2 = cache.get_or_compile(&kernel("b", 1), &[0], 4, 1);
        assert!(Arc::ptr_eq(&e1, &e2), "name is not part of the key");
        let e3 = cache.get_or_compile(&kernel("a", 2), &[0], 4, 1);
        assert!(!Arc::ptr_eq(&e1, &e3), "instruction mutation must miss");
    }

    #[test]
    fn launch_parameters_are_part_of_the_key() {
        let cache = KernelCache::new(8);
        let k = kernel("a", 1);
        let base = cache.get_or_compile(&k, &[0], 4, 1);
        for (bases, b, nregs) in [(&[8u64][..], 4, 1), (&[0][..], 8, 1), (&[0][..], 4, 2)] {
            let e = cache.get_or_compile(&k, bases, b, nregs);
            assert!(!Arc::ptr_eq(&base, &e), "bases/b/nregs must key separately");
        }
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = KernelCache::new(2);
        cache.get_or_compile(&kernel("a", 1), &[0], 4, 1);
        cache.get_or_compile(&kernel("a", 2), &[0], 4, 1);
        cache.get_or_compile(&kernel("a", 3), &[0], 4, 1); // evicts imm=1
        assert_eq!(cache.stats().entries, 2);
        cache.get_or_compile(&kernel("a", 1), &[0], 4, 1); // must re-miss
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn kill_switch_compiles_fresh() {
        let cache = KernelCache::new(8);
        cache.set_enabled(false);
        let k = kernel("a", 1);
        let e1 = cache.get_or_compile(&k, &[0], 4, 1);
        let e2 = cache.get_or_compile(&k, &[0], 4, 1);
        assert!(!Arc::ptr_eq(&e1, &e2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
        cache.set_enabled(true);
        cache.get_or_compile(&k, &[0], 4, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn clear_drops_entries() {
        let cache = KernelCache::new(8);
        cache.get_or_compile(&kernel("a", 1), &[0], 4, 1);
        assert_eq!(cache.stats().entries, 1);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        cache.get_or_compile(&kernel("a", 1), &[0], 4, 1);
        assert_eq!(cache.stats().misses, 2);
    }
}
