//! Runs whole multi-round programs: the simulated counterpart of the
//! paper's timed experiments.
//!
//! For each round the driver performs the inward `W` transfers, launches
//! the kernel on the device, performs the outward `W` transfers and
//! charges the synchronisation overhead — producing exactly the
//! decomposition the paper measures: **Total** running time vs **Kernel**
//! running time, with the transfer share `ΔE` in between.
//!
//! ## Streams
//!
//! Functional execution always follows host-step order; **streams affect
//! timing only**.  Every transfer/launch duration is scheduled through a
//! per-round [`StreamTimeline`]: ops on one stream are serial, ops on
//! different streams overlap unless they share a hardware resource (one
//! DMA engine per direction, one compute engine), and
//! `SyncStream`/`SyncDevice` raise the floor.  A round's observed time is
//! the timeline's finish — the max over per-stream chains — plus `σ`.
//! Programs that keep everything on stream 0 time out exactly as before.

use crate::device::{Device, KernelStats};
use crate::error::SimError;
use crate::fault::{FaultPlan, FaultRuntime, LinkEdge};
use crate::gmem::GlobalMemory;
use crate::trace::{SpanKind, Tracer};
use crate::xfer::{TransferEngine, XferNoise};
use crate::ExecMode;
use atgpu_ir::{HostBufRole, HostStep, Program};
use atgpu_model::{AtgpuMachine, GpuSpec, StreamResource, StreamTimeline};

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Execution strategy.
    pub mode: ExecMode,
    /// Transfer-time jitter (None = deterministic).
    pub noise: Option<XferNoise>,
    /// RNG seed for the jitter.
    pub seed: u64,
    /// Detect cross-block global write races.
    pub detect_races: bool,
    /// Drive the tree-walking reference interpreter instead of the
    /// micro-op engine (differential tests, baseline benchmarks).
    pub use_reference: bool,
    /// Simulate a sharded launch's devices on their own OS threads
    /// (cluster runs only).  Results and reported times are bit-identical
    /// either way — the per-device write logs merge in block order — so
    /// this only cuts host wall-clock.  Defaults to on when the host has
    /// more than one CPU (threads are pure overhead on a single core).
    pub device_threads: bool,
    /// The cross-launch kernel-cache kill-switch ([`crate::cache`]).
    /// On (the default), repeated launches of one kernel shape reuse the
    /// compiled micro-op program and its recorded timing trace; off,
    /// every launch compiles fresh — results are bit-identical either
    /// way, this only trades host wall-clock for memory.
    pub cache: bool,
    /// Compiled kernels retained per device before FIFO eviction.
    pub cache_capacity: usize,
    /// Scheduled fault events ([`crate::fault`]).  The default empty
    /// plan is free: no injection hooks run, and the simulation is
    /// bit-identical (memory, stats, timing) to one without fault
    /// support at all.
    pub fault: FaultPlan,
    /// Watchdog budget in simulated device cycles per kernel launch; a
    /// launch whose event clock passes the budget fails with
    /// [`SimError::Watchdog`].  `0` (the default) disables the watchdog.
    pub watchdog_cycles: u64,
    /// Record per-operation timeline spans ([`crate::trace`]).  Off (the
    /// default), no tracer exists and every hook is a single null test —
    /// the same gating idiom as the empty fault plan — and the reported
    /// rounds are bit-identical either way: tracing observes the
    /// scheduler's results, it never feeds back into them.
    pub trace: bool,
    /// Span-pool capacity when tracing ([`crate::trace::SpanRing`]);
    /// oldest spans are evicted (and counted) past this bound.
    pub trace_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            mode: ExecMode::Sequential,
            noise: None,
            seed: 0,
            detect_races: false,
            use_reference: false,
            device_threads: crate::cluster::host_parallelism() > 1,
            cache: true,
            cache_capacity: crate::cache::DEFAULT_CACHE_CAPACITY,
            fault: FaultPlan::default(),
            watchdog_cycles: 0,
            trace: false,
            trace_capacity: crate::trace::DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// Host-side buffers for a program run.
#[derive(Debug, Clone)]
pub struct HostData {
    pub(crate) bufs: Vec<Vec<i64>>,
}

impl HostData {
    /// Builds host data for `program`, checking roles and sizes: one
    /// entry per declared host buffer, inputs supplied by the caller
    /// (in declaration order), outputs zero-filled.
    pub fn new(program: &Program, inputs: Vec<Vec<i64>>) -> Result<Self, SimError> {
        let mut bufs = Vec::with_capacity(program.host_bufs.len());
        let mut supplied = inputs.into_iter();
        for decl in &program.host_bufs {
            match decl.role {
                HostBufRole::Input => {
                    let data = supplied.next().ok_or_else(|| SimError::HostDataMismatch {
                        reason: format!("missing input for host buffer `{}`", decl.name),
                    })?;
                    if data.len() as u64 != decl.words {
                        return Err(SimError::HostDataMismatch {
                            reason: format!(
                                "host buffer `{}` declared {} words, got {}",
                                decl.name,
                                decl.words,
                                data.len()
                            ),
                        });
                    }
                    bufs.push(data);
                }
                HostBufRole::Output => bufs.push(vec![0; decl.words as usize]),
            }
        }
        if supplied.next().is_some() {
            return Err(SimError::HostDataMismatch {
                reason: "more inputs supplied than declared input buffers".into(),
            });
        }
        Ok(Self { bufs })
    }

    /// A buffer's contents.
    pub fn buf(&self, id: atgpu_ir::HBuf) -> &[i64] {
        &self.bufs[id.0 as usize]
    }
}

/// Observed times for one round, in milliseconds (the simulated analogue
/// of one timed iteration on the paper's testbed).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundObservation {
    /// Inward transfer time (serial component sum over all streams).
    pub xfer_in_ms: f64,
    /// Kernel execution time.
    pub kernel_ms: f64,
    /// Outward transfer time (serial component sum over all streams).
    pub xfer_out_ms: f64,
    /// Synchronisation overhead.
    pub sync_ms: f64,
    /// Stream-aware critical path through the round's transfers and
    /// kernel: the max over per-stream chains between sync points.
    /// Equals the component sum when everything runs on stream 0.
    pub stream_ms: f64,
    /// Kernel statistics (cycles, transactions, conflicts, …).
    pub kernel_stats: KernelStats,
    /// Transfer attempts this round that were dropped and re-run
    /// ([`crate::fault`]); 0 without an active fault plan.
    pub retries: u64,
    /// Exponential-backoff wait time accumulated this round, already
    /// included in the transfer times and the stream critical path.
    pub backoff_ms: f64,
}

impl RoundObservation {
    /// Total round time: the stream-aware critical path plus `σ`.
    pub fn total_ms(&self) -> f64 {
        self.stream_ms + self.sync_ms
    }

    /// The round's serial (no-overlap) time — what it would cost with
    /// every step on stream 0.
    pub fn serial_ms(&self) -> f64 {
        self.xfer_in_ms + self.kernel_ms + self.xfer_out_ms + self.sync_ms
    }
}

/// The result of simulating a program.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-round observations.
    pub rounds: Vec<RoundObservation>,
    /// Final host buffers (outputs filled in).
    pub host: HostData,
    /// Device-level counters after the run (kernel-cache hits/misses) —
    /// observability only, never part of round observations.
    pub device_stats: crate::device::DeviceStats,
    /// Recorded timeline spans when [`SimConfig::trace`] was on
    /// (`None` otherwise); export with
    /// [`crate::trace::sim_report_trace_json`].
    pub trace: Option<crate::trace::Trace>,
}

impl SimReport {
    /// Total running time — the paper's "Total" series.
    pub fn total_ms(&self) -> f64 {
        self.rounds.iter().map(RoundObservation::total_ms).sum()
    }

    /// Kernel-only time — the paper's "Kernel" series.
    pub fn kernel_ms(&self) -> f64 {
        self.rounds.iter().map(|r| r.kernel_ms).sum()
    }

    /// Transfer time, both directions.
    pub fn transfer_ms(&self) -> f64 {
        self.rounds.iter().map(|r| r.xfer_in_ms + r.xfer_out_ms).sum()
    }

    /// Synchronisation time.
    pub fn sync_ms(&self) -> f64 {
        self.rounds.iter().map(|r| r.sync_ms).sum()
    }

    /// The serial (no-overlap) total — the same program's cost with every
    /// step on stream 0.  `serial_ms() / total_ms()` is the program's
    /// observed overlap speedup.
    pub fn serial_ms(&self) -> f64 {
        self.rounds.iter().map(RoundObservation::serial_ms).sum()
    }

    /// Observed proportion of time spent in transfer — the `ΔE` series of
    /// the paper's Figure 6.
    pub fn transfer_proportion(&self) -> f64 {
        let t = self.total_ms();
        if t <= 0.0 {
            0.0
        } else {
            self.transfer_ms() / t
        }
    }

    /// An output buffer's final contents.
    pub fn output(&self, id: atgpu_ir::HBuf) -> &[i64] {
        self.host.buf(id)
    }
}

/// Rejects programs addressing stream ids the timeline cannot represent.
///
/// The IR validator enforces the same bound on every built program, and
/// [`StreamTimeline`] additionally clamps out-of-range ids to the last
/// slot as a defensive measure — but a clamp *aliases* streams 8, 9, …
/// onto one chain, silently changing the timing claim.  Checking here
/// closes the one path (a hand-constructed [`Program`] passed straight
/// to the driver) that could otherwise reach the clamp.
pub(crate) fn check_program_streams(program: &Program) -> Result<(), SimError> {
    for (round_idx, round) in program.rounds.iter().enumerate() {
        for step in &round.steps {
            let stream = match step {
                HostStep::TransferIn { stream, .. }
                | HostStep::TransferOut { stream, .. }
                | HostStep::SyncStream { stream, .. } => *stream,
                _ => continue,
            };
            if stream >= atgpu_ir::MAX_STREAMS {
                return Err(SimError::StreamOutOfRange { stream, round: round_idx });
            }
        }
    }
    Ok(())
}

/// Runs one round's kernel launch, folds it into the observation and
/// returns the launch's duration in milliseconds.
fn run_launch(
    kernel: &atgpu_ir::Kernel,
    device: &Device,
    gmem: &mut GlobalMemory,
    spec: &GpuSpec,
    config: &SimConfig,
    slow: f64,
    obs: &mut RoundObservation,
) -> Result<f64, SimError> {
    let engine =
        if config.use_reference { crate::EngineSel::Reference } else { crate::EngineSel::MicroOp };
    let stats = device.run_kernel_with(kernel, gmem, config.mode, config.detect_races, engine)?;
    obs.kernel_stats = stats;
    let ms = stats.cycles as f64 / spec.clock_cycles_per_ms * slow;
    obs.kernel_ms += ms;
    Ok(ms)
}

/// Simulates `program` on a device built from `machine` + `spec`.
pub fn run_program(
    program: &Program,
    inputs: Vec<Vec<i64>>,
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    check_program_streams(program)?;
    let device = Device::new(*machine, *spec)?;
    device.configure_cache(config.cache, config.cache_capacity);
    device.configure_watchdog(config.watchdog_cycles);
    let (bases, total_words) = program.buffer_layout(machine.b);
    let mut gmem = GlobalMemory::new(bases, total_words, machine.b, machine.g)?;
    let mut xfer = TransferEngine::new(spec, config.noise, config.seed);
    let mut host = HostData::new(program, inputs)?;
    let mut frt = FaultRuntime::new(&config.fault);
    let mut tracer = if config.trace { Some(Tracer::new(config.trace_capacity)) } else { None };
    // A single-device run has no survivors to recover on: a scheduled
    // death of device 0 inside the program is immediately unrecoverable.
    let slow = frt.as_ref().map_or(1.0, |rt| rt.clock_factor(0));

    let mut rounds = Vec::with_capacity(program.rounds.len());
    for (round_idx, round) in program.rounds.iter().enumerate() {
        if let Some(rt) = frt.as_ref() {
            if rt.down_at(0) == Some(round_idx) {
                return Err(SimError::DeviceLost { device: 0, round: round_idx });
            }
        }
        let mut obs = RoundObservation { sync_ms: spec.sync_ms, ..RoundObservation::default() };
        let mut tl = StreamTimeline::new();
        for step in &round.steps {
            match step {
                HostStep::TransferIn {
                    host: h,
                    host_off,
                    dev,
                    dev_off,
                    words,
                    device: d,
                    stream,
                } => {
                    if *d != 0 {
                        return Err(SimError::NoSuchDevice { device: *d, devices: 1 });
                    }
                    let src =
                        &host.bufs[h.0 as usize][*host_off as usize..(*host_off + *words) as usize];
                    let dst = gmem.base(dev.0) + dev_off;
                    let t = match (frt.as_mut(), tracer.as_mut()) {
                        (Some(rt), Some(tr)) => {
                            let segs = &mut tr.segs;
                            rt.transfer_segmented(
                                LinkEdge::Host(0),
                                round_idx,
                                spec.sync_ms,
                                &mut obs.retries,
                                &mut obs.backoff_ms,
                                || xfer.to_device(&mut gmem, dst, src),
                                |a, b, w| segs.push(a, b, w),
                            )
                        }
                        (Some(rt), None) => rt.transfer(
                            LinkEdge::Host(0),
                            round_idx,
                            spec.sync_ms,
                            &mut obs.retries,
                            &mut obs.backoff_ms,
                            || xfer.to_device(&mut gmem, dst, src),
                        ),
                        (None, _) => xfer.to_device(&mut gmem, dst, src),
                    };
                    obs.xfer_in_ms += t;
                    let (s0, e0) = tl.advance_spanned(*stream, StreamResource::HostToDevice, t);
                    if let Some(tr) = tracer.as_mut() {
                        let pred = xfer.link().cost_ms(1, *words);
                        tr.record(
                            round_idx,
                            0,
                            StreamResource::HostToDevice,
                            *stream,
                            SpanKind::TransferIn,
                            *words,
                            pred,
                            s0,
                            e0,
                        );
                    }
                }
                HostStep::TransferPeer { src, dst, .. } => {
                    // A peer copy needs a second device; route sharded
                    // programs through `cluster::run_cluster_program`.
                    return Err(SimError::NoSuchDevice { device: (*src).max(*dst), devices: 1 });
                }
                HostStep::SyncStream { device: d, stream } => {
                    if *d != 0 {
                        return Err(SimError::NoSuchDevice { device: *d, devices: 1 });
                    }
                    tl.sync_stream(*stream);
                }
                HostStep::SyncDevice { device: d } => {
                    if *d != 0 {
                        return Err(SimError::NoSuchDevice { device: *d, devices: 1 });
                    }
                    tl.sync_device();
                }
                HostStep::Launch(kernel) => {
                    let ms = run_launch(kernel, &device, &mut gmem, spec, config, slow, &mut obs)?;
                    let (s0, e0) = tl.advance_spanned(0, StreamResource::Compute, ms);
                    if let Some(tr) = tracer.as_mut() {
                        let blocks = kernel.blocks();
                        tr.record(
                            round_idx,
                            0,
                            StreamResource::Compute,
                            0,
                            SpanKind::Kernel,
                            blocks,
                            -1.0,
                            s0,
                            e0,
                        );
                    }
                }
                HostStep::LaunchSharded { kernel, shards } => {
                    // A sharded launch on a single device is the whole
                    // grid (validation guarantees the shards partition
                    // it); any other device is absent.
                    if let Some(s) = shards.iter().find(|s| s.device != 0) {
                        return Err(SimError::NoSuchDevice { device: s.device, devices: 1 });
                    }
                    let ms = run_launch(kernel, &device, &mut gmem, spec, config, slow, &mut obs)?;
                    let (s0, e0) = tl.advance_spanned(0, StreamResource::Compute, ms);
                    if let Some(tr) = tracer.as_mut() {
                        let blocks = kernel.blocks();
                        tr.record(
                            round_idx,
                            0,
                            StreamResource::Compute,
                            0,
                            SpanKind::Kernel,
                            blocks,
                            -1.0,
                            s0,
                            e0,
                        );
                    }
                }
                HostStep::TransferOut {
                    dev,
                    dev_off,
                    host: h,
                    host_off,
                    words,
                    device: d,
                    stream,
                } => {
                    if *d != 0 {
                        return Err(SimError::NoSuchDevice { device: *d, devices: 1 });
                    }
                    let src = gmem.base(dev.0) + dev_off;
                    let dst = &mut host.bufs[h.0 as usize]
                        [*host_off as usize..(*host_off + *words) as usize];
                    let t = match (frt.as_mut(), tracer.as_mut()) {
                        (Some(rt), Some(tr)) => {
                            let segs = &mut tr.segs;
                            rt.transfer_segmented(
                                LinkEdge::Host(0),
                                round_idx,
                                spec.sync_ms,
                                &mut obs.retries,
                                &mut obs.backoff_ms,
                                || xfer.to_host(&gmem, src, dst),
                                |a, b, w| segs.push(a, b, w),
                            )
                        }
                        (Some(rt), None) => rt.transfer(
                            LinkEdge::Host(0),
                            round_idx,
                            spec.sync_ms,
                            &mut obs.retries,
                            &mut obs.backoff_ms,
                            || xfer.to_host(&gmem, src, dst),
                        ),
                        (None, _) => xfer.to_host(&gmem, src, dst),
                    };
                    obs.xfer_out_ms += t;
                    let (s0, e0) = tl.advance_spanned(*stream, StreamResource::DeviceToHost, t);
                    if let Some(tr) = tracer.as_mut() {
                        let pred = xfer.link().cost_ms(1, *words);
                        tr.record(
                            round_idx,
                            0,
                            StreamResource::DeviceToHost,
                            *stream,
                            SpanKind::TransferOut,
                            *words,
                            pred,
                            s0,
                            e0,
                        );
                    }
                }
            }
        }
        obs.stream_ms = tl.finish();
        rounds.push(obs);
    }

    let mut device_stats = device.stats();
    for r in &rounds {
        device_stats.retries += r.retries;
        device_stats.backoff_ms += r.backoff_ms;
    }
    Ok(SimReport { rounds, host, device_stats, trace: tracer.map(Tracer::finish) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, ProgramBuilder};

    fn machine() -> AtgpuMachine {
        AtgpuMachine::new(1 << 12, 4, 64, 1 << 16).unwrap()
    }

    fn spec() -> GpuSpec {
        GpuSpec {
            k_prime: 2,
            h_limit: 4,
            clock_cycles_per_ms: 1000.0,
            xfer_alpha_ms: 0.1,
            xfer_beta_ms_per_word: 0.001,
            sync_ms: 0.05,
            ..GpuSpec::gtx650_like()
        }
    }

    /// c = a + b, n words, b = 4.
    fn vecadd_program(n: u64) -> (Program, atgpu_ir::HBuf) {
        let b = 4i64;
        let mut pb = ProgramBuilder::new("vecadd");
        let ha = pb.host_input("A", n);
        let hb = pb.host_input("B", n);
        let hc = pb.host_output("C", n);
        let da = pb.device_alloc("a", n);
        let db = pb.device_alloc("b", n);
        let dc = pb.device_alloc("c", n);
        let mut kb = KernelBuilder::new("vecadd_kernel", n / 4, 12);
        let g = AddrExpr::block() * b + AddrExpr::lane();
        kb.glb_to_shr(AddrExpr::lane(), da, g.clone());
        kb.glb_to_shr(AddrExpr::lane() + b, db, g.clone());
        kb.ld_shr(0, AddrExpr::lane());
        kb.ld_shr(1, AddrExpr::lane() + b);
        kb.alu(AluOp::Add, 2, Operand::Reg(0), Operand::Reg(1));
        kb.st_shr(AddrExpr::lane() + 2 * b, Operand::Reg(2));
        kb.shr_to_glb(dc, g, AddrExpr::lane() + 2 * b);
        pb.begin_round();
        pb.transfer_in(ha, da, n);
        pb.transfer_in(hb, db, n);
        pb.launch(kb.build());
        pb.transfer_out(dc, hc, n);
        (pb.build().unwrap(), hc)
    }

    #[test]
    fn vecadd_end_to_end() {
        let n = 64u64;
        let (p, hc) = vecadd_program(n);
        let a: Vec<i64> = (0..n as i64).collect();
        let b: Vec<i64> = (0..n as i64).map(|x| 10 * x).collect();
        let report =
            run_program(&p, vec![a.clone(), b.clone()], &machine(), &spec(), &SimConfig::default())
                .unwrap();
        let c = report.output(hc);
        for i in 0..n as usize {
            assert_eq!(c[i], a[i] + b[i]);
        }
        // Time decomposition is sane.
        assert!(report.total_ms() > 0.0);
        assert!(report.kernel_ms() > 0.0);
        assert!(report.transfer_ms() > 0.0);
        let sum = report.kernel_ms() + report.transfer_ms() + report.sync_ms();
        assert!((report.total_ms() - sum).abs() < 1e-9);
        // Transfer proportion within [0, 1].
        let d = report.transfer_proportion();
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn transfer_costs_match_affine_model() {
        let n = 64u64;
        let (p, _) = vecadd_program(n);
        let report = run_program(
            &p,
            vec![vec![0; n as usize], vec![0; n as usize]],
            &machine(),
            &spec(),
            &SimConfig::default(),
        )
        .unwrap();
        let expect_in = 2.0 * (0.1 + 0.001 * n as f64);
        let expect_out = 0.1 + 0.001 * n as f64;
        let r = &report.rounds[0];
        assert!((r.xfer_in_ms - expect_in).abs() < 1e-9);
        assert!((r.xfer_out_ms - expect_out).abs() < 1e-9);
        assert_eq!(r.sync_ms, 0.05);
    }

    #[test]
    fn missing_input_rejected() {
        let (p, _) = vecadd_program(16);
        assert!(matches!(
            run_program(&p, vec![vec![0; 16]], &machine(), &spec(), &SimConfig::default()),
            Err(SimError::HostDataMismatch { .. })
        ));
    }

    #[test]
    fn wrong_sized_input_rejected() {
        let (p, _) = vecadd_program(16);
        assert!(run_program(
            &p,
            vec![vec![0; 15], vec![0; 16]],
            &machine(),
            &spec(),
            &SimConfig::default()
        )
        .is_err());
    }

    #[test]
    fn extra_input_rejected() {
        let (p, _) = vecadd_program(16);
        assert!(run_program(
            &p,
            vec![vec![0; 16], vec![0; 16], vec![0; 16]],
            &machine(),
            &spec(),
            &SimConfig::default()
        )
        .is_err());
    }

    #[test]
    fn oom_program_rejected() {
        let small = AtgpuMachine::new(1 << 12, 4, 64, 100).unwrap();
        let (p, _) = vecadd_program(64); // needs 192 words > 100
        assert!(matches!(
            run_program(&p, vec![vec![0; 64], vec![0; 64]], &small, &spec(), &SimConfig::default()),
            Err(SimError::OutOfGlobalMemory { .. })
        ));
    }

    #[test]
    fn multi_round_accumulates() {
        // Round 1: in-transfer only; round 2: out-transfer only.
        let mut pb = ProgramBuilder::new("two");
        let h = pb.host_input("A", 8);
        let o = pb.host_output("B", 8);
        let d = pb.device_alloc("a", 8);
        pb.begin_round();
        pb.transfer_in(h, d, 8);
        pb.begin_round();
        pb.transfer_out(d, o, 8);
        let p = pb.build().unwrap();
        let report =
            run_program(&p, vec![(1..=8).collect()], &machine(), &spec(), &SimConfig::default())
                .unwrap();
        assert_eq!(report.rounds.len(), 2);
        assert_eq!(report.sync_ms(), 0.1);
        assert_eq!(report.output(o), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    /// A hand-constructed program (bypassing the builder and validator)
    /// with an out-of-range stream id must be rejected, not silently
    /// clamp-aliased onto the timeline's last stream slot.
    #[test]
    fn hand_constructed_out_of_range_stream_rejected() {
        let (mut p, _) = vecadd_program(16);
        for round in &mut p.rounds {
            for step in &mut round.steps {
                if let HostStep::TransferIn { stream, .. } = step {
                    *stream = atgpu_ir::MAX_STREAMS + 1;
                }
            }
        }
        assert!(matches!(
            run_program(
                &p,
                vec![vec![0; 16], vec![0; 16]],
                &machine(),
                &spec(),
                &SimConfig::default()
            ),
            Err(SimError::StreamOutOfRange { stream, round: 0 })
                if stream == atgpu_ir::MAX_STREAMS + 1
        ));
    }

    #[test]
    fn noisy_run_is_reproducible() {
        let n = 64u64;
        let (p, _) = vecadd_program(n);
        let cfg =
            SimConfig { noise: Some(XferNoise { rel: 0.05 }), seed: 7, ..SimConfig::default() };
        let inputs = || vec![vec![1i64; n as usize], vec![2i64; n as usize]];
        let r1 = run_program(&p, inputs(), &machine(), &spec(), &cfg).unwrap();
        let r2 = run_program(&p, inputs(), &machine(), &spec(), &cfg).unwrap();
        assert_eq!(r1.total_ms(), r2.total_ms());
        // And differs from the noiseless run.
        let r3 = run_program(&p, inputs(), &machine(), &spec(), &SimConfig::default()).unwrap();
        assert_ne!(r1.transfer_ms(), r3.transfer_ms());
    }

    #[test]
    fn parallel_mode_end_to_end() {
        let n = 256u64;
        let (p, hc) = vecadd_program(n);
        let a: Vec<i64> = (0..n as i64).collect();
        let b: Vec<i64> = (0..n as i64).rev().collect();
        let cfg = SimConfig { mode: ExecMode::Parallel { threads: 2 }, ..SimConfig::default() };
        let report = run_program(&p, vec![a, b], &machine(), &spec(), &cfg).unwrap();
        for (i, &v) in report.output(hc).iter().enumerate() {
            assert_eq!(v, n as i64 - 1, "i={i}");
        }
    }
}
