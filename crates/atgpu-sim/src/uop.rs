//! The flat micro-op program: `Kernel` IR lowered **once per launch**
//! into a linear instruction stream with precomputed per-site access
//! shapes.
//!
//! The structured `Instr` tree (nested `Repeat`/`Pred` bodies) is walked
//! exactly once by [`CompiledKernel::compile`]; every thread block then
//! executes the same flat `Vec<Uop>` with explicit jump offsets — no
//! frame stack, no tree traversal, no per-instruction allocation.
//!
//! Compilation also classifies every memory access site
//! ([`Site`]/[`FastPath`]) using the shared shape classifier in
//! [`atgpu_ir::affine`]:
//!
//! * static affine **shared** sites get their full-warp bank-conflict
//!   degree baked in;
//! * static affine **global** sites get a per-residue coalesced
//!   transaction table (`txn_table[folded_base mod b]`), turning the
//!   per-access O(b) lane scan into one table lookup — buffer bases are
//!   folded into the affine base at compile time;
//! * unit-stride and broadcast shapes are tagged so the executor can use
//!   contiguous block copies instead of per-lane address evaluation;
//! * **masked-affine** shapes — a static affine stride under a
//!   compile-time active-lane mask — get exact baked conflict degrees
//!   and mask-aware transaction tables.  Masks come from lane/immediate
//!   predicates *and* from predicates over lane-pure registers
//!   (constant-folded through [`atgpu_ir::lanemask`]), which covers the
//!   shrinking partial-warp phases of tree reductions;
//! * everything else falls back to dynamic evaluation over fixed scratch
//!   buffers (still allocation-free).
//!
//! Finally, compilation decides **replayability**: when every divergence
//! mask is block-invariant (constant, or from a block-index-free static
//! predicate) and every memory site's timing contribution is provably
//! the same for every thread block — shared sites static affine (degrees
//! are base-independent), global sites with block coefficients ≡ 0
//! (mod b) or a uniform masked transaction table — the kernel's
//! timing-event stream is identical for every block, so one block's
//! recorded events can be replayed for all others (see
//! [`crate::engine`]).

use atgpu_ir::affine::{masked_conflict_degree, masked_span_blocks, AffineAddr, CompiledAddr};
use atgpu_ir::{
    AddrExpr, AluOp, Instr, Kernel, LaneValues, Operand, PredExpr, Reg, MAX_LOOP_DEPTH,
};

/// Index into [`CompiledKernel::sites`].
pub type SiteId = u16;

/// One flat micro-operation.  Control flow uses absolute program-counter
/// targets computed at compile time.
#[derive(Debug, Clone)]
pub enum Uop {
    /// `dst ← a op b` per active lane.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst ← src` per active lane.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Register load from shared memory.
    LdShr {
        /// Destination register.
        dst: Reg,
        /// Shared-memory site.
        site: SiteId,
    },
    /// Operand store to shared memory.
    StShr {
        /// Shared-memory site.
        site: SiteId,
        /// Stored operand.
        src: Operand,
    },
    /// Warp-wide global→shared copy.
    GlbToShr {
        /// Shared-memory destination site.
        shared: SiteId,
        /// Global-memory source site.
        global: SiteId,
    },
    /// Warp-wide shared→global copy.
    ShrToGlb {
        /// Global-memory destination site.
        global: SiteId,
        /// Shared-memory source site.
        shared: SiteId,
    },
    /// Intra-block barrier (one issue slot).
    Sync,
    /// Divergence point.  The then-region starts at `pc + 1`; the
    /// else-region (if `else_start < join`) at `else_start`; `join` is
    /// the first op after the whole construct.
    Branch {
        /// Per-lane condition.
        pred: PredExpr,
        /// Compile-time then-mask for lane/immediate-only predicates
        /// (intersect with the parent mask at run time).
        const_then: Option<u64>,
        /// Start of the else-region (`== join` when there is none).
        else_start: u32,
        /// First op after the construct.
        join: u32,
    },
    /// End of a then-region: switch to the pending else arm or rejoin.
    ThenEnd {
        /// First op after the construct.
        join: u32,
    },
    /// End of an else-region: pop the arm and rejoin.
    ElseEnd,
    /// Loop entry: zero the iteration counter at `depth`.
    LoopStart {
        /// Loop nesting depth (index into the counter array).
        depth: u8,
    },
    /// Loop back-edge: bump the counter, jump to `body_start` while
    /// `counter < count`.
    LoopEnd {
        /// Loop nesting depth.
        depth: u8,
        /// Trip count (compile guarantees ≥ 1).
        count: u32,
        /// First op of the loop body.
        body_start: u32,
    },
}

/// Executor fast-path classification of a site's per-lane address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastPath {
    /// Static affine, lane stride 1: the warp touches a contiguous word
    /// range starting at the folded base.
    Unit,
    /// Static affine, lane stride 0: every lane addresses the same word.
    Broadcast,
    /// Static affine with another lane stride.
    Strided,
    /// Register-dependent affine or non-affine tree: evaluate per lane.
    Dynamic,
}

/// The address of a [`Site`] in evaluation form.  Global sites fold the
/// buffer base into the affine constant; tree fallbacks keep it in
/// `Site::gbase`.
#[derive(Debug, Clone)]
pub enum SiteAddr {
    /// Affine fast form.
    Affine(AffineAddr),
    /// Interpreted tree fallback.
    Tree(AddrExpr),
}

/// One memory access site with its compile-time access shape.
#[derive(Debug, Clone)]
pub struct Site {
    /// Address in evaluation form.
    pub addr: SiteAddr,
    /// Fast-path classification.
    pub fast: FastPath,
    /// Full-warp bank-conflict degree (shared sites, static affine).
    pub full_degree: Option<u32>,
    /// Coalesced transactions per folded-base residue (global sites,
    /// static affine); indexed by `folded.rem_euclid(b)`.  Computed over
    /// the site's compile-time [`Site::mask`] when one is known, over the
    /// full warp otherwise.
    pub txn_table: Option<Box<[u32]>>,
    /// The **masked-affine** shape: the compile-time active-lane mask
    /// under which this site executes, when every enclosing divergence
    /// arm has a constant mask.  The runtime mask then always equals this
    /// value, so conflict degrees and transaction counts are baked at
    /// compile time even for partial-warp phases (e.g. the shrinking
    /// prefixes/strides of a tree reduction).
    pub mask: Option<u64>,
    /// Exact bank-conflict degree for [`Site::mask`] (shared sites,
    /// static affine, compile-time mask).
    pub masked_degree: Option<u32>,
    /// Buffer base still to add at evaluation time (tree-form global
    /// sites only; affine sites have it folded into the base).
    pub gbase: i64,
}

impl Site {
    /// Affine view, if the site lowered to affine form.
    #[inline]
    pub fn as_affine(&self) -> Option<&AffineAddr> {
        match &self.addr {
            SiteAddr::Affine(a) => Some(a),
            SiteAddr::Tree(_) => None,
        }
    }
}

/// A kernel lowered to the flat micro-op form, shared (immutably) by all
/// block executors of one launch.
#[derive(Debug)]
pub struct CompiledKernel {
    /// The flat program.
    pub prog: Vec<Uop>,
    /// Memory-site table.
    pub sites: Vec<Site>,
    /// Kernel name (diagnostics).
    pub name: String,
    /// Launch grid `(gx, gy)`.
    pub grid: (u64, u64),
    /// Shared-memory words per block.
    pub shared_words: u64,
    /// Lanes per block.
    pub b: u32,
    /// Registers per lane.
    pub nregs: u32,
    /// Whether the timing-event stream is provably identical for every
    /// thread block (see module docs) — enables the replay cache.
    pub replayable: bool,
    /// Maximum divergence nesting depth (pre-sizes executor stacks).
    pub max_arm_depth: usize,
    /// Registers whose rows must be zeroed when an executor is re-armed
    /// for a new block.  A register is exempt when its first access in
    /// program order is an unconditional (top-level, full-warp) write —
    /// the kernel then provably overwrites it before any read, so
    /// skipping the clear is state-exact, not just timing-exact.
    pub dirty_regs: Vec<Reg>,
    /// True when shared memory need not be cleared between blocks: every
    /// read is covered by earlier unconditional constant-address writes
    /// and the writes cover all `shared_words` (state-exact elision).
    pub smem_clean: bool,
}

struct Compiler<'k> {
    prog: Vec<Uop>,
    sites: Vec<Site>,
    bases: &'k [u64],
    b: u32,
    full_mask: u64,
    replayable: bool,
    arm_depth: usize,
    max_arm_depth: usize,
    loop_depth: u8,
    /// The compile-time active-lane mask of the code currently being
    /// lowered: `Some(m)` when every enclosing divergence arm has a
    /// constant mask (the runtime mask is then provably `m`), `None`
    /// under any data-, block- or loop-dependent predicate.
    mask_ctx: Option<u64>,
    /// Lane-pure register dataflow (shared with the analyser through
    /// [`atgpu_ir::lanemask`]): lets register-operand predicates (e.g.
    /// the `j mod 2s = 0` test of an interleaved reduction) fold to
    /// constant masks.
    lanes: LaneValues,
}

impl CompiledKernel {
    /// Lowers `kernel` for a launch with the given device-buffer `bases`,
    /// `b` lanes and `nregs` registers per lane.
    pub fn compile(kernel: &Kernel, bases: &[u64], b: u32, nregs: u32) -> Self {
        debug_assert!((1..=64).contains(&b));
        let full_mask = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
        let mut c = Compiler {
            prog: Vec::with_capacity(kernel.size() * 2),
            sites: Vec::new(),
            bases,
            b,
            full_mask,
            replayable: true,
            arm_depth: 0,
            max_arm_depth: 0,
            loop_depth: 0,
            mask_ctx: Some(full_mask),
            lanes: LaneValues::new(b),
        };
        c.lower_body(&kernel.body);
        let nregs = nregs.max(1);
        let (dirty_regs, smem_clean) =
            analyze_init(&c.prog, &c.sites, nregs, b, kernel.shared_words);
        CompiledKernel {
            prog: c.prog,
            sites: c.sites,
            name: kernel.name.clone(),
            grid: kernel.grid,
            shared_words: kernel.shared_words,
            b,
            nregs,
            replayable: c.replayable,
            max_arm_depth: c.max_arm_depth,
            dirty_regs,
            smem_clean,
        }
    }
}

/// Register/shared-memory initialisation analysis (see
/// [`CompiledKernel::dirty_regs`] / [`CompiledKernel::smem_clean`]).
///
/// Walks the flat program in pc order — which is exactly first-iteration
/// execution order for loops — tracking divergence via the enclosing
/// `Branch` join targets.  Reads are collected before writes per op.
fn analyze_init(
    prog: &[Uop],
    sites: &[Site],
    nregs: u32,
    b: u32,
    shared_words: u64,
) -> (Vec<Reg>, bool) {
    // 0 = untouched, 1 = defined by an unconditional write, 2 = dirty.
    let mut reg_state = vec![0u8; nregs as usize];
    fn mark_read(state: &mut [u8], r: Reg) {
        if state[r as usize] == 0 {
            state[r as usize] = 2;
        }
    }
    fn mark_operand(state: &mut [u8], o: &Operand) {
        if let Operand::Reg(r) = o {
            mark_read(state, *r);
        }
    }
    fn mark_site_regs(state: &mut [u8], site: &Site) {
        match &site.addr {
            SiteAddr::Affine(a) => {
                if let Some((r, _)) = a.reg {
                    mark_read(state, r);
                }
            }
            SiteAddr::Tree(t) => collect_tree_regs(t, state),
        }
    }
    fn mark_write(state: &mut [u8], r: Reg, unconditional: bool) {
        if state[r as usize] == 0 {
            state[r as usize] = if unconditional { 1 } else { 2 };
        }
    }
    let mut joins: Vec<u32> = Vec::new();
    // Unconditionally written smem intervals, kept merged and sorted.
    let mut written: Vec<(i64, i64)> = Vec::new();
    let mut smem_ok = true;

    let add_interval = |written: &mut Vec<(i64, i64)>, lo: i64, hi: i64| {
        written.push((lo, hi));
        written.sort_unstable();
        let mut merged: Vec<(i64, i64)> = Vec::new();
        for (lo, hi) in written.drain(..) {
            match merged.last_mut() {
                Some((_, phi)) if lo <= *phi => *phi = (*phi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        *written = merged;
    };
    let covered = |written: &[(i64, i64)], lo: i64, hi: i64| {
        written.iter().any(|&(wlo, whi)| wlo <= lo && hi <= whi)
    };
    // The word interval a site touches, when its folded base is a
    // compile-time constant (no block/loop/register terms).
    let site_interval = |site: &Site| -> Option<(i64, i64)> {
        let a = site.as_affine()?;
        if !a.is_static() || a.block != 0 || a.block_y != 0 || a.loops.iter().any(|&c| c != 0) {
            return None;
        }
        let span = a.lane * (i64::from(b) - 1);
        Some((a.base + span.min(0), a.base + span.max(0) + 1))
    };

    for (pc, op) in prog.iter().enumerate() {
        while joins.last() == Some(&(pc as u32)) {
            joins.pop();
        }
        let unconditional = joins.is_empty();
        let smem_write = |written: &mut Vec<(i64, i64)>, site: &Site| {
            if !unconditional {
                return;
            }
            if let Some(a) = site.as_affine() {
                if matches!(site.fast, FastPath::Unit | FastPath::Broadcast)
                    && site_interval(site).is_some()
                {
                    let span = if a.lane == 0 { 1 } else { i64::from(b) };
                    add_interval(written, a.base, a.base + span);
                }
            }
        };
        let smem_read =
            |written: &[(i64, i64)], site: &Site, smem_ok: &mut bool| match site_interval(site) {
                Some((lo, hi)) if covered(written, lo, hi) => {}
                _ => *smem_ok = false,
            };
        match op {
            Uop::Alu { dst, a, b, .. } => {
                mark_operand(&mut reg_state, a);
                mark_operand(&mut reg_state, b);
                mark_write(&mut reg_state, *dst, unconditional);
            }
            Uop::Mov { dst, src } => {
                mark_operand(&mut reg_state, src);
                mark_write(&mut reg_state, *dst, unconditional);
            }
            Uop::LdShr { dst, site } => {
                let site = &sites[*site as usize];
                mark_site_regs(&mut reg_state, site);
                smem_read(&written, site, &mut smem_ok);
                mark_write(&mut reg_state, *dst, unconditional);
            }
            Uop::StShr { site, src } => {
                mark_operand(&mut reg_state, src);
                let site = &sites[*site as usize];
                mark_site_regs(&mut reg_state, site);
                smem_write(&mut written, site);
            }
            Uop::GlbToShr { shared, global } => {
                let gsite = &sites[*global as usize];
                mark_site_regs(&mut reg_state, gsite);
                let ssite = &sites[*shared as usize];
                mark_site_regs(&mut reg_state, ssite);
                smem_write(&mut written, ssite);
            }
            Uop::ShrToGlb { global, shared } => {
                let ssite = &sites[*shared as usize];
                mark_site_regs(&mut reg_state, ssite);
                smem_read(&written, ssite, &mut smem_ok);
                let gsite = &sites[*global as usize];
                mark_site_regs(&mut reg_state, gsite);
            }
            Uop::Branch { pred, join, .. } => {
                let (a, b) = pred.operands();
                mark_operand(&mut reg_state, &a);
                mark_operand(&mut reg_state, &b);
                joins.push(*join);
            }
            Uop::Sync
            | Uop::ThenEnd { .. }
            | Uop::ElseEnd
            | Uop::LoopStart { .. }
            | Uop::LoopEnd { .. } => {}
        }
    }

    let smem_clean = smem_ok && (shared_words == 0 || covered(&written, 0, shared_words as i64));
    // Iterate in u32: `nregs` can be 256 (register 255 in use), which a
    // `0..nregs as u8` range would silently wrap to empty.
    let dirty_regs = (0..nregs).filter(|&r| reg_state[r as usize] != 1).map(|r| r as Reg).collect();
    (dirty_regs, smem_clean)
}

fn collect_tree_regs(t: &AddrExpr, state: &mut [u8]) {
    match t {
        AddrExpr::Reg(r) if state[*r as usize] == 0 => state[*r as usize] = 2,
        AddrExpr::Add(a, b) | AddrExpr::Sub(a, b) | AddrExpr::Mul(a, b) => {
            collect_tree_regs(a, state);
            collect_tree_regs(b, state);
        }
        _ => {}
    }
}

impl Compiler<'_> {
    fn lower_body(&mut self, body: &[Instr]) {
        for instr in body {
            let full = self.mask_ctx == Some(self.full_mask);
            match instr {
                Instr::Alu { op, dst, a, b } => {
                    self.prog.push(Uop::Alu { op: *op, dst: *dst, a: *a, b: *b });
                    self.lanes.record_alu(*op, *dst, *a, *b, full);
                }
                Instr::Mov { dst, src } => {
                    self.prog.push(Uop::Mov { dst: *dst, src: *src });
                    self.lanes.record_mov(*dst, *src, full);
                }
                Instr::Sync => self.prog.push(Uop::Sync),
                Instr::LdShr { dst, shared } => {
                    let site = self.add_site(shared, None);
                    self.prog.push(Uop::LdShr { dst: *dst, site });
                    self.lanes.kill(*dst);
                }
                Instr::StShr { shared, src } => {
                    let site = self.add_site(shared, None);
                    self.prog.push(Uop::StShr { site, src: *src });
                }
                Instr::GlbToShr { shared, global } => {
                    let s = self.add_site(shared, None);
                    let g = self.add_site(&global.offset, Some(self.bases[global.buf.0 as usize]));
                    self.prog.push(Uop::GlbToShr { shared: s, global: g });
                }
                Instr::ShrToGlb { global, shared } => {
                    let s = self.add_site(shared, None);
                    let g = self.add_site(&global.offset, Some(self.bases[global.buf.0 as usize]));
                    self.prog.push(Uop::ShrToGlb { global: g, shared: s });
                }
                Instr::Repeat { count, body } => {
                    if *count == 0 || body.is_empty() {
                        continue; // statically dead, matches the reference
                    }
                    let depth = self.loop_depth;
                    debug_assert!((depth as usize) < MAX_LOOP_DEPTH);
                    self.prog.push(Uop::LoopStart { depth });
                    let body_start = self.prog.len() as u32;
                    self.loop_depth += 1;
                    // A register written later in the body feeds reads at
                    // the top of iterations 2..count, which the in-order
                    // walk below does not see.
                    self.lanes.kill_written(body);
                    self.lower_body(body);
                    self.loop_depth -= 1;
                    self.prog.push(Uop::LoopEnd { depth, count: *count, body_start });
                }
                Instr::Pred { pred, then_body, else_body } => {
                    let const_then = self.lanes.pred_mask(pred);
                    // A predicate reading (non-lane-pure) registers, or
                    // comparing against the block index, can change which
                    // arms run (and thus the event stream) per block or
                    // per data.  A constant mask is the same for every
                    // block, so it never defeats replay.
                    if const_then.is_none() && (!pred.is_static() || pred_reads_block(pred)) {
                        self.replayable = false;
                    }
                    let parent_ctx = self.mask_ctx;
                    let (then_ctx, else_ctx) = self.lanes.arm_masks(parent_ctx, const_then);
                    self.arm_depth += 1;
                    self.max_arm_depth = self.max_arm_depth.max(self.arm_depth);
                    let branch_pc = self.prog.len();
                    self.prog.push(Uop::Branch {
                        pred: *pred,
                        const_then,
                        else_start: 0, // patched below
                        join: 0,
                    });
                    if !then_body.is_empty() {
                        self.mask_ctx = then_ctx;
                        self.lower_body(then_body);
                        let then_end_pc = self.prog.len();
                        self.prog.push(Uop::ThenEnd { join: 0 }); // patched
                        let else_start = self.prog.len() as u32;
                        if !else_body.is_empty() {
                            self.mask_ctx = else_ctx;
                            self.lower_body(else_body);
                            self.prog.push(Uop::ElseEnd);
                        }
                        let join = self.prog.len() as u32;
                        let Uop::ThenEnd { join: j } = &mut self.prog[then_end_pc] else {
                            unreachable!("patching ThenEnd")
                        };
                        *j = join;
                        self.patch_branch(branch_pc, else_start, join);
                    } else {
                        // No then-region: the else-region (if any) starts
                        // right after the branch.
                        let else_start = self.prog.len() as u32;
                        if !else_body.is_empty() {
                            self.mask_ctx = else_ctx;
                            self.lower_body(else_body);
                            self.prog.push(Uop::ElseEnd);
                        }
                        let join = self.prog.len() as u32;
                        self.patch_branch(branch_pc, else_start, join);
                    }
                    self.mask_ctx = parent_ctx;
                    self.arm_depth -= 1;
                }
            }
        }
    }

    fn patch_branch(&mut self, pc: usize, else_start_v: u32, join_v: u32) {
        let Uop::Branch { else_start, join, .. } = &mut self.prog[pc] else {
            unreachable!("patching Branch")
        };
        *else_start = else_start_v;
        *join = join_v;
    }

    /// Builds the [`Site`] record for one address; `gbase` is `Some` for
    /// global sites.
    fn add_site(&mut self, addr: &CompiledAddr, gbase: Option<u64>) -> SiteId {
        let b = u64::from(self.b);
        let mask_ctx = self.mask_ctx;
        let site = match addr {
            CompiledAddr::Affine(a) => {
                let folded_base = match gbase {
                    Some(g) => AffineAddr { base: a.base + g as i64, ..*a },
                    None => *a,
                };
                let fast = match folded_base.reg {
                    Some(_) => FastPath::Dynamic,
                    None => match folded_base.lane {
                        1 => FastPath::Unit,
                        0 => FastPath::Broadcast,
                        _ => FastPath::Strided,
                    },
                };
                let full_degree = if gbase.is_none() {
                    folded_base.full_warp_conflict_degree(b).map(|d| d as u32)
                } else {
                    None
                };
                let masked_degree = match (gbase, mask_ctx) {
                    (None, Some(m)) if folded_base.is_static() => {
                        Some(masked_conflict_degree(folded_base.lane, m, b) as u32)
                    }
                    _ => None,
                };
                // The transaction table covers the site's compile-time
                // mask when one is known (the runtime mask provably
                // equals it), the full warp otherwise.
                let table_mask = mask_ctx.unwrap_or(self.full_mask);
                let txn_table: Option<Box<[u32]>> = if gbase.is_some() && folded_base.is_static() {
                    Some(
                        (0..b as i64)
                            .map(|r| masked_span_blocks(r, folded_base.lane, table_mask, b) as u32)
                            .collect(),
                    )
                } else {
                    None
                };
                // Replayability: a site may not vary the event stream
                // across thread blocks.
                if gbase.is_none() {
                    // Shared degrees are base-independent, so only a
                    // data-dependent (register) address defeats replay.
                    if !folded_base.is_static() {
                        self.replayable = false;
                    }
                } else {
                    let uniform_txns = || match mask_ctx {
                        // Known mask: the per-residue table is exhaustive,
                        // so a uniform table means block-shifted bases
                        // cannot change the count.
                        Some(_) => {
                            txn_table.as_ref().is_some_and(|t| t.windows(2).all(|w| w[0] == w[1]))
                        }
                        // Unknown (but block-invariant) runtime mask: only
                        // a broadcast is residue-proof for every mask.
                        None => folded_base.is_static() && folded_base.lane == 0,
                    };
                    if !folded_base.is_block_invariant_mod(b) && !uniform_txns() {
                        self.replayable = false;
                    }
                }
                Site {
                    addr: SiteAddr::Affine(folded_base),
                    fast,
                    full_degree,
                    txn_table,
                    mask: mask_ctx,
                    masked_degree,
                    gbase: 0,
                }
            }
            CompiledAddr::Tree(t) => {
                self.replayable = false;
                Site {
                    addr: SiteAddr::Tree(t.clone()),
                    fast: FastPath::Dynamic,
                    full_degree: None,
                    txn_table: None,
                    mask: mask_ctx,
                    masked_degree: None,
                    gbase: gbase.unwrap_or(0) as i64,
                }
            }
        };
        let id = self.sites.len();
        assert!(id <= SiteId::MAX as usize, "kernel has too many memory sites");
        self.sites.push(site);
        id as SiteId
    }
}

fn pred_reads_block(pred: &PredExpr) -> bool {
    let (a, b) = pred.operands();
    matches!(a, Operand::Block | Operand::BlockY) || matches!(b, Operand::Block | Operand::BlockY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_ir::{DBuf, KernelBuilder};

    fn compile(kernel: &Kernel) -> CompiledKernel {
        let nregs = kernel.max_reg().map(|r| u32::from(r) + 1).unwrap_or(1);
        CompiledKernel::compile(kernel, &[0, 1024, 2048, 3072], 32, nregs)
    }

    #[test]
    fn straight_line_lowers_one_to_one() {
        let mut kb = KernelBuilder::new("s", 1, 64);
        kb.mov(0, Operand::Imm(1));
        kb.ld_shr(1, AddrExpr::lane());
        kb.st_shr(AddrExpr::lane(), Operand::Reg(1));
        kb.sync();
        let c = compile(&kb.build());
        assert_eq!(c.prog.len(), 4);
        assert_eq!(c.sites.len(), 2);
        assert!(c.replayable);
    }

    #[test]
    fn loop_emits_start_and_backedge() {
        let mut kb = KernelBuilder::new("l", 1, 0);
        kb.repeat(3, |kb| {
            kb.mov(0, Operand::Imm(1));
        });
        let c = compile(&kb.build());
        // LoopStart, Mov, LoopEnd
        assert_eq!(c.prog.len(), 3);
        assert!(matches!(c.prog[0], Uop::LoopStart { depth: 0 }));
        assert!(matches!(c.prog[2], Uop::LoopEnd { depth: 0, count: 3, body_start: 1 }));
    }

    #[test]
    fn zero_trip_and_empty_loops_vanish() {
        let mut kb = KernelBuilder::new("z", 1, 0);
        kb.repeat(0, |kb| {
            kb.mov(0, Operand::Imm(1));
        });
        kb.repeat(5, |_| {});
        let c = compile(&kb.build());
        assert!(c.prog.is_empty());
    }

    #[test]
    fn branch_targets_point_past_regions() {
        let mut kb = KernelBuilder::new("p", 1, 0);
        kb.pred(
            PredExpr::Lt(Operand::Lane, Operand::Imm(2)),
            |kb| {
                kb.mov(0, Operand::Imm(1));
            },
            |kb| {
                kb.mov(0, Operand::Imm(2));
                kb.mov(1, Operand::Imm(3));
            },
        );
        kb.sync();
        let c = compile(&kb.build());
        // Branch, Mov, ThenEnd, Mov, Mov, ElseEnd, Sync
        assert_eq!(c.prog.len(), 7);
        let Uop::Branch { else_start, join, .. } = c.prog[0] else { panic!() };
        assert_eq!(else_start, 3);
        assert_eq!(join, 6);
        let Uop::ThenEnd { join } = c.prog[2] else { panic!() };
        assert_eq!(join, 6);
        assert!(c.replayable, "lane-guarded divergence is block-invariant");
        assert_eq!(c.max_arm_depth, 1);
    }

    #[test]
    fn site_shapes_classified() {
        let mut kb = KernelBuilder::new("shapes", 4, 64);
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::block() * 32 + AddrExpr::lane());
        kb.ld_shr(0, AddrExpr::c(7));
        kb.st_shr(AddrExpr::lane() * 2, Operand::Reg(0));
        kb.glb_to_shr(AddrExpr::lane(), DBuf(1), AddrExpr::reg(0));
        let c = compile(&kb.build());
        // Sites in creation order: shared(lane), global(i·32+j), shared(7),
        // shared(2j), shared(lane), global(reg).
        assert_eq!(c.sites[0].fast, FastPath::Unit);
        assert_eq!(c.sites[0].full_degree, Some(1));
        assert_eq!(c.sites[1].fast, FastPath::Unit);
        let table = c.sites[1].txn_table.as_ref().unwrap();
        assert_eq!(table[0], 1, "aligned unit-stride warp = 1 txn");
        assert_eq!(table[1], 2, "misaligned warp straddles 2 blocks");
        assert_eq!(c.sites[2].fast, FastPath::Broadcast);
        assert_eq!(c.sites[2].full_degree, Some(1));
        assert_eq!(c.sites[3].fast, FastPath::Strided);
        assert_eq!(c.sites[3].full_degree, Some(2));
        assert_eq!(c.sites[5].fast, FastPath::Dynamic);
        assert!(c.sites[5].txn_table.is_none());
        assert!(!c.replayable, "register-addressed site defeats replay");
    }

    #[test]
    fn global_base_folded_into_affine() {
        let mut kb = KernelBuilder::new("base", 2, 32);
        kb.glb_to_shr(AddrExpr::lane(), DBuf(2), AddrExpr::lane());
        let c = compile(&kb.build());
        let a = c.sites[1].as_affine().unwrap();
        assert_eq!(a.base, 2048);
    }

    #[test]
    fn block_residue_shift_defeats_replay() {
        let mut kb = KernelBuilder::new("mis", 4, 32);
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::block() * 33 + AddrExpr::lane());
        let c = compile(&kb.build());
        assert!(!c.replayable);
    }

    #[test]
    fn block_dependent_predicate_defeats_replay() {
        let mut kb = KernelBuilder::new("bp", 4, 0);
        kb.when(PredExpr::Lt(Operand::Block, Operand::Imm(2)), |kb| {
            kb.mov(0, Operand::Imm(1));
        });
        let c = compile(&kb.build());
        assert!(!c.replayable);
    }

    #[test]
    fn register_predicate_defeats_replay() {
        let mut kb = KernelBuilder::new("rp", 4, 0);
        kb.when(PredExpr::Lt(Operand::Reg(0), Operand::Imm(2)), |kb| {
            kb.mov(1, Operand::Imm(1));
        });
        let c = compile(&kb.build());
        assert!(!c.replayable);
    }

    #[test]
    fn lane_imm_predicates_get_constant_masks() {
        let mut kb = KernelBuilder::new("cm", 1, 0);
        kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(3)), |kb| {
            kb.mov(0, Operand::Imm(1));
        });
        kb.when(PredExpr::Lt(Operand::Block, Operand::Imm(1)), |kb| {
            kb.mov(0, Operand::Imm(2));
        });
        let c = compile(&kb.build());
        let masks: Vec<Option<u64>> = c
            .prog
            .iter()
            .filter_map(|op| match op {
                Uop::Branch { const_then, .. } => Some(*const_then),
                _ => None,
            })
            .collect();
        assert_eq!(masks, vec![Some(0b111), None]);
    }

    #[test]
    fn masked_affine_sites_get_static_shapes() {
        // A reduction-style phase: a strided store under a constant
        // partial mask.  The compiler must bake both the mask and the
        // exact conflict degree — no dynamic fallback.
        let mut kb = KernelBuilder::new("ma", 4, 64);
        kb.st_shr(AddrExpr::lane(), Operand::Lane);
        kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(16)), |kb| {
            kb.st_shr(AddrExpr::lane() * 2, Operand::Lane);
        });
        let c = compile(&kb.build());
        assert!(c.replayable, "constant-mask divergence is block-invariant");
        // Site 0: full-warp store.
        assert_eq!(c.sites[0].mask, Some(u64::MAX >> 32));
        assert_eq!(c.sites[0].masked_degree, Some(1));
        // Site 1: stride 2 under mask 0..16 — 16 distinct addresses on 32
        // banks, every bank at most once: degree 1 (the full-warp degree
        // would be 2).
        assert_eq!(c.sites[1].mask, Some(0xFFFF));
        assert_eq!(c.sites[1].masked_degree, Some(1));
        assert_eq!(c.sites[1].full_degree, Some(2));
    }

    #[test]
    fn lane_pure_register_predicate_folds_to_const_mask() {
        // The interleaved-reduction test `j mod 4 = 0` goes through a
        // register, but the register's value is a pure function of the
        // lane index — the compiler folds it to a constant mask and the
        // kernel stays replayable.
        let mut kb = KernelBuilder::new("rem", 4, 64);
        kb.alu(AluOp::Rem, 2, Operand::Lane, Operand::Imm(4));
        kb.when(PredExpr::Eq(Operand::Reg(2), Operand::Imm(0)), |kb| {
            kb.ld_shr(3, AddrExpr::lane());
            kb.st_shr(AddrExpr::lane(), Operand::Reg(3));
        });
        let c = compile(&kb.build());
        assert!(c.replayable);
        let masks: Vec<Option<u64>> = c
            .prog
            .iter()
            .filter_map(|op| match op {
                Uop::Branch { const_then, .. } => Some(*const_then),
                _ => None,
            })
            .collect();
        assert_eq!(masks, vec![Some(0x1111_1111)], "every 4th of 32 lanes");
        // The sites inside the arm carry the folded mask.
        assert_eq!(c.sites[0].mask, Some(0x1111_1111));
        assert_eq!(c.sites[0].masked_degree, Some(1));
    }

    #[test]
    fn loop_written_register_is_not_lane_pure() {
        // r0 is rewritten each iteration *after* the predicate, so the
        // value at the test differs between iterations 1 and 2..n — the
        // compiler must not constant-fold it.
        let mut kb = KernelBuilder::new("lw", 2, 0);
        kb.mov(0, Operand::Imm(0));
        kb.repeat(3, |kb| {
            kb.when(PredExpr::Eq(Operand::Reg(0), Operand::Imm(0)), |kb| {
                kb.mov(1, Operand::Imm(1));
            });
            kb.mov(0, Operand::Imm(5));
        });
        let c = compile(&kb.build());
        let masks: Vec<Option<u64>> = c
            .prog
            .iter()
            .filter_map(|op| match op {
                Uop::Branch { const_then, .. } => Some(*const_then),
                _ => None,
            })
            .collect();
        assert_eq!(masks, vec![None], "loop-carried register must stay dynamic");
        assert!(!c.replayable, "register predicate without a constant mask defeats replay");
    }

    #[test]
    fn single_lane_store_with_block_base_stays_replayable() {
        // The reduction's final `dst[i] ⇐ _s[0]` under `j = 0`: the
        // global base shifts with the block index (coefficient 1, not a
        // multiple of b), but a single active lane always makes exactly
        // one transaction, so the masked table is uniform and replay
        // remains valid.
        let mut kb = KernelBuilder::new("one", 8, 32);
        kb.st_shr(AddrExpr::lane(), Operand::Block);
        kb.when(PredExpr::Eq(Operand::Lane, Operand::Imm(0)), |kb| {
            kb.shr_to_glb(DBuf(0), AddrExpr::block(), AddrExpr::c(0));
        });
        let c = compile(&kb.build());
        assert!(c.replayable, "uniform masked transaction table keeps replay");
        let gsite = c.sites.iter().find(|s| s.txn_table.is_some()).unwrap();
        assert!(gsite.txn_table.as_ref().unwrap().iter().all(|&t| t == 1));
        // The same store under an *unknown* mask (register predicate on
        // an untracked register) must defeat replay.
        let mut kb = KernelBuilder::new("one_dyn", 8, 32);
        kb.ld_shr(1, AddrExpr::c(0));
        kb.when(PredExpr::Eq(Operand::Reg(1), Operand::Imm(0)), |kb| {
            kb.shr_to_glb(DBuf(0), AddrExpr::block(), AddrExpr::c(0));
        });
        let c = compile(&kb.build());
        assert!(!c.replayable);
    }

    #[test]
    fn init_elision_vecadd_shape_skips_all_clearing() {
        // Write-before-read everywhere and full shared coverage: nothing
        // needs zeroing between blocks.
        let b = 32i64;
        let mut kb = KernelBuilder::new("va", 4, 3 * b as u64);
        let g = AddrExpr::block() * b + AddrExpr::lane();
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), g.clone());
        kb.glb_to_shr(AddrExpr::lane() + b, DBuf(1), g.clone());
        kb.ld_shr(0, AddrExpr::lane());
        kb.ld_shr(1, AddrExpr::lane() + b);
        kb.alu(AluOp::Add, 2, Operand::Reg(0), Operand::Reg(1));
        kb.st_shr(AddrExpr::lane() + 2 * b, Operand::Reg(2));
        kb.shr_to_glb(DBuf(2), g, AddrExpr::lane() + 2 * b);
        let kernel = kb.build();
        let nregs = kernel.max_reg().map(|r| u32::from(r) + 1).unwrap_or(1);
        let c = CompiledKernel::compile(&kernel, &[0, 1024, 2048], 32, nregs);
        assert!(c.dirty_regs.is_empty());
        assert!(c.smem_clean);
    }

    #[test]
    fn init_elision_conservative_on_reads_and_divergence() {
        // r0 read before write; r1 first written inside a divergent arm;
        // shared read of an uncovered word.
        let mut kb = KernelBuilder::new("dirty", 2, 64);
        kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Imm(1));
        kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(2)), |kb| {
            kb.mov(1, Operand::Imm(5));
        });
        kb.ld_shr(2, AddrExpr::lane());
        let kernel = kb.build();
        let c = CompiledKernel::compile(&kernel, &[], 32, 3);
        assert!(c.dirty_regs.contains(&0), "read-before-write register");
        assert!(c.dirty_regs.contains(&1), "conditionally-written register");
        assert!(!c.dirty_regs.contains(&2), "LdShr defines r2 unconditionally");
        assert!(!c.smem_clean, "uncovered shared read forces clearing");
    }

    #[test]
    fn init_elision_survives_max_register_index() {
        // nregs = 256 (register 255 referenced): the dirty-register
        // range must not wrap to empty, or stale state leaks between
        // blocks.
        let mut kb = KernelBuilder::new("r255", 2, 0);
        kb.alu(AluOp::Add, 255, Operand::Reg(255), Operand::Imm(1));
        let kernel = kb.build();
        let c = CompiledKernel::compile(&kernel, &[], 32, 256);
        assert!(c.dirty_regs.contains(&255), "read-before-write r255 must be cleared");
    }

    #[test]
    fn init_elision_requires_full_shared_coverage() {
        // Every read covered, but only half the shared words are ever
        // written: stale state would differ from the zeroing reference.
        let b = 32i64;
        let mut kb = KernelBuilder::new("half", 2, 2 * b as u64);
        kb.st_shr(AddrExpr::lane(), Operand::Lane);
        kb.ld_shr(0, AddrExpr::lane());
        let kernel = kb.build();
        let c = CompiledKernel::compile(&kernel, &[], 32, 1);
        assert!(!c.smem_clean);
        assert!(c.dirty_regs.is_empty());
    }
}
