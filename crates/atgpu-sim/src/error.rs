//! Simulator errors.

use std::fmt;

/// Errors raised while simulating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Device allocations exceed global memory `G`.
    OutOfGlobalMemory {
        /// Words requested (after block alignment).
        requested: u64,
        /// Words available.
        available: u64,
    },
    /// A kernel's shared usage exceeds `M` (occupancy would be zero).
    SharedTooLarge {
        /// Kernel name.
        kernel: String,
        /// Declared shared words.
        requested: u64,
        /// Words available per MP.
        available: u64,
    },
    /// A lane computed a global address outside the allocated region.
    GlobalOutOfBounds {
        /// Kernel name.
        kernel: String,
        /// The offending absolute word address.
        addr: i64,
        /// Allocated global words.
        size: u64,
    },
    /// A lane computed a shared address outside the block's allocation.
    SharedOutOfBounds {
        /// Kernel name.
        kernel: String,
        /// The offending shared word address.
        addr: i64,
        /// The block's shared words.
        size: u64,
    },
    /// Host data does not match the program's buffer declarations.
    HostDataMismatch {
        /// Explanation.
        reason: String,
    },
    /// The machine is wider than the simulator supports (`b ≤ 64` because
    /// divergence masks are single machine words).
    UnsupportedWidth {
        /// Requested lanes per warp.
        b: u64,
    },
    /// A cross-thread-block data race was detected (two blocks wrote the
    /// same global word during one launch).
    RaceDetected {
        /// Kernel name.
        kernel: String,
        /// The contended absolute word address.
        addr: u64,
    },
    /// A program step addresses a device the system does not have.
    NoSuchDevice {
        /// Requested device index.
        device: u32,
        /// Devices available.
        devices: usize,
    },
    /// The cluster specification is malformed.
    InvalidCluster {
        /// Explanation.
        reason: String,
    },
    /// A transfer or sync step addresses a stream id beyond
    /// [`atgpu_ir::MAX_STREAMS`].  The IR validator rejects these at
    /// build time; this guards hand-constructed programs handed straight
    /// to the driver, which would otherwise silently alias onto the
    /// [`atgpu_model::StreamTimeline`]'s clamped last slot.
    StreamOutOfRange {
        /// The offending stream id.
        stream: u32,
        /// Round index of the offending step.
        round: usize,
    },
    /// A kernel launch exceeded the watchdog's simulated-cycle budget
    /// ([`crate::SimConfig::watchdog_cycles`]) — a runaway kernel is
    /// surfaced as a structured error instead of hanging the simulation.
    Watchdog {
        /// Kernel name.
        kernel: String,
        /// The exceeded budget, in simulated device cycles.
        budget: u64,
    },
    /// A fault-plan `DeviceDown` left the system without a single alive
    /// device: a single-device run lost its only device, or the last
    /// surviving cluster device died.  Recovery by re-apportionment
    /// needs at least one survivor.
    DeviceLost {
        /// The device whose death was unrecoverable.
        device: u32,
        /// The round at whose start it died.
        round: usize,
    },
    /// An internal simulation worker thread panicked — the driver
    /// surfaces it as an error rather than propagating the panic into
    /// the caller.
    WorkerPanic {
        /// What was being simulated.
        context: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfGlobalMemory { requested, available } => write!(
                f,
                "device out of global memory: need {requested} words, have G = {available}"
            ),
            SimError::SharedTooLarge { kernel, requested, available } => write!(
                f,
                "kernel `{kernel}` uses {requested} shared words but the MP has M = {available}"
            ),
            SimError::GlobalOutOfBounds { kernel, addr, size } => write!(
                f,
                "kernel `{kernel}`: global access at word {addr} outside the {size}-word heap"
            ),
            SimError::SharedOutOfBounds { kernel, addr, size } => write!(
                f,
                "kernel `{kernel}`: shared access at word {addr} outside the block's {size} words"
            ),
            SimError::HostDataMismatch { reason } => write!(f, "host data mismatch: {reason}"),
            SimError::UnsupportedWidth { b } => {
                write!(f, "machine width b = {b} unsupported (the simulator requires b ≤ 64)")
            }
            SimError::RaceDetected { kernel, addr } => write!(
                f,
                "kernel `{kernel}`: two thread blocks wrote global word {addr} in one launch"
            ),
            SimError::NoSuchDevice { device, devices } => {
                write!(f, "step addresses device {device} but the system has {devices} device(s)")
            }
            SimError::InvalidCluster { reason } => write!(f, "invalid cluster: {reason}"),
            SimError::StreamOutOfRange { stream, round } => write!(
                f,
                "round {round} addresses stream {stream}, limit {}",
                atgpu_ir::MAX_STREAMS
            ),
            SimError::Watchdog { kernel, budget } => write!(
                f,
                "kernel `{kernel}` exceeded the watchdog budget of {budget} simulated cycles"
            ),
            SimError::DeviceLost { device, round } => write!(
                f,
                "device {device} died at round {round} with no surviving device to recover on"
            ),
            SimError::WorkerPanic { context } => {
                write!(f, "simulation worker thread panicked while {context}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_numbers() {
        let e = SimError::GlobalOutOfBounds { kernel: "k".into(), addr: -3, size: 10 };
        assert!(e.to_string().contains("-3"));
        let e = SimError::UnsupportedWidth { b: 128 };
        assert!(e.to_string().contains("128"));
    }
}
