//! The global-memory controller: latency plus issue-rate bandwidth.
//!
//! Each coalesced block transaction occupies the memory pipe for
//! `issue_interval` cycles (the bandwidth limit) and completes
//! `latency` cycles after it starts (the exposed access latency a warp
//! waits for — the quantity the model abstracts as `λ`).  Requests from
//! all MPs share one controller in sequential mode, so heavy traffic
//! queues exactly as a saturated memory bus would.

/// A memory controller.
#[derive(Debug, Clone)]
pub struct DramController {
    /// First cycle at which the pipe can start a new transaction.
    next_free: u64,
    /// Cycles between transaction starts (inverse bandwidth).
    issue_interval: u64,
    /// Cycles from transaction start to data arrival.
    latency: u64,
    /// Total transactions issued (statistics).
    pub txns: u64,
    /// Total cycles requests spent queued behind the pipe (statistics).
    pub queue_cycles: u64,
}

impl DramController {
    /// Creates a controller with the given issue interval and latency.
    pub fn new(issue_interval: u64, latency: u64) -> Self {
        Self {
            next_free: 0,
            issue_interval: issue_interval.max(1),
            latency: latency.max(1),
            txns: 0,
            queue_cycles: 0,
        }
    }

    /// Issues `txns` transactions at time `now`; returns the cycle at
    /// which the last one's data arrives (the requesting warp's wake-up
    /// time).
    pub fn access(&mut self, now: u64, txns: u64) -> u64 {
        if txns == 0 {
            return now;
        }
        let start = now.max(self.next_free);
        self.queue_cycles += start - now;
        self.next_free = start + txns * self.issue_interval;
        self.txns += txns;
        start + (txns - 1) * self.issue_interval + self.latency
    }

    /// Resets the pipe clock for a new kernel launch (statistics keep
    /// accumulating).
    pub fn reset_clock(&mut self) {
        self.next_free = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_pays_latency() {
        let mut d = DramController::new(4, 100);
        assert_eq!(d.access(10, 1), 110);
    }

    #[test]
    fn transactions_pipeline() {
        let mut d = DramController::new(4, 100);
        // 3 txns starting at 0: last starts at 8, completes at 108.
        assert_eq!(d.access(0, 3), 108);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = DramController::new(10, 100);
        assert_eq!(d.access(0, 1), 100);
        // Pipe busy until 10; second request at cycle 0 queues.
        assert_eq!(d.access(0, 1), 110);
        assert_eq!(d.queue_cycles, 10);
    }

    #[test]
    fn idle_pipe_starts_immediately() {
        let mut d = DramController::new(10, 100);
        d.access(0, 1);
        // At cycle 50 the pipe (free at 10) is idle again.
        assert_eq!(d.access(50, 1), 150);
        assert_eq!(d.queue_cycles, 0);
    }

    #[test]
    fn zero_transactions_are_free() {
        let mut d = DramController::new(10, 100);
        assert_eq!(d.access(42, 0), 42);
        assert_eq!(d.txns, 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = DramController::new(2, 10);
        d.access(0, 5);
        d.access(0, 5);
        assert_eq!(d.txns, 10);
    }
}
