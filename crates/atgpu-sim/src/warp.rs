//! Lockstep execution of one thread block (a warp, in the model's
//! one-warp-per-block architecture).
//!
//! A [`WarpExec`] walks the kernel's structured body with an explicit
//! frame stack (loops and divergence arms), executing each instruction for
//! all active lanes and returning a [`StepEvent`] that tells the
//! multiprocessor what the instruction costs:
//!
//! * compute/predicate/sync → one issue slot;
//! * shared access → `degree` issue slots (bank-conflict serialisation);
//! * global access → an issue slot (plus shared-side serialisation) and a
//!   memory request of `txns` coalesced block transactions, which the MP
//!   routes through the memory controller while **other warps keep
//!   issuing** — the latency hiding the model abstracts into `λ`.
//!
//! Divergence follows real SIMT hardware: both arms run when both have
//! active lanes, arms with no active lanes are skipped entirely.  (The
//! *model* charges both arms always; the difference is part of what the
//! experiments quantify.)

use crate::error::SimError;
use crate::gmem::GlobalMemory;
use crate::smem::SharedMemory;
use atgpu_ir::affine::CompiledAddr;
use atgpu_ir::{Instr, Kernel, Operand, Reg};

/// What one instruction costs the multiprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Compute issue (ALU, move, predicate evaluation, sync); integer
    /// div/mod occupy multiple issue slots.
    Compute {
        /// Issue slots occupied.
        cycles: u32,
    },
    /// Shared-memory access serialised over `degree` conflicting requests.
    Shared {
        /// Bank-conflict serialisation degree (1 = conflict-free).
        degree: u32,
    },
    /// Global-memory access: `txns` coalesced block transactions, with
    /// `issue` issue slots of shared-side serialisation.
    Global {
        /// Coalesced transactions among the active lanes.
        txns: u32,
        /// Issue slots occupied (shared-memory side of the `⇐` move).
        issue: u32,
    },
    /// The block has finished.
    Done,
}

/// One deferred global write (parallel mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRec {
    /// Absolute word address.
    pub addr: u64,
    /// Value written.
    pub val: i64,
    /// Writing thread block.
    pub block: u64,
}

/// A global-memory access path: direct, or logged for parallel execution
/// (writes deferred and applied after the launch, reads served from the
/// pre-launch snapshot — cross-block visibility within one launch is
/// undefined in the model, so well-formed kernels cannot tell).
pub enum GmemAccess<'a> {
    /// Reads and writes hit the heap immediately (sequential mode).
    Direct(&'a mut GlobalMemory),
    /// Reads hit the pre-launch snapshot; writes are recorded.
    Logged {
        /// Pre-launch memory snapshot.
        base: &'a GlobalMemory,
        /// Deferred writes.
        log: &'a mut Vec<WriteRec>,
    },
}

impl GmemAccess<'_> {
    #[inline]
    pub(crate) fn read(&self, addr: i64) -> Option<i64> {
        match self {
            GmemAccess::Direct(g) => g.read(addr),
            GmemAccess::Logged { base, .. } => base.read(addr),
        }
    }

    #[inline]
    pub(crate) fn write(&mut self, addr: i64, val: i64, block: u64) -> bool {
        match self {
            GmemAccess::Direct(g) => g.write(addr, val),
            GmemAccess::Logged { base, log } => {
                if addr < 0 || addr as u64 >= base.len() {
                    return false;
                }
                log.push(WriteRec { addr: addr as u64, val, block });
                true
            }
        }
    }

    /// Read view of the whole heap (micro-op engine fast paths).
    #[inline]
    pub(crate) fn view(&self) -> &[i64] {
        match self {
            GmemAccess::Direct(g) => g.words(),
            GmemAccess::Logged { base, .. } => base.words(),
        }
    }

    /// Contiguous read of `out.len()` words starting at `addr` (micro-op
    /// engine fast path).
    #[inline]
    pub(crate) fn read_block(&self, addr: i64, out: &mut [i64]) -> bool {
        let words = self.view();
        let Ok(start) = usize::try_from(addr) else { return false };
        let Some(src) = start.checked_add(out.len()).and_then(|end| words.get(start..end)) else {
            return false;
        };
        out.copy_from_slice(src);
        true
    }

    /// Contiguous write of `vals` starting at `addr` (micro-op engine
    /// fast path).  Direct mode is a slice copy; logged mode records one
    /// deferred write per word, as the per-lane path would.
    #[inline]
    pub(crate) fn write_block(&mut self, addr: i64, vals: &[i64], block: u64) -> bool {
        match self {
            GmemAccess::Direct(g) => {
                let Ok(start) = usize::try_from(addr) else { return false };
                let Some(dst) =
                    start.checked_add(vals.len()).and_then(|end| g.words_mut().get_mut(start..end))
                else {
                    return false;
                };
                dst.copy_from_slice(vals);
                true
            }
            GmemAccess::Logged { base, log } => {
                if addr < 0 || (addr as u64).saturating_add(vals.len() as u64) > base.len() {
                    return false;
                }
                for (i, &val) in vals.iter().enumerate() {
                    log.push(WriteRec { addr: addr as u64 + i as u64, val, block });
                }
                true
            }
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> u64 {
        match self {
            GmemAccess::Direct(g) => g.len(),
            GmemAccess::Logged { base, .. } => base.len(),
        }
    }
}

struct Frame<'k> {
    body: &'k [Instr],
    idx: usize,
    kind: FrameKind<'k>,
}

enum FrameKind<'k> {
    /// The kernel body itself.
    Top,
    /// A `Repeat` iteration.
    Loop { iter: u32, count: u32 },
    /// A divergence arm; when it finishes, the pending else arm (if any,
    /// with a non-zero mask) runs next.
    Arm { pending_else: Option<(u64, &'k [Instr])> },
}

enum ExhaustAction<'k> {
    Finish,
    LoopIter(u32),
    PopLoop,
    PopArm(Option<(u64, &'k [Instr])>),
}

/// Executes one thread block in lockstep.
pub struct WarpExec<'k> {
    kernel: &'k Kernel,
    bases: &'k [u64],
    /// Linear thread-block index.
    pub block: u64,
    /// Decomposed `(x, y)` block index.
    pub block_xy: (i64, i64),
    b: u32,
    full_mask: u64,
    regs: Vec<i64>,
    frames: Vec<Frame<'k>>,
    masks: Vec<u64>,
    loops: Vec<u32>,
    /// The block's shared memory.
    pub smem: SharedMemory,
    /// Scratch address buffer (reused every memory instruction).
    addr_buf: Vec<i64>,
}

impl<'k> WarpExec<'k> {
    /// Creates an executor for `kernel` with `b ≤ 64` lanes; `bases` are
    /// the device-buffer base addresses; `nregs` from [`Kernel::max_reg`].
    pub fn new(kernel: &'k Kernel, bases: &'k [u64], b: u32, nregs: u32) -> Self {
        debug_assert!((1..=64).contains(&b));
        let full_mask = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
        let mut w = Self {
            kernel,
            bases,
            block: 0,
            block_xy: (0, 0),
            b,
            full_mask,
            regs: vec![0; nregs.max(1) as usize * b as usize],
            frames: Vec::with_capacity(8),
            masks: Vec::with_capacity(8),
            loops: Vec::with_capacity(4),
            smem: SharedMemory::new(kernel.shared_words, u64::from(b)),
            addr_buf: vec![0; b as usize],
        };
        w.reset(0);
        w
    }

    /// The per-lane register file, laid out `reg-major` (`r·b + lane`) —
    /// exposed for differential testing against the micro-op engine.
    pub fn regs(&self) -> &[i64] {
        &self.regs
    }

    /// Re-arms the executor for a new thread block (reusing allocations).
    pub fn reset(&mut self, block: u64) {
        self.block = block;
        let gx = self.kernel.grid.0.max(1);
        self.block_xy = ((block % gx) as i64, (block / gx) as i64);
        self.regs.fill(0);
        self.smem.reset();
        self.frames.clear();
        self.masks.clear();
        self.loops.clear();
        let body: &'k [Instr] = &self.kernel.body;
        self.frames.push(Frame { body, idx: 0, kind: FrameKind::Top });
        self.masks.push(self.full_mask);
    }

    #[inline]
    fn mask(&self) -> u64 {
        *self.masks.last().expect("mask stack never empty while running")
    }

    #[inline]
    fn reg(&self, r: Reg, lane: u32) -> i64 {
        self.regs[r as usize * self.b as usize + lane as usize]
    }

    #[inline]
    fn set_reg(&mut self, r: Reg, lane: u32, v: i64) {
        self.regs[r as usize * self.b as usize + lane as usize] = v;
    }

    #[inline]
    fn operand(&self, op: Operand, lane: u32) -> i64 {
        match op {
            Operand::Reg(r) => self.reg(r, lane),
            Operand::Imm(v) => v,
            Operand::Lane => i64::from(lane),
            Operand::Block => self.block_xy.0,
            Operand::BlockY => self.block_xy.1,
            Operand::LoopVar(d) => self.loops.get(d as usize).copied().unwrap_or(0) as i64,
        }
    }

    /// Evaluates a compiled address for every active lane into
    /// `self.addr_buf[lane]`.  Returns true when addresses are monotone in
    /// lane order (always the case for affine addresses).
    fn eval_addrs(&mut self, addr: &CompiledAddr, mask: u64) -> bool {
        let b = self.b as usize;
        match addr {
            CompiledAddr::Affine(a) => {
                let folded = a.fold_warp(self.block_xy, &self.loops);
                let regs = &self.regs;
                for lane in 0..self.b {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let v = a.lane_addr(folded, i64::from(lane), |r| {
                        regs[r as usize * b + lane as usize]
                    });
                    self.addr_buf[lane as usize] = v;
                }
                a.reg.is_none()
            }
            CompiledAddr::Tree(t) => {
                let block = self.block_xy;
                for lane in 0..self.b {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let regs = &self.regs;
                    let loops = &self.loops;
                    let mut read = |r: Reg| regs[r as usize * b + lane as usize];
                    self.addr_buf[lane as usize] = t.eval(i64::from(lane), block, loops, &mut read);
                }
                false
            }
        }
    }

    /// Distinct memory blocks among the active lanes' addresses.
    fn coalesce_txns(&self, mask: u64, monotone: bool) -> u32 {
        let bw = i64::from(self.b); // words per memory block = b
        if monotone {
            let mut txns = 0u32;
            let mut prev = 0i64;
            let mut first = true;
            for lane in 0..self.b {
                if mask & (1 << lane) == 0 {
                    continue;
                }
                let q = self.addr_buf[lane as usize].div_euclid(bw);
                if first || q != prev {
                    txns += 1;
                    prev = q;
                    first = false;
                }
            }
            txns
        } else {
            let mut blocks: Vec<i64> = (0..self.b)
                .filter(|l| mask & (1 << l) != 0)
                .map(|l| self.addr_buf[l as usize].div_euclid(bw))
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            blocks.len() as u32
        }
    }

    /// Bank-conflict serialisation degree among the active lanes.
    fn conflict_degree(&self, addr: &CompiledAddr, mask: u64) -> u32 {
        let banks = u64::from(self.b);
        // Fast paths for static affine addresses.
        if let Some(a) = addr.as_affine() {
            if a.reg.is_none() {
                if a.lane == 0 {
                    return 1; // broadcast
                }
                let g = gcd(a.lane.unsigned_abs() % banks, banks);
                if g <= 1 {
                    return 1; // distinct banks for any lane subset
                }
            }
        }
        // General case: max distinct addresses in any one bank.
        let mut pairs: Vec<(u64, i64)> = (0..self.b)
            .filter(|l| mask & (1 << l) != 0)
            .map(|l| {
                let a = self.addr_buf[l as usize];
                (a.rem_euclid(banks as i64) as u64, a)
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        let mut degree = 1u32;
        let mut run = 0u32;
        let mut prev_bank = u64::MAX;
        for (bank, _) in pairs {
            if bank == prev_bank {
                run += 1;
            } else {
                run = 1;
                prev_bank = bank;
            }
            degree = degree.max(run);
        }
        degree
    }

    fn oob_shared(&self, addr: i64) -> SimError {
        SimError::SharedOutOfBounds {
            kernel: self.kernel.name.clone(),
            addr,
            size: self.smem.len(),
        }
    }

    fn oob_global(&self, addr: i64, size: u64) -> SimError {
        SimError::GlobalOutOfBounds { kernel: self.kernel.name.clone(), addr, size }
    }

    /// Executes the next instruction; returns its timing event.
    pub fn step(&mut self, gmem: &mut GmemAccess<'_>) -> Result<StepEvent, SimError> {
        loop {
            // Phase 1: unwind exhausted frames.
            let action: Option<ExhaustAction<'k>> = {
                let Some(frame) = self.frames.last_mut() else {
                    return Ok(StepEvent::Done);
                };
                if frame.idx < frame.body.len() {
                    None
                } else {
                    match &mut frame.kind {
                        FrameKind::Top => Some(ExhaustAction::Finish),
                        FrameKind::Loop { iter, count } => {
                            *iter += 1;
                            if *iter < *count {
                                frame.idx = 0;
                                Some(ExhaustAction::LoopIter(*iter))
                            } else {
                                Some(ExhaustAction::PopLoop)
                            }
                        }
                        FrameKind::Arm { pending_else } => {
                            Some(ExhaustAction::PopArm(pending_else.take()))
                        }
                    }
                }
            };
            match action {
                Some(ExhaustAction::Finish) => {
                    self.frames.pop();
                    return Ok(StepEvent::Done);
                }
                Some(ExhaustAction::LoopIter(it)) => {
                    *self.loops.last_mut().expect("loop stack in sync") = it;
                    continue;
                }
                Some(ExhaustAction::PopLoop) => {
                    self.frames.pop();
                    self.loops.pop();
                    continue;
                }
                Some(ExhaustAction::PopArm(pe)) => {
                    self.frames.pop();
                    self.masks.pop();
                    if let Some((em, eb)) = pe {
                        if em != 0 && !eb.is_empty() {
                            self.masks.push(em);
                            self.frames.push(Frame {
                                body: eb,
                                idx: 0,
                                kind: FrameKind::Arm { pending_else: None },
                            });
                        }
                    }
                    continue;
                }
                None => {}
            }

            // Phase 2: fetch the next instruction ('k lifetime, decoupled
            // from the frame borrow).
            let instr: &'k Instr = {
                let frame = self.frames.last_mut().expect("frame present");
                let body = frame.body;
                let idx = frame.idx;
                frame.idx += 1;
                &body[idx]
            };

            match instr {
                Instr::Repeat { count, body } => {
                    if *count > 0 && !body.is_empty() {
                        self.loops.push(0);
                        self.frames.push(Frame {
                            body,
                            idx: 0,
                            kind: FrameKind::Loop { iter: 0, count: *count },
                        });
                    }
                    continue; // loop bookkeeping is free
                }
                Instr::Pred { pred, then_body, else_body } => {
                    let parent = self.mask();
                    let mut then_mask = 0u64;
                    let block = self.block_xy;
                    {
                        let regs = &self.regs;
                        let loops = &self.loops;
                        let b = self.b as usize;
                        for lane in 0..self.b {
                            if parent & (1 << lane) == 0 {
                                continue;
                            }
                            let mut read = |r: Reg| regs[r as usize * b + lane as usize];
                            if pred.eval(i64::from(lane), block, loops, &mut read) {
                                then_mask |= 1 << lane;
                            }
                        }
                    }
                    let else_mask = parent & !then_mask;
                    if then_mask != 0 && !then_body.is_empty() {
                        self.masks.push(then_mask);
                        self.frames.push(Frame {
                            body: then_body,
                            idx: 0,
                            kind: FrameKind::Arm {
                                pending_else: Some((else_mask, else_body.as_slice())),
                            },
                        });
                    } else if else_mask != 0 && !else_body.is_empty() {
                        self.masks.push(else_mask);
                        self.frames.push(Frame {
                            body: else_body,
                            idx: 0,
                            kind: FrameKind::Arm { pending_else: None },
                        });
                    }
                    return Ok(StepEvent::Compute { cycles: 1 }); // predicate evaluation
                }
                Instr::Sync => return Ok(StepEvent::Compute { cycles: 1 }),
                Instr::Alu { op, dst, a, b } => {
                    let mask = self.mask();
                    for lane in 0..self.b {
                        if mask & (1 << lane) == 0 {
                            continue;
                        }
                        let va = self.operand(*a, lane);
                        let vb = self.operand(*b, lane);
                        self.set_reg(*dst, lane, op.apply(va, vb));
                    }
                    return Ok(StepEvent::Compute { cycles: op.issue_cycles() });
                }
                Instr::Mov { dst, src } => {
                    let mask = self.mask();
                    for lane in 0..self.b {
                        if mask & (1 << lane) == 0 {
                            continue;
                        }
                        let v = self.operand(*src, lane);
                        self.set_reg(*dst, lane, v);
                    }
                    return Ok(StepEvent::Compute { cycles: 1 });
                }
                Instr::LdShr { dst, shared } => {
                    let mask = self.mask();
                    self.eval_addrs(shared, mask);
                    let degree = self.conflict_degree(shared, mask);
                    for lane in 0..self.b {
                        if mask & (1 << lane) == 0 {
                            continue;
                        }
                        let addr = self.addr_buf[lane as usize];
                        let v = self.smem.read(addr).ok_or_else(|| self.oob_shared(addr))?;
                        self.set_reg(*dst, lane, v);
                    }
                    return Ok(StepEvent::Shared { degree });
                }
                Instr::StShr { shared, src } => {
                    let mask = self.mask();
                    self.eval_addrs(shared, mask);
                    let degree = self.conflict_degree(shared, mask);
                    for lane in 0..self.b {
                        if mask & (1 << lane) == 0 {
                            continue;
                        }
                        let addr = self.addr_buf[lane as usize];
                        let v = self.operand(*src, lane);
                        if !self.smem.write(addr, v) {
                            return Err(self.oob_shared(addr));
                        }
                    }
                    return Ok(StepEvent::Shared { degree });
                }
                Instr::GlbToShr { shared, global } => {
                    let mask = self.mask();
                    let gbase = self.bases[global.buf.0 as usize] as i64;
                    // Global addresses first (into addr_buf), coalesce.
                    let monotone = self.eval_addrs(&global.offset, mask);
                    for lane in 0..self.b {
                        if mask & (1 << lane) != 0 {
                            self.addr_buf[lane as usize] += gbase;
                        }
                    }
                    let txns = self.coalesce_txns(mask, monotone);
                    // Read global values.
                    let mut vals = [0i64; 64];
                    for lane in 0..self.b {
                        if mask & (1 << lane) == 0 {
                            continue;
                        }
                        let addr = self.addr_buf[lane as usize];
                        vals[lane as usize] =
                            gmem.read(addr).ok_or_else(|| self.oob_global(addr, gmem.len()))?;
                    }
                    // Shared addresses, conflict degree, stores.
                    self.eval_addrs(shared, mask);
                    let degree = self.conflict_degree(shared, mask);
                    for lane in 0..self.b {
                        if mask & (1 << lane) == 0 {
                            continue;
                        }
                        let addr = self.addr_buf[lane as usize];
                        if !self.smem.write(addr, vals[lane as usize]) {
                            return Err(self.oob_shared(addr));
                        }
                    }
                    return Ok(StepEvent::Global { txns, issue: degree });
                }
                Instr::ShrToGlb { global, shared } => {
                    let mask = self.mask();
                    let gbase = self.bases[global.buf.0 as usize] as i64;
                    // Shared reads first.
                    self.eval_addrs(shared, mask);
                    let degree = self.conflict_degree(shared, mask);
                    let mut vals = [0i64; 64];
                    for lane in 0..self.b {
                        if mask & (1 << lane) == 0 {
                            continue;
                        }
                        let addr = self.addr_buf[lane as usize];
                        vals[lane as usize] =
                            self.smem.read(addr).ok_or_else(|| self.oob_shared(addr))?;
                    }
                    // Global addresses, coalesce, write.
                    let monotone = self.eval_addrs(&global.offset, mask);
                    for lane in 0..self.b {
                        if mask & (1 << lane) != 0 {
                            self.addr_buf[lane as usize] += gbase;
                        }
                    }
                    let txns = self.coalesce_txns(mask, monotone);
                    let block = self.block;
                    for lane in 0..self.b {
                        if mask & (1 << lane) == 0 {
                            continue;
                        }
                        let addr = self.addr_buf[lane as usize];
                        if !gmem.write(addr, vals[lane as usize], block) {
                            return Err(self.oob_global(addr, gmem.len()));
                        }
                    }
                    return Ok(StepEvent::Global { txns, issue: degree });
                }
            }
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, AluOp, DBuf, KernelBuilder, Operand, PredExpr};

    fn run_to_completion(
        kernel: &Kernel,
        bases: &[u64],
        gmem: &mut GlobalMemory,
        b: u32,
        block: u64,
    ) -> (Vec<StepEvent>, WarpExec<'static>) {
        // Leak kernel/bases for 'static in tests only.
        let kernel: &'static Kernel = Box::leak(Box::new(kernel.clone()));
        let bases: &'static [u64] = Box::leak(bases.to_vec().into_boxed_slice());
        let nregs = kernel.max_reg().map(|r| u32::from(r) + 1).unwrap_or(1);
        let mut w = WarpExec::new(kernel, bases, b, nregs);
        w.reset(block);
        let mut events = Vec::new();
        let mut access = GmemAccess::Direct(gmem);
        loop {
            let e = w.step(&mut access).unwrap();
            if e == StepEvent::Done {
                break;
            }
            events.push(e);
        }
        (events, w)
    }

    #[test]
    fn vecadd_block_computes_and_coalesces() {
        let b = 4u32;
        let n = 8u64;
        let mut g = GlobalMemory::new(vec![0, 8, 16], 24, 4, 1 << 20).unwrap();
        for i in 0..n {
            g.write(i as i64, i as i64 + 1); // a = 1..8
            g.write(8 + i as i64, 10); // b = 10
        }
        let mut kb = KernelBuilder::new("vecadd", 2, 12);
        let gaddr = AddrExpr::block() * 4 + AddrExpr::lane();
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), gaddr.clone());
        kb.glb_to_shr(AddrExpr::lane() + 4, DBuf(1), gaddr.clone());
        kb.ld_shr(0, AddrExpr::lane());
        kb.ld_shr(1, AddrExpr::lane() + 4);
        kb.alu(AluOp::Add, 2, Operand::Reg(0), Operand::Reg(1));
        kb.st_shr(AddrExpr::lane() + 8, Operand::Reg(2));
        kb.shr_to_glb(DBuf(2), gaddr, AddrExpr::lane() + 8);
        let k = kb.build();

        for block in 0..2 {
            let (events, _) = run_to_completion(&k, &[0, 8, 16], &mut g, b, block);
            let txns: u32 = events
                .iter()
                .map(|e| if let StepEvent::Global { txns, .. } = e { *txns } else { 0 })
                .sum();
            assert_eq!(txns, 3, "one coalesced txn per buffer access");
        }
        for i in 0..n {
            assert_eq!(g.read(16 + i as i64), Some(i as i64 + 1 + 10), "i={i}");
        }
    }

    #[test]
    fn strided_access_splits_transactions() {
        let mut g = GlobalMemory::new(vec![0], 64, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("strided", 1, 4);
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::lane() * 4);
        let k = kb.build();
        let (events, _) = run_to_completion(&k, &[0], &mut g, 4, 0);
        assert_eq!(events, vec![StepEvent::Global { txns: 4, issue: 1 }]);
    }

    #[test]
    fn divergence_masks_lanes_and_runs_both_arms() {
        let mut g = GlobalMemory::new(vec![0], 16, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("div", 1, 4);
        kb.mov(0, Operand::Imm(7));
        kb.pred(
            PredExpr::Lt(Operand::Lane, Operand::Imm(2)),
            |kb| {
                kb.mov(0, Operand::Imm(1));
            },
            |kb| {
                kb.mov(0, Operand::Imm(2));
            },
        );
        kb.st_shr(AddrExpr::lane(), Operand::Reg(0));
        let k = kb.build();
        let (events, w) = run_to_completion(&k, &[0], &mut g, 4, 0);
        // mov, pred, then-mov, else-mov, store
        assert_eq!(events.len(), 5);
        assert_eq!(w.smem.read(0), Some(1));
        assert_eq!(w.smem.read(1), Some(1));
        assert_eq!(w.smem.read(2), Some(2));
        assert_eq!(w.smem.read(3), Some(2));
    }

    #[test]
    fn fully_untaken_arm_is_skipped() {
        let mut g = GlobalMemory::new(vec![0], 16, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("skip", 1, 4);
        kb.pred(
            PredExpr::Lt(Operand::Lane, Operand::Imm(99)), // all lanes
            |kb| {
                kb.mov(0, Operand::Imm(1));
            },
            |kb| {
                kb.mov(0, Operand::Imm(2));
                kb.mov(1, Operand::Imm(3));
            },
        );
        let k = kb.build();
        let (events, _) = run_to_completion(&k, &[0], &mut g, 4, 0);
        // pred + then-mov only; the 2-instruction else arm never runs.
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn nested_divergence() {
        let mut g = GlobalMemory::new(vec![0], 16, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("nested", 1, 4);
        kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(3)), |kb| {
            kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(1)), |kb| {
                kb.mov(0, Operand::Imm(9));
            });
            kb.st_shr(AddrExpr::lane(), Operand::Reg(0));
        });
        let k = kb.build();
        let (_, w) = run_to_completion(&k, &[0], &mut g, 4, 0);
        assert_eq!(w.smem.read(0), Some(9)); // lane 0: inner taken
        assert_eq!(w.smem.read(1), Some(0)); // lane 1: inner untaken
        assert_eq!(w.smem.read(2), Some(0));
        assert_eq!(w.smem.read(3), Some(0)); // lane 3: outer untaken, no store
    }

    #[test]
    fn loop_iterations_see_loop_var() {
        let mut g = GlobalMemory::new(vec![0], 16, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("loop", 1, 8);
        kb.mov(0, Operand::Imm(0));
        kb.repeat(5, |kb| {
            kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::LoopVar(0));
        });
        kb.st_shr(AddrExpr::lane(), Operand::Reg(0));
        let k = kb.build();
        let (_, w) = run_to_completion(&k, &[0], &mut g, 4, 0);
        assert_eq!(w.smem.read(0), Some(10)); // 0+1+2+3+4
    }

    #[test]
    fn nested_loops_and_loop_vars() {
        let mut g = GlobalMemory::new(vec![0], 16, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("nest", 1, 8);
        kb.mov(0, Operand::Imm(0));
        kb.repeat(3, |kb| {
            kb.repeat(4, |kb| {
                kb.alu(AluOp::Mul, 1, Operand::LoopVar(0), Operand::Imm(10));
                kb.alu(AluOp::Add, 1, Operand::Reg(1), Operand::LoopVar(1));
                kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(1));
            });
        });
        kb.st_shr(AddrExpr::lane(), Operand::Reg(0));
        let k = kb.build();
        let (_, w) = run_to_completion(&k, &[0], &mut g, 4, 0);
        // sum over t0<3,t1<4 of (10*t0 + t1) = 120 + 18
        assert_eq!(w.smem.read(0), Some(138));
    }

    #[test]
    fn zero_trip_loop_executes_nothing() {
        let mut g = GlobalMemory::new(vec![0], 16, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("z", 1, 4);
        kb.repeat(0, |kb| {
            kb.mov(0, Operand::Imm(1));
        });
        kb.st_shr(AddrExpr::lane(), Operand::Reg(0));
        let k = kb.build();
        let (events, w) = run_to_completion(&k, &[0], &mut g, 4, 0);
        assert_eq!(events.len(), 1); // just the store
        assert_eq!(w.smem.read(0), Some(0));
    }

    #[test]
    fn bank_conflicts_detected_at_stride_two() {
        let mut g = GlobalMemory::new(vec![0], 16, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("conflict", 1, 8);
        kb.st_shr(AddrExpr::lane() * 2, Operand::Imm(1));
        let k = kb.build();
        // b = 4 banks, stride 2 -> gcd(2,4) = 2-way conflict.
        let (events, _) = run_to_completion(&k, &[0], &mut g, 4, 0);
        assert_eq!(events, vec![StepEvent::Shared { degree: 2 }]);
    }

    #[test]
    fn broadcast_is_conflict_free() {
        let mut g = GlobalMemory::new(vec![0], 16, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("bcast", 1, 4);
        kb.st_shr(AddrExpr::c(2), Operand::Imm(5));
        kb.ld_shr(0, AddrExpr::c(2));
        let k = kb.build();
        let (events, _) = run_to_completion(&k, &[0], &mut g, 4, 0);
        assert_eq!(events, vec![StepEvent::Shared { degree: 1 }, StepEvent::Shared { degree: 1 }]);
    }

    #[test]
    fn data_dependent_conflict_measured() {
        // All lanes store to address lane*4 mod 16 -> all in bank 0 with
        // distinct addresses: 4-way conflict (via register addressing, so
        // the general path is used).
        let mut g = GlobalMemory::new(vec![0], 16, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("ddep", 1, 16);
        kb.alu(AluOp::Mul, 0, Operand::Lane, Operand::Imm(4));
        kb.st_shr(AddrExpr::reg(0), Operand::Imm(1));
        let k = kb.build();
        let (events, _) = run_to_completion(&k, &[0], &mut g, 4, 0);
        assert_eq!(events[1], StepEvent::Shared { degree: 4 });
    }

    #[test]
    fn shared_out_of_bounds_reported() {
        let mut g = GlobalMemory::new(vec![0], 16, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("oob", 1, 4);
        kb.st_shr(AddrExpr::lane() + 2, Operand::Imm(1)); // lane 2 -> addr 4
        let k: &'static Kernel = Box::leak(Box::new(kb.build()));
        let mut w = WarpExec::new(k, &[], 4, 1);
        let mut access = GmemAccess::Direct(&mut g);
        let err = w.step(&mut access).unwrap_err();
        assert!(matches!(err, SimError::SharedOutOfBounds { addr: 4, size: 4, .. }));
    }

    #[test]
    fn global_out_of_bounds_reported() {
        let mut g = GlobalMemory::new(vec![0], 8, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("goob", 1, 4);
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::lane() + 6);
        let k: &'static Kernel = Box::leak(Box::new(kb.build()));
        let bases: &'static [u64] = Box::leak(vec![0u64].into_boxed_slice());
        let mut w = WarpExec::new(k, bases, 4, 1);
        let mut access = GmemAccess::Direct(&mut g);
        let err = w.step(&mut access).unwrap_err();
        assert!(matches!(err, SimError::GlobalOutOfBounds { .. }));
    }

    #[test]
    fn logged_writes_defer() {
        let g = GlobalMemory::new(vec![0], 8, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("log", 1, 4);
        kb.st_shr(AddrExpr::lane(), Operand::Lane);
        kb.shr_to_glb(DBuf(0), AddrExpr::lane(), AddrExpr::lane());
        let k: &'static Kernel = Box::leak(Box::new(kb.build()));
        let bases: &'static [u64] = Box::leak(vec![0u64].into_boxed_slice());
        let mut w = WarpExec::new(k, bases, 4, 1);
        w.reset(3);
        let mut log = Vec::new();
        let mut access = GmemAccess::Logged { base: &g, log: &mut log };
        while w.step(&mut access).unwrap() != StepEvent::Done {}
        assert_eq!(g.read(1), Some(0)); // unchanged
        assert_eq!(log.len(), 4);
        assert_eq!(log[1], WriteRec { addr: 1, val: 1, block: 3 });
    }

    #[test]
    fn data_dependent_gather_works() {
        let mut g = GlobalMemory::new(vec![0], 8, 4, 1 << 20).unwrap();
        for i in 0..4 {
            g.write(i, 100 + i);
        }
        let mut kb = KernelBuilder::new("gather", 1, 4);
        kb.alu(AluOp::Sub, 0, Operand::Imm(3), Operand::Lane);
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::reg(0));
        let k = kb.build();
        let (_, w) = run_to_completion(&k, &[0], &mut g, 4, 0);
        assert_eq!(w.smem.read(0), Some(103));
        assert_eq!(w.smem.read(3), Some(100));
    }

    #[test]
    fn reset_reuses_allocations() {
        let g = GlobalMemory::new(vec![0], 8, 4, 1 << 20).unwrap();
        let mut kb = KernelBuilder::new("r", 2, 4);
        kb.st_shr(AddrExpr::lane(), Operand::Block);
        let k: &'static Kernel = Box::leak(Box::new(kb.build()));
        let bases: &'static [u64] = Box::leak(vec![0u64].into_boxed_slice());
        let mut gm = g;
        let mut w = WarpExec::new(k, bases, 4, 1);
        let mut access = GmemAccess::Direct(&mut gm);
        while w.step(&mut access).unwrap() != StepEvent::Done {}
        assert_eq!(w.smem.read(0), Some(0));
        w.reset(1);
        let mut access = GmemAccess::Direct(&mut gm);
        assert_eq!(w.smem.read(0), Some(0)); // cleared
        while w.step(&mut access).unwrap() != StepEvent::Done {}
        assert_eq!(w.smem.read(0), Some(1)); // new block id
    }
}
