//! Device global memory: a bounded, block-structured word heap.
//!
//! The heap is sized to the program's padded buffer layout (not to `G`, so
//! simulating a 1 GiB-card machine does not allocate 1 GiB), but the `G`
//! limit is enforced at construction — the ATGPU addition over prior
//! models.

use crate::error::SimError;

/// Global memory with the canonical buffer layout applied.
#[derive(Debug)]
pub struct GlobalMemory {
    words: Vec<i64>,
    /// Base address of each device buffer.
    bases: Vec<u64>,
    /// Words per memory block (`b`).
    block_words: u64,
}

impl GlobalMemory {
    /// Builds the heap for a program's allocations.
    ///
    /// `layout` comes from [`atgpu_ir::Program::buffer_layout`]; `g_limit`
    /// is the machine's `G`.
    pub fn new(
        bases: Vec<u64>,
        total_words: u64,
        block_words: u64,
        g_limit: u64,
    ) -> Result<Self, SimError> {
        if total_words > g_limit {
            return Err(SimError::OutOfGlobalMemory { requested: total_words, available: g_limit });
        }
        Ok(Self { words: vec![0; total_words as usize], bases, block_words })
    }

    /// Total words allocated.
    #[inline]
    pub fn len(&self) -> u64 {
        self.words.len() as u64
    }

    /// True when nothing is allocated.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Base address of device buffer `buf`.
    #[inline]
    pub fn base(&self, buf: u32) -> u64 {
        self.bases[buf as usize]
    }

    /// Number of device buffers in the layout.
    #[inline]
    pub fn buf_count(&self) -> usize {
        self.bases.len()
    }

    /// The memory block index of an absolute address.
    #[inline]
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.block_words
    }

    /// Reads one word at an absolute address.
    #[inline]
    pub fn read(&self, addr: i64) -> Option<i64> {
        usize::try_from(addr).ok().and_then(|a| self.words.get(a)).copied()
    }

    /// Writes one word at an absolute address.
    #[inline]
    pub fn write(&mut self, addr: i64, value: i64) -> bool {
        match usize::try_from(addr).ok().and_then(|a| self.words.get_mut(a)) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// Bulk copy into the heap (host→device transfer).
    pub fn copy_in(&mut self, dst: u64, data: &[i64]) {
        let d = dst as usize;
        self.words[d..d + data.len()].copy_from_slice(data);
    }

    /// Bulk copy out of the heap (device→host transfer).
    pub fn copy_out(&self, src: u64, out: &mut [i64]) {
        let s = src as usize;
        out.copy_from_slice(&self.words[s..s + out.len()]);
    }

    /// Raw view (tests, race detection, and the engine's contiguous fast
    /// paths).
    pub fn words(&self) -> &[i64] {
        &self.words
    }

    /// Mutable raw view (contiguous fast paths in the micro-op engine).
    pub fn words_mut(&mut self) -> &mut [i64] {
        &mut self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_g_limit() {
        assert!(GlobalMemory::new(vec![0], 100, 32, 99).is_err());
        assert!(GlobalMemory::new(vec![0], 100, 32, 100).is_ok());
    }

    #[test]
    fn read_write_roundtrip() {
        let mut g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        assert!(g.write(5, 42));
        assert_eq!(g.read(5), Some(42));
        assert_eq!(g.read(6), Some(0)); // zero-initialised
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        assert_eq!(g.read(64), None);
        assert_eq!(g.read(-1), None);
        assert!(!g.write(64, 1));
        assert!(!g.write(-1, 1));
    }

    #[test]
    fn bulk_copies() {
        let mut g = GlobalMemory::new(vec![0, 32], 64, 32, 1024).unwrap();
        g.copy_in(32, &[1, 2, 3]);
        let mut out = vec![0; 3];
        g.copy_out(32, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(g.base(1), 32);
    }

    #[test]
    fn block_mapping() {
        let g = GlobalMemory::new(vec![0], 64, 32, 1024).unwrap();
        assert_eq!(g.block_of(0), 0);
        assert_eq!(g.block_of(31), 0);
        assert_eq!(g.block_of(32), 1);
    }
}
