//! A multiprocessor: occupancy-limited resident blocks, ready-time warp
//! scheduling, latency hiding.
//!
//! The MP issues one instruction per cycle (serialised further by bank
//! conflicts).  When a warp issues a global access it *stalls* until the
//! memory controller delivers, but the MP keeps issuing from other
//! resident warps — the latency hiding the paper describes.  Blocks are
//! pulled from the launch queue whenever a residency slot frees, up to
//! `ℓ = min(⌊M/m⌋, H)` concurrent blocks.
//!
//! The MP is generic over the block executor ([`BlockSim`]): the micro-op
//! engine ([`crate::engine::BlockExec`]) or the tree-walking reference
//! ([`crate::warp::WarpExec`]).  For replayable kernels the MP also hosts
//! the **timing-replay cache**: the first block it admits records its
//! memory-event trace; once that block retires, every subsequently
//! admitted block replays the trace instead of re-analysing accesses.

use crate::dram::DramController;
use crate::engine::BlockSim;
use crate::error::SimError;
use crate::warp::{GmemAccess, StepEvent};
use std::sync::Arc;

/// Per-MP statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MpStats {
    /// Instructions issued (lockstep operations).
    pub instructions: u64,
    /// Compute (ALU/move/predicate/sync) instructions issued.
    pub compute_instructions: u64,
    /// Shared-memory access instructions issued.
    pub shared_accesses: u64,
    /// Global-memory access instructions issued.
    pub global_accesses: u64,
    /// Global transactions requested.
    pub global_txns: u64,
    /// Extra issue cycles lost to bank-conflict serialisation (beyond the
    /// 1 cycle a conflict-free access would take).
    pub bank_conflict_cycles: u64,
    /// Thread blocks completed.
    pub blocks_done: u64,
    /// Cycles the MP spent with no warp ready (exposed memory latency).
    pub stall_cycles: u64,
}

/// A multiprocessor simulating up to `ell` resident blocks.
///
/// Wake-up times live in a dense array parallel to the executors, and
/// the earliest slot is cached — the scheduler pays one O(ℓ) refresh per
/// issued instruction instead of a scan per query.
pub struct Mp<E> {
    /// The MP's current cycle (issue clock).
    pub clock: u64,
    warps: Vec<E>,
    /// Wake-up time of each resident warp (parallel to `warps`).
    ready: Vec<u64>,
    /// Tournament tree over `ready`: O(log ℓ) winner maintenance per
    /// issued instruction, with (time, index) tie-breaking identical to a
    /// first-minimum scan.
    tree: MinTree,
    /// Finished-warp pool for reuse (workhorse allocation pattern).
    spare: Vec<E>,
    ell: usize,
    /// Statistics.
    pub stats: MpStats,
    /// Cycle at which the last block retired.
    pub last_retire: u64,
    /// Whether the kernel qualifies for timing replay.
    replay: bool,
    /// The recorded memory-event trace, once a block completed recording.
    trace: Option<Arc<[StepEvent]>>,
    /// A resident block is currently recording.
    recording: bool,
}

impl<E: BlockSim> Mp<E> {
    /// Creates an MP with `ell` residency slots (no replay).
    pub fn new(ell: u64) -> Self {
        Self::with_replay(ell, false)
    }

    /// Creates an MP with `ell` residency slots; `replay` enables the
    /// block-invariant timing-replay cache (the caller asserts the kernel
    /// qualifies, i.e. `CompiledKernel::replayable`).
    pub fn with_replay(ell: u64, replay: bool) -> Self {
        Self::with_trace(ell, replay, None)
    }

    /// [`Self::with_replay`] seeded with a trace recorded by an earlier
    /// launch of the same compiled kernel (the cross-launch kernel
    /// cache): every admitted block replays immediately — no first-block
    /// recording warmup.  `trace` is ignored unless `replay` holds.
    pub fn with_trace(ell: u64, replay: bool, trace: Option<Arc<[StepEvent]>>) -> Self {
        let ell = ell as usize;
        Self {
            clock: 0,
            warps: Vec::with_capacity(ell),
            ready: Vec::with_capacity(ell),
            tree: MinTree::new(ell),
            spare: Vec::new(),
            ell,
            stats: MpStats::default(),
            last_retire: 0,
            replay,
            trace: if replay { trace } else { None },
            recording: false,
        }
    }

    /// The completed memory-event trace, once a recording block retired
    /// (or the seed passed to [`Self::with_trace`]).  The device layer
    /// harvests this into the cross-launch cache after a launch.
    pub fn recorded_trace(&self) -> Option<&Arc<[StepEvent]>> {
        self.trace.as_ref()
    }

    /// True when no blocks are resident.
    pub fn idle(&self) -> bool {
        self.warps.is_empty()
    }

    /// Number of free residency slots.
    pub fn free_slots(&self) -> usize {
        self.ell - self.warps.len()
    }

    /// Admits a block, reusing a pooled executor when available.
    pub fn admit(&mut self, block: u64, make: impl FnOnce() -> E) {
        debug_assert!(self.warps.len() < self.ell);
        let mut warp = self.spare.pop().unwrap_or_else(make);
        warp.reset(block);
        if self.replay {
            if let Some(trace) = &self.trace {
                warp.begin_replay(Arc::clone(trace));
            } else if !self.recording {
                warp.begin_record();
                self.recording = true;
            }
        }
        self.warps.push(warp);
        self.ready.push(self.clock);
        self.tree.set(&self.ready, self.ready.len() - 1);
    }

    /// Executes one scheduling decision: picks the warp with the earliest
    /// wake-up time, advances the clock, issues its next instruction.
    /// Returns `Ok(true)` if a block retired (a slot freed).
    pub fn step(
        &mut self,
        gmem: &mut GmemAccess<'_>,
        dram: &mut DramController,
    ) -> Result<bool, SimError> {
        debug_assert!(!self.warps.is_empty(), "step() requires a resident block");
        let idx = self.tree.winner();
        let ready = self.ready[idx];
        if ready > self.clock {
            self.stats.stall_cycles += ready - self.clock;
            self.clock = ready;
        }
        let event = self.warps[idx].step(gmem)?;
        match event {
            StepEvent::Compute { cycles } => {
                self.clock += u64::from(cycles.max(1));
                self.stats.instructions += 1;
                self.stats.compute_instructions += 1;
                self.ready[idx] = self.clock;
            }
            StepEvent::Shared { degree } => {
                let d = u64::from(degree.max(1));
                self.clock += d;
                self.stats.instructions += 1;
                self.stats.shared_accesses += 1;
                self.stats.bank_conflict_cycles += d - 1;
                self.ready[idx] = self.clock;
            }
            StepEvent::Global { txns, issue } => {
                let d = u64::from(issue.max(1));
                self.clock += d;
                self.stats.instructions += 1;
                self.stats.global_accesses += 1;
                self.stats.bank_conflict_cycles += d - 1;
                self.stats.global_txns += u64::from(txns);
                self.ready[idx] = dram.access(self.clock, u64::from(txns));
            }
            StepEvent::Done => {
                let mut warp = self.warps.swap_remove(idx);
                self.ready.swap_remove(idx);
                if self.recording {
                    if let Some(trace) = warp.take_trace() {
                        self.trace = Some(trace);
                        self.recording = false;
                    }
                }
                self.spare.push(warp);
                self.stats.blocks_done += 1;
                self.last_retire = self.clock;
                // The tail slot moved into `idx`; the old tail is gone.
                if idx < self.ready.len() {
                    self.tree.set(&self.ready, idx);
                }
                self.tree.set(&self.ready, self.ready.len());
                return Ok(true);
            }
        }
        self.tree.set(&self.ready, idx);
        Ok(false)
    }

    /// The earliest cycle at which this MP can do useful work (its next
    /// warp wake-up), used by the device's global-time event loop.
    #[inline]
    pub fn next_event(&self) -> Option<u64> {
        if self.warps.is_empty() {
            None
        } else {
            Some(self.ready[self.tree.winner()].max(self.clock))
        }
    }
}

/// A winner (tournament) tree over the `ready` array: leaves are slot
/// indices keyed by `(ready_at, index)`, internal nodes hold the winning
/// leaf of their subtree.  `set(i)` recomputes one leaf-to-root path —
/// O(log ℓ) instead of an O(ℓ) scan per issued instruction — and the
/// `(time, index)` order makes the winner identical to a first-minimum
/// scan.
struct MinTree {
    /// Leaf capacity (power of two, ≥ 1).
    cap: usize,
    /// `node[n]` = winning leaf index of subtree `n`; leaves at
    /// `cap..2·cap` hold their own index.  `usize::MAX` marks an empty
    /// leaf.
    node: Vec<usize>,
}

impl MinTree {
    fn new(ell: usize) -> Self {
        let cap = ell.max(1).next_power_of_two();
        Self { cap, node: vec![usize::MAX; 2 * cap] }
    }

    #[inline]
    fn key(ready: &[u64], leaf: usize) -> (u64, usize) {
        match ready.get(leaf) {
            Some(&r) => (r, leaf),
            None => (u64::MAX, usize::MAX),
        }
    }

    /// Re-evaluates leaf `i` (its key changed, appeared or vanished) and
    /// its ancestors.
    fn set(&mut self, ready: &[u64], i: usize) {
        debug_assert!(i < self.cap);
        self.node[self.cap + i] = if i < ready.len() { i } else { usize::MAX };
        let mut n = (self.cap + i) >> 1;
        while n >= 1 {
            let (l, r) = (self.node[2 * n], self.node[2 * n + 1]);
            self.node[n] = if Self::key(ready, l) <= Self::key(ready, r) { l } else { r };
            n >>= 1;
        }
    }

    /// The winning (earliest-ready, lowest-index) leaf.  Only valid while
    /// at least one leaf is occupied.
    #[inline]
    fn winner(&self) -> usize {
        self.node[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BlockExec;
    use crate::gmem::GlobalMemory;
    use crate::uop::CompiledKernel;
    use crate::warp::WarpExec;
    use atgpu_ir::{AddrExpr, DBuf, Kernel, KernelBuilder, Operand};

    fn leak(k: Kernel) -> &'static Kernel {
        Box::leak(Box::new(k))
    }

    fn compute_kernel(n_ops: usize) -> &'static Kernel {
        let mut kb = KernelBuilder::new("c", 4, 0);
        for _ in 0..n_ops {
            kb.mov(0, Operand::Imm(1));
        }
        leak(kb.build())
    }

    fn compile(k: &Kernel, bases: &[u64]) -> CompiledKernel {
        let nregs = k.max_reg().map(|r| u32::from(r) + 1).unwrap_or(1);
        CompiledKernel::compile(k, bases, 4, nregs)
    }

    #[test]
    fn single_warp_issues_serially() {
        let k = compute_kernel(5);
        let ck = compile(k, &[]);
        let mut g = GlobalMemory::new(vec![], 0, 4, 1024).unwrap();
        let mut dram = DramController::new(4, 100);
        let mut mp = Mp::new(2);
        mp.admit(0, || BlockExec::new(&ck));
        let mut acc = GmemAccess::Direct(&mut g);
        let mut retired = 0;
        while !mp.idle() {
            if mp.step(&mut acc, &mut dram).unwrap() {
                retired += 1;
            }
        }
        assert_eq!(retired, 1);
        assert_eq!(mp.clock, 5);
        assert_eq!(mp.stats.instructions, 5);
    }

    #[test]
    fn latency_hiding_with_two_warps() {
        // Kernel: one global load then 10 compute ops.
        let mut kb = KernelBuilder::new("lh", 2, 4);
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::block() * 4 + AddrExpr::lane());
        for _ in 0..10 {
            kb.mov(0, Operand::Imm(1));
        }
        let k = leak(kb.build());
        let ck = compile(k, &[0]);

        // One warp alone: 1 issue + 100 latency + 10 compute ≈ 111.
        let mut g = GlobalMemory::new(vec![0], 8, 4, 1024).unwrap();
        let mut dram = DramController::new(4, 100);
        let mut mp = Mp::new(1);
        mp.admit(0, || BlockExec::new(&ck));
        let mut acc = GmemAccess::Direct(&mut g);
        while !mp.idle() {
            mp.step(&mut acc, &mut dram).unwrap();
        }
        let solo = mp.clock;
        assert_eq!(solo, 111);

        // Two warps resident: the second's compute hides under the first's
        // memory latency, finishing well before 2x solo.
        let mut g = GlobalMemory::new(vec![0], 8, 4, 1024).unwrap();
        let mut dram = DramController::new(4, 100);
        let mut mp = Mp::new(2);
        mp.admit(0, || BlockExec::new(&ck));
        mp.admit(1, || BlockExec::new(&ck));
        let mut acc = GmemAccess::Direct(&mut g);
        while !mp.idle() {
            mp.step(&mut acc, &mut dram).unwrap();
        }
        let duo = mp.clock;
        assert!(duo < 2 * solo - 50, "latency not hidden: solo={solo} duo={duo}");
        assert_eq!(mp.stats.blocks_done, 2);
    }

    #[test]
    fn stall_cycles_recorded_when_nothing_ready() {
        let mut kb = KernelBuilder::new("s", 1, 4);
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::lane());
        kb.mov(0, Operand::Imm(1));
        let k = leak(kb.build());
        let ck = compile(k, &[0]);
        let mut g = GlobalMemory::new(vec![0], 8, 4, 1024).unwrap();
        let mut dram = DramController::new(4, 100);
        let mut mp = Mp::new(1);
        mp.admit(0, || BlockExec::new(&ck));
        let mut acc = GmemAccess::Direct(&mut g);
        while !mp.idle() {
            mp.step(&mut acc, &mut dram).unwrap();
        }
        assert_eq!(mp.stats.stall_cycles, 100); // full exposed latency
    }

    #[test]
    fn spare_pool_reused_across_blocks() {
        let k = compute_kernel(1);
        let ck = compile(k, &[]);
        let mut g = GlobalMemory::new(vec![], 0, 4, 1024).unwrap();
        let mut dram = DramController::new(4, 100);
        let mut mp = Mp::new(1);
        let mut made = 0;
        for block in 0..3 {
            mp.admit(block, || {
                made += 1;
                BlockExec::new(&ck)
            });
            let mut acc = GmemAccess::Direct(&mut g);
            while !mp.idle() {
                mp.step(&mut acc, &mut dram).unwrap();
            }
        }
        assert_eq!(made, 1, "executor should be pooled and reused");
        assert_eq!(mp.stats.blocks_done, 3);
    }

    #[test]
    fn reference_warp_drives_mp_too() {
        let k = compute_kernel(5);
        let bases: &'static [u64] = &[];
        let mut g = GlobalMemory::new(vec![], 0, 4, 1024).unwrap();
        let mut dram = DramController::new(4, 100);
        let mut mp = Mp::new(2);
        mp.admit(0, || WarpExec::new(k, bases, 4, 1));
        let mut acc = GmemAccess::Direct(&mut g);
        while !mp.idle() {
            mp.step(&mut acc, &mut dram).unwrap();
        }
        assert_eq!(mp.clock, 5);
    }

    #[test]
    fn replay_cache_records_then_replays() {
        // A replayable kernel: unit-stride load, compute, store.
        let mut kb = KernelBuilder::new("r", 8, 8);
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::block() * 4 + AddrExpr::lane());
        kb.ld_shr(0, AddrExpr::lane());
        kb.st_shr(AddrExpr::lane() + 4, Operand::Reg(0));
        let k = leak(kb.build());
        let ck = compile(k, &[0]);
        assert!(ck.replayable);

        let mut g = GlobalMemory::new(vec![0], 32, 4, 1024).unwrap();
        for i in 0..32 {
            g.write(i, i);
        }
        let mut dram = DramController::new(4, 10);
        let mut mp = Mp::with_replay(2, true);
        let mut next_block = 0u64;
        while mp.free_slots() > 0 && next_block < 8 {
            mp.admit(next_block, || BlockExec::new(&ck));
            next_block += 1;
        }
        let mut acc = GmemAccess::Direct(&mut g);
        while !mp.idle() {
            if mp.step(&mut acc, &mut dram).unwrap() && next_block < 8 {
                mp.admit(next_block, || BlockExec::new(&ck));
                next_block += 1;
            }
        }
        assert_eq!(mp.stats.blocks_done, 8);
        assert!(mp.trace.is_some(), "trace captured after first retirement");
        // Timing statistics reflect all blocks' memory events.
        assert_eq!(mp.stats.global_txns, 8);
        assert_eq!(mp.stats.shared_accesses, 16);
    }
}
