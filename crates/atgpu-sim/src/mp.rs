//! A multiprocessor: occupancy-limited resident blocks, ready-time warp
//! scheduling, latency hiding.
//!
//! The MP issues one instruction per cycle (serialised further by bank
//! conflicts).  When a warp issues a global access it *stalls* until the
//! memory controller delivers, but the MP keeps issuing from other
//! resident warps — the latency hiding the paper describes.  Blocks are
//! pulled from the launch queue whenever a residency slot frees, up to
//! `ℓ = min(⌊M/m⌋, H)` concurrent blocks.

use crate::dram::DramController;
use crate::error::SimError;
use crate::warp::{GmemAccess, StepEvent, WarpExec};

/// Per-MP statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MpStats {
    /// Instructions issued (lockstep operations).
    pub instructions: u64,
    /// Compute (ALU/move/predicate/sync) instructions issued.
    pub compute_instructions: u64,
    /// Shared-memory access instructions issued.
    pub shared_accesses: u64,
    /// Global-memory access instructions issued.
    pub global_accesses: u64,
    /// Global transactions requested.
    pub global_txns: u64,
    /// Extra issue cycles lost to bank-conflict serialisation (beyond the
    /// 1 cycle a conflict-free access would take).
    pub bank_conflict_cycles: u64,
    /// Thread blocks completed.
    pub blocks_done: u64,
    /// Cycles the MP spent with no warp ready (exposed memory latency).
    pub stall_cycles: u64,
}

/// One warp slot: an executor plus its wake-up time.
struct Slot<'k> {
    warp: WarpExec<'k>,
    ready_at: u64,
}

/// A multiprocessor simulating up to `ell` resident blocks.
pub struct Mp<'k> {
    /// The MP's current cycle (issue clock).
    pub clock: u64,
    slots: Vec<Slot<'k>>,
    /// Finished-warp pool for reuse (workhorse allocation pattern).
    spare: Vec<WarpExec<'k>>,
    ell: usize,
    /// Statistics.
    pub stats: MpStats,
    /// Cycle at which the last block retired.
    pub last_retire: u64,
}

impl<'k> Mp<'k> {
    /// Creates an MP with `ell` residency slots.
    pub fn new(ell: u64) -> Self {
        Self {
            clock: 0,
            slots: Vec::with_capacity(ell as usize),
            spare: Vec::new(),
            ell: ell as usize,
            stats: MpStats::default(),
            last_retire: 0,
        }
    }

    /// True when no blocks are resident.
    pub fn idle(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of free residency slots.
    pub fn free_slots(&self) -> usize {
        self.ell - self.slots.len()
    }

    /// Admits a block, reusing a pooled executor when available.
    pub fn admit(
        &mut self,
        block: u64,
        make: impl FnOnce() -> WarpExec<'k>,
    ) {
        debug_assert!(self.slots.len() < self.ell);
        let mut warp = self.spare.pop().unwrap_or_else(make);
        warp.reset(block);
        self.slots.push(Slot { warp, ready_at: self.clock });
    }

    /// Executes one scheduling decision: picks the warp with the earliest
    /// wake-up time, advances the clock, issues its next instruction.
    /// Returns `Ok(true)` if a block retired (a slot freed).
    pub fn step(
        &mut self,
        gmem: &mut GmemAccess<'_>,
        dram: &mut DramController,
    ) -> Result<bool, SimError> {
        let idx = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.ready_at)
            .map(|(i, _)| i)
            .expect("step() requires a resident block");
        let ready = self.slots[idx].ready_at;
        if ready > self.clock {
            self.stats.stall_cycles += ready - self.clock;
            self.clock = ready;
        }
        let event = self.slots[idx].warp.step(gmem)?;
        match event {
            StepEvent::Compute { cycles } => {
                self.clock += u64::from(cycles.max(1));
                self.stats.instructions += 1;
                self.stats.compute_instructions += 1;
                self.slots[idx].ready_at = self.clock;
            }
            StepEvent::Shared { degree } => {
                let d = u64::from(degree.max(1));
                self.clock += d;
                self.stats.instructions += 1;
                self.stats.shared_accesses += 1;
                self.stats.bank_conflict_cycles += d - 1;
                self.slots[idx].ready_at = self.clock;
            }
            StepEvent::Global { txns, issue } => {
                let d = u64::from(issue.max(1));
                self.clock += d;
                self.stats.instructions += 1;
                self.stats.global_accesses += 1;
                self.stats.bank_conflict_cycles += d - 1;
                self.stats.global_txns += u64::from(txns);
                self.slots[idx].ready_at = dram.access(self.clock, u64::from(txns));
            }
            StepEvent::Done => {
                let slot = self.slots.swap_remove(idx);
                self.spare.push(slot.warp);
                self.stats.blocks_done += 1;
                self.last_retire = self.clock;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// The earliest cycle at which this MP can do useful work (its next
    /// warp wake-up), used by the device's global-time event loop.
    pub fn next_event(&self) -> Option<u64> {
        self.slots.iter().map(|s| s.ready_at).min().map(|r| r.max(self.clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmem::GlobalMemory;
    use atgpu_ir::{AddrExpr, DBuf, Kernel, KernelBuilder, Operand};

    fn leak(k: Kernel) -> &'static Kernel {
        Box::leak(Box::new(k))
    }

    fn compute_kernel(n_ops: usize) -> &'static Kernel {
        let mut kb = KernelBuilder::new("c", 4, 0);
        for _ in 0..n_ops {
            kb.mov(0, Operand::Imm(1));
        }
        leak(kb.build())
    }

    #[test]
    fn single_warp_issues_serially() {
        let k = compute_kernel(5);
        let bases: &'static [u64] = &[];
        let mut g = GlobalMemory::new(vec![], 0, 4, 1024).unwrap();
        let mut dram = DramController::new(4, 100);
        let mut mp = Mp::new(2);
        mp.admit(0, || WarpExec::new(k, bases, 4, 1));
        let mut acc = GmemAccess::Direct(&mut g);
        let mut retired = 0;
        while !mp.idle() {
            if mp.step(&mut acc, &mut dram).unwrap() {
                retired += 1;
            }
        }
        assert_eq!(retired, 1);
        assert_eq!(mp.clock, 5);
        assert_eq!(mp.stats.instructions, 5);
    }

    #[test]
    fn latency_hiding_with_two_warps() {
        // Kernel: one global load then 10 compute ops.
        let mut kb = KernelBuilder::new("lh", 2, 4);
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::block() * 4 + AddrExpr::lane());
        for _ in 0..10 {
            kb.mov(0, Operand::Imm(1));
        }
        let k = leak(kb.build());
        let bases: &'static [u64] = Box::leak(vec![0u64].into_boxed_slice());

        // One warp alone: 1 issue + 100 latency + 10 compute ≈ 111.
        let mut g = GlobalMemory::new(vec![0], 8, 4, 1024).unwrap();
        let mut dram = DramController::new(4, 100);
        let mut mp = Mp::new(1);
        mp.admit(0, || WarpExec::new(k, bases, 4, 1));
        let mut acc = GmemAccess::Direct(&mut g);
        while !mp.idle() {
            mp.step(&mut acc, &mut dram).unwrap();
        }
        let solo = mp.clock;
        assert_eq!(solo, 111);

        // Two warps resident: the second's compute hides under the first's
        // memory latency, finishing well before 2x solo.
        let mut g = GlobalMemory::new(vec![0], 8, 4, 1024).unwrap();
        let mut dram = DramController::new(4, 100);
        let mut mp = Mp::new(2);
        mp.admit(0, || WarpExec::new(k, bases, 4, 1));
        mp.admit(1, || WarpExec::new(k, bases, 4, 1));
        let mut acc = GmemAccess::Direct(&mut g);
        while !mp.idle() {
            mp.step(&mut acc, &mut dram).unwrap();
        }
        let duo = mp.clock;
        assert!(duo < 2 * solo - 50, "latency not hidden: solo={solo} duo={duo}");
        assert_eq!(mp.stats.blocks_done, 2);
    }

    #[test]
    fn stall_cycles_recorded_when_nothing_ready() {
        let mut kb = KernelBuilder::new("s", 1, 4);
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::lane());
        kb.mov(0, Operand::Imm(1));
        let k = leak(kb.build());
        let bases: &'static [u64] = Box::leak(vec![0u64].into_boxed_slice());
        let mut g = GlobalMemory::new(vec![0], 8, 4, 1024).unwrap();
        let mut dram = DramController::new(4, 100);
        let mut mp = Mp::new(1);
        mp.admit(0, || WarpExec::new(k, bases, 4, 1));
        let mut acc = GmemAccess::Direct(&mut g);
        while !mp.idle() {
            mp.step(&mut acc, &mut dram).unwrap();
        }
        assert_eq!(mp.stats.stall_cycles, 100); // full exposed latency
    }

    #[test]
    fn spare_pool_reused_across_blocks() {
        let k = compute_kernel(1);
        let bases: &'static [u64] = &[];
        let mut g = GlobalMemory::new(vec![], 0, 4, 1024).unwrap();
        let mut dram = DramController::new(4, 100);
        let mut mp = Mp::new(1);
        let mut made = 0;
        for block in 0..3 {
            mp.admit(block, || {
                made += 1;
                WarpExec::new(k, bases, 4, 1)
            });
            let mut acc = GmemAccess::Direct(&mut g);
            while !mp.idle() {
                mp.step(&mut acc, &mut dram).unwrap();
            }
        }
        assert_eq!(made, 1, "executor should be pooled and reused");
        assert_eq!(mp.stats.blocks_done, 3);
    }
}
