//! Deterministic fault injection: seeded, replayable fault plans and the
//! runtime bookkeeping the drivers use to act them out.
//!
//! A [`FaultPlan`] is a *schedule*, not a random process: every event is
//! fixed up front (device deaths, degraded-link windows, dropped transfer
//! attempts, slow-clock stragglers), and the plan's `seed` only matters
//! when [`FaultPlan::random`] synthesises one.  Replaying the same plan
//! against the same program reproduces the same failures, the same retry
//! counts and the same recovery decisions — which is what lets the chaos
//! differential suite (`tests/chaos_differential.rs`) pin recovery down
//! to bit-identity instead of "usually works".
//!
//! The empty plan is the fast path: [`FaultRuntime::new`] returns `None`
//! for it, and every injection site in the drivers is gated on that
//! `Option`, so a faultless run executes exactly the pre-fault code —
//! no RNG draws, no journaling, no arithmetic changes.

use std::collections::{BTreeSet, HashMap};

/// One directed link of the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkEdge {
    /// The host↔device link of one device (both directions).
    Host(u32),
    /// The directed peer link `src → dst`.
    Peer(u32, u32),
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The device is lost at the **start** of `at_round` and never comes
    /// back.  Cluster runs re-apportion its unfinished shards across the
    /// survivors; a single-device run has no survivors and fails with
    /// [`crate::SimError::DeviceLost`].
    DeviceDown {
        /// Device that dies.
        device: u32,
        /// Round index at whose start it dies.
        at_round: usize,
    },
    /// Every transfer on `edge` costs `factor`× during rounds
    /// `[from_round, to_round)`.  The data still arrives — only the
    /// timing degrades.
    LinkDegraded {
        /// The degraded link.
        edge: LinkEdge,
        /// Multiplicative slowdown (`> 1` slows the link).
        factor: f64,
        /// First degraded round (inclusive).
        from_round: usize,
        /// First healthy round again (exclusive bound).
        to_round: usize,
    },
    /// The `nth` transfer **attempt** on `edge` (0-based, counting
    /// retries) is dropped mid-flight: the attempt pays the full affine
    /// transfer cost, then the driver backs off and retries.  Indexing
    /// attempts rather than transfers means retries can themselves be
    /// dropped, and the retry count is exactly recomputable from the
    /// plan.
    TransferDrop {
        /// The lossy link.
        edge: LinkEdge,
        /// Which attempt on that link is lost (0-based).
        nth: u64,
    },
    /// The device's clock runs slow for the whole run: kernel time is
    /// multiplied by `clock_factor` (`> 1` slows the device).  Results
    /// are unchanged — a straggler is late, not wrong.
    Straggler {
        /// The slow device.
        device: u32,
        /// Multiplicative kernel-time factor.
        clock_factor: f64,
    },
}

/// A seeded, deterministic schedule of fault events, injected through
/// [`crate::SimConfig::fault`].  The default (empty) plan is free: the
/// drivers skip every injection hook.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed recorded for reproduction (used by [`FaultPlan::random`];
    /// carried so a chaos failure report identifies the plan).
    pub seed: u64,
    /// The scheduled events, in no particular order.
    pub events: Vec<FaultEvent>,
}

/// The xorshift64* generator behind [`FaultPlan::random`] — no external
/// RNG dependency, and trivially reproducible from the seed alone.
struct PlanRng(u64);

impl PlanRng {
    fn new(seed: u64) -> Self {
        // Splitmix-style scramble so seeds 0 and 1 diverge immediately.
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678_9ABC_DEF1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

impl FaultPlan {
    /// An empty plan carrying `seed` (events added with [`Self::push`]).
    pub fn new(seed: u64) -> Self {
        Self { seed, events: Vec::new() }
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds one event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Synthesises a random plan for an `n_devices`-device,
    /// `n_rounds`-round program: dropped attempts, degraded-link
    /// windows, stragglers and device deaths, all with probabilities
    /// scaled by `rate ∈ [0, 1]`.  Deterministic in `seed`, and never
    /// kills the last device — at least one survivor is guaranteed, so
    /// every random plan is recoverable on a cluster.
    pub fn random(seed: u64, n_devices: u32, n_rounds: usize, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let rounds = n_rounds.max(1) as u64;
        let mut rng = PlanRng::new(seed);
        let mut plan = Self::new(seed);
        // Dropped attempts: host links first, then peer links (sparser).
        for d in 0..n_devices {
            for nth in 0..4 * rounds {
                if rng.unit() < rate {
                    plan.push(FaultEvent::TransferDrop { edge: LinkEdge::Host(d), nth });
                }
            }
        }
        for s in 0..n_devices {
            for d in 0..n_devices {
                if s == d {
                    continue;
                }
                for nth in 0..2 * rounds {
                    if rng.unit() < rate * 0.5 {
                        plan.push(FaultEvent::TransferDrop { edge: LinkEdge::Peer(s, d), nth });
                    }
                }
            }
        }
        // Degraded-link windows on host links.
        for d in 0..n_devices {
            if rng.unit() < rate {
                let from_round = rng.below(rounds) as usize;
                let to_round = from_round + 1 + rng.below(rounds) as usize;
                let factor = 1.0 + 4.0 * rng.unit();
                plan.push(FaultEvent::LinkDegraded {
                    edge: LinkEdge::Host(d),
                    factor,
                    from_round,
                    to_round,
                });
            }
        }
        // Stragglers.
        for device in 0..n_devices {
            if rng.unit() < rate {
                plan.push(FaultEvent::Straggler { device, clock_factor: 1.0 + 3.0 * rng.unit() });
            }
        }
        // Deaths, capped at n_devices − 1 so someone always survives.
        let mut deaths = 0;
        for device in 0..n_devices {
            if deaths + 1 < n_devices && rng.unit() < rate * 0.5 {
                plan.push(FaultEvent::DeviceDown { device, at_round: rng.below(rounds) as usize });
                deaths += 1;
            }
        }
        plan
    }
}

/// Runtime state a driver threads through one simulated run: which
/// attempts drop, which devices die and when, per-edge attempt counters.
///
/// Built once per run with [`FaultRuntime::new`]; `None` for the empty
/// plan, which is how fault injection stays free when idle.
#[derive(Debug, Clone)]
pub struct FaultRuntime {
    /// Earliest scheduled death per device.
    down: HashMap<u32, usize>,
    /// Product of straggler factors per device.
    clock: HashMap<u32, f64>,
    /// Degraded-link windows.
    degraded: Vec<(LinkEdge, f64, usize, usize)>,
    /// Dropped attempt indices per edge.
    drops: HashMap<LinkEdge, BTreeSet<u64>>,
    /// Attempts consumed so far per edge.
    attempts: HashMap<LinkEdge, u64>,
}

impl FaultRuntime {
    /// Compiles a plan into runtime lookups; `None` when the plan is
    /// empty (the no-fault fast path).
    pub fn new(plan: &FaultPlan) -> Option<Self> {
        if plan.is_empty() {
            return None;
        }
        let mut rt = Self {
            down: HashMap::new(),
            clock: HashMap::new(),
            degraded: Vec::new(),
            drops: HashMap::new(),
            attempts: HashMap::new(),
        };
        for event in &plan.events {
            match event {
                FaultEvent::DeviceDown { device, at_round } => {
                    let e = rt.down.entry(*device).or_insert(*at_round);
                    *e = (*e).min(*at_round);
                }
                FaultEvent::LinkDegraded { edge, factor, from_round, to_round } => {
                    rt.degraded.push((*edge, *factor, *from_round, *to_round));
                }
                FaultEvent::TransferDrop { edge, nth } => {
                    rt.drops.entry(*edge).or_default().insert(*nth);
                }
                FaultEvent::Straggler { device, clock_factor } => {
                    *rt.clock.entry(*device).or_insert(1.0) *= clock_factor;
                }
            }
        }
        Some(rt)
    }

    /// The round at whose start `device` dies, if any is scheduled.
    pub fn down_at(&self, device: u32) -> Option<usize> {
        self.down.get(&device).copied()
    }

    /// The device's kernel-time factor (1.0 when not a straggler).
    pub fn clock_factor(&self, device: u32) -> f64 {
        self.clock.get(&device).copied().unwrap_or(1.0)
    }

    /// The multiplicative transfer-cost factor on `edge` during `round`
    /// (product of all matching degradation windows; 1.0 when healthy).
    pub fn link_factor(&self, edge: LinkEdge, round: usize) -> f64 {
        self.degraded
            .iter()
            .filter(|(e, _, from, to)| *e == edge && (*from..*to).contains(&round))
            .map(|(_, f, _, _)| *f)
            .product()
    }

    /// Consumes the next attempt on `edge`; `true` means that attempt is
    /// dropped and the driver must retry.  Attempt counters advance on
    /// every call, so retry counts are an exact function of the plan.
    pub fn consume_attempt(&mut self, edge: LinkEdge) -> bool {
        let n = self.attempts.entry(edge).or_insert(0);
        let idx = *n;
        *n += 1;
        self.drops.get(&edge).is_some_and(|set| set.contains(&idx))
    }

    /// Runs one logical transfer on `edge` during `round` under the
    /// plan's drops and degradations: `attempt` performs (and prices) the
    /// copy, and is re-run after each dropped attempt with an exponential
    /// backoff wait of `backoff_unit_ms · 2ᵏ`.  Every attempt — dropped
    /// or not — pays its full affine cost times the round's
    /// [`Self::link_factor`]; the returned milliseconds include attempts
    /// and waits, while the waits alone also accumulate into
    /// `backoff_ms` and each retry bumps `retries`.  The copy itself is
    /// idempotent, so re-running a dropped attempt is harmless.
    pub fn transfer(
        &mut self,
        edge: LinkEdge,
        round: usize,
        backoff_unit_ms: f64,
        retries: &mut u64,
        backoff_ms: &mut f64,
        attempt: impl FnMut() -> f64,
    ) -> f64 {
        // The no-op segment sink monomorphises away: the untraced retry
        // loop compiles exactly as before.
        self.transfer_segmented(
            edge,
            round,
            backoff_unit_ms,
            retries,
            backoff_ms,
            attempt,
            |_, _, _| {},
        )
    }

    /// [`Self::transfer`] additionally reporting each **segment** of the
    /// transfer to `on_seg(start_off_ms, end_off_ms, is_backoff)`:
    /// attempt segments (dropped and final) and backoff waits, in time
    /// order, exactly tiling `[0, total)` relative to the transfer's
    /// start.  The timeline tracer turns these into per-attempt and
    /// per-wait spans so retries and backoff are visible in a trace
    /// instead of fused into one opaque block.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_segmented(
        &mut self,
        edge: LinkEdge,
        round: usize,
        backoff_unit_ms: f64,
        retries: &mut u64,
        backoff_ms: &mut f64,
        mut attempt: impl FnMut() -> f64,
        mut on_seg: impl FnMut(f64, f64, bool),
    ) -> f64 {
        let factor = self.link_factor(edge, round);
        let mut total = 0.0;
        let mut k = 0u32;
        loop {
            let dropped = self.consume_attempt(edge);
            let cost = attempt() * factor;
            on_seg(total, total + cost, false);
            total += cost;
            if !dropped {
                return total;
            }
            *retries += 1;
            let wait = backoff_unit_ms * f64::from(2u32.pow(k.min(20)));
            on_seg(total, total + wait, true);
            total += wait;
            *backoff_ms += wait;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_compiles_to_none() {
        assert!(FaultRuntime::new(&FaultPlan::default()).is_none());
        assert!(FaultRuntime::new(&FaultPlan::new(42)).is_none());
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let a = FaultPlan::random(7, 4, 6, 0.3);
        let b = FaultPlan::random(7, 4, 6, 0.3);
        assert_eq!(a, b);
        let c = FaultPlan::random(8, 4, 6, 0.3);
        assert_ne!(a, c, "different seeds must differ (with overwhelming likelihood)");
    }

    #[test]
    fn random_never_kills_every_device() {
        for seed in 0..200 {
            for n in 1..=4u32 {
                let plan = FaultPlan::random(seed, n, 5, 1.0);
                let deaths = plan
                    .events
                    .iter()
                    .filter(|e| matches!(e, FaultEvent::DeviceDown { .. }))
                    .count();
                assert!(deaths < n as usize, "seed {seed}: {deaths} deaths on {n} devices");
            }
        }
    }

    #[test]
    fn attempt_indexed_drops_are_exact() {
        let mut plan = FaultPlan::new(0);
        let edge = LinkEdge::Host(0);
        plan.push(FaultEvent::TransferDrop { edge, nth: 0 });
        plan.push(FaultEvent::TransferDrop { edge, nth: 1 });
        plan.push(FaultEvent::TransferDrop { edge, nth: 3 });
        let mut rt = FaultRuntime::new(&plan).unwrap();
        // First transfer: attempts 0 and 1 drop, attempt 2 lands.
        assert!(rt.consume_attempt(edge));
        assert!(rt.consume_attempt(edge));
        assert!(!rt.consume_attempt(edge));
        // Second transfer: attempt 3 drops, attempt 4 lands.
        assert!(rt.consume_attempt(edge));
        assert!(!rt.consume_attempt(edge));
        // Other edges are untouched.
        assert!(!rt.consume_attempt(LinkEdge::Host(1)));
        assert!(!rt.consume_attempt(LinkEdge::Peer(0, 1)));
    }

    #[test]
    fn earliest_death_and_straggler_product() {
        let mut plan = FaultPlan::new(0);
        plan.push(FaultEvent::DeviceDown { device: 1, at_round: 5 });
        plan.push(FaultEvent::DeviceDown { device: 1, at_round: 2 });
        plan.push(FaultEvent::Straggler { device: 0, clock_factor: 2.0 });
        plan.push(FaultEvent::Straggler { device: 0, clock_factor: 1.5 });
        let rt = FaultRuntime::new(&plan).unwrap();
        assert_eq!(rt.down_at(1), Some(2));
        assert_eq!(rt.down_at(0), None);
        assert!((rt.clock_factor(0) - 3.0).abs() < 1e-12);
        assert_eq!(rt.clock_factor(1), 1.0);
    }

    #[test]
    fn retry_loop_prices_every_attempt_and_backs_off() {
        let mut plan = FaultPlan::new(0);
        let edge = LinkEdge::Host(0);
        plan.push(FaultEvent::TransferDrop { edge, nth: 0 });
        plan.push(FaultEvent::TransferDrop { edge, nth: 1 });
        plan.push(FaultEvent::LinkDegraded { edge, factor: 2.0, from_round: 0, to_round: 1 });
        let mut rt = FaultRuntime::new(&plan).unwrap();
        let (mut retries, mut backoff, mut calls) = (0u64, 0.0f64, 0u32);
        let t = rt.transfer(edge, 0, 0.5, &mut retries, &mut backoff, || {
            calls += 1;
            1.0
        });
        // Attempts 0 and 1 drop, attempt 2 lands: three attempts at
        // 1.0 × 2.0 (degraded) each, plus backoff waits 0.5 + 1.0.
        assert_eq!(calls, 3);
        assert_eq!(retries, 2);
        assert!((backoff - 1.5).abs() < 1e-12);
        assert!((t - (3.0 * 2.0 + 1.5)).abs() < 1e-12);
        // A healthy round on the same edge: single attempt, no factor.
        let u = rt.transfer(edge, 5, 0.5, &mut retries, &mut backoff, || 1.0);
        assert_eq!(retries, 2);
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_segments_tile_the_total_exactly() {
        let mut plan = FaultPlan::new(0);
        let edge = LinkEdge::Host(0);
        plan.push(FaultEvent::TransferDrop { edge, nth: 0 });
        plan.push(FaultEvent::TransferDrop { edge, nth: 1 });
        let mut rt = FaultRuntime::new(&plan).unwrap();
        let (mut retries, mut backoff) = (0u64, 0.0f64);
        let mut segs: Vec<(f64, f64, bool)> = Vec::new();
        let t = rt.transfer_segmented(
            edge,
            0,
            0.5,
            &mut retries,
            &mut backoff,
            || 1.0,
            |a, b, w| segs.push((a, b, w)),
        );
        // attempt, wait 0.5, attempt, wait 1.0, attempt — contiguous,
        // starting at 0 and ending at the returned total.
        assert_eq!(
            segs.iter().map(|&(_, _, w)| w).collect::<Vec<_>>(),
            vec![false, true, false, true, false]
        );
        assert_eq!(segs[0].0, 0.0);
        for pair in segs.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "segments must tile without gaps");
        }
        assert_eq!(segs.last().unwrap().1, t);
        assert!((t - (3.0 + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn degradation_windows_compose_and_expire() {
        let mut plan = FaultPlan::new(0);
        let edge = LinkEdge::Host(0);
        plan.push(FaultEvent::LinkDegraded { edge, factor: 2.0, from_round: 1, to_round: 4 });
        plan.push(FaultEvent::LinkDegraded { edge, factor: 3.0, from_round: 2, to_round: 3 });
        let rt = FaultRuntime::new(&plan).unwrap();
        assert_eq!(rt.link_factor(edge, 0), 1.0);
        assert_eq!(rt.link_factor(edge, 1), 2.0);
        assert_eq!(rt.link_factor(edge, 2), 6.0);
        assert_eq!(rt.link_factor(edge, 3), 2.0);
        assert_eq!(rt.link_factor(edge, 4), 1.0);
        assert_eq!(rt.link_factor(LinkEdge::Host(1), 2), 1.0);
    }
}
