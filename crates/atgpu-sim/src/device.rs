//! The whole device: `k′` multiprocessors, a block dispatch queue, and the
//! shared memory controller.
//!
//! Two execution strategies (see [`crate::ExecMode`]):
//!
//! * **Sequential** — all MPs co-simulated in one event loop, always
//!   stepping the MP with the earliest next event, against a *shared*
//!   memory controller.  Global writes are applied immediately.  This is
//!   the deterministic reference semantics.
//! * **Parallel** — MPs are partitioned over OS threads (crossbeam scoped
//!   threads); each MP gets a private controller with a `1/k′` bandwidth
//!   share and blocks are assigned statically (`block i → MP i mod k′`).
//!   Global writes are deferred to per-thread logs and applied in block
//!   order after the launch, which keeps results deterministic and
//!   race-free for well-formed kernels.  Optional race detection flags
//!   any global word written by two different blocks.

use crate::cache::{CacheStats, KernelCache};
use crate::dram::DramController;
use crate::engine::{BlockExec, BlockSim};
use crate::error::SimError;
use crate::gmem::GlobalMemory;
use crate::mp::{Mp, MpStats};
use crate::warp::{GmemAccess, StepEvent, WarpExec, WriteRec};
use crate::{EngineSel, ExecMode};
use atgpu_ir::Kernel;
use atgpu_model::{occupancy, AtgpuMachine, GpuSpec};
use std::sync::{Arc, OnceLock};

/// The launch's connection to the cross-launch kernel cache: the seed
/// trace to start every MP with (when one is cached) and the write-once
/// slot a cold launch records into.
type TraceSlot<'a> = Option<&'a OnceLock<Arc<[StepEvent]>>>;

/// Aggregated observations from one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Kernel duration in device cycles (time of the last block
    /// retirement).
    pub cycles: u64,
    /// Lockstep instructions issued across all MPs.
    pub instructions: u64,
    /// Compute (ALU/move/predicate/sync) instructions issued.
    pub compute_instructions: u64,
    /// Shared-memory access instructions issued.
    pub shared_accesses: u64,
    /// Global-memory access instructions issued.
    pub global_accesses: u64,
    /// Coalesced global transactions.
    pub global_txns: u64,
    /// Extra issue cycles lost to bank conflicts.
    pub bank_conflict_cycles: u64,
    /// Cycles MPs idled waiting for memory.
    pub stall_cycles: u64,
    /// Cycles requests queued behind the memory pipe.
    pub dram_queue_cycles: u64,
    /// Thread blocks executed.
    pub blocks: u64,
    /// Residency `ℓ` used for the launch.
    pub occupancy: u64,
}

impl KernelStats {
    /// Fraction of device issue capacity used: instructions issued per
    /// MP-cycle (1.0 = every MP issued every cycle; low values mean
    /// exposed memory latency).
    pub fn issue_utilization(&self, k_prime: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / (self.cycles as f64 * k_prime.max(1) as f64)
    }

    /// Instruction mix as (compute, shared, global) fractions.
    pub fn instruction_mix(&self) -> (f64, f64, f64) {
        let t = self.instructions.max(1) as f64;
        (
            self.compute_instructions as f64 / t,
            self.shared_accesses as f64 / t,
            self.global_accesses as f64 / t,
        )
    }

    /// Folds in the statistics of a launch (or shard) that ran **after**
    /// `self` on the same device: counters add, and so do cycles (the
    /// runs are serial); occupancy keeps the last non-zero value.
    pub fn merge_serial(&mut self, s: &KernelStats) {
        self.cycles += s.cycles;
        self.instructions += s.instructions;
        self.compute_instructions += s.compute_instructions;
        self.shared_accesses += s.shared_accesses;
        self.global_accesses += s.global_accesses;
        self.global_txns += s.global_txns;
        self.bank_conflict_cycles += s.bank_conflict_cycles;
        self.stall_cycles += s.stall_cycles;
        self.dram_queue_cycles += s.dram_queue_cycles;
        self.blocks += s.blocks;
        if s.occupancy != 0 {
            self.occupancy = s.occupancy;
        }
    }

    fn fold_mp(&mut self, s: &MpStats) {
        self.instructions += s.instructions;
        self.compute_instructions += s.compute_instructions;
        self.shared_accesses += s.shared_accesses;
        self.global_accesses += s.global_accesses;
        self.global_txns += s.global_txns;
        self.bank_conflict_cycles += s.bank_conflict_cycles;
        self.stall_cycles += s.stall_cycles;
        self.blocks += s.blocks_done;
    }
}

/// Per-device observability counters — everything a device knows beyond
/// individual launches: the cross-launch kernel cache plus the fault/
/// recovery counters the drivers accumulate on the device's behalf.
/// Deliberately separate from [`KernelStats`] so cached and cold
/// launches stay bit-identical in per-launch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStats {
    /// Kernel-cache counters (hits, misses, resident entries).
    pub cache: CacheStats,
    /// Transfer attempts retried after a fault-injected drop on a link
    /// touching this device ([`crate::fault::FaultEvent::TransferDrop`]).
    pub retries: u64,
    /// Exponential-backoff time those retries charged, in milliseconds.
    pub backoff_ms: f64,
    /// Dead-device takeovers this device participated in: incremented
    /// once per recovery replay it absorbed as a survivor.
    pub recoveries: u64,
}

impl DeviceStats {
    /// Folds another device's counters in (cluster-wide totals).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.cache.merge(&other.cache);
        self.retries += other.retries;
        self.backoff_ms += other.backoff_ms;
        self.recoveries += other.recoveries;
    }
}

/// The simulated GPU device.
#[derive(Debug)]
pub struct Device {
    machine: AtgpuMachine,
    spec: GpuSpec,
    /// The cross-launch kernel cache ([`crate::cache`]).  Per-device by
    /// design: threaded cluster dispatch never contends across devices.
    cache: KernelCache,
    /// Watchdog budget in simulated cycles per launch; 0 = unlimited.
    /// Atomic (not `Cell`) because the device is shared across scoped
    /// shard threads; configured once per run like the cache.
    watchdog: std::sync::atomic::AtomicU64,
}

impl Device {
    /// Creates a device; rejects machines wider than the 64-lane mask
    /// limit.
    pub fn new(machine: AtgpuMachine, spec: GpuSpec) -> Result<Self, SimError> {
        if machine.b > 64 {
            return Err(SimError::UnsupportedWidth { b: machine.b });
        }
        Ok(Self {
            machine,
            spec,
            cache: KernelCache::default(),
            watchdog: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The machine this device implements.
    pub fn machine(&self) -> &AtgpuMachine {
        &self.machine
    }

    /// The device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Applies the cache kill-switch and size bound (see
    /// [`crate::SimConfig::cache`] /
    /// [`crate::SimConfig::cache_capacity`]).
    pub fn configure_cache(&self, enabled: bool, capacity: usize) {
        self.cache.set_enabled(enabled);
        self.cache.set_capacity(capacity);
    }

    /// The device's kernel cache (lookups, kill-switch, counters).
    pub fn cache(&self) -> &KernelCache {
        &self.cache
    }

    /// Sets the per-launch watchdog budget in simulated cycles (see
    /// [`crate::SimConfig::watchdog_cycles`]); 0 disables the watchdog.
    /// A launch whose event clock passes the budget aborts with
    /// [`SimError::Watchdog`] instead of simulating on.
    pub fn configure_watchdog(&self, cycles: u64) {
        self.watchdog.store(cycles, std::sync::atomic::Ordering::Relaxed);
    }

    /// Device-level counters: cache hits/misses/entries.  The fault/
    /// recovery counters are zero here — transfer engines live in the
    /// drivers, which fold their retry and recovery totals in when
    /// building a report.
    pub fn stats(&self) -> DeviceStats {
        DeviceStats { cache: self.cache.stats(), ..DeviceStats::default() }
    }

    /// Runs one kernel launch to completion with the micro-op engine.
    pub fn run_kernel(
        &self,
        kernel: &Kernel,
        gmem: &mut GlobalMemory,
        mode: ExecMode,
        detect_races: bool,
    ) -> Result<KernelStats, SimError> {
        self.run_kernel_with(kernel, gmem, mode, detect_races, EngineSel::MicroOp)
    }

    /// Runs one kernel launch with an explicit executor choice.
    ///
    /// [`EngineSel::MicroOp`] resolves the kernel through the device's
    /// cross-launch [`KernelCache`] — a repeated launch of the same
    /// kernel shape reuses the compiled micro-op program *and*, when the
    /// kernel is replay-eligible, the recorded block-invariant timing
    /// trace, skipping both lowering and first-block recording warmup.
    /// [`EngineSel::Reference`] drives the retained tree-walking
    /// interpreter — the pre-engine baseline kept for differential
    /// testing and benchmarking (never cached).
    pub fn run_kernel_with(
        &self,
        kernel: &Kernel,
        gmem: &mut GlobalMemory,
        mode: ExecMode,
        detect_races: bool,
        engine: EngineSel,
    ) -> Result<KernelStats, SimError> {
        let ell = occupancy(&self.machine, kernel.shared_words, self.spec.h_limit);
        if ell == 0 {
            return Err(SimError::SharedTooLarge {
                kernel: kernel.name.clone(),
                requested: kernel.shared_words,
                available: self.machine.m,
            });
        }
        let nregs = kernel.max_reg().map(|r| u32::from(r) + 1).unwrap_or(1);
        let bases: Vec<u64> = (0..gmem.buf_count()).map(|i| gmem.base(i as u32)).collect();

        match engine {
            EngineSel::MicroOp => {
                let entry = self.cache.get_or_compile(kernel, &bases, self.machine.b as u32, nregs);
                let compiled = &entry.compiled;
                let make = || BlockExec::new(compiled);
                let slot = compiled.replayable.then_some(&entry.trace);
                self.dispatch(
                    kernel,
                    gmem,
                    mode,
                    detect_races,
                    ell,
                    &make,
                    compiled.replayable,
                    slot,
                )
            }
            EngineSel::Reference => {
                let b = self.machine.b as u32;
                let bases = &bases[..];
                let make = || WarpExec::new(kernel, bases, b, nregs);
                self.dispatch(kernel, gmem, mode, detect_races, ell, &make, false, None)
            }
        }
    }

    /// Runs the block range `range.0..range.1` of a launch — one **shard**
    /// of a (possibly multi-device) launch — with every global write
    /// deferred to `log` and reads served from the pre-launch snapshot.
    ///
    /// This is the cluster's per-device execution primitive: the caller
    /// owns write-log merging (see [`apply_write_log`]), so a shard run
    /// never mutates `gmem`.  With `range = (0, kernel.blocks())` the
    /// returned statistics and log are exactly those of a whole-device
    /// launch in the same mode.
    pub fn run_shard(
        &self,
        kernel: &Kernel,
        gmem: &GlobalMemory,
        mode: ExecMode,
        engine: EngineSel,
        range: (u64, u64),
        log: &mut Vec<WriteRec>,
    ) -> Result<KernelStats, SimError> {
        let ell = occupancy(&self.machine, kernel.shared_words, self.spec.h_limit);
        if ell == 0 {
            return Err(SimError::SharedTooLarge {
                kernel: kernel.name.clone(),
                requested: kernel.shared_words,
                available: self.machine.m,
            });
        }
        let nregs = kernel.max_reg().map(|r| u32::from(r) + 1).unwrap_or(1);
        let bases: Vec<u64> = (0..gmem.buf_count()).map(|i| gmem.base(i as u32)).collect();

        match engine {
            EngineSel::MicroOp => {
                let entry = self.cache.get_or_compile(kernel, &bases, self.machine.b as u32, nregs);
                let compiled = &entry.compiled;
                let make = || BlockExec::new(compiled);
                let slot = compiled.replayable.then_some(&entry.trace);
                self.shard_dispatch(
                    &kernel.name,
                    gmem,
                    mode,
                    ell,
                    &make,
                    compiled.replayable,
                    slot,
                    range,
                    log,
                )
            }
            EngineSel::Reference => {
                let b = self.machine.b as u32;
                let bases = &bases[..];
                let make = || WarpExec::new(kernel, bases, b, nregs);
                self.shard_dispatch(&kernel.name, gmem, mode, ell, &make, false, None, range, log)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn shard_dispatch<E: BlockSim>(
        &self,
        name: &str,
        gmem: &GlobalMemory,
        mode: ExecMode,
        ell: u64,
        make: &(impl Fn() -> E + Sync),
        replayable: bool,
        slot: TraceSlot<'_>,
        range: (u64, u64),
        log: &mut Vec<WriteRec>,
    ) -> Result<KernelStats, SimError> {
        match mode {
            ExecMode::Sequential => {
                let mut acc = GmemAccess::Logged { base: gmem, log };
                self.run_sequential(name, &mut acc, ell, make, replayable, slot, range)
            }
            ExecMode::Parallel { threads } => {
                let (stats, l) = self.run_parallel(
                    name,
                    gmem,
                    ell,
                    make,
                    replayable,
                    slot,
                    threads.max(1),
                    range,
                )?;
                log.extend(l);
                Ok(stats)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch<E: BlockSim>(
        &self,
        kernel: &Kernel,
        gmem: &mut GlobalMemory,
        mode: ExecMode,
        detect_races: bool,
        ell: u64,
        make: &(impl Fn() -> E + Sync),
        replayable: bool,
        slot: TraceSlot<'_>,
    ) -> Result<KernelStats, SimError> {
        let range = (0, kernel.blocks());
        match mode {
            ExecMode::Sequential => {
                if detect_races {
                    // Race detection requires deferred writes; timing is
                    // unchanged (same event loop, shared controller).
                    let mut log = Vec::new();
                    let stats = {
                        let mut acc = GmemAccess::Logged { base: &*gmem, log: &mut log };
                        self.run_sequential(
                            &kernel.name,
                            &mut acc,
                            ell,
                            make,
                            replayable,
                            slot,
                            range,
                        )?
                    };
                    apply_write_log(kernel, gmem, log, true)?;
                    Ok(stats)
                } else {
                    let mut acc = GmemAccess::Direct(gmem);
                    self.run_sequential(&kernel.name, &mut acc, ell, make, replayable, slot, range)
                }
            }
            ExecMode::Parallel { threads } => {
                let (stats, log) = self.run_parallel(
                    &kernel.name,
                    gmem,
                    ell,
                    make,
                    replayable,
                    slot,
                    threads.max(1),
                    range,
                )?;
                apply_write_log(kernel, gmem, log, detect_races)?;
                Ok(stats)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_sequential<E: BlockSim>(
        &self,
        name: &str,
        acc: &mut GmemAccess<'_>,
        ell: u64,
        make: impl Fn() -> E,
        replayable: bool,
        slot: TraceSlot<'_>,
        range: (u64, u64),
    ) -> Result<KernelStats, SimError> {
        let k_prime = self.spec.k_prime as usize;
        let mut dram =
            DramController::new(self.spec.dram_issue_cycles, self.spec.dram_latency_cycles);
        // A trace cached by an earlier launch lets every MP replay every
        // block from the first cycle (no recording warmup); a cold
        // replayable launch records and publishes the trace afterwards.
        let seeded = slot.and_then(|s| s.get().cloned());
        let mut mps: Vec<Mp<E>> =
            (0..k_prime).map(|_| Mp::with_trace(ell, replayable, seeded.clone())).collect();
        let (mut next_block, end_block) = range;

        // Initial fill, round-robin across MPs.
        'fill: for mp in &mut mps {
            while mp.free_slots() > 0 {
                if next_block >= end_block {
                    break 'fill;
                }
                mp.admit(next_block, &make);
                next_block += 1;
            }
        }

        let budget = self.watchdog.load(std::sync::atomic::Ordering::Relaxed);
        loop {
            // Pick the MP with the earliest next event (global time order).
            let mut best: Option<(u64, usize)> = None;
            for (i, mp) in mps.iter().enumerate() {
                if let Some(t) = mp.next_event() {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, i));
                    }
                }
            }
            let Some((t, i)) = best else { break };
            if budget != 0 && t > budget {
                return Err(SimError::Watchdog { kernel: name.to_string(), budget });
            }
            let retired = mps[i].step(acc, &mut dram)?;
            if retired && next_block < end_block {
                mps[i].admit(next_block, &make);
                next_block += 1;
            }
        }

        let mut stats = KernelStats {
            cycles: mps.iter().map(|m| m.last_retire).max().unwrap_or(0),
            dram_queue_cycles: dram.queue_cycles,
            occupancy: ell,
            ..KernelStats::default()
        };
        for mp in &mps {
            stats.fold_mp(&mp.stats);
        }
        // Publish a freshly recorded trace into the cache entry (no-op
        // when this launch was seeded — the slot is already set).
        if let Some(slot) = slot {
            if let Some(trace) = mps.iter().find_map(|m| m.recorded_trace()) {
                let _ = slot.set(Arc::clone(trace));
            }
        }
        debug_assert_eq!(stats.blocks, range.1.saturating_sub(range.0));
        Ok(stats)
    }

    /// Parallel simulation: MPs distributed over `threads` workers, static
    /// block assignment, per-MP bandwidth share, deferred writes.
    #[allow(clippy::too_many_arguments)]
    fn run_parallel<E: BlockSim>(
        &self,
        name: &str,
        gmem: &GlobalMemory,
        ell: u64,
        make: &(impl Fn() -> E + Sync),
        replayable: bool,
        slot: TraceSlot<'_>,
        threads: usize,
        range: (u64, u64),
    ) -> Result<(KernelStats, Vec<WriteRec>), SimError> {
        let budget = self.watchdog.load(std::sync::atomic::Ordering::Relaxed);
        let k_prime = self.spec.k_prime;
        // Each MP gets a 1/k' share of memory bandwidth.
        let issue = self.spec.dram_issue_cycles * k_prime;
        let latency = self.spec.dram_latency_cycles;
        let threads = threads.min(k_prime as usize).max(1);
        let seeded = slot.and_then(|s| s.get().cloned());

        // Simulate one MP with its statically assigned blocks.
        type MpOutcome = Result<(MpStats, u64, u64, Vec<WriteRec>), SimError>;
        let sim_mp = |mp_id: u64| -> MpOutcome {
            let mut dram = DramController::new(issue, latency);
            let mut mp = Mp::with_trace(ell, replayable, seeded.clone());
            let mut log = Vec::new();
            let mut blocks = (range.0..range.1).skip(mp_id as usize).step_by(k_prime as usize);
            // Initial fill.
            let mut pending = blocks.next();
            while mp.free_slots() > 0 {
                let Some(blk) = pending else { break };
                mp.admit(blk, make);
                pending = blocks.next();
            }
            while !mp.idle() {
                if budget != 0 {
                    if let Some(t) = mp.next_event() {
                        if t > budget {
                            return Err(SimError::Watchdog { kernel: name.to_string(), budget });
                        }
                    }
                }
                let mut acc = GmemAccess::Logged { base: gmem, log: &mut log };
                let retired = mp.step(&mut acc, &mut dram)?;
                if retired {
                    if let Some(blk) = pending {
                        mp.admit(blk, make);
                        pending = blocks.next();
                    }
                }
            }
            // Each MP records its own first block; the first to publish
            // wins the write-once slot (identical traces by eligibility).
            if let Some(slot) = slot {
                if let Some(trace) = mp.recorded_trace() {
                    let _ = slot.set(Arc::clone(trace));
                }
            }
            Ok((mp.stats, mp.last_retire, dram.queue_cycles, log))
        };

        // Partition MPs over worker threads.  A panicking worker (or an
        // MP slot it never filled) surfaces as a structured error — the
        // driver never propagates a simulation panic into the caller.
        let worker_panic =
            || SimError::WorkerPanic { context: format!("simulating MPs of kernel `{name}`") };
        let results: Vec<MpOutcome> = if threads <= 1 {
            (0..k_prime).map(sim_mp).collect()
        } else {
            let mut out: Vec<Option<Result<_, _>>> = (0..k_prime).map(|_| None).collect();
            let chunks: Vec<Vec<u64>> = (0..threads)
                .map(|t| (0..k_prime).filter(|m| *m as usize % threads == t).collect())
                .collect();
            std::thread::scope(|s| -> Result<(), SimError> {
                let mut handles = Vec::new();
                for chunk in &chunks {
                    let sim = &sim_mp;
                    handles.push(
                        s.spawn(move || chunk.iter().map(|&m| (m, sim(m))).collect::<Vec<_>>()),
                    );
                }
                for h in handles {
                    for (m, r) in h.join().map_err(|_| worker_panic())? {
                        out[m as usize] = Some(r);
                    }
                }
                Ok(())
            })?;
            out.into_iter().map(|o| o.ok_or_else(worker_panic)).collect::<Result<Vec<_>, _>>()?
        };

        let mut stats = KernelStats { occupancy: ell, ..KernelStats::default() };
        let mut log = Vec::new();
        for r in results {
            let (mp_stats, last_retire, queue, mut l) = r?;
            stats.fold_mp(&mp_stats);
            stats.cycles = stats.cycles.max(last_retire);
            stats.dram_queue_cycles += queue;
            log.append(&mut l);
        }
        debug_assert_eq!(stats.blocks, range.1.saturating_sub(range.0));
        Ok((stats, log))
    }
}

/// Flags any global word written by two different thread blocks in `log`.
pub(crate) fn check_log_races(kernel: &Kernel, log: &[WriteRec]) -> Result<(), SimError> {
    let mut addrs: Vec<(u64, u64)> = log.iter().map(|w| (w.addr, w.block)).collect();
    addrs.sort_unstable();
    addrs.dedup();
    for pair in addrs.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Err(SimError::RaceDetected { kernel: kernel.name.clone(), addr: pair[0].0 });
        }
    }
    Ok(())
}

/// Applies a deferred write log in block order (deterministic last-writer
/// rule) and optionally detects cross-block races.
///
/// This is the launch-level merge point shared by `ExecMode::Parallel`,
/// race-detecting sequential runs, and the multi-device cluster layer
/// ([`crate::cluster`]): because thread-block indices are globally unique
/// across shards, sorting by block yields the same final memory no matter
/// how the launch was split over MPs, threads or devices.
pub fn apply_write_log(
    kernel: &Kernel,
    gmem: &mut GlobalMemory,
    mut log: Vec<WriteRec>,
    detect_races: bool,
) -> Result<(), SimError> {
    if detect_races {
        check_log_races(kernel, &log)?;
    }
    // Stable sort preserves per-block program order (each block's writes
    // come from a single thread in order).
    log.sort_by_key(|w| w.block);
    for w in log {
        gmem.write(w.addr as i64, w.val);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, AluOp, DBuf, KernelBuilder, Operand};

    fn machine() -> AtgpuMachine {
        AtgpuMachine::new(1 << 12, 4, 64, 1 << 16).unwrap()
    }

    fn spec() -> GpuSpec {
        GpuSpec { k_prime: 2, h_limit: 4, ..GpuSpec::gtx650_like() }
    }

    fn scale_kernel(blocks: u64) -> Kernel {
        // c[i*4 + j] = a[i*4 + j] * 3
        let mut kb = KernelBuilder::new("scale", blocks, 8);
        let g = AddrExpr::block() * 4 + AddrExpr::lane();
        kb.glb_to_shr(AddrExpr::lane(), DBuf(0), g.clone());
        kb.ld_shr(0, AddrExpr::lane());
        kb.alu(AluOp::Mul, 0, Operand::Reg(0), Operand::Imm(3));
        kb.st_shr(AddrExpr::lane() + 4, Operand::Reg(0));
        kb.shr_to_glb(DBuf(1), g, AddrExpr::lane() + 4);
        kb.build()
    }

    fn fresh_gmem(n: u64) -> GlobalMemory {
        let mut g = GlobalMemory::new(vec![0, n], 2 * n, 4, 1 << 16).unwrap();
        for i in 0..n {
            g.write(i as i64, i as i64);
        }
        g
    }

    #[test]
    fn sequential_run_computes_correctly() {
        let n = 64u64;
        let k = scale_kernel(n / 4);
        let dev = Device::new(machine(), spec()).unwrap();
        let mut g = fresh_gmem(n);
        let stats = dev.run_kernel(&k, &mut g, ExecMode::Sequential, false).unwrap();
        for i in 0..n {
            assert_eq!(g.read((n + i) as i64), Some(3 * i as i64));
        }
        assert_eq!(stats.blocks, n / 4);
        assert!(stats.cycles > 0);
        assert_eq!(stats.global_txns, 2 * (n / 4)); // 1 load + 1 store per block
    }

    #[test]
    fn parallel_matches_sequential_functionally() {
        let n = 256u64;
        let k = scale_kernel(n / 4);
        let dev = Device::new(machine(), spec()).unwrap();
        let mut g1 = fresh_gmem(n);
        dev.run_kernel(&k, &mut g1, ExecMode::Sequential, false).unwrap();
        let mut g2 = fresh_gmem(n);
        dev.run_kernel(&k, &mut g2, ExecMode::Parallel { threads: 2 }, false).unwrap();
        assert_eq!(g1.words(), g2.words());
    }

    #[test]
    fn parallel_timing_close_to_sequential() {
        let n = 1024u64;
        let k = scale_kernel(n / 4);
        let dev = Device::new(machine(), spec()).unwrap();
        let mut g1 = fresh_gmem(n);
        let s1 = dev.run_kernel(&k, &mut g1, ExecMode::Sequential, false).unwrap();
        let mut g2 = fresh_gmem(n);
        let s2 = dev.run_kernel(&k, &mut g2, ExecMode::Parallel { threads: 2 }, false).unwrap();
        assert_eq!(s1.blocks, s2.blocks);
        assert_eq!(s1.global_txns, s2.global_txns);
        let ratio = s2.cycles as f64 / s1.cycles as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "parallel/sequential cycle ratio {ratio} out of tolerance ({} vs {})",
            s2.cycles,
            s1.cycles
        );
    }

    #[test]
    fn oversized_shared_rejected() {
        let mut kb = KernelBuilder::new("big", 1, 65);
        kb.sync();
        let k = kb.build();
        let dev = Device::new(machine(), spec()).unwrap();
        let mut g = fresh_gmem(16);
        assert!(matches!(
            dev.run_kernel(&k, &mut g, ExecMode::Sequential, false),
            Err(SimError::SharedTooLarge { .. })
        ));
    }

    #[test]
    fn wide_machines_rejected() {
        let m = AtgpuMachine::new(1 << 10, 128, 256, 1 << 16).unwrap();
        assert!(matches!(Device::new(m, spec()), Err(SimError::UnsupportedWidth { b: 128 })));
    }

    #[test]
    fn race_detection_flags_conflicting_blocks() {
        // Every block writes word 0.
        let mut kb = KernelBuilder::new("racy", 3, 4);
        kb.st_shr(AddrExpr::lane(), Operand::Block);
        kb.shr_to_glb(DBuf(0), AddrExpr::c(0), AddrExpr::c(0));
        let k = kb.build();
        let dev = Device::new(machine(), spec()).unwrap();
        let mut g = fresh_gmem(16);
        assert!(matches!(
            dev.run_kernel(&k, &mut g, ExecMode::Sequential, true),
            Err(SimError::RaceDetected { addr: 0, .. })
        ));
        // Without detection the launch completes (last block wins).
        let mut g = fresh_gmem(16);
        dev.run_kernel(&k, &mut g, ExecMode::Sequential, false).unwrap();
        assert_eq!(g.read(0), Some(2));
    }

    #[test]
    fn race_detection_passes_disjoint_writes() {
        let k = scale_kernel(8);
        let dev = Device::new(machine(), spec()).unwrap();
        let mut g = fresh_gmem(32);
        dev.run_kernel(&k, &mut g, ExecMode::Sequential, true).unwrap();
    }

    #[test]
    fn instruction_mix_and_utilization() {
        let n = 256u64;
        let k = scale_kernel(n / 4);
        let dev = Device::new(machine(), spec()).unwrap();
        let mut g = fresh_gmem(n);
        let stats = dev.run_kernel(&k, &mut g, ExecMode::Sequential, false).unwrap();
        // Per block: 2 global (⇐), 2 shared (←), 1 ALU.
        assert_eq!(stats.global_accesses, 2 * (n / 4));
        assert_eq!(stats.shared_accesses, 2 * (n / 4));
        assert_eq!(stats.compute_instructions, n / 4);
        assert_eq!(
            stats.instructions,
            stats.compute_instructions + stats.shared_accesses + stats.global_accesses
        );
        let (c, s, gl) = stats.instruction_mix();
        assert!((c + s + gl - 1.0).abs() < 1e-12);
        let u = stats.issue_utilization(spec().k_prime);
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn occupancy_limits_residency() {
        // Shared = 32 words, M = 64 -> at most 2 blocks per MP.
        let mut kb = KernelBuilder::new("occ", 8, 32);
        kb.st_shr(AddrExpr::lane(), Operand::Block);
        let k = kb.build();
        let dev = Device::new(machine(), spec()).unwrap();
        let mut g = fresh_gmem(16);
        let stats = dev.run_kernel(&k, &mut g, ExecMode::Sequential, false).unwrap();
        assert_eq!(stats.occupancy, 2);
    }

    #[test]
    fn more_mps_run_faster() {
        let n = 4096u64;
        let k = scale_kernel(n / 4);
        let mut g1 = fresh_gmem(n);
        let dev1 = Device::new(machine(), GpuSpec { k_prime: 1, ..spec() }).unwrap();
        let s1 = dev1.run_kernel(&k, &mut g1, ExecMode::Sequential, false).unwrap();
        let mut g4 = fresh_gmem(n);
        let dev4 = Device::new(machine(), GpuSpec { k_prime: 4, ..spec() }).unwrap();
        let s4 = dev4.run_kernel(&k, &mut g4, ExecMode::Sequential, false).unwrap();
        assert!(s4.cycles < s1.cycles, "4 MPs ({}) should beat 1 MP ({})", s4.cycles, s1.cycles);
    }
}
