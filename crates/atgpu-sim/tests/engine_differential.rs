//! Differential property tests: the flat micro-op engine must be
//! **bit-exact** with the tree-walking reference interpreter — identical
//! `StepEvent` streams, identical register/shared/global state — over
//! randomized kernels exercising divergence, nested loops, strided and
//! broadcast shapes, and register-addressed (data-dependent) gathers, in
//! both `Sequential` and `Parallel` execution modes.
//!
//! Kernels are generated from a 64-bit seed drawn by proptest; the
//! generator constrains shapes so every address stays in bounds, which
//! keeps the comparison on the success path (error parity has dedicated
//! unit tests in the sim crate).

use atgpu_ir::{AddrExpr, AluOp, DBuf, Kernel, KernelBuilder, Operand, PredExpr};
use atgpu_model::{AtgpuMachine, GpuSpec};
use atgpu_sim::engine::{BlockExec, BlockSim};
use atgpu_sim::gmem::GlobalMemory;
use atgpu_sim::uop::CompiledKernel;
use atgpu_sim::warp::{GmemAccess, StepEvent, WarpExec};
use atgpu_sim::{Device, EngineSel, ExecMode};
use proptest::prelude::*;
use std::cell::RefCell;

/// Number of data registers the generator plays with (plus one reserved
/// gather register).
const NDATA: u8 = 6;
/// The reserved register for bounded data-dependent addressing.
const RG: u8 = 7;

struct Gen {
    state: u64,
    b: i64,
    shared: i64,
    loop_depth: u8,
    budget: u32,
}

impl Gen {
    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn operand(&mut self) -> Operand {
        match self.below(6) {
            0 => Operand::Imm(self.below(9) as i64 - 4),
            1 => Operand::Lane,
            2 => Operand::Block,
            3 => Operand::Reg(self.below(u64::from(NDATA)) as u8),
            4 if self.loop_depth > 0 => {
                Operand::LoopVar(self.below(u64::from(self.loop_depth)) as u8)
            }
            _ => Operand::Imm(self.below(17) as i64),
        }
    }

    fn alu_op(&mut self) -> AluOp {
        const OPS: [AluOp; 12] = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::Min,
            AluOp::Max,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::SetLt,
            AluOp::SetEq,
        ];
        OPS[self.below(OPS.len() as u64) as usize]
    }

    /// A shared-memory address guaranteed in `[0, shared)` for every lane,
    /// block and loop iteration.  Loop terms use coefficient `b` with trip
    /// counts ≤ 3 and nesting ≤ 2, so the loop contribution is ≤ 6b; the
    /// generator's `shared` is sized accordingly.
    fn sh_addr(&mut self) -> AddrExpr {
        let b = self.b;
        let base_room = self.shared - 8 * b;
        let k = self.below(base_room.max(1) as u64) as i64;
        let loop_term = |g: &mut Self| -> AddrExpr {
            if g.loop_depth > 0 && g.below(2) == 0 {
                let d = g.below(u64::from(g.loop_depth)) as u8;
                AddrExpr::loop_var(d) * g.b
            } else {
                AddrExpr::c(0)
            }
        };
        match self.below(5) {
            // Unit stride.
            0 => AddrExpr::lane() + loop_term(self) + k,
            // Broadcast.
            1 => loop_term(self) + k,
            // Stride 2 (bank conflicts on power-of-two b).
            2 => AddrExpr::lane() * 2 + loop_term(self) + k.min(base_room.max(2) - 1),
            // Register-addressed: RG holds `lane·s`, `s ∈ {0,1,2}`.
            3 => AddrExpr::reg(RG) + k,
            // Reversed (negative stride).
            _ => AddrExpr::c(b - 1) - AddrExpr::lane() + loop_term(self) + k,
        }
    }

    /// A global address within the generated buffers' word counts for
    /// every block of the launch.
    fn g_addr(&mut self) -> AddrExpr {
        let b = self.b;
        let k = self.below(32) as i64;
        match self.below(4) {
            0 => AddrExpr::block() * b + AddrExpr::lane(),
            1 => AddrExpr::lane() + k,
            2 => AddrExpr::reg(RG) + k,
            _ => AddrExpr::block() * b + AddrExpr::lane() * 2,
        }
    }
}

/// Seeds the bounded gather register: `RG ← lane·s`.
fn seed_rg(g: &RefCell<Gen>, kb: &mut KernelBuilder) {
    let s = g.borrow_mut().below(3) as i64;
    kb.alu(AluOp::Mul, RG, Operand::Lane, Operand::Imm(s));
}

fn gen_body(g: &RefCell<Gen>, kb: &mut KernelBuilder, depth: u32) {
    let items = 2 + g.borrow_mut().below(4) as u32;
    for _ in 0..items {
        let choice = {
            let mut gg = g.borrow_mut();
            if gg.budget == 0 {
                return;
            }
            gg.budget -= 1;
            gg.below(10)
        };
        match choice {
            0 => {
                let mut gg = g.borrow_mut();
                let dst = gg.below(u64::from(NDATA)) as u8;
                let src = gg.operand();
                drop(gg);
                kb.mov(dst, src);
            }
            1 | 2 => {
                let mut gg = g.borrow_mut();
                let op = gg.alu_op();
                let dst = gg.below(u64::from(NDATA)) as u8;
                let (a, b) = (gg.operand(), gg.operand());
                drop(gg);
                kb.alu(op, dst, a, b);
            }
            3 => {
                let mut gg = g.borrow_mut();
                let addr = gg.sh_addr();
                let src = gg.operand();
                drop(gg);
                kb.st_shr(addr, src);
            }
            4 => {
                let mut gg = g.borrow_mut();
                let dst = gg.below(u64::from(NDATA)) as u8;
                let addr = gg.sh_addr();
                drop(gg);
                kb.ld_shr(dst, addr);
            }
            5 => {
                seed_rg(g, kb);
                let (sh, ga) = {
                    let mut gg = g.borrow_mut();
                    (gg.sh_addr(), gg.g_addr())
                };
                kb.glb_to_shr(sh, DBuf(0), ga);
            }
            6 => {
                seed_rg(g, kb);
                let (sh, ga) = {
                    let mut gg = g.borrow_mut();
                    (gg.sh_addr(), gg.g_addr())
                };
                kb.shr_to_glb(DBuf(1), ga, sh);
            }
            7 if depth < 2 => {
                let (pred, with_else) = {
                    let mut gg = g.borrow_mut();
                    let b = gg.b as u64;
                    let pred = match gg.below(4) {
                        0 => PredExpr::Lt(Operand::Lane, Operand::Imm(gg.below(b + 1) as i64)),
                        1 => PredExpr::Lt(Operand::Block, Operand::Imm(gg.below(4) as i64)),
                        2 => PredExpr::Eq(
                            Operand::Reg(gg.below(u64::from(NDATA)) as u8),
                            Operand::Imm(gg.below(3) as i64),
                        ),
                        _ => PredExpr::Ne(Operand::Lane, Operand::Imm(gg.below(b) as i64)),
                    };
                    (pred, gg.below(2) == 0)
                };
                kb.pred(
                    pred,
                    |kb| gen_body(g, kb, depth + 1),
                    |kb| {
                        if with_else {
                            gen_body(g, kb, depth + 1)
                        }
                    },
                );
            }
            8 if depth < 2 => {
                let count = {
                    let mut gg = g.borrow_mut();
                    if gg.loop_depth >= 2 {
                        None
                    } else {
                        gg.loop_depth += 1;
                        Some(1 + gg.below(3) as u32)
                    }
                };
                if let Some(count) = count {
                    kb.repeat(count, |kb| gen_body(g, kb, depth + 1));
                    g.borrow_mut().loop_depth -= 1;
                } else {
                    kb.sync();
                }
            }
            _ => {
                kb.sync();
            }
        }
    }
}

/// Builds a random kernel plus a compatible machine/global memory layout.
fn gen_kernel(seed: u64) -> (Kernel, AtgpuMachine, Vec<u64>, u64) {
    let mut g0 = Gen { state: seed | 1, b: 0, shared: 0, loop_depth: 0, budget: 0 };
    let b: i64 = [4, 8, 16, 32][g0.below(4) as usize];
    let blocks = 2 + g0.below(4);
    let shared = (10 * b + 64) as u64;
    // Room for every g_addr shape: block·b + 2·lane + reg + k.
    let gwords = (blocks as i64 * b + 4 * b + 64) as u64;
    let gen =
        RefCell::new(Gen { state: g0.state, b, shared: shared as i64, loop_depth: 0, budget: 28 });
    let mut kb = KernelBuilder::new(format!("diff_{seed:x}"), blocks, shared);
    seed_rg(&gen, &mut kb);
    gen_body(&gen, &mut kb, 0);
    let kernel = kb.build();
    let machine =
        AtgpuMachine::new(4 * b as u64, b as u64, shared.max(2 * gwords), 1 << 22).unwrap();
    (kernel, machine, vec![0, gwords], 2 * gwords)
}

fn fill_gmem(g: &mut GlobalMemory, total: u64, seed: u64) {
    let mut x = seed | 1;
    for i in 0..total {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        g.write(i as i64, (x % 17) as i64 - 8);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Step-level lockstep: for every block, the engine and the reference
    /// produce the same `StepEvent` at every step and identical register,
    /// shared and global state at block completion.
    #[test]
    fn engine_matches_reference_stepwise(seed in 0u64..1_000_000_000) {
        let (kernel, machine, bases, total) = gen_kernel(seed);
        let nregs = kernel.max_reg().map(|r| u32::from(r) + 1).unwrap_or(1);
        let b = machine.b as u32;

        let mut g_ref = GlobalMemory::new(bases.clone(), total, machine.b, machine.g).unwrap();
        fill_gmem(&mut g_ref, total, seed);
        let mut g_eng = GlobalMemory::new(bases.clone(), total, machine.b, machine.g).unwrap();
        fill_gmem(&mut g_eng, total, seed);

        let compiled = CompiledKernel::compile(&kernel, &bases, b, nregs);
        let mut eng = BlockExec::new(&compiled);
        let mut reference = WarpExec::new(&kernel, &bases, b, nregs);

        for block in 0..kernel.blocks() {
            BlockSim::reset(&mut eng, block);
            BlockSim::reset(&mut reference, block);
            let mut step = 0u32;
            loop {
                let er = {
                    let mut acc = GmemAccess::Direct(&mut g_eng);
                    BlockSim::step(&mut eng, &mut acc)
                };
                let rr = {
                    let mut acc = GmemAccess::Direct(&mut g_ref);
                    BlockSim::step(&mut reference, &mut acc)
                };
                match (er, rr) {
                    (Ok(e), Ok(r)) => {
                        prop_assert_eq!(e, r, "event mismatch at block {} step {}", block, step);
                        if e == StepEvent::Done {
                            break;
                        }
                    }
                    (Err(e), Err(r)) => {
                        prop_assert_eq!(e.to_string(), r.to_string());
                        return Ok(());
                    }
                    (e, r) => {
                        return Err(TestCaseError::fail(format!(
                            "engine {e:?} vs reference {r:?} at block {block} step {step}"
                        )));
                    }
                }
                step += 1;
            }
            prop_assert_eq!(eng.regs(), reference.regs(), "registers after block {}", block);
            prop_assert_eq!(
                eng.smem.words(),
                reference.smem.words(),
                "shared memory after block {}", block
            );
        }
        prop_assert_eq!(g_eng.words(), g_ref.words(), "global memory after launch");
    }

    /// Device-level: identical kernel statistics (cycles, instruction and
    /// transaction counts, conflict serialisation) and global memory in
    /// both execution modes.
    #[test]
    fn engine_matches_reference_on_device(seed in 0u64..1_000_000_000) {
        let (kernel, machine, bases, total) = gen_kernel(seed);
        let spec = GpuSpec { k_prime: 2, h_limit: 4, ..GpuSpec::gtx650_like() };
        let device = Device::new(machine, spec).unwrap();

        for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 2 }] {
            let mut g_ref = GlobalMemory::new(bases.clone(), total, machine.b, machine.g).unwrap();
            fill_gmem(&mut g_ref, total, seed);
            let mut g_eng = GlobalMemory::new(bases.clone(), total, machine.b, machine.g).unwrap();
            fill_gmem(&mut g_eng, total, seed);

            let r_ref = device.run_kernel_with(&kernel, &mut g_ref, mode, false, EngineSel::Reference);
            let r_eng = device.run_kernel_with(&kernel, &mut g_eng, mode, false, EngineSel::MicroOp);
            match (r_eng, r_ref) {
                (Ok(se), Ok(sr)) => {
                    prop_assert_eq!(se, sr, "stats mismatch in {:?}", mode);
                    prop_assert_eq!(g_eng.words(), g_ref.words(), "gmem mismatch in {:?}", mode);
                }
                (Err(e), Err(r)) => prop_assert_eq!(e.to_string(), r.to_string()),
                (e, r) => {
                    return Err(TestCaseError::fail(format!(
                        "engine {e:?} vs reference {r:?} in {mode:?}"
                    )));
                }
            }
        }
    }
}
