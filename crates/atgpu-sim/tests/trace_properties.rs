//! Property tests for timeline tracing: the recorded spans must be a
//! faithful, lossless transcript of the stream scheduler's decisions.
//!
//! * **No perturbation** — a traced run is bit-identical in outputs,
//!   per-round observations and device statistics to an untraced run.
//! * **Exact reconstruction** — per round, `max(span.end)` equals the
//!   round's `stream_ms` to the bit, and `total_ms = stream_ms +
//!   sync_ms` (the tracing primitive `advance_spanned` *is* the
//!   scheduler, not a parallel re-derivation).
//! * **Lane exclusivity** — spans on one hardware lane of one device
//!   never overlap: each lane models a single DMA/compute engine.
//! * **Serial chain** — an all-stream-0 program's spans form a single
//!   gapless chain per round: each span starts exactly where the
//!   previous one ended.

use atgpu_ir::{AddrExpr, AluOp, HostStep, KernelBuilder, Program, ProgramBuilder};
use atgpu_model::{AtgpuMachine, GpuSpec};
use atgpu_sim::{run_program, SimConfig, Span, SpanKind};
use proptest::prelude::*;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn machine() -> AtgpuMachine {
    AtgpuMachine::new(1 << 12, 4, 64, 1 << 16).unwrap()
}

fn spec() -> GpuSpec {
    GpuSpec {
        k_prime: 2,
        h_limit: 4,
        clock_cycles_per_ms: 1000.0,
        xfer_alpha_ms: 0.1,
        xfer_beta_ms_per_word: 0.001,
        sync_ms: 0.05,
        ..GpuSpec::gtx650_like()
    }
}

/// The double-buffered chunked `C = A + B` shape, all on stream 0 (the
/// same generator `stream_differential.rs` uses).
fn chunked_vecadd(n: u64, chunk: u64) -> (Program, atgpu_ir::HBuf) {
    let b = 4i64;
    let rounds = n / chunk;
    let mut pb = ProgramBuilder::new("chunked");
    let ha = pb.host_input("A", n);
    let hb = pb.host_input("B", n);
    let hc = pb.host_output("C", n);
    let bufs = [
        (pb.device_alloc("a0", chunk), pb.device_alloc("b0", chunk), pb.device_alloc("c0", chunk)),
        (pb.device_alloc("a1", chunk), pb.device_alloc("b1", chunk), pb.device_alloc("c1", chunk)),
    ];
    for r in 0..=rounds {
        pb.begin_round();
        if r < rounds {
            let (da, db, _) = bufs[(r % 2) as usize];
            pb.transfer_in_at(ha, r * chunk, da, 0, chunk);
            pb.transfer_in_at(hb, r * chunk, db, 0, chunk);
        }
        if r > 0 {
            let (da, db, dc) = bufs[((r - 1) % 2) as usize];
            let k = chunk / b as u64;
            let mut kb = KernelBuilder::new(format!("add_r{r}"), k, 3 * b as u64);
            let g = AddrExpr::block() * b + AddrExpr::lane();
            kb.glb_to_shr(AddrExpr::lane(), da, g.clone());
            kb.glb_to_shr(AddrExpr::lane() + b, db, g.clone());
            kb.ld_shr(0, AddrExpr::lane());
            kb.ld_shr(1, AddrExpr::lane() + b);
            kb.alu(AluOp::Add, 2, atgpu_ir::Operand::Reg(0), atgpu_ir::Operand::Reg(1));
            kb.st_shr(AddrExpr::lane() + 2 * b, atgpu_ir::Operand::Reg(2));
            kb.shr_to_glb(dc, g, AddrExpr::lane() + 2 * b);
            pb.launch(kb.build());
            pb.transfer_out_at(dc, 0, hc, (r - 1) * chunk, chunk);
        }
    }
    (pb.build().unwrap(), hc)
}

/// Random stream tags on every transfer plus sprinkled sync steps —
/// the `stream_differential.rs` mutation.
fn restream(p: &Program, seed: u64) -> Program {
    let mut rng = Rng(seed | 1);
    let mut out = p.clone();
    for round in &mut out.rounds {
        let mut steps = Vec::with_capacity(round.steps.len() * 2);
        for mut step in round.steps.drain(..) {
            if rng.below(4) == 0 {
                steps.push(match rng.below(3) {
                    0 => HostStep::SyncDevice { device: 0 },
                    s => HostStep::SyncStream { device: 0, stream: (s * rng.below(4)) as u32 },
                });
            }
            match &mut step {
                HostStep::TransferIn { stream, .. } | HostStep::TransferOut { stream, .. } => {
                    *stream = rng.below(4) as u32;
                }
                _ => {}
            }
            steps.push(step);
        }
        round.steps = steps;
    }
    atgpu_ir::validate::validate_program(&out).expect("restreamed program stays valid");
    out
}

fn inputs(n: u64, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = Rng(seed | 1);
    (0..2).map(|_| (0..n).map(|_| rng.below(201) as i64 - 100).collect()).collect()
}

fn traced() -> SimConfig {
    SimConfig { trace: true, ..SimConfig::default() }
}

/// Group a trace's spans by round, preserving recording order.
fn by_round(spans: &[Span], rounds: usize) -> Vec<Vec<&Span>> {
    let mut out = vec![Vec::new(); rounds];
    for s in spans {
        out[s.round as usize].push(s);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomly streamed programs: tracing changes nothing, and the
    /// spans reconstruct every round's stream time exactly.
    #[test]
    fn spans_reconstruct_stream_timing_exactly(seed in 0u64..1_000_000_000) {
        let mut rng = Rng(seed | 1);
        let chunk = [16u64, 32, 64][rng.below(3) as usize];
        let n = chunk * (1 + rng.below(5));
        let (serial, hc) = chunked_vecadd(n, chunk);
        let streamed = restream(&serial, seed ^ 0xABCD);
        let data = inputs(n, seed);

        let base = run_program(&streamed, data.clone(), &machine(), &spec(), &SimConfig::default())
            .unwrap();
        let tr = run_program(&streamed, data, &machine(), &spec(), &traced()).unwrap();

        // Tracing observes, never perturbs: outputs, observations and
        // statistics are bit-identical to the untraced run.
        prop_assert_eq!(base.output(hc), tr.output(hc));
        prop_assert_eq!(&base.rounds, &tr.rounds);
        prop_assert_eq!(&base.device_stats, &tr.device_stats);
        prop_assert!(base.trace.is_none());

        let trace = tr.trace.as_ref().expect("traced run must carry spans");
        prop_assert_eq!(trace.dropped, 0, "default capacity must hold a small program");
        let rounds = by_round(&trace.spans, tr.rounds.len());
        for (obs, spans) in tr.rounds.iter().zip(&rounds) {
            // Reconstruction: the round's stream time is when its last
            // span ends — exactly, to the bit (each round's timeline
            // starts at 0).
            let last_end = spans.iter().map(|s| s.end_ms).fold(0.0f64, f64::max);
            prop_assert_eq!(last_end.to_bits(), obs.stream_ms.to_bits());
            prop_assert_eq!(obs.total_ms().to_bits(), (obs.stream_ms + obs.sync_ms).to_bits());

            // Lane exclusivity: per (device, resource lane), spans are
            // recorded in schedule order and never overlap.
            for lane in 0u8..4 {
                let mut prev_end = f64::NEG_INFINITY;
                for s in spans.iter().filter(|s| s.resource.lane() == lane) {
                    prop_assert!(
                        s.start_ms >= prev_end,
                        "lane {} overlap: span starts {} before previous end {}",
                        lane, s.start_ms, prev_end
                    );
                    prop_assert!(s.end_ms >= s.start_ms);
                    prev_end = s.end_ms;
                }
            }

            // Transfer spans carry the model's prediction; without
            // noise or faults it matches the observation exactly.
            for s in spans {
                if matches!(s.kind, SpanKind::TransferIn | SpanKind::TransferOut) {
                    prop_assert!(s.predicted_ms >= 0.0);
                    prop_assert!((s.dur_ms() - s.predicted_ms).abs() < 1e-12);
                }
            }
        }
    }

    /// An all-stream-0 program is one serial chain: every span starts
    /// exactly where the previous span ended, and the chain's end is
    /// the round's stream time — which equals its serial sum.
    #[test]
    fn single_stream_spans_form_a_serial_chain(seed in 0u64..1_000_000_000) {
        let (serial, _) = chunked_vecadd(64, 32);
        let data = inputs(64, seed);
        let r = run_program(&serial, data, &machine(), &spec(), &traced()).unwrap();
        let trace = r.trace.as_ref().unwrap();
        let rounds = by_round(&trace.spans, r.rounds.len());
        for (obs, spans) in r.rounds.iter().zip(&rounds) {
            let mut cursor = 0.0f64;
            for s in spans {
                prop_assert_eq!(
                    s.start_ms.to_bits(),
                    cursor.to_bits(),
                    "serial chain must be gapless: span starts at {} after {}",
                    s.start_ms,
                    cursor
                );
                cursor = s.end_ms;
            }
            prop_assert_eq!(cursor.to_bits(), obs.stream_ms.to_bits());
            // On one stream the stream-aware path IS the serial sum.
            prop_assert!((obs.total_ms() - obs.serial_ms()).abs() < 1e-12);
        }
    }
}
