//! Differential property tests for the cross-launch kernel cache: a
//! launch served from the cache — reusing the compiled micro-op program
//! and, when replay-eligible, the recorded timing trace — must be
//! **bit-identical** to a cold launch in final memory, per-launch
//! statistics and behaviour, for randomized kernels, both `ExecMode`s,
//! single devices and sharded clusters.  Structural mutation of one
//! instruction must change the cache key (no false hits).
//!
//! Kernel generation mirrors `cluster_differential.rs`: global reads
//! from buffer 0 only, block-disjoint writes into buffer 1, so results
//! are engine/order-independent and any divergence the comparison finds
//! is real.

use atgpu_ir::{AddrExpr, AluOp, DBuf, Instr, Kernel, KernelBuilder, Operand, PredExpr};
use atgpu_model::{AtgpuMachine, ClusterSpec, GpuSpec};
use atgpu_sim::cluster::{even_shards, Cluster};
use atgpu_sim::gmem::GlobalMemory;
use atgpu_sim::{Device, EngineSel, ExecMode};
use proptest::prelude::*;
use std::cell::RefCell;

const NDATA: u8 = 6;
const RG: u8 = 7;

struct Gen {
    state: u64,
    b: i64,
    shared: i64,
    loop_depth: u8,
    budget: u32,
}

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn operand(&mut self) -> Operand {
        match self.below(6) {
            0 => Operand::Imm(self.below(9) as i64 - 4),
            1 => Operand::Lane,
            2 => Operand::Block,
            3 => Operand::Reg(self.below(u64::from(NDATA)) as u8),
            4 if self.loop_depth > 0 => {
                Operand::LoopVar(self.below(u64::from(self.loop_depth)) as u8)
            }
            _ => Operand::Imm(self.below(17) as i64),
        }
    }

    fn alu_op(&mut self) -> AluOp {
        const OPS: [AluOp; 12] = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::Min,
            AluOp::Max,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::SetLt,
            AluOp::SetEq,
        ];
        OPS[self.below(OPS.len() as u64) as usize]
    }

    fn sh_addr(&mut self) -> AddrExpr {
        let b = self.b;
        let base_room = self.shared - 8 * b;
        let k = self.below(base_room.max(1) as u64) as i64;
        let loop_term = |g: &mut Self| -> AddrExpr {
            if g.loop_depth > 0 && g.below(2) == 0 {
                let d = g.below(u64::from(g.loop_depth)) as u8;
                AddrExpr::loop_var(d) * g.b
            } else {
                AddrExpr::c(0)
            }
        };
        match self.below(5) {
            0 => AddrExpr::lane() + loop_term(self) + k,
            1 => loop_term(self) + k,
            2 => AddrExpr::lane() * 2 + loop_term(self) + k.min(base_room.max(2) - 1),
            3 => AddrExpr::reg(RG) + k,
            _ => AddrExpr::c(b - 1) - AddrExpr::lane() + loop_term(self) + k,
        }
    }

    fn g_read_addr(&mut self) -> AddrExpr {
        let b = self.b;
        let k = self.below(32) as i64;
        match self.below(4) {
            0 => AddrExpr::block() * b + AddrExpr::lane(),
            1 => AddrExpr::lane() + k,
            2 => AddrExpr::reg(RG) + k,
            _ => AddrExpr::block() * b + AddrExpr::lane() * 2,
        }
    }

    fn g_write_addr(&mut self) -> AddrExpr {
        AddrExpr::block() * self.b + AddrExpr::lane()
    }
}

fn seed_rg(g: &RefCell<Gen>, kb: &mut KernelBuilder) {
    let s = g.borrow_mut().below(3) as i64;
    kb.alu(AluOp::Mul, RG, Operand::Lane, Operand::Imm(s));
}

fn gen_body(g: &RefCell<Gen>, kb: &mut KernelBuilder, depth: u32) {
    let items = 2 + g.borrow_mut().below(4) as u32;
    for _ in 0..items {
        let choice = {
            let mut gg = g.borrow_mut();
            if gg.budget == 0 {
                return;
            }
            gg.budget -= 1;
            gg.below(10)
        };
        match choice {
            0 => {
                let mut gg = g.borrow_mut();
                let dst = gg.below(u64::from(NDATA)) as u8;
                let src = gg.operand();
                drop(gg);
                kb.mov(dst, src);
            }
            1 | 2 => {
                let mut gg = g.borrow_mut();
                let op = gg.alu_op();
                let dst = gg.below(u64::from(NDATA)) as u8;
                let (a, b) = (gg.operand(), gg.operand());
                drop(gg);
                kb.alu(op, dst, a, b);
            }
            3 => {
                let mut gg = g.borrow_mut();
                let addr = gg.sh_addr();
                let src = gg.operand();
                drop(gg);
                kb.st_shr(addr, src);
            }
            4 => {
                let mut gg = g.borrow_mut();
                let dst = gg.below(u64::from(NDATA)) as u8;
                let addr = gg.sh_addr();
                drop(gg);
                kb.ld_shr(dst, addr);
            }
            5 => {
                seed_rg(g, kb);
                let (sh, ga) = {
                    let mut gg = g.borrow_mut();
                    (gg.sh_addr(), gg.g_read_addr())
                };
                kb.glb_to_shr(sh, DBuf(0), ga);
            }
            6 => {
                let (sh, ga) = {
                    let mut gg = g.borrow_mut();
                    (gg.sh_addr(), gg.g_write_addr())
                };
                kb.shr_to_glb(DBuf(1), ga, sh);
            }
            7 if depth < 2 => {
                let (pred, with_else) = {
                    let mut gg = g.borrow_mut();
                    let b = gg.b as u64;
                    let pred = match gg.below(4) {
                        0 => PredExpr::Lt(Operand::Lane, Operand::Imm(gg.below(b + 1) as i64)),
                        1 => PredExpr::Lt(Operand::Block, Operand::Imm(gg.below(4) as i64)),
                        2 => PredExpr::Eq(
                            Operand::Reg(gg.below(u64::from(NDATA)) as u8),
                            Operand::Imm(gg.below(3) as i64),
                        ),
                        _ => PredExpr::Ne(Operand::Lane, Operand::Imm(gg.below(b) as i64)),
                    };
                    (pred, gg.below(2) == 0)
                };
                kb.pred(
                    pred,
                    |kb| gen_body(g, kb, depth + 1),
                    |kb| {
                        if with_else {
                            gen_body(g, kb, depth + 1)
                        }
                    },
                );
            }
            8 if depth < 2 => {
                let count = {
                    let mut gg = g.borrow_mut();
                    if gg.loop_depth >= 2 {
                        None
                    } else {
                        gg.loop_depth += 1;
                        Some(1 + gg.below(3) as u32)
                    }
                };
                if let Some(count) = count {
                    kb.repeat(count, |kb| gen_body(g, kb, depth + 1));
                    g.borrow_mut().loop_depth -= 1;
                } else {
                    kb.sync();
                }
            }
            _ => {
                kb.sync();
            }
        }
    }
}

fn gen_kernel(seed: u64) -> (Kernel, AtgpuMachine, Vec<u64>, u64) {
    let mut g0 = Gen { state: seed | 1, b: 0, shared: 0, loop_depth: 0, budget: 0 };
    let b: i64 = [4, 8, 16, 32][g0.below(4) as usize];
    let blocks = 4 + g0.below(12);
    let shared = (10 * b + 64) as u64;
    let gwords = (blocks as i64 * b + 4 * b + 64) as u64;
    let gen =
        RefCell::new(Gen { state: g0.state, b, shared: shared as i64, loop_depth: 0, budget: 28 });
    let mut kb = KernelBuilder::new(format!("cache_{seed:x}"), blocks, shared);
    seed_rg(&gen, &mut kb);
    gen_body(&gen, &mut kb, 0);
    let kernel = kb.build();
    let machine =
        AtgpuMachine::new(4 * b as u64, b as u64, shared.max(2 * gwords), 1 << 22).unwrap();
    (kernel, machine, vec![0, gwords], 2 * gwords)
}

fn fill_gmem(g: &mut GlobalMemory, total: u64, seed: u64) {
    let mut x = seed | 1;
    for i in 0..total {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        g.write(i as i64, (x % 17) as i64 - 8);
    }
}

fn spec() -> GpuSpec {
    GpuSpec { k_prime: 2, h_limit: 4, ..GpuSpec::gtx650_like() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A second launch of the same kernel on the same device — served
    /// from the cache, replaying the recorded trace when eligible — is
    /// bit-identical to the cold first launch *and* to a launch on a
    /// cache-disabled device, in memory and statistics, in both modes.
    #[test]
    fn cached_launch_is_bit_identical_to_cold(seed in 0u64..1_000_000_000) {
        let (kernel, machine, bases, total) = gen_kernel(seed);
        for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 2 }] {
            let cached_dev = Device::new(machine, spec()).unwrap();
            let cold_dev = Device::new(machine, spec()).unwrap();
            cold_dev.configure_cache(false, 0);

            let run = |dev: &Device| {
                let mut g = GlobalMemory::new(bases.clone(), total, machine.b, machine.g).unwrap();
                fill_gmem(&mut g, total, seed);
                dev.run_kernel_with(&kernel, &mut g, mode, false, EngineSel::MicroOp)
                    .map(|stats| (stats, g.words().to_vec()))
            };

            let Ok((cold_stats, cold_mem)) = run(&cached_dev) else { return Ok(()) };
            let (warm_stats, warm_mem) = run(&cached_dev).expect("warm launch succeeds");
            let (off_stats, off_mem) = run(&cold_dev).expect("cache-off launch succeeds");

            prop_assert_eq!(&warm_mem, &cold_mem, "cached memory differs (mode {:?})", mode);
            prop_assert_eq!(warm_stats, cold_stats, "cached stats differ (mode {:?})", mode);
            prop_assert_eq!(&off_mem, &cold_mem, "cache-off memory differs (mode {:?})", mode);
            prop_assert_eq!(off_stats, cold_stats, "cache-off stats differ (mode {:?})", mode);

            // The second launch really was a cache hit, and the
            // kill-switched device never looked anything up.
            let c = cached_dev.stats().cache;
            prop_assert_eq!((c.hits, c.misses, c.entries), (1, 1, 1));
            prop_assert_eq!(cold_dev.stats().cache, Default::default());
        }
    }

    /// Sharded launches across a 2-device cluster: repeating the launch
    /// hits every device's cache and reproduces memory and per-shard
    /// statistics bit for bit, in both modes.
    #[test]
    fn cluster_cache_is_bit_identical(seed in 0u64..1_000_000_000) {
        let (kernel, machine, bases, total) = gen_kernel(seed);
        let cspec = ClusterSpec::homogeneous(2, spec());
        let shards = even_shards(kernel.blocks(), 2);
        for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 2 }] {
            let cluster = Cluster::new(machine, cspec.clone()).unwrap();
            let run = |cluster: &Cluster| {
                let mut g = GlobalMemory::new(bases.clone(), total, machine.b, machine.g).unwrap();
                fill_gmem(&mut g, total, seed);
                cluster
                    .run_sharded_kernel(&kernel, &mut g, &shards, mode, false, EngineSel::MicroOp)
                    .map(|stats| (stats, g.words().to_vec()))
            };
            let Ok((cold_stats, cold_mem)) = run(&cluster) else { return Ok(()) };
            let (warm_stats, warm_mem) = run(&cluster).expect("warm cluster launch succeeds");
            prop_assert_eq!(&warm_mem, &cold_mem, "cluster cached memory differs ({:?})", mode);
            prop_assert_eq!(&warm_stats, &cold_stats, "cluster cached stats differ ({:?})", mode);
            for d in 0..2u32 {
                let c = cluster.device(d).unwrap().stats().cache;
                prop_assert_eq!((c.hits, c.misses), (1, 1), "device {} cache counters", d);
            }
        }
    }

    /// No false hits: mutating one instruction (or the grid, or the
    /// shared footprint) changes the structural cache key, and launching
    /// the mutant on a warm device misses — its results match a fresh
    /// cache-off device, never the cached original.
    #[test]
    fn mutation_changes_cache_key(seed in 0u64..1_000_000_000) {
        let (kernel, machine, bases, total) = gen_kernel(seed);

        // Structural mutations all change the key.
        let mut mutated = kernel.clone();
        mutated.body.push(Instr::Alu {
            op: AluOp::Xor,
            dst: 0,
            a: Operand::Reg(0),
            b: Operand::Imm(1),
        });
        prop_assert_ne!(kernel.cache_key(), mutated.cache_key());
        let mut regrid = kernel.clone();
        regrid.grid = (kernel.grid.0 + 1, kernel.grid.1);
        prop_assert_ne!(kernel.cache_key(), regrid.cache_key());
        let mut reshared = kernel.clone();
        reshared.shared_words += 1;
        prop_assert_ne!(kernel.cache_key(), reshared.cache_key());

        // Renaming alone keeps the key (shared entry, by design).
        let mut renamed = kernel.clone();
        renamed.name = format!("{}_renamed", kernel.name);
        prop_assert_eq!(kernel.cache_key(), renamed.cache_key());

        // The mutant misses on a device warmed with the original, and
        // executes exactly like a never-cached launch of itself.
        let warm = Device::new(machine, spec()).unwrap();
        let fresh = Device::new(machine, spec()).unwrap();
        fresh.configure_cache(false, 0);
        let run = |dev: &Device, k: &Kernel| {
            let mut g = GlobalMemory::new(bases.clone(), total, machine.b, machine.g).unwrap();
            fill_gmem(&mut g, total, seed);
            dev.run_kernel_with(k, &mut g, ExecMode::Sequential, false, EngineSel::MicroOp)
                .map(|stats| (stats, g.words().to_vec()))
        };
        let Ok(_) = run(&warm, &kernel) else { return Ok(()) };
        let Ok((mut_stats, mut_mem)) = run(&warm, &mutated) else { return Ok(()) };
        prop_assert_eq!(warm.stats().cache.hits, 0, "mutant must not hit the original's entry");
        prop_assert_eq!(warm.stats().cache.misses, 2);
        let (fresh_stats, fresh_mem) = run(&fresh, &mutated).expect("fresh mutant run succeeds");
        prop_assert_eq!(&mut_mem, &fresh_mem, "mutant results contaminated by cache");
        prop_assert_eq!(mut_stats, fresh_stats);
    }
}

/// A deterministic replay-eligible kernel exercises the trace-reuse path
/// specifically: the first launch records, the second replays from the
/// cache with identical statistics and a confirmed hit.
#[test]
fn replay_trace_is_reused_across_launches() {
    let b = 4u64;
    let blocks = 16u64;
    let mut kb = KernelBuilder::new("replay", blocks, 2 * b);
    let g = AddrExpr::block() * b as i64 + AddrExpr::lane();
    kb.glb_to_shr(AddrExpr::lane(), DBuf(0), g.clone());
    kb.ld_shr(0, AddrExpr::lane());
    kb.alu(AluOp::Mul, 0, Operand::Reg(0), Operand::Imm(3));
    kb.st_shr(AddrExpr::lane() + b as i64, Operand::Reg(0));
    kb.shr_to_glb(DBuf(1), g, AddrExpr::lane() + b as i64);
    let kernel = kb.build();

    let machine = AtgpuMachine::new(1 << 12, b, 64, 1 << 16).unwrap();
    let dev = Device::new(machine, spec()).unwrap();
    let n = blocks * b;
    let run = || {
        let mut g = GlobalMemory::new(vec![0, n], 2 * n, b, 1 << 16).unwrap();
        for i in 0..n {
            g.write(i as i64, i as i64);
        }
        let stats =
            dev.run_kernel_with(&kernel, &mut g, ExecMode::Sequential, false, EngineSel::MicroOp);
        (stats.unwrap(), g.words().to_vec())
    };
    let (s1, m1) = run();
    let (s2, m2) = run();
    assert_eq!(s1, s2, "replayed launch must time identically");
    assert_eq!(m1, m2);
    for i in 0..n {
        assert_eq!(m1[(n + i) as usize], 3 * i as i64);
    }
    let c = dev.stats().cache;
    assert_eq!((c.hits, c.misses, c.entries), (1, 1, 1));
    // The trace really was recorded into the shared entry.
    let bases = [0u64, n];
    let entry = dev.cache().get_or_compile(&kernel, &bases, b as u32, 1);
    assert!(entry.compiled.replayable);
    assert!(entry.seeded_trace().is_some(), "first launch must publish its trace");
}

/// Distinct 4-block kernels (different immediates → different cache keys)
/// reading buffer 0 and writing block-disjoint buffer 1.
fn distinct_kernel(i: usize, b: u64) -> Kernel {
    let bi = b as i64;
    let mut kb = KernelBuilder::new(format!("k{i}"), 4, 2 * b);
    let g = AddrExpr::block() * bi + AddrExpr::lane();
    kb.glb_to_shr(AddrExpr::lane(), DBuf(0), g.clone());
    kb.ld_shr(0, AddrExpr::lane());
    kb.alu(AluOp::Mul, 0, Operand::Reg(0), Operand::Imm(i as i64 + 2));
    kb.st_shr(AddrExpr::lane() + bi, Operand::Reg(0));
    kb.shr_to_glb(DBuf(1), g, AddrExpr::lane() + bi);
    kb.build()
}

/// Satellite: a `cache_capacity` shrink applied between launches must
/// reach **every** device's `KernelCache` (not just device 0), evict
/// eagerly (entry counts drop before any further launch), and keep the
/// hit/miss/entry counters exact afterwards.
#[test]
fn cluster_cache_capacity_shrinks_every_device_mid_sweep() {
    let b = 4u64;
    let machine = AtgpuMachine::new(1 << 12, b, 64, 1 << 16).unwrap();
    let cluster = Cluster::new(machine, ClusterSpec::homogeneous(2, spec())).unwrap();
    let kernels: Vec<Kernel> = (0..4).map(|i| distinct_kernel(i, b)).collect();
    let n = 4 * b;
    let mut gmem = GlobalMemory::new(vec![0, n], 2 * n, b, 1 << 16).unwrap();
    let launch = |k: &Kernel, g: &mut GlobalMemory| {
        cluster
            .run_sharded_kernel(
                k,
                g,
                &even_shards(4, 2),
                ExecMode::Sequential,
                false,
                EngineSel::MicroOp,
            )
            .unwrap();
    };

    // Sweep 1: four distinct kernels, sharded across both devices.
    for k in &kernels {
        launch(k, &mut gmem);
    }
    for d in 0..2 {
        let c = cluster.device(d).unwrap().stats().cache;
        assert_eq!((c.hits, c.misses, c.entries), (0, 4, 4), "device {d} after cold sweep");
    }
    // Sweep 2: all four hit, on both devices.
    for k in &kernels {
        launch(k, &mut gmem);
    }
    for d in 0..2 {
        let c = cluster.device(d).unwrap().stats().cache;
        assert_eq!((c.hits, c.misses, c.entries), (4, 4, 4), "device {d} after warm sweep");
    }

    // Mid-sweep shrink: capacity 4 → 2 on the whole cluster.  Eviction
    // is eager — BOTH devices drop to 2 entries before any relaunch
    // (the bug this pins: a shrink reaching only device 0 would leave
    // device 1 at 4 entries here).
    for d in 0..2 {
        cluster.device(d).unwrap().configure_cache(true, 2);
    }
    for d in 0..2 {
        let c = cluster.device(d).unwrap().stats().cache;
        assert_eq!((c.hits, c.misses, c.entries), (4, 4, 2), "device {d} after shrink");
    }

    // FIFO kept the two newest insertions (k2, k3): relaunching them
    // hits; the evicted k0, k1 re-miss.  Counters stay exact throughout.
    for k in &kernels[2..] {
        launch(k, &mut gmem);
    }
    for k in &kernels[..2] {
        launch(k, &mut gmem);
    }
    for d in 0..2 {
        let c = cluster.device(d).unwrap().stats().cache;
        assert_eq!((c.hits, c.misses, c.entries), (6, 6, 2), "device {d} after mixed sweep");
    }
}

/// Satellite (program path): `run_cluster_program` propagates
/// `SimConfig::cache_capacity` and the kill-switch to every device, and
/// the per-device counters in the report prove it.
#[test]
fn run_cluster_program_configures_every_device_cache() {
    let b = 4u64;
    let machine = AtgpuMachine::new(1 << 12, b, 64, 1 << 16).unwrap();
    let cspec = ClusterSpec::homogeneous(2, spec());
    let kernel = distinct_kernel(0, b);
    let shards = even_shards(4, 2);
    let mut pb = atgpu_ir::ProgramBuilder::new("cap");
    let _a = pb.device_alloc("a", 4 * b);
    let _o = pb.device_alloc("o", 4 * b);
    for _ in 0..2 {
        pb.begin_round();
        pb.launch_sharded(kernel.clone(), shards.clone());
    }
    let p = pb.build().unwrap();

    let run = |cache: bool, capacity: usize| {
        let cfg = atgpu_sim::SimConfig { cache, cache_capacity: capacity, ..Default::default() };
        atgpu_sim::run_cluster_program(&p, vec![], &machine, &cspec, &cfg).unwrap()
    };
    // Capacity 1 on both devices: each compiles once, hits once.
    let r = run(true, 1);
    assert_eq!(r.device_stats.len(), 2);
    for (d, s) in r.device_stats.iter().enumerate() {
        assert_eq!((s.cache.hits, s.cache.misses, s.cache.entries), (1, 1, 1), "device {d}");
    }
    // Kill-switch off: no device records anything.
    let r = run(false, 64);
    for (d, s) in r.device_stats.iter().enumerate() {
        assert_eq!(s.cache, Default::default(), "device {d}");
    }
}
