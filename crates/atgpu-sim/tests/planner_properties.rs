//! Property tests for the cost-driven shard planner: on random clusters
//! (random device generations, random link asymmetries) and random
//! workload profiles, the plan [`atgpu_sim::planned_shards`] returns
//! must price **no worse than either heuristic candidate** — the even
//! split and the compute-weighted split — under the same analytic
//! objective, and must always be a partition of the grid.

use atgpu_ir::Shard;
use atgpu_model::{
    plan, AtgpuMachine, ClusterSpec, GpuSpec, LinkParams, PeerProfile, ShardProfile,
};
use atgpu_sim::{even_shards, planned_shards, shard_counts, weighted_shards};
use proptest::prelude::*;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// A multiplier in {1/8, 1/4, 1/2, 1, 2, 4, 8}.
    fn scale(&mut self) -> f64 {
        [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0][self.below(7) as usize]
    }
}

fn random_cluster(rng: &mut Rng) -> ClusterSpec {
    let n = 1 + rng.below(4) as usize;
    let base = [GpuSpec::gtx650_like(), GpuSpec::midrange_like(), GpuSpec::highend_like()];
    let mut spec = ClusterSpec::homogeneous(n, base[rng.below(3) as usize]);
    for d in 0..n {
        let g = base[rng.below(3) as usize];
        spec.devices[d] = GpuSpec { k_prime: 1 + rng.below(16), ..g };
        spec.host_links[d] = LinkParams {
            alpha_ms: g.xfer_alpha_ms * rng.scale(),
            beta_ms_per_word: g.xfer_beta_ms_per_word * rng.scale(),
        };
    }
    spec
}

fn random_profile(rng: &mut Rng) -> ShardProfile {
    let b = 32u64;
    // Half the profiles carry peer traffic (halo and/or merge/scatter to
    // an owner), exercising the peer-aware candidates and pricing.
    let peer = if rng.below(2) == 0 {
        PeerProfile::default()
    } else {
        PeerProfile {
            halo_words: rng.below(3) * b,
            halo_txns: 1,
            merge_words_per_unit: rng.below(3),
            merge_words_fixed: rng.below(2) * b,
            merge_txns: 1,
            scatter_words_per_unit: rng.below(2),
            scatter_txns: 1,
            owner: 0,
        }
    };
    ShardProfile {
        time_ops: 1 + rng.below(100_000),
        io_blocks_per_unit: rng.below(64),
        inward_words_per_unit: rng.below(8) * b,
        inward_txns: 1 + rng.below(3),
        outward_words_per_unit: rng.below(4) * b,
        outward_txns: 1,
        broadcast_words: rng.below(2) * 4096,
        broadcast_txns: 1,
        shared_words: 3 * b,
        blocks_per_unit: 1 + rng.below(8),
        rounds: 1 + rng.below(4),
        peer,
        ..ShardProfile::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The planner's modeled round time is ≤ min(even, weighted) — the
    /// defining guarantee of pricing candidates instead of guessing —
    /// and its plan partitions the grid contiguously.
    #[test]
    fn planned_cost_at_most_even_and_weighted(seed in 0u64..1_000_000_000) {
        let mut rng = Rng(seed | 1);
        let cluster = random_cluster(&mut rng);
        let machine = AtgpuMachine::gtx650_like();
        let profile = random_profile(&mut rng);
        let units = 1 + rng.below(5000);
        let n = cluster.n_devices();

        let planned = planned_shards(units, &cluster, &machine, &profile);

        // A contiguous partition of [0, units).
        prop_assert_eq!(planned.iter().map(Shard::blocks).sum::<u64>(), units);
        let mut cursor = 0;
        for s in &planned {
            prop_assert_eq!(s.start, cursor, "gap in plan: {:?}", planned);
            prop_assert!(s.blocks() > 0);
            prop_assert!((s.device as usize) < n);
            cursor = s.end;
        }

        // Modeled round time ≤ both heuristic candidates.
        let cost = |s: &[Shard]| plan::plan_cost(&cluster, &machine, &profile, &shard_counts(s, n));
        let c_planned = cost(&planned).expect("planned plan must price");
        let c_even = cost(&even_shards(units, n as u32)).expect("even plan must price");
        let c_weighted = cost(&weighted_shards(units, &cluster)).expect("weighted plan must price");
        prop_assert!(
            c_planned <= c_even + 1e-9,
            "planned {} > even {} on {:?}",
            c_planned, c_even, cluster
        );
        prop_assert!(
            c_planned <= c_weighted + 1e-9,
            "planned {} > weighted {} on {:?}",
            c_planned, c_weighted, cluster
        );
    }

    /// `plan_shards`' routing invariant: genuinely homogeneous clusters
    /// (devices AND links) split evenly; link-asymmetric clusters of
    /// identical devices never hand the slowest link an above-even share.
    #[test]
    fn plan_shards_routing(seed in 0u64..1_000_000_000) {
        let mut rng = Rng(seed | 1);
        let n = 2 + rng.below(3) as usize;
        let spec = ClusterSpec::homogeneous(n, GpuSpec::gtx650_like());
        let units = n as u64 * (1 + rng.below(500));
        prop_assert_eq!(
            atgpu_sim::plan_shards(units, &spec),
            even_shards(units, n as u32)
        );

        // Slow down one link by ≥ 4x: that device's share must not
        // exceed the even share.
        let mut asym = spec.clone();
        let victim = rng.below(n as u64) as usize;
        let f = 4.0 * rng.scale().max(1.0);
        asym.host_links[victim] = LinkParams {
            alpha_ms: asym.host_links[victim].alpha_ms * f,
            beta_ms_per_word: asym.host_links[victim].beta_ms_per_word * f,
        };
        let shards = atgpu_sim::plan_shards(units, &asym);
        prop_assert_eq!(shards.iter().map(Shard::blocks).sum::<u64>(), units);
        let share: u64 = shards
            .iter()
            .filter(|s| s.device as usize == victim)
            .map(Shard::blocks)
            .sum();
        prop_assert!(
            share <= units / n as u64,
            "slow-link device {} got {} of {} units on {} devices",
            victim, share, units, n
        );
    }
}
